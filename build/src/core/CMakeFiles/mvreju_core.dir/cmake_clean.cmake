file(REMOVE_RECURSE
  "CMakeFiles/mvreju_core.dir/src/dspn_models.cpp.o"
  "CMakeFiles/mvreju_core.dir/src/dspn_models.cpp.o.d"
  "CMakeFiles/mvreju_core.dir/src/health.cpp.o"
  "CMakeFiles/mvreju_core.dir/src/health.cpp.o.d"
  "libmvreju_core.a"
  "libmvreju_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
