# Empty compiler generated dependencies file for mvreju_core.
# This may be replaced when dependencies are built.
