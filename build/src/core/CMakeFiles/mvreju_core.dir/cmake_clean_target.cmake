file(REMOVE_RECURSE
  "libmvreju_core.a"
)
