file(REMOVE_RECURSE
  "CMakeFiles/mvreju_fi.dir/src/campaign.cpp.o"
  "CMakeFiles/mvreju_fi.dir/src/campaign.cpp.o.d"
  "CMakeFiles/mvreju_fi.dir/src/inject.cpp.o"
  "CMakeFiles/mvreju_fi.dir/src/inject.cpp.o.d"
  "libmvreju_fi.a"
  "libmvreju_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
