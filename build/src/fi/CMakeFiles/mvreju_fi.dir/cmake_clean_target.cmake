file(REMOVE_RECURSE
  "libmvreju_fi.a"
)
