
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fi/src/campaign.cpp" "src/fi/CMakeFiles/mvreju_fi.dir/src/campaign.cpp.o" "gcc" "src/fi/CMakeFiles/mvreju_fi.dir/src/campaign.cpp.o.d"
  "/root/repo/src/fi/src/inject.cpp" "src/fi/CMakeFiles/mvreju_fi.dir/src/inject.cpp.o" "gcc" "src/fi/CMakeFiles/mvreju_fi.dir/src/inject.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/mvreju_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
