# Empty compiler generated dependencies file for mvreju_fi.
# This may be replaced when dependencies are built.
