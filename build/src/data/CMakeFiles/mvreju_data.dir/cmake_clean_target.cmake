file(REMOVE_RECURSE
  "libmvreju_data.a"
)
