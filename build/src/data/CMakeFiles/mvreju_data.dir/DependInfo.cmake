
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/src/image_io.cpp" "src/data/CMakeFiles/mvreju_data.dir/src/image_io.cpp.o" "gcc" "src/data/CMakeFiles/mvreju_data.dir/src/image_io.cpp.o.d"
  "/root/repo/src/data/src/signs.cpp" "src/data/CMakeFiles/mvreju_data.dir/src/signs.cpp.o" "gcc" "src/data/CMakeFiles/mvreju_data.dir/src/signs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/mvreju_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
