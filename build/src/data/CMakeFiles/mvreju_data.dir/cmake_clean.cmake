file(REMOVE_RECURSE
  "CMakeFiles/mvreju_data.dir/src/image_io.cpp.o"
  "CMakeFiles/mvreju_data.dir/src/image_io.cpp.o.d"
  "CMakeFiles/mvreju_data.dir/src/signs.cpp.o"
  "CMakeFiles/mvreju_data.dir/src/signs.cpp.o.d"
  "libmvreju_data.a"
  "libmvreju_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
