# Empty dependencies file for mvreju_data.
# This may be replaced when dependencies are built.
