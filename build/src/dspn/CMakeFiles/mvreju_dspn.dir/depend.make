# Empty dependencies file for mvreju_dspn.
# This may be replaced when dependencies are built.
