file(REMOVE_RECURSE
  "CMakeFiles/mvreju_dspn.dir/src/dot.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/dot.cpp.o.d"
  "CMakeFiles/mvreju_dspn.dir/src/net.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/net.cpp.o.d"
  "CMakeFiles/mvreju_dspn.dir/src/reachability.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/reachability.cpp.o.d"
  "CMakeFiles/mvreju_dspn.dir/src/simulate.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/simulate.cpp.o.d"
  "CMakeFiles/mvreju_dspn.dir/src/solver.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/solver.cpp.o.d"
  "CMakeFiles/mvreju_dspn.dir/src/text_format.cpp.o"
  "CMakeFiles/mvreju_dspn.dir/src/text_format.cpp.o.d"
  "libmvreju_dspn.a"
  "libmvreju_dspn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_dspn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
