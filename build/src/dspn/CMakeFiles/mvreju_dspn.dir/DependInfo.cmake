
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dspn/src/dot.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/dot.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/dot.cpp.o.d"
  "/root/repo/src/dspn/src/net.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/net.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/net.cpp.o.d"
  "/root/repo/src/dspn/src/reachability.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/reachability.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/reachability.cpp.o.d"
  "/root/repo/src/dspn/src/simulate.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/simulate.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/simulate.cpp.o.d"
  "/root/repo/src/dspn/src/solver.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/solver.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/solver.cpp.o.d"
  "/root/repo/src/dspn/src/text_format.cpp" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/text_format.cpp.o" "gcc" "src/dspn/CMakeFiles/mvreju_dspn.dir/src/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/num/CMakeFiles/mvreju_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
