file(REMOVE_RECURSE
  "libmvreju_dspn.a"
)
