file(REMOVE_RECURSE
  "CMakeFiles/mvreju_util.dir/src/args.cpp.o"
  "CMakeFiles/mvreju_util.dir/src/args.cpp.o.d"
  "CMakeFiles/mvreju_util.dir/src/csv.cpp.o"
  "CMakeFiles/mvreju_util.dir/src/csv.cpp.o.d"
  "CMakeFiles/mvreju_util.dir/src/table.cpp.o"
  "CMakeFiles/mvreju_util.dir/src/table.cpp.o.d"
  "libmvreju_util.a"
  "libmvreju_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
