# Empty dependencies file for mvreju_util.
# This may be replaced when dependencies are built.
