file(REMOVE_RECURSE
  "libmvreju_util.a"
)
