file(REMOVE_RECURSE
  "CMakeFiles/mvreju_av.dir/src/geometry.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/geometry.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/localization.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/localization.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/perception.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/perception.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/planner.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/planner.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/route.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/route.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/sensor.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/sensor.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/simulation.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/simulation.cpp.o.d"
  "CMakeFiles/mvreju_av.dir/src/vehicle.cpp.o"
  "CMakeFiles/mvreju_av.dir/src/vehicle.cpp.o.d"
  "libmvreju_av.a"
  "libmvreju_av.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_av.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
