
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/av/src/geometry.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/geometry.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/geometry.cpp.o.d"
  "/root/repo/src/av/src/localization.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/localization.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/localization.cpp.o.d"
  "/root/repo/src/av/src/perception.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/perception.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/perception.cpp.o.d"
  "/root/repo/src/av/src/planner.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/planner.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/planner.cpp.o.d"
  "/root/repo/src/av/src/route.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/route.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/route.cpp.o.d"
  "/root/repo/src/av/src/sensor.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/sensor.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/sensor.cpp.o.d"
  "/root/repo/src/av/src/simulation.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/simulation.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/simulation.cpp.o.d"
  "/root/repo/src/av/src/vehicle.cpp" "src/av/CMakeFiles/mvreju_av.dir/src/vehicle.cpp.o" "gcc" "src/av/CMakeFiles/mvreju_av.dir/src/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mvreju_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mvreju_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/mvreju_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dspn/CMakeFiles/mvreju_dspn.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/mvreju_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mvreju_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
