# Empty compiler generated dependencies file for mvreju_av.
# This may be replaced when dependencies are built.
