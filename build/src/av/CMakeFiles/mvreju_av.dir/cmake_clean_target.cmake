file(REMOVE_RECURSE
  "libmvreju_av.a"
)
