# Empty dependencies file for mvreju_num.
# This may be replaced when dependencies are built.
