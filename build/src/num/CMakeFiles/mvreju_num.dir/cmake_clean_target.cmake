file(REMOVE_RECURSE
  "libmvreju_num.a"
)
