
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/num/src/linalg.cpp" "src/num/CMakeFiles/mvreju_num.dir/src/linalg.cpp.o" "gcc" "src/num/CMakeFiles/mvreju_num.dir/src/linalg.cpp.o.d"
  "/root/repo/src/num/src/markov.cpp" "src/num/CMakeFiles/mvreju_num.dir/src/markov.cpp.o" "gcc" "src/num/CMakeFiles/mvreju_num.dir/src/markov.cpp.o.d"
  "/root/repo/src/num/src/matrix.cpp" "src/num/CMakeFiles/mvreju_num.dir/src/matrix.cpp.o" "gcc" "src/num/CMakeFiles/mvreju_num.dir/src/matrix.cpp.o.d"
  "/root/repo/src/num/src/stats.cpp" "src/num/CMakeFiles/mvreju_num.dir/src/stats.cpp.o" "gcc" "src/num/CMakeFiles/mvreju_num.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
