file(REMOVE_RECURSE
  "CMakeFiles/mvreju_num.dir/src/linalg.cpp.o"
  "CMakeFiles/mvreju_num.dir/src/linalg.cpp.o.d"
  "CMakeFiles/mvreju_num.dir/src/markov.cpp.o"
  "CMakeFiles/mvreju_num.dir/src/markov.cpp.o.d"
  "CMakeFiles/mvreju_num.dir/src/matrix.cpp.o"
  "CMakeFiles/mvreju_num.dir/src/matrix.cpp.o.d"
  "CMakeFiles/mvreju_num.dir/src/stats.cpp.o"
  "CMakeFiles/mvreju_num.dir/src/stats.cpp.o.d"
  "libmvreju_num.a"
  "libmvreju_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
