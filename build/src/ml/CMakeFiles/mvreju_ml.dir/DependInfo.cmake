
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/src/layers.cpp" "src/ml/CMakeFiles/mvreju_ml.dir/src/layers.cpp.o" "gcc" "src/ml/CMakeFiles/mvreju_ml.dir/src/layers.cpp.o.d"
  "/root/repo/src/ml/src/model.cpp" "src/ml/CMakeFiles/mvreju_ml.dir/src/model.cpp.o" "gcc" "src/ml/CMakeFiles/mvreju_ml.dir/src/model.cpp.o.d"
  "/root/repo/src/ml/src/tensor.cpp" "src/ml/CMakeFiles/mvreju_ml.dir/src/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/mvreju_ml.dir/src/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
