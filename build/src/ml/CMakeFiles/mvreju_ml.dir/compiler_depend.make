# Empty compiler generated dependencies file for mvreju_ml.
# This may be replaced when dependencies are built.
