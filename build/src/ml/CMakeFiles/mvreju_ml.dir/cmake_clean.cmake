file(REMOVE_RECURSE
  "CMakeFiles/mvreju_ml.dir/src/layers.cpp.o"
  "CMakeFiles/mvreju_ml.dir/src/layers.cpp.o.d"
  "CMakeFiles/mvreju_ml.dir/src/model.cpp.o"
  "CMakeFiles/mvreju_ml.dir/src/model.cpp.o.d"
  "CMakeFiles/mvreju_ml.dir/src/tensor.cpp.o"
  "CMakeFiles/mvreju_ml.dir/src/tensor.cpp.o.d"
  "libmvreju_ml.a"
  "libmvreju_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
