file(REMOVE_RECURSE
  "libmvreju_ml.a"
)
