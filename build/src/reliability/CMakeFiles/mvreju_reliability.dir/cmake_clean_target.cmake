file(REMOVE_RECURSE
  "libmvreju_reliability.a"
)
