file(REMOVE_RECURSE
  "CMakeFiles/mvreju_reliability.dir/src/functions.cpp.o"
  "CMakeFiles/mvreju_reliability.dir/src/functions.cpp.o.d"
  "CMakeFiles/mvreju_reliability.dir/src/synthetic.cpp.o"
  "CMakeFiles/mvreju_reliability.dir/src/synthetic.cpp.o.d"
  "libmvreju_reliability.a"
  "libmvreju_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvreju_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
