# Empty dependencies file for mvreju_reliability.
# This may be replaced when dependencies are built.
