# Empty dependencies file for microbench.
# This may be replaced when dependencies are built.
