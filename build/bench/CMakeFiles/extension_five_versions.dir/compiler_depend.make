# Empty compiler generated dependencies file for extension_five_versions.
# This may be replaced when dependencies are built.
