file(REMOVE_RECURSE
  "CMakeFiles/extension_five_versions.dir/extension_five_versions.cpp.o"
  "CMakeFiles/extension_five_versions.dir/extension_five_versions.cpp.o.d"
  "extension_five_versions"
  "extension_five_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_five_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
