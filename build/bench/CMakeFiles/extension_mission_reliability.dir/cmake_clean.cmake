file(REMOVE_RECURSE
  "CMakeFiles/extension_mission_reliability.dir/extension_mission_reliability.cpp.o"
  "CMakeFiles/extension_mission_reliability.dir/extension_mission_reliability.cpp.o.d"
  "extension_mission_reliability"
  "extension_mission_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_mission_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
