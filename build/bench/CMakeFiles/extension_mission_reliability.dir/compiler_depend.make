# Empty compiler generated dependencies file for extension_mission_reliability.
# This may be replaced when dependencies are built.
