# Empty compiler generated dependencies file for table8_overhead.
# This may be replaced when dependencies are built.
