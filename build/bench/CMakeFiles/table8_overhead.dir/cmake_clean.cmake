file(REMOVE_RECURSE
  "CMakeFiles/table8_overhead.dir/table8_overhead.cpp.o"
  "CMakeFiles/table8_overhead.dir/table8_overhead.cpp.o.d"
  "table8_overhead"
  "table8_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
