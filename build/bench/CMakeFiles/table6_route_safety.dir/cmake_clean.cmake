file(REMOVE_RECURSE
  "CMakeFiles/table6_route_safety.dir/table6_route_safety.cpp.o"
  "CMakeFiles/table6_route_safety.dir/table6_route_safety.cpp.o.d"
  "table6_route_safety"
  "table6_route_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_route_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
