# Empty compiler generated dependencies file for table6_route_safety.
# This may be replaced when dependencies are built.
