# Empty dependencies file for table3_state_reliability.
# This may be replaced when dependencies are built.
