file(REMOVE_RECURSE
  "CMakeFiles/table3_state_reliability.dir/table3_state_reliability.cpp.o"
  "CMakeFiles/table3_state_reliability.dir/table3_state_reliability.cpp.o.d"
  "table3_state_reliability"
  "table3_state_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_state_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
