file(REMOVE_RECURSE
  "CMakeFiles/fig4_parameter_study.dir/fig4_parameter_study.cpp.o"
  "CMakeFiles/fig4_parameter_study.dir/fig4_parameter_study.cpp.o.d"
  "fig4_parameter_study"
  "fig4_parameter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_parameter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
