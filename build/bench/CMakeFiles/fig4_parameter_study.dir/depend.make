# Empty dependencies file for fig4_parameter_study.
# This may be replaced when dependencies are built.
