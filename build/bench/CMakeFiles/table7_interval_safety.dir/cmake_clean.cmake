file(REMOVE_RECURSE
  "CMakeFiles/table7_interval_safety.dir/table7_interval_safety.cpp.o"
  "CMakeFiles/table7_interval_safety.dir/table7_interval_safety.cpp.o.d"
  "table7_interval_safety"
  "table7_interval_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_interval_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
