# Empty compiler generated dependencies file for table7_interval_safety.
# This may be replaced when dependencies are built.
