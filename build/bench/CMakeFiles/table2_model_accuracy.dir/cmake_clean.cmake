file(REMOVE_RECURSE
  "CMakeFiles/table2_model_accuracy.dir/table2_model_accuracy.cpp.o"
  "CMakeFiles/table2_model_accuracy.dir/table2_model_accuracy.cpp.o.d"
  "table2_model_accuracy"
  "table2_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
