# Empty compiler generated dependencies file for table2_model_accuracy.
# This may be replaced when dependencies are built.
