# Empty dependencies file for table5_dspn_reliability.
# This may be replaced when dependencies are built.
