file(REMOVE_RECURSE
  "CMakeFiles/table5_dspn_reliability.dir/table5_dspn_reliability.cpp.o"
  "CMakeFiles/table5_dspn_reliability.dir/table5_dspn_reliability.cpp.o.d"
  "table5_dspn_reliability"
  "table5_dspn_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dspn_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
