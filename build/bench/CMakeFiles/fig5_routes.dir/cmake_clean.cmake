file(REMOVE_RECURSE
  "CMakeFiles/fig5_routes.dir/fig5_routes.cpp.o"
  "CMakeFiles/fig5_routes.dir/fig5_routes.cpp.o.d"
  "fig5_routes"
  "fig5_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
