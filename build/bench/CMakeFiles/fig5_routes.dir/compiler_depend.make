# Empty compiler generated dependencies file for fig5_routes.
# This may be replaced when dependencies are built.
