# Empty dependencies file for extension_fi_campaign.
# This may be replaced when dependencies are built.
