file(REMOVE_RECURSE
  "CMakeFiles/extension_fi_campaign.dir/extension_fi_campaign.cpp.o"
  "CMakeFiles/extension_fi_campaign.dir/extension_fi_campaign.cpp.o.d"
  "extension_fi_campaign"
  "extension_fi_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fi_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
