file(REMOVE_RECURSE
  "CMakeFiles/extension_first_passage.dir/extension_first_passage.cpp.o"
  "CMakeFiles/extension_first_passage.dir/extension_first_passage.cpp.o.d"
  "extension_first_passage"
  "extension_first_passage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_first_passage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
