# Empty dependencies file for extension_first_passage.
# This may be replaced when dependencies are built.
