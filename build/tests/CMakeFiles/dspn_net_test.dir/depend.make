# Empty dependencies file for dspn_net_test.
# This may be replaced when dependencies are built.
