file(REMOVE_RECURSE
  "CMakeFiles/dspn_net_test.dir/dspn_net_test.cpp.o"
  "CMakeFiles/dspn_net_test.dir/dspn_net_test.cpp.o.d"
  "dspn_net_test"
  "dspn_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
