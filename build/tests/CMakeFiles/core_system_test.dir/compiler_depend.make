# Empty compiler generated dependencies file for core_system_test.
# This may be replaced when dependencies are built.
