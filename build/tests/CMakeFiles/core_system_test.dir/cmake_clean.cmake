file(REMOVE_RECURSE
  "CMakeFiles/core_system_test.dir/core_system_test.cpp.o"
  "CMakeFiles/core_system_test.dir/core_system_test.cpp.o.d"
  "core_system_test"
  "core_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
