# Empty dependencies file for av_geometry_route_test.
# This may be replaced when dependencies are built.
