file(REMOVE_RECURSE
  "CMakeFiles/av_geometry_route_test.dir/av_geometry_route_test.cpp.o"
  "CMakeFiles/av_geometry_route_test.dir/av_geometry_route_test.cpp.o.d"
  "av_geometry_route_test"
  "av_geometry_route_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_geometry_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
