file(REMOVE_RECURSE
  "CMakeFiles/dspn_first_passage_test.dir/dspn_first_passage_test.cpp.o"
  "CMakeFiles/dspn_first_passage_test.dir/dspn_first_passage_test.cpp.o.d"
  "dspn_first_passage_test"
  "dspn_first_passage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_first_passage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
