# Empty compiler generated dependencies file for dspn_first_passage_test.
# This may be replaced when dependencies are built.
