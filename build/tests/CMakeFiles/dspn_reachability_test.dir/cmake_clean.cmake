file(REMOVE_RECURSE
  "CMakeFiles/dspn_reachability_test.dir/dspn_reachability_test.cpp.o"
  "CMakeFiles/dspn_reachability_test.dir/dspn_reachability_test.cpp.o.d"
  "dspn_reachability_test"
  "dspn_reachability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
