# Empty dependencies file for dspn_reachability_test.
# This may be replaced when dependencies are built.
