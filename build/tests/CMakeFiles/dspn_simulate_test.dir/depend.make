# Empty dependencies file for dspn_simulate_test.
# This may be replaced when dependencies are built.
