file(REMOVE_RECURSE
  "CMakeFiles/dspn_simulate_test.dir/dspn_simulate_test.cpp.o"
  "CMakeFiles/dspn_simulate_test.dir/dspn_simulate_test.cpp.o.d"
  "dspn_simulate_test"
  "dspn_simulate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_simulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
