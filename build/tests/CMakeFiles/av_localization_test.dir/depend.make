# Empty dependencies file for av_localization_test.
# This may be replaced when dependencies are built.
