file(REMOVE_RECURSE
  "CMakeFiles/av_localization_test.dir/av_localization_test.cpp.o"
  "CMakeFiles/av_localization_test.dir/av_localization_test.cpp.o.d"
  "av_localization_test"
  "av_localization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_localization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
