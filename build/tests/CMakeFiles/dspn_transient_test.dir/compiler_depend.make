# Empty compiler generated dependencies file for dspn_transient_test.
# This may be replaced when dependencies are built.
