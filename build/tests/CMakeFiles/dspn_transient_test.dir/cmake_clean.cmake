file(REMOVE_RECURSE
  "CMakeFiles/dspn_transient_test.dir/dspn_transient_test.cpp.o"
  "CMakeFiles/dspn_transient_test.dir/dspn_transient_test.cpp.o.d"
  "dspn_transient_test"
  "dspn_transient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
