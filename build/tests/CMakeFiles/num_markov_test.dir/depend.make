# Empty dependencies file for num_markov_test.
# This may be replaced when dependencies are built.
