file(REMOVE_RECURSE
  "CMakeFiles/num_markov_test.dir/num_markov_test.cpp.o"
  "CMakeFiles/num_markov_test.dir/num_markov_test.cpp.o.d"
  "num_markov_test"
  "num_markov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/num_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
