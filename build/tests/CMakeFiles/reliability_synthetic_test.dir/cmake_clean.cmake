file(REMOVE_RECURSE
  "CMakeFiles/reliability_synthetic_test.dir/reliability_synthetic_test.cpp.o"
  "CMakeFiles/reliability_synthetic_test.dir/reliability_synthetic_test.cpp.o.d"
  "reliability_synthetic_test"
  "reliability_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
