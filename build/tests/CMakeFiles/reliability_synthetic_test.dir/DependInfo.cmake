
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reliability_synthetic_test.cpp" "tests/CMakeFiles/reliability_synthetic_test.dir/reliability_synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/reliability_synthetic_test.dir/reliability_synthetic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mvreju_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dspn/CMakeFiles/mvreju_dspn.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/mvreju_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mvreju_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvreju_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
