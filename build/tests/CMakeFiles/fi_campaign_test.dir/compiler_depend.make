# Empty compiler generated dependencies file for fi_campaign_test.
# This may be replaced when dependencies are built.
