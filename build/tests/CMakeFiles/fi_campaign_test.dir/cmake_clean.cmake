file(REMOVE_RECURSE
  "CMakeFiles/fi_campaign_test.dir/fi_campaign_test.cpp.o"
  "CMakeFiles/fi_campaign_test.dir/fi_campaign_test.cpp.o.d"
  "fi_campaign_test"
  "fi_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
