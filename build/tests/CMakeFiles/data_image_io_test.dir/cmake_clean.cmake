file(REMOVE_RECURSE
  "CMakeFiles/data_image_io_test.dir/data_image_io_test.cpp.o"
  "CMakeFiles/data_image_io_test.dir/data_image_io_test.cpp.o.d"
  "data_image_io_test"
  "data_image_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_image_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
