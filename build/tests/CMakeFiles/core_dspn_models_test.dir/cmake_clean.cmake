file(REMOVE_RECURSE
  "CMakeFiles/core_dspn_models_test.dir/core_dspn_models_test.cpp.o"
  "CMakeFiles/core_dspn_models_test.dir/core_dspn_models_test.cpp.o.d"
  "core_dspn_models_test"
  "core_dspn_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dspn_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
