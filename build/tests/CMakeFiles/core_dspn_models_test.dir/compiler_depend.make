# Empty compiler generated dependencies file for core_dspn_models_test.
# This may be replaced when dependencies are built.
