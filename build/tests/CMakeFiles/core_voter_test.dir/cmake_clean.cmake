file(REMOVE_RECURSE
  "CMakeFiles/core_voter_test.dir/core_voter_test.cpp.o"
  "CMakeFiles/core_voter_test.dir/core_voter_test.cpp.o.d"
  "core_voter_test"
  "core_voter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_voter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
