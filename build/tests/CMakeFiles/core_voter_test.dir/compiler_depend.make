# Empty compiler generated dependencies file for core_voter_test.
# This may be replaced when dependencies are built.
