file(REMOVE_RECURSE
  "CMakeFiles/core_health_test.dir/core_health_test.cpp.o"
  "CMakeFiles/core_health_test.dir/core_health_test.cpp.o.d"
  "core_health_test"
  "core_health_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_health_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
