# Empty dependencies file for ml_model_test.
# This may be replaced when dependencies are built.
