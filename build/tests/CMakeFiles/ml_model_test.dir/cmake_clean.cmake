file(REMOVE_RECURSE
  "CMakeFiles/ml_model_test.dir/ml_model_test.cpp.o"
  "CMakeFiles/ml_model_test.dir/ml_model_test.cpp.o.d"
  "ml_model_test"
  "ml_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
