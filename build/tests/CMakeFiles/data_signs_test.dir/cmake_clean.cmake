file(REMOVE_RECURSE
  "CMakeFiles/data_signs_test.dir/data_signs_test.cpp.o"
  "CMakeFiles/data_signs_test.dir/data_signs_test.cpp.o.d"
  "data_signs_test"
  "data_signs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_signs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
