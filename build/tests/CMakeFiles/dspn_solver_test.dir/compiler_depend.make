# Empty compiler generated dependencies file for dspn_solver_test.
# This may be replaced when dependencies are built.
