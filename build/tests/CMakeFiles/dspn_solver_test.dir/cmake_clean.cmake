file(REMOVE_RECURSE
  "CMakeFiles/dspn_solver_test.dir/dspn_solver_test.cpp.o"
  "CMakeFiles/dspn_solver_test.dir/dspn_solver_test.cpp.o.d"
  "dspn_solver_test"
  "dspn_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
