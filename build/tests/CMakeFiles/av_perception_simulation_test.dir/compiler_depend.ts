# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for av_perception_simulation_test.
