# Empty dependencies file for av_perception_simulation_test.
# This may be replaced when dependencies are built.
