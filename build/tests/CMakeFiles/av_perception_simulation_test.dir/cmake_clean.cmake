file(REMOVE_RECURSE
  "CMakeFiles/av_perception_simulation_test.dir/av_perception_simulation_test.cpp.o"
  "CMakeFiles/av_perception_simulation_test.dir/av_perception_simulation_test.cpp.o.d"
  "av_perception_simulation_test"
  "av_perception_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_perception_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
