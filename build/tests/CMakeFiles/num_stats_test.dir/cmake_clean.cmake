file(REMOVE_RECURSE
  "CMakeFiles/num_stats_test.dir/num_stats_test.cpp.o"
  "CMakeFiles/num_stats_test.dir/num_stats_test.cpp.o.d"
  "num_stats_test"
  "num_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/num_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
