# Empty compiler generated dependencies file for num_stats_test.
# This may be replaced when dependencies are built.
