file(REMOVE_RECURSE
  "CMakeFiles/num_matrix_test.dir/num_matrix_test.cpp.o"
  "CMakeFiles/num_matrix_test.dir/num_matrix_test.cpp.o.d"
  "num_matrix_test"
  "num_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/num_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
