# Empty dependencies file for num_matrix_test.
# This may be replaced when dependencies are built.
