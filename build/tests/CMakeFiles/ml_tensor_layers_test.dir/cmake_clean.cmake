file(REMOVE_RECURSE
  "CMakeFiles/ml_tensor_layers_test.dir/ml_tensor_layers_test.cpp.o"
  "CMakeFiles/ml_tensor_layers_test.dir/ml_tensor_layers_test.cpp.o.d"
  "ml_tensor_layers_test"
  "ml_tensor_layers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tensor_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
