# Empty dependencies file for ml_tensor_layers_test.
# This may be replaced when dependencies are built.
