file(REMOVE_RECURSE
  "CMakeFiles/fi_inject_test.dir/fi_inject_test.cpp.o"
  "CMakeFiles/fi_inject_test.dir/fi_inject_test.cpp.o.d"
  "fi_inject_test"
  "fi_inject_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_inject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
