# Empty compiler generated dependencies file for fi_inject_test.
# This may be replaced when dependencies are built.
