file(REMOVE_RECURSE
  "CMakeFiles/av_vehicle_sensor_test.dir/av_vehicle_sensor_test.cpp.o"
  "CMakeFiles/av_vehicle_sensor_test.dir/av_vehicle_sensor_test.cpp.o.d"
  "av_vehicle_sensor_test"
  "av_vehicle_sensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_vehicle_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
