# Empty compiler generated dependencies file for av_vehicle_sensor_test.
# This may be replaced when dependencies are built.
