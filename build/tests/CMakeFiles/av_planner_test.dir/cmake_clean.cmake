file(REMOVE_RECURSE
  "CMakeFiles/av_planner_test.dir/av_planner_test.cpp.o"
  "CMakeFiles/av_planner_test.dir/av_planner_test.cpp.o.d"
  "av_planner_test"
  "av_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
