# Empty compiler generated dependencies file for av_planner_test.
# This may be replaced when dependencies are built.
