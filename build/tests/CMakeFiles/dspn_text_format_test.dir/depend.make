# Empty dependencies file for dspn_text_format_test.
# This may be replaced when dependencies are built.
