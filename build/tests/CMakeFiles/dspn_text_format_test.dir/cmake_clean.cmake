file(REMOVE_RECURSE
  "CMakeFiles/dspn_text_format_test.dir/dspn_text_format_test.cpp.o"
  "CMakeFiles/dspn_text_format_test.dir/dspn_text_format_test.cpp.o.d"
  "dspn_text_format_test"
  "dspn_text_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
