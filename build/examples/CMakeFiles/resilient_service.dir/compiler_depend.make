# Empty compiler generated dependencies file for resilient_service.
# This may be replaced when dependencies are built.
