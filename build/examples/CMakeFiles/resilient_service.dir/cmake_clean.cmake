file(REMOVE_RECURSE
  "CMakeFiles/resilient_service.dir/resilient_service.cpp.o"
  "CMakeFiles/resilient_service.dir/resilient_service.cpp.o.d"
  "resilient_service"
  "resilient_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
