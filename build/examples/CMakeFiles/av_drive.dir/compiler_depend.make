# Empty compiler generated dependencies file for av_drive.
# This may be replaced when dependencies are built.
