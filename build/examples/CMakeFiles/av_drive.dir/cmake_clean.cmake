file(REMOVE_RECURSE
  "CMakeFiles/av_drive.dir/av_drive.cpp.o"
  "CMakeFiles/av_drive.dir/av_drive.cpp.o.d"
  "av_drive"
  "av_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
