# Empty compiler generated dependencies file for dspn_study.
# This may be replaced when dependencies are built.
