file(REMOVE_RECURSE
  "CMakeFiles/dspn_study.dir/dspn_study.cpp.o"
  "CMakeFiles/dspn_study.dir/dspn_study.cpp.o.d"
  "dspn_study"
  "dspn_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspn_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
