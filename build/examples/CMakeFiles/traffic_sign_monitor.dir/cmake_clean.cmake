file(REMOVE_RECURSE
  "CMakeFiles/traffic_sign_monitor.dir/traffic_sign_monitor.cpp.o"
  "CMakeFiles/traffic_sign_monitor.dir/traffic_sign_monitor.cpp.o.d"
  "traffic_sign_monitor"
  "traffic_sign_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sign_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
