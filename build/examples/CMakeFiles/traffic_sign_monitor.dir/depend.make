# Empty dependencies file for traffic_sign_monitor.
# This may be replaced when dependencies are built.
