// Sample client for the fleet serving layer: opens one perception stream
// to a `resilient_service --serve-streams` (or any serve::Server), sends
// seeded random frames over the length-prefixed protocol, and prints each
// response — frame id, vote outcome, label, agreeing and functional module
// counts, and whether the server degraded the frame under load.
//
//   ./build/examples/stream_client
//       [--host <ip>]     server address   (default 127.0.0.1)
//       [--port <p>]      server port      (required)
//       [--frames <n>]    frames to send   (default 10)
//       [--seed <s>]      frame contents   (default 1)

#include <cstdio>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/serve/protocol.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/rng.hpp"

using namespace mvreju;

namespace {

const char* status_name(serve::ResponseStatus status) {
    switch (status) {
        case serve::ResponseStatus::decided: return "decided";
        case serve::ResponseStatus::skipped: return "skipped";
        case serve::ResponseStatus::no_output: return "no_output";
        case serve::ResponseStatus::shed: return "shed";
        case serve::ResponseStatus::error: return "error";
    }
    return "?";
}

}  // namespace

int main(int argc, char** argv) try {
    const util::Args args(argc, argv);
    const std::string host = args.host();
    const int port = args.port(0);
    const int frames = args.get_int("frames", 10, 1, 1'000'000);
    const int seed = args.get_int("seed", 1, 0, 1 << 30);
    if (port == 0) {
        std::fprintf(stderr, "usage: stream_client --port <p> [--host <ip>] "
                             "[--frames <n>] [--seed <s>]\n");
        return 2;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("socket");
        return 1;
    }
    timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        std::perror("connect");
        ::close(fd);
        return 1;
    }

    // The server's model geometry (channels x side x side) is fixed by
    // serve::ModelSetConfig; a frame of any other size is a protocol error.
    constexpr std::size_t kSampleSize = 3 * 16 * 16;
    util::Rng rng(static_cast<std::uint64_t>(seed));
    int failures = 0;
    for (int i = 1; i <= frames; ++i) {
        serve::RequestFrame request;
        request.frame_id = static_cast<std::uint64_t>(i);
        request.image.resize(kSampleSize);
        for (float& v : request.image) v = static_cast<float>(rng.uniform());
        const std::string wire = serve::encode_request(request);
        if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(wire.size())) {
            std::perror("send");
            ::close(fd);
            return 1;
        }

        std::string received;
        char buf[256];
        while (received.size() < 24) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) {
                std::fprintf(stderr, "server closed the stream\n");
                ::close(fd);
                return 1;
            }
            received.append(buf, static_cast<std::size_t>(n));
        }
        serve::ResponseFrame response;
        if (!serve::decode_response(received.data() + 4, received.size() - 4,
                                    response)) {
            std::fprintf(stderr, "malformed response frame\n");
            ::close(fd);
            return 1;
        }
        std::printf("frame %llu: %s label=%d agreeing=%u functional=%u%s\n",
                    static_cast<unsigned long long>(response.frame_id),
                    status_name(response.status), response.label,
                    static_cast<unsigned>(response.agreeing),
                    static_cast<unsigned>(response.functional_modules),
                    response.degraded ? " (degraded)" : "");
        failures += response.status == serve::ResponseStatus::error;
    }
    ::close(fd);
    return failures == 0 ? 0 : 1;
} catch (const mvreju::util::ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
}
