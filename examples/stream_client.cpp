// Sample client for the fleet serving layer: opens one perception stream
// to a `resilient_service --serve-streams` (or any serve::Server), sends
// seeded random frames over the length-prefixed protocol, and prints each
// response — frame id, vote outcome, label, agreeing and functional module
// counts, and whether the server degraded the frame under load.
//
//   ./build/examples/stream_client
//       [--host <ip>]     server address   (default 127.0.0.1)
//       [--port <p>]      server port      (required)
//       [--frames <n>]    frames to send   (default 10)
//       [--seed <s>]      frame contents   (default 1)
//       [--trace]         request the server-side stage breakdown annex
//                         (version-gated flags byte) and print it per frame

#include <cstdio>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/serve/protocol.hpp"
#include "mvreju/serve/trace.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/rng.hpp"

using namespace mvreju;

namespace {

const char* status_name(serve::ResponseStatus status) {
    switch (status) {
        case serve::ResponseStatus::decided: return "decided";
        case serve::ResponseStatus::skipped: return "skipped";
        case serve::ResponseStatus::no_output: return "no_output";
        case serve::ResponseStatus::shed: return "shed";
        case serve::ResponseStatus::error: return "error";
    }
    return "?";
}

}  // namespace

int main(int argc, char** argv) try {
    const util::Args args(argc, argv);
    const std::string host = args.host();
    const int port = args.port(0);
    const int frames = args.get_int("frames", 10, 1, 1'000'000);
    const int seed = args.get_int("seed", 1, 0, 1 << 30);
    const bool want_trace = args.has("trace");
    if (port == 0) {
        std::fprintf(stderr, "usage: stream_client --port <p> [--host <ip>] "
                             "[--frames <n>] [--seed <s>] [--trace]\n");
        return 2;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("socket");
        return 1;
    }
    timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        std::perror("connect");
        ::close(fd);
        return 1;
    }

    // The server's model geometry (channels x side x side) is fixed by
    // serve::ModelSetConfig; a frame of any other size is a protocol error.
    constexpr std::size_t kSampleSize = 3 * 16 * 16;
    util::Rng rng(static_cast<std::uint64_t>(seed));
    int failures = 0;
    for (int i = 1; i <= frames; ++i) {
        serve::RequestFrame request;
        request.frame_id = static_cast<std::uint64_t>(i);
        request.want_trace = want_trace;
        request.image.resize(kSampleSize);
        for (float& v : request.image) v = static_cast<float>(rng.uniform());
        const std::string wire = serve::encode_request(request);
        if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(wire.size())) {
            std::perror("send");
            ::close(fd);
            return 1;
        }

        // Length-prefix-aware read: the response payload is 20 bytes, or 48
        // with the requested stage annex — read the prefix first, then
        // exactly the advertised payload.
        std::string received;
        char buf[256];
        auto read_until = [&](std::size_t need) {
            while (received.size() < need) {
                const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
                if (n <= 0) return false;
                received.append(buf, static_cast<std::size_t>(n));
            }
            return true;
        };
        if (!read_until(4)) {
            std::fprintf(stderr, "server closed the stream\n");
            ::close(fd);
            return 1;
        }
        const auto* p = reinterpret_cast<const unsigned char*>(received.data());
        const std::uint32_t payload = static_cast<std::uint32_t>(p[0]) |
                                      (static_cast<std::uint32_t>(p[1]) << 8) |
                                      (static_cast<std::uint32_t>(p[2]) << 16) |
                                      (static_cast<std::uint32_t>(p[3]) << 24);
        if (payload > 1024 || !read_until(4 + payload)) {
            std::fprintf(stderr, "server closed the stream\n");
            ::close(fd);
            return 1;
        }
        serve::ResponseFrame response;
        if (!serve::decode_response(received.data() + 4, payload, response)) {
            std::fprintf(stderr, "malformed response frame\n");
            ::close(fd);
            return 1;
        }
        std::printf("frame %llu: %s label=%d agreeing=%u functional=%u%s\n",
                    static_cast<unsigned long long>(response.frame_id),
                    status_name(response.status), response.label,
                    static_cast<unsigned>(response.agreeing),
                    static_cast<unsigned>(response.functional_modules),
                    response.degraded ? " (degraded)" : "");
        if (response.has_trace) {
            std::printf("  stages:");
            for (std::size_t s = 0; s < serve::kStageCount; ++s)
                std::printf(" %s=%uus",
                            serve::stage_name(static_cast<serve::Stage>(s)),
                            static_cast<unsigned>(response.stage_us[s]));
            std::printf("\n");
        }
        failures += response.status == serve::ResponseStatus::error;
    }
    ::close(fd);
    return failures == 0 ? 0 : 1;
} catch (const mvreju::util::ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
}
