// Traffic-sign monitor: a continuous classification stream processed by the
// three-version system while the Section VII fault process (compromises,
// crashes, reactive + time-triggered proactive rejuvenation) runs
// underneath. Prints a per-5-second health/accuracy timeline, then compares
// end-to-end output reliability with and without proactive rejuvenation.
//
//   ./build/examples/traffic_sign_monitor [--seconds 120]
//       [--serve <port>]    live /metrics and /healthz while streaming
//       [--flight <dir>]    flight-recorder postmortem dumps into <dir>
//       [--metrics <file>] [--trace <file>]

#include <cstdio>

#include "mvreju/core/system.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"

using namespace mvreju;

namespace {

struct StreamResult {
    double accuracy = 0.0;
    double skip_rate = 0.0;
};

/// Push the health engine's view of the module pool to the live /healthz
/// endpoint (no-op unless --serve started the exporter).
void publish_health(const core::HealthEngine& health) {
    obs::Exporter& exporter = obs::Exporter::global();
    if (!exporter.running()) return;
    obs::HealthReport report;
    for (int m = 0; m < health.module_count(); ++m) {
        switch (health.state(m)) {
            case core::ModuleState::healthy:
                ++report.healthy;
                report.module_states.emplace_back("healthy");
                break;
            case core::ModuleState::compromised:
                ++report.compromised;
                report.module_states.emplace_back("compromised");
                break;
            case core::ModuleState::nonfunctional:
                ++report.nonfunctional;
                report.module_states.emplace_back("nonfunctional");
                break;
            case core::ModuleState::rejuvenating_proactive:
                ++report.rejuvenating;
                report.module_states.emplace_back("rejuvenating");
                break;
        }
    }
    if (health.last_rejuvenation_time() >= 0.0)
        report.last_rejuvenation_age_s = health.now() - health.last_rejuvenation_time();
    exporter.set_health(report);
}

StreamResult run_stream(const std::vector<ml::Sequential>& healthy,
                        const std::vector<ml::Sequential>& compromised,
                        const ml::Dataset& test, double seconds, bool rejuvenation,
                        bool verbose) {
    std::vector<core::VersionSpec<ml::Tensor, int>> specs;
    for (std::size_t m = 0; m < healthy.size(); ++m) {
        core::VersionSpec<ml::Tensor, int> spec;
        spec.healthy = [model = &healthy[m]](const ml::Tensor& x) {
            return model->predict(x);
        };
        spec.compromised = [model = &compromised[m]](const ml::Tensor& x) {
            return model->predict(x);
        };
        specs.push_back(std::move(spec));
    }
    core::HealthEngineConfig health_cfg;  // compressed Section VII-A time scale
    health_cfg.timing.mttc = 8.0;
    health_cfg.timing.mttf = 16.0;
    health_cfg.timing.rejuvenation_interval = 3.0;
    health_cfg.proactive = rejuvenation;
    health_cfg.policy = core::VictimPolicy::two_thirds_compromised;
    health_cfg.seed = 2024;
    core::MultiVersionSystem<ml::Tensor, int> system(std::move(specs),
                                                     core::Voter<int>{},
                                                     core::HealthEngine{health_cfg});

    const double frame_dt = 0.1;  // 10 classifications per second
    std::size_t decided = 0;
    std::size_t correct = 0;
    std::size_t skipped = 0;
    std::size_t frames = 0;
    std::size_t window_correct = 0;
    std::size_t window_total = 0;

    for (double t = 0.0; t < seconds; t += frame_dt) {
        const std::size_t i = frames % test.size();
        const auto frame = system.process(t, test.images[i]);
        publish_health(system.health());
        ++frames;
        ++window_total;
        if (frame.vote.decided()) {
            ++decided;
            const bool ok = *frame.vote.value == test.labels[i];
            correct += ok;
            window_correct += ok;
        } else {
            ++skipped;
        }
        if (verbose && frames % 50 == 0) {  // every 5 simulated seconds
            const auto counts = system.health().counts();
            std::printf("t=%5.1fs  H=%d C=%d N=%d  window accuracy %.2f\n", t,
                        counts.healthy, counts.compromised, counts.nonfunctional,
                        window_total ? static_cast<double>(window_correct) / window_total
                                     : 0.0);
            window_correct = window_total = 0;
        }
    }

    StreamResult result;
    result.accuracy = decided ? static_cast<double>(correct) / decided : 0.0;
    result.skip_rate = static_cast<double>(skipped) / frames;
    if (verbose) {
        const auto& stats = system.health().stats();
        std::printf("events: %zu compromises, %zu crashes, %zu reactive and %zu "
                    "proactive rejuvenations\n",
                    stats.compromises, stats.failures, stats.reactive_rejuvenations,
                    stats.proactive_rejuvenations);
    }
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    obs::Session session(args);
    const double seconds = args.get("seconds", 120.0);
    if (session.serving())
        std::printf("serving /metrics /healthz /record on 127.0.0.1:%d\n",
                    obs::Exporter::global().port());

    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 1600;
    data_cfg.test_count = 320;
    const auto dataset = data::make_traffic_signs(data_cfg);

    std::printf("training three diverse classifiers (~30 s)...\n");
    std::vector<ml::Sequential> healthy;
    healthy.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));
    healthy.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 39));
    healthy.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 40));
    for (auto& model : healthy) {
        ml::TrainConfig tc;
        tc.epochs = 6;
        tc.learning_rate = 0.025f;
        tc.lr_decay = 0.9f;
        model.train(dataset.train, tc);
    }
    std::vector<ml::Sequential> compromised;
    for (std::size_t m = 0; m < healthy.size(); ++m) {
        ml::Sequential copy = healthy[m];
        (void)fi::random_weight_inj(copy, 0, -10.0f, 30.0f, 200 + m);
        compromised.push_back(std::move(copy));
    }

    std::printf("\n--- %.0f s stream WITH time-triggered rejuvenation ---\n", seconds);
    const auto with = run_stream(healthy, compromised, dataset.test, seconds, true, true);
    std::printf("\n--- %.0f s stream WITHOUT proactive rejuvenation ---\n", seconds);
    const auto without =
        run_stream(healthy, compromised, dataset.test, seconds, false, true);

    std::printf("\nsummary: accuracy of decided outputs %.3f (w/) vs %.3f (w/o); "
                "skip rate %.1f%% vs %.1f%%\n",
                with.accuracy, without.accuracy, 100.0 * with.skip_rate,
                100.0 * without.skip_rate);
    return 0;
}
