// Resilient inference service: the threaded active-replication runtime.
// Three classifier versions run on their own worker threads behind the
// trusted voter with a per-frame response deadline. We then attack the
// replicas one by one -- corrupt a weight, wedge a worker -- and rejuvenate
// them back to health while the service keeps answering.
//
//   ./build/examples/resilient_service

#include <chrono>
#include <cstdio>
#include <thread>

#include "mvreju/core/runtime.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"

using namespace mvreju;
using namespace std::chrono_literals;

namespace {

/// Serve `count` classifications and report the outcome mix.
void serve(core::RuntimeSystem<ml::Tensor, int>& service, const ml::Dataset& test,
           int count, const char* label) {
    int decided = 0;
    int correct = 0;
    int skipped = 0;
    int silent = 0;
    for (int i = 0; i < count; ++i) {
        const std::size_t k = static_cast<std::size_t>(i) % test.size();
        const auto vote = service.process(test.images[k]);
        switch (vote.kind) {
            case core::VoteKind::decided:
                ++decided;
                correct += (*vote.value == test.labels[k]);
                break;
            case core::VoteKind::skipped: ++skipped; break;
            case core::VoteKind::no_output: ++silent; break;
        }
    }
    std::printf("%-34s %3d decided (%.2f correct), %d skipped, %d silent\n", label,
                decided, decided ? static_cast<double>(correct) / decided : 0.0,
                skipped, silent);
}

}  // namespace

int main() {
    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 1600;
    data_cfg.test_count = 200;
    const auto dataset = data::make_traffic_signs(data_cfg);

    std::printf("training three diverse classifiers (~20 s)...\n");
    std::vector<ml::Sequential> models;
    models.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 39));
    models.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 40));
    for (auto& model : models) {
        ml::TrainConfig tc;
        tc.epochs = 8;
        tc.learning_rate = 0.025f;
        tc.lr_decay = 0.9f;
        model.train(dataset.train, tc);
    }

    // Module behaviours capture pointers into the pristine `models` vector
    // ("safe storage"): inference is stateless and thread-safe on a shared
    // const model, so the worker threads need no private copies and
    // rejuvenation just points a replica back at pristine weights.
    auto version_fn = [](const ml::Sequential* model) {
        return [model](const ml::Tensor& x) { return model->predict(x); };
    };

    core::RuntimeSystem<ml::Tensor, int>::Options options;
    options.deadline = 100ms;
    core::RuntimeSystem<ml::Tensor, int> service(
        {version_fn(&models[0]), version_fn(&models[1]), version_fn(&models[2])},
        core::Voter<int>{}, options);

    serve(service, dataset.test, 200, "all replicas healthy:");

    // Attack 1: corrupt a weight of replica 0 (it keeps answering, wrongly).
    // `corrupted` outlives the swap below, as pointer captures require.
    ml::Sequential corrupted = models[0];
    (void)fi::random_weight_inj(corrupted, 0, -10.0f, 30.0f, 7);
    service.rejuvenate(0, version_fn(&corrupted));  // "attack" swap
    serve(service, dataset.test, 200, "replica 0 compromised:");

    // Attack 2: wedge replica 1 entirely (never answers again).
    service.rejuvenate(1, [](const ml::Tensor& x) -> int {
        std::this_thread::sleep_for(3600s);
        return static_cast<int>(x.size());  // unreachable
    });
    serve(service, dataset.test, 100, "replica 1 wedged as well:");
    std::printf("  replica 1 deadline misses so far: %zu\n", service.timeouts(1));

    // Rejuvenation: reload both from pristine storage.
    service.rejuvenate(0, version_fn(&models[0]));
    service.rejuvenate(1, version_fn(&models[1]));
    serve(service, dataset.test, 200, "after rejuvenation:");

    std::printf("total rejuvenations performed: %zu\n", service.rejuvenations());
    return 0;
}
