// Resilient inference service: the threaded active-replication runtime.
// Three classifier versions run on their own worker threads behind the
// trusted voter with a per-frame response deadline. We then attack the
// replicas one by one -- corrupt a weight, wedge a worker -- and rejuvenate
// them back to health while the service keeps answering.
//
// This is also the flagship *live* observability target: with --serve the
// embedded exporter makes the service scrapeable while it runs, and with
// --flight every deadline miss or vote disagreement leaves a postmortem
// dump behind.
//
//   ./build/examples/resilient_service
//       [--serve <port>]       live /metrics, /healthz, /record endpoint
//       [--flight <dir>]       arm the flight recorder, dumps into <dir>
//       [--metrics <file>]     metrics blob on exit
//       [--trace <file>]       Perfetto trace on exit
//       [--hold-seconds <s>]   keep serving (and scrapeable) for <s> seconds
//                              after the scripted phases, for live scraping
//       [--train-count <n>] [--test-count <n>] [--epochs <n>] [--count <n>]
//                              dataset / training / per-phase request knobs
//                              (defaults reproduce the original demo; the CI
//                              smoke run shrinks them)
//
// Fleet mode — a thin wrapper over serve::Server, replacing the scripted
// single-loop demo with a multi-stream socket front end (see DESIGN.md §10):
//
//   ./build/examples/resilient_service --serve-streams
//       [--host <ip>]            bind address     (default 127.0.0.1)
//       [--port <p>]             TCP port, 0 = ephemeral, printed on stdout
//       [--max-streams <n>]      admission cap    (default 1024)
//       [--batch-max <n>]        cross-stream batch size cap (default 64)
//       [--batch-delay-us <us>]  batching window  (default 2000)
//       [--hold-seconds <s>]     serve for <s> seconds, 0 = until killed
//
// Combine with --serve <port> to watch the fleet live: the server pushes
// its per-stream health aggregate into /healthz and the FleetStats
// telemetry document into /fleet (stage percentiles, worst streams, breach
// attribution — tools/fleet_top renders it as a dashboard).
//
// Drive it with examples/stream_client (add --trace to see each frame's
// server-side stage breakdown).
//
// Scenario replay mode — feed a sensor-failure scenario (built-in name or
// DSL file, see src/av/scenario.hpp) through the closed-loop AV simulation
// with the trust monitor + degraded-mode policy ladder engaged:
//
//   ./build/examples/resilient_service --scenario <name|file>
//       [--seed <n>]             replay seed         (default 1)
//       [--no-policy]            disable the policy ladder (baseline run)
//       [--train-count <n>] [--epochs <n>] [--cache <dir>]
//                                detector training knobs (CI shrinks them)
//       [--hold-seconds <s>]     keep replaying (fresh seeds) so /metrics
//                                stays live for scraping
//
// Combine with --serve to watch av.trust.* / av.degraded.* live and with
// --flight to capture sensor_fault / degraded_mode events in a postmortem.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "mvreju/av/simulation.hpp"
#include "mvreju/core/runtime.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/serve/server.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/util/args.hpp"

using namespace mvreju;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

/// What we *know* about each replica from the attacks we scripted; the
/// /healthz document mirrors this (the runtime itself only sees deadline
/// misses, it cannot distinguish a compromised replica from a healthy one).
struct ServiceHealth {
    std::vector<std::string> states;  // "healthy" | "compromised" | "nonfunctional"
    Clock::time_point started = Clock::now();
    Clock::time_point last_rejuvenation{};  // epoch: none yet

    explicit ServiceHealth(std::size_t replicas) : states(replicas, "healthy") {}

    void publish() const {
        obs::Exporter& exporter = obs::Exporter::global();
        if (!exporter.running()) return;
        obs::HealthReport report;
        report.module_states = states;
        for (const std::string& s : states) {
            if (s == "healthy")
                ++report.healthy;
            else if (s == "compromised")
                ++report.compromised;
            else if (s == "rejuvenating")
                ++report.rejuvenating;
            else
                ++report.nonfunctional;
        }
        if (last_rejuvenation != Clock::time_point{})
            report.last_rejuvenation_age_s =
                std::chrono::duration<double>(Clock::now() - last_rejuvenation).count();
        exporter.set_health(report);
    }
};

/// Serve `count` classifications and report the outcome mix.
void serve_phase(core::RuntimeSystem<ml::Tensor, int>& service, const ml::Dataset& test,
           int count, const char* label, const ServiceHealth& health) {
    int decided = 0;
    int correct = 0;
    int skipped = 0;
    int silent = 0;
    for (int i = 0; i < count; ++i) {
        const std::size_t k = static_cast<std::size_t>(i) % test.size();
        const auto vote = service.process(test.images[k]);
        switch (vote.kind) {
            case core::VoteKind::decided:
                ++decided;
                correct += (*vote.value == test.labels[k]);
                break;
            case core::VoteKind::skipped: ++skipped; break;
            case core::VoteKind::no_output: ++silent; break;
        }
        health.publish();  // /healthz freshness: at most one frame old
    }
    std::printf("%-34s %3d decided (%.2f correct), %d skipped, %d silent\n", label,
                decided, decided ? static_cast<double>(correct) / decided : 0.0,
                skipped, silent);
}

/// --serve-streams: host a fleet of concurrent perception streams over the
/// length-prefixed frame protocol, batching inference across streams. The
/// whole single-loop demo above collapses into configuring serve::Server.
int serve_streams(const util::Args& args) {
    serve::Server::Options options;
    options.host = args.host();
    options.port = args.port(0);
    options.max_streams = args.max_streams(1024);
    options.batch_max = args.batch_max(64);
    options.batch_delay_us =
        static_cast<std::uint64_t>(args.batch_delay_us(2000));
    const double hold_seconds = args.get("hold-seconds", 0.0);

    serve::ModelSetConfig set_config;
    set_config.backend = args.backend();
    set_config.int8_replica = args.has("int8-replica");
    const serve::ModelSet set = serve::make_model_set(set_config);
    serve::Server server(set, options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: cannot start server: %s\n", error.c_str());
        return 1;
    }
    std::printf("serving perception streams on %s:%d "
                "(max-streams %d, batch-max %d, batch-delay %llu us, "
                "backend %s%s)\n",
                options.host.c_str(), server.port(), options.max_streams,
                options.batch_max,
                static_cast<unsigned long long>(options.batch_delay_us),
                set.backend_name.c_str(),
                set_config.int8_replica ? " + int8 replica" : "");
    if (obs::Exporter::global().running())
        std::printf("fleet telemetry on 127.0.0.1:%d/fleet "
                    "(tools/fleet_top --port %d)\n",
                    obs::Exporter::global().port(),
                    obs::Exporter::global().port());
    std::fflush(stdout);

    const auto report = [&server] {
        const serve::Server::Stats stats = server.stats();
        std::printf("streams=%llu frames=%llu decided=%llu skipped=%llu "
                    "no_output=%llu degraded=%llu dropped=%llu "
                    "slo_breaches=%llu protocol_errors=%llu refusals=%llu\n",
                    static_cast<unsigned long long>(stats.active_streams),
                    static_cast<unsigned long long>(stats.frames),
                    static_cast<unsigned long long>(stats.decided),
                    static_cast<unsigned long long>(stats.skipped),
                    static_cast<unsigned long long>(stats.no_output),
                    static_cast<unsigned long long>(stats.degraded),
                    static_cast<unsigned long long>(stats.dropped),
                    static_cast<unsigned long long>(stats.slo_breaches),
                    static_cast<unsigned long long>(stats.protocol_errors),
                    static_cast<unsigned long long>(stats.admission_refusals));
        std::fflush(stdout);
    };

    const auto started = Clock::now();
    while (hold_seconds <= 0.0 ||
           std::chrono::duration<double>(Clock::now() - started).count() <
               hold_seconds) {
        std::this_thread::sleep_for(1s);
        report();
    }
    server.stop();
    report();
    return 0;
}

/// --scenario: replay a sensor-failure scenario through the closed-loop AV
/// simulation with the trust monitor + degraded-mode policy engaged. The
/// av.trust.* / av.degraded.* gauges update every frame, and sensor_fault /
/// degraded_mode events land in the flight recorder — so with --serve and
/// --flight this is the live smoke target for the degraded-mode machinery.
int replay_scenario(const util::Args& args) {
    const std::string spec = args.get("scenario", std::string());
    av::Scenario scenario;
    try {
        scenario = av::builtin_scenario(spec);
    } catch (const std::invalid_argument&) {
        scenario = av::parse_scenario_file(spec);
    }
    std::printf("scenario '%s': %zu sensor faults, %zu weight faults\n",
                scenario.name.c_str(), scenario.sensor_faults.size(),
                scenario.weight_faults.size());

    av::SensorConfig sensor;
    av::DetectorTrainOptions opts;
    opts.train_samples = static_cast<std::size_t>(args.get("train-count", 4000));
    opts.eval_samples = opts.train_samples / 5;
    opts.epochs = args.get("epochs", 8);
    opts.cache_dir = args.get("cache", std::string(".mvreju_cache"));
    std::printf("preparing detectors (%zu samples, %d epochs)...\n",
                opts.train_samples, opts.epochs);
    const av::DetectorSet detectors = av::prepare_detectors(sensor, opts);

    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);
    const av::Route& route = towns[refs[0].town].routes[refs[0].route];

    av::ScenarioConfig cfg;
    cfg.sensor = sensor;
    cfg.scenario = &scenario;
    cfg.trust_policy = !args.has("no-policy");
    cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1));

    const auto replay_once = [&](std::uint64_t seed) {
        cfg.seed = seed;
        const av::RunMetrics m = av::run_scenario(route, detectors, cfg);
        std::printf("seed %llu: %d frames, %d decided, %d unsafe, %d flagged, "
                    "%d stop, %d reduced, %d mode changes, min trust %.3f%s\n",
                    static_cast<unsigned long long>(seed), m.total_frames,
                    m.decided_frames, m.unsafe_decided_frames,
                    m.sensor_fault_frames, m.stop_frames, m.reduced_frames,
                    m.degraded_transitions, m.min_trust,
                    m.collided() ? " [collision]" : "");
        std::fflush(stdout);
    };
    replay_once(cfg.seed);

    // --hold-seconds: keep replaying under fresh seeds so the exporter has
    // live av.trust.* / av.degraded.* values for as long as a scraper needs.
    const double hold_seconds = args.get("hold-seconds", 0.0);
    if (hold_seconds > 0.0) {
        if (obs::Exporter::global().running())
            std::printf("replaying for %.1f s; /metrics on 127.0.0.1:%d\n",
                        hold_seconds, obs::Exporter::global().port());
        std::fflush(stdout);
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(hold_seconds));
        std::uint64_t seed = cfg.seed;
        while (Clock::now() < deadline) replay_once(++seed);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::Args args(argc, argv);
    obs::Session session(args);
    if (args.has("serve-streams")) return serve_streams(args);
    if (args.has("scenario")) return replay_scenario(args);

    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = args.get("train-count", 1600);
    data_cfg.test_count = args.get("test-count", 200);
    const auto dataset = data::make_traffic_signs(data_cfg);
    const int epochs = args.get("epochs", 8);
    const int count = args.get("count", 200);
    const double hold_seconds = args.get("hold-seconds", 0.0);

    std::printf("training three diverse classifiers...\n");
    std::vector<ml::Sequential> models;
    models.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 39));
    models.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 40));
    for (auto& model : models) {
        ml::TrainConfig tc;
        tc.epochs = epochs;
        tc.learning_rate = 0.025f;
        tc.lr_decay = 0.9f;
        model.train(dataset.train, tc);
    }

    // Module behaviours capture pointers into the pristine `models` vector
    // ("safe storage"): inference is stateless and thread-safe on a shared
    // const model, so the worker threads need no private copies and
    // rejuvenation just points a replica back at pristine weights.
    auto version_fn = [](const ml::Sequential* model) {
        return [model](const ml::Tensor& x) { return model->predict(x); };
    };

    core::RuntimeSystem<ml::Tensor, int>::Options options;
    options.deadline = 100ms;
    core::RuntimeSystem<ml::Tensor, int> service(
        {version_fn(&models[0]), version_fn(&models[1]), version_fn(&models[2])},
        core::Voter<int>{}, options);

    ServiceHealth health(3);
    if (session.serving())
        std::printf("serving /metrics /healthz /record on 127.0.0.1:%d\n",
                    obs::Exporter::global().port());
    health.publish();

    serve_phase(service, dataset.test, count, "all replicas healthy:", health);

    // Attack 1: corrupt a weight of replica 0 (it keeps answering, wrongly).
    // `corrupted` outlives the swap below, as pointer captures require.
    ml::Sequential corrupted = models[0];
    (void)fi::random_weight_inj(corrupted, 0, -10.0f, 30.0f, 7);
    service.rejuvenate(0, version_fn(&corrupted));  // "attack" swap
    health.states[0] = "compromised";
    serve_phase(service, dataset.test, count, "replica 0 compromised:", health);

    // Attack 2: wedge replica 1 entirely (never answers again).
    service.rejuvenate(1, [](const ml::Tensor& x) -> int {
        std::this_thread::sleep_for(3600s);
        return static_cast<int>(x.size());  // unreachable
    });
    health.states[1] = "nonfunctional";
    serve_phase(service, dataset.test, count / 2, "replica 1 wedged as well:", health);
    std::printf("  replica 1 deadline misses so far: %zu\n", service.timeouts(1));

    // Rejuvenation: reload both from pristine storage. Replica 0 is repaired
    // reactively (we know it is compromised); replica 1 proactively (from the
    // runtime's view it merely stopped answering).
    service.rejuvenate(0, version_fn(&models[0]), core::RejuvenationCause::reactive);
    service.rejuvenate(1, version_fn(&models[1]), core::RejuvenationCause::proactive);
    health.states[0] = health.states[1] = "healthy";
    health.last_rejuvenation = Clock::now();
    serve_phase(service, dataset.test, count, "after rejuvenation:", health);

    std::printf("total rejuvenations performed: %zu\n", service.rejuvenations());

    // --hold-seconds: keep the service alive and answering so an external
    // scraper (the CI smoke test, or a human with curl) can watch it live.
    if (hold_seconds > 0.0) {
        std::printf("holding for %.1f s...\n", hold_seconds);
        const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                                 std::chrono::duration<double>(hold_seconds));
        std::size_t i = 0;
        while (Clock::now() < deadline) {
            (void)service.process(dataset.test.images[i++ % dataset.test.size()]);
            health.publish();
            std::this_thread::sleep_for(50ms);
        }
    }
    return 0;
} catch (const mvreju::util::ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
}
