// Quickstart: build a three-version ML system with a trusted voter, break
// one version with a fault injection, and watch the majority mask it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "mvreju/core/system.hpp"
#include "mvreju/data/image_io.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"

using namespace mvreju;

int main() {
    // 1. A small traffic-sign dataset (procedural GTSRB stand-in).
    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 2400;
    data_cfg.test_count = 320;
    const auto dataset = data::make_traffic_signs(data_cfg);

    // Drop a few rendered samples next to the binary for visual inspection.
    for (int i = 0; i < 3; ++i) {
        const std::string file = "sign_sample_" + std::to_string(i) + ".ppm";
        data::write_ppm(dataset.test.images[static_cast<std::size_t>(i)], file);
        std::printf("wrote %s (%s)\n", file.c_str(),
                    data::sign_class_name(dataset.test.labels[static_cast<std::size_t>(i)])
                        .c_str());
    }

    // 2. Three diverse versions: different architectures, same task.
    std::printf("training three diverse classifiers (~30 s)...\n");
    std::vector<ml::Sequential> versions;
    versions.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));
    versions.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 39));
    versions.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 40));
    for (auto& model : versions) {
        ml::TrainConfig tc;
        tc.epochs = 10;
        tc.learning_rate = 0.025f;
        tc.lr_decay = 0.88f;
        model.train(dataset.train, tc);
        std::printf("  %-12s accuracy %.3f\n", model.name().c_str(),
                    model.evaluate(dataset.test).accuracy);
    }

    // 3. Compromise one version: a single corrupted weight, PyTorchFI-style.
    std::vector<ml::Sequential> compromised;
    for (std::size_t m = 0; m < versions.size(); ++m) {
        ml::Sequential copy = versions[m];
        (void)fi::random_weight_inj(copy, 0, -10.0f, 30.0f, 100 + m);
        compromised.push_back(std::move(copy));
    }

    // 4. Wire the multi-version system: versions + voter + health process.
    // Inference is stateless and thread-safe on a shared const model, so the
    // behaviours capture pointers into the vectors above instead of cloning
    // every model into its closure.
    std::vector<core::VersionSpec<ml::Tensor, int>> specs;
    for (std::size_t m = 0; m < versions.size(); ++m) {
        core::VersionSpec<ml::Tensor, int> spec;
        spec.healthy = [model = &versions[m]](const ml::Tensor& x) {
            return model->predict(x);
        };
        spec.compromised = [model = &compromised[m]](const ml::Tensor& x) {
            return model->predict(x);
        };
        specs.push_back(std::move(spec));
    }
    core::HealthEngineConfig health_cfg;  // Table IV defaults, frozen clocks:
    health_cfg.timing.mttc = 1e12;        // we drive the health by hand below
    core::MultiVersionSystem<ml::Tensor, int> system(std::move(specs),
                                                     core::Voter<int>{},
                                                     core::HealthEngine{health_cfg});

    // 5. Classify with a healthy majority, then compromise a module.
    auto accuracy = [&](double at_time) {
        std::size_t correct = 0;
        std::size_t decided = 0;
        for (std::size_t i = 0; i < dataset.test.size(); ++i) {
            const auto frame = system.process(at_time, dataset.test.images[i]);
            if (!frame.vote.decided()) continue;
            ++decided;
            if (*frame.vote.value == dataset.test.labels[i]) ++correct;
        }
        std::printf("  decided outputs: %zu/%zu (%.1f%% safely skipped), "
                    "accuracy of decided outputs %.3f\n",
                    decided, dataset.test.size(),
                    100.0 * (dataset.test.size() - decided) / dataset.test.size(),
                    decided ? static_cast<double>(correct) / decided : 0.0);
    };

    std::printf("all three versions healthy:\n");
    accuracy(1.0);

    std::printf("version 0 compromised (weight fault) -- the majority masks it:\n");
    system.health().force_compromise(0);
    accuracy(2.0);

    std::printf("versions 0 and 1 compromised -- divergence now causes safe skips:\n");
    system.health().force_compromise(1);
    accuracy(3.0);
    return 0;
}
