// Autonomous-drive demo: one closed-loop run of the Section VII case study
// on a chosen route, with an ASCII map of the route and a post-drive report
// (collisions, voter outcomes, perception throughput, health events).
//
//   ./build/examples/av_drive [--route 1..8] [--no-rejuvenation] [--seed N]
//                             [--trace FILE] [--metrics FILE]
//
// --trace writes a Chrome trace-event JSON of the whole drive (one av.frame
// span per frame, av.perceive_vote inside it) — load it in
// https://ui.perfetto.dev. --metrics writes the merged metrics snapshot.

#include <cstdio>

#include "mvreju/av/simulation.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"

using namespace mvreju;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    obs::Session session(args);
    const int route_number = args.get("route", 1);
    const bool rejuvenation = !args.has("no-rejuvenation");

    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);
    if (route_number < 1 || route_number > static_cast<int>(refs.size())) {
        std::printf("route must be 1..%zu\n", refs.size());
        return 1;
    }
    const auto& ref = refs[static_cast<std::size_t>(route_number - 1)];
    const auto& route = towns[ref.town].routes[ref.route];

    std::printf("preparing detectors (cached after the first run)...\n");
    av::SensorConfig sensor;
    av::DetectorTrainOptions opts;
    opts.cache_dir = ".mvreju_cache";
    const auto detectors = av::prepare_detectors(sensor, opts);

    std::printf("route %s (%0.f m), rejuvenation %s\n", route.name().c_str(),
                route.length(), rejuvenation ? "ON (3 s interval)" : "OFF");
    std::fputs(av::render_ascii(route).c_str(), stdout);

    av::ScenarioConfig cfg;
    cfg.rejuvenation = rejuvenation;
    cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1));

    const av::RunMetrics m = av::run_scenario(route, detectors, cfg);

    std::printf("\n%28s: %d (%.1f s at 20 FPS)\n", "total frames", m.total_frames,
                m.total_frames * cfg.dt);
    std::printf("%28s: %.1f%%\n", "route completed", 100.0 * m.route_completed);
    std::printf("%28s: %d (%.2f%% of frames)\n", "collision frames", m.collision_frames,
                100.0 * m.collision_rate());
    std::printf("%28s: %s\n", "first collision",
                m.collided() ? std::to_string(m.first_collision_frame).c_str() : "none");
    std::printf("%28s: %d decided, %d skipped, %d without any proposal\n",
                "voter outcomes", m.decided_frames, m.skipped_frames,
                m.no_output_frames);
    std::printf("%28s: %zu model invocations, %.1f perception FPS\n", "perception",
                m.inferences, m.total_frames / m.perception_wall_seconds);
    std::printf("%28s: %zu compromises, %zu crashes, %zu reactive + %zu proactive "
                "rejuvenations\n",
                "health events", m.health_stats.compromises, m.health_stats.failures,
                m.health_stats.reactive_rejuvenations,
                m.health_stats.proactive_rejuvenations);
    std::printf("\nTry the same route with --no-rejuvenation to see the collision "
                "rate climb.\n");
    return 0;
}
