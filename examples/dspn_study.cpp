// DSPN study: build the paper's Fig. 3 model with the public dspn API,
// export it to Graphviz, inspect its tangible state space, solve it exactly,
// and sweep the rejuvenation interval -- everything an analyst would do in
// TimeNET, scripted in ~80 lines of C++.
//
//   ./build/examples/dspn_study [--modules 3] [--dot model.dot]
//                               [--trace FILE] [--metrics FILE]

#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/dot.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"

using namespace mvreju;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    obs::Session session(args);

    core::DspnConfig cfg;
    cfg.modules = args.get("modules", 3);
    const auto model = core::build_multiversion_dspn(cfg);

    const std::string dot_path = args.get("dot", std::string(""));
    if (!dot_path.empty()) {
        std::ofstream out(dot_path);
        out << dspn::to_dot(model.net);
        std::printf("wrote Graphviz model to %s (render: dot -Tpng %s)\n",
                    dot_path.c_str(), dot_path.c_str());
    }

    const dspn::ReachabilityGraph graph(model.net);
    std::printf("tangible state space: %zu markings\n", graph.state_count());

    const auto pi = dspn::dspn_steady_state(graph);
    std::printf("\nsteady-state distribution over (healthy, compromised, down)\n"
                "(several markings can share an aggregate state, e.g. a module "
                "crashed vs under proactive rejuvenation):\n");
    std::map<std::tuple<int, int, int>, double> aggregated;
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        const auto& marking = graph.marking(s);
        aggregated[{model.healthy(marking), model.compromised(marking),
                    model.nonfunctional(marking)}] += pi[s];
    }
    for (const auto& [state, probability] : aggregated) {
        if (probability < 1e-9) continue;
        std::printf("  (%d,%d,%d)  pi = %.6f\n", std::get<0>(state), std::get<1>(state),
                    std::get<2>(state), probability);
    }

    const auto params = reliability::paper_params();
    std::printf("\nE[R_sys] = %.6f with the paper's fitted constants\n",
                core::steady_state_reliability(model, graph, pi, params));

    std::printf("\nrejuvenation-interval sweep (the Fig. 4 (a) 3-version curve):\n");
    for (double interval : {30.0, 100.0, 300.0, 600.0, 1200.0}) {
        core::DspnConfig sweep = cfg;
        sweep.timing.rejuvenation_interval = interval;
        std::printf("  1/gamma = %6.0f s  ->  E[R] = %.6f\n", interval,
                    core::steady_state_reliability(sweep, params));
    }
    return 0;
}
