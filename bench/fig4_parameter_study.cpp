// Regenerates Fig. 4 of the paper: sensitivity of the expected steady-state
// reliability to (a) the rejuvenation interval, (b) the rejuvenation
// duration, (c) the mean time to compromise, (d) the error dependency alpha,
// (e) the healthy inaccuracy p, and (f) the compromised inaccuracy p'.
// Each panel prints one series per configuration: 1v/2v/3v, each with (R)
// and without (NR) proactive rejuvenation. Select one panel with --panel
// a..f; default prints all six.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/csv.hpp"
#include "mvreju/util/table.hpp"
#include "sweep_common.hpp"

namespace {

using namespace mvreju;

struct Panel {
    char id;
    std::string title;
    std::string x_label;
    std::vector<double> xs;
    // Applies the sweep value before evaluation.
    std::function<void(double, core::DspnConfig&, reliability::Params&)> apply;
};

void run_panel(const Panel& panel, const reliability::Params& base_params,
               const reliability::TimingParams& base_timing, util::CsvWriter* csv,
               dspn::SweepEngine& engine) {
    bench::print_header("Fig. 4 (" + std::string(1, panel.id) + "): " + panel.title);
    util::TextTable table({panel.x_label, "1v-NR", "1v-R", "2v-NR", "2v-R", "3v-NR",
                           "3v-R"});

    // Every (x, modules, proactive) cell is an independent DSPN solve; the
    // sweep engine fans the grid out over the task pool, reuses the tangible
    // reachability graph across cells that only differ in rates/delays, and
    // memoizes duplicate solves (NR columns never depend on the rejuvenation
    // parameters; reward-parameter panels reuse one solve per column).
    // Rewards are evaluated serially afterwards — they vary per cell even
    // when the underlying solve is shared.
    struct Cell {
        bool ok = false;
        double value = 0.0;
    };
    constexpr std::size_t kConfigs = 6;  // 1v/2v/3v x NR/R
    std::vector<Cell> cells(panel.xs.size() * kConfigs);
    std::vector<std::vector<double>> grid(cells.size());
    std::vector<reliability::Params> cell_params(cells.size());
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        const double x = panel.xs[idx / kConfigs];
        const int n = 1 + static_cast<int>((idx % kConfigs) / 2);
        const bool proactive = (idx % 2) == 1;
        core::DspnConfig cfg;
        cfg.modules = n;
        cfg.proactive = proactive;
        cfg.timing = base_timing;
        reliability::Params params = base_params;
        panel.apply(x, cfg, params);
        cells[idx].ok = reliability::params_sane(params) &&
                        (n < 2 || reliability::within_two_version_boundary(params)) &&
                        (n < 3 || reliability::within_three_version_boundary(params));
        grid[idx] = bench::encode_config(cfg);
        cell_params[idx] = params;
    }
    const std::vector<dspn::SweepPoint> points = engine.run(grid);
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        if (!cells[idx].ok) continue;
        cells[idx].value = engine.expected_reward(
            points[idx], [&](const std::vector<double>& pv, const dspn::Marking& m) {
                return bench::marking_reliability(pv, m, cell_params[idx]);
            });
    }

    for (std::size_t xi = 0; xi < panel.xs.size(); ++xi) {
        const double x = panel.xs[xi];
        std::vector<std::string> row{util::fmt(x, 3)};
        for (std::size_t c = 0; c < kConfigs; ++c) {
            const Cell& cell = cells[xi * kConfigs + c];
            const int n = 1 + static_cast<int>(c / 2);
            const bool proactive = (c % 2) == 1;
            row.push_back(cell.ok ? util::fmt(cell.value, 6) : "n/a");
            if (csv && cell.ok)
                csv->add_row({std::string(1, panel.id), util::fmt(x, 6),
                              std::to_string(n) + (proactive ? "v-R" : "v-NR"),
                              util::fmt(cell.value, 9)});
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    mvreju::obs::Session session(args);
    const auto params = bench::params_from_args(args);
    const auto timing = bench::timing_from_args(args);
    const std::string which = args.get("panel", std::string(""));
    const std::string csv_path = args.get("csv", std::string(""));
    util::CsvWriter csv({"panel", "x", "configuration", "reliability"});

    // Sweep values come from bench::fig4_xs so this study and bench_sweep
    // (the engine benchmark) exercise exactly the same grid.
    const std::vector<Panel> panels = {
        {'a', "rejuvenation interval 1/gamma", "interval (s)", bench::fig4_xs('a'),
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.rejuvenation_interval = x;
         }},
        {'b', "rejuvenation duration 1/mu_r", "duration (s)", bench::fig4_xs('b'),
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.proactive_duration = x;
         }},
        {'c', "mean time to compromise 1/lambda_c", "MTTC (s)", bench::fig4_xs('c'),
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.mttc = x;
         }},
        {'d', "error probability dependency alpha", "alpha", bench::fig4_xs('d'),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.alpha = x; }},
        {'e', "healthy-state inaccuracy p", "p", bench::fig4_xs('e'),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.p = x; }},
        {'f', "compromised-state inaccuracy p'", "p'", bench::fig4_xs('f'),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.p_prime = x; }},
    };

    // One engine across all panels: the NR columns and the reward-parameter
    // panels (d-f) hit the same solved points repeatedly.
    dspn::SweepEngine engine(bench::multiversion_factory());
    for (const Panel& panel : panels) {
        if (!which.empty() && which[0] != panel.id) continue;
        run_panel(panel, params, timing, csv_path.empty() ? nullptr : &csv, engine);
    }
    if (!csv_path.empty()) {
        csv.write(csv_path);
        std::printf("wrote %zu data points to %s\n", csv.rows(), csv_path.c_str());
    }

    std::printf("Expected shapes (paper Fig. 4): shorter intervals help most for 1v/3v;\n"
                "duration has minimal effect; larger MTTC helps (non-monotone for 3v-NR);\n"
                "reliability falls with alpha, p and p'; 2v dominates 3v throughout.\n");
    return 0;
}
