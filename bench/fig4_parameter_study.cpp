// Regenerates Fig. 4 of the paper: sensitivity of the expected steady-state
// reliability to (a) the rejuvenation interval, (b) the rejuvenation
// duration, (c) the mean time to compromise, (d) the error dependency alpha,
// (e) the healthy inaccuracy p, and (f) the compromised inaccuracy p'.
// Each panel prints one series per configuration: 1v/2v/3v, each with (R)
// and without (NR) proactive rejuvenation. Select one panel with --panel
// a..f; default prints all six.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/csv.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/table.hpp"

namespace {

using namespace mvreju;

struct Panel {
    char id;
    std::string title;
    std::string x_label;
    std::vector<double> xs;
    // Applies the sweep value before evaluation.
    std::function<void(double, core::DspnConfig&, reliability::Params&)> apply;
};

std::vector<double> linspace(double lo, double hi, int n) {
    std::vector<double> out;
    for (int i = 0; i < n; ++i) out.push_back(lo + (hi - lo) * i / (n - 1));
    return out;
}

void run_panel(const Panel& panel, const reliability::Params& base_params,
               const reliability::TimingParams& base_timing,
               util::CsvWriter* csv) {
    bench::print_header("Fig. 4 (" + std::string(1, panel.id) + "): " + panel.title);
    util::TextTable table({panel.x_label, "1v-NR", "1v-R", "2v-NR", "2v-R", "3v-NR",
                           "3v-R"});

    // The sweep grid is embarrassingly parallel: every (x, modules,
    // proactive) cell is an independent DSPN solve. Evaluate the whole grid
    // on the task pool (cell writes only its own slot -> deterministic
    // output), then render the table and CSV serially.
    struct Cell {
        bool ok = false;
        double value = 0.0;
    };
    constexpr std::size_t kConfigs = 6;  // 1v/2v/3v x NR/R
    std::vector<Cell> cells(panel.xs.size() * kConfigs);
    util::parallel_for(cells.size(), [&](std::size_t idx) {
        const double x = panel.xs[idx / kConfigs];
        const int n = 1 + static_cast<int>((idx % kConfigs) / 2);
        const bool proactive = (idx % 2) == 1;
        core::DspnConfig cfg;
        cfg.modules = n;
        cfg.proactive = proactive;
        cfg.timing = base_timing;
        reliability::Params params = base_params;
        panel.apply(x, cfg, params);
        Cell cell;
        cell.ok = reliability::params_sane(params) &&
                  (n < 2 || reliability::within_two_version_boundary(params)) &&
                  (n < 3 || reliability::within_three_version_boundary(params));
        if (cell.ok) cell.value = core::steady_state_reliability(cfg, params);
        cells[idx] = cell;
    });

    for (std::size_t xi = 0; xi < panel.xs.size(); ++xi) {
        const double x = panel.xs[xi];
        std::vector<std::string> row{util::fmt(x, 3)};
        for (std::size_t c = 0; c < kConfigs; ++c) {
            const Cell& cell = cells[xi * kConfigs + c];
            const int n = 1 + static_cast<int>(c / 2);
            const bool proactive = (c % 2) == 1;
            row.push_back(cell.ok ? util::fmt(cell.value, 6) : "n/a");
            if (csv && cell.ok)
                csv->add_row({std::string(1, panel.id), util::fmt(x, 6),
                              std::to_string(n) + (proactive ? "v-R" : "v-NR"),
                              util::fmt(cell.value, 9)});
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    mvreju::obs::Session session(args);
    const auto params = bench::params_from_args(args);
    const auto timing = bench::timing_from_args(args);
    const std::string which = args.get("panel", std::string(""));
    const std::string csv_path = args.get("csv", std::string(""));
    util::CsvWriter csv({"panel", "x", "configuration", "reliability"});

    const std::vector<Panel> panels = {
        {'a', "rejuvenation interval 1/gamma", "interval (s)",
         {30, 60, 120, 180, 300, 420, 600, 900, 1200, 1800},
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.rejuvenation_interval = x;
         }},
        {'b', "rejuvenation duration 1/mu_r", "duration (s)",
         {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0},
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.proactive_duration = x;
         }},
        {'c', "mean time to compromise 1/lambda_c", "MTTC (s)",
         {100, 250, 500, 1000, 1523, 2500, 4000, 5500, 7000},
         [](double x, core::DspnConfig& cfg, reliability::Params&) {
             cfg.timing.mttc = x;
         }},
        {'d', "error probability dependency alpha", "alpha", linspace(0.1, 1.0, 10),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.alpha = x; }},
        {'e', "healthy-state inaccuracy p", "p", linspace(0.01, 0.23, 12),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.p = x; }},
        {'f', "compromised-state inaccuracy p'", "p'", linspace(0.1, 0.6, 11),
         [](double x, core::DspnConfig&, reliability::Params& p) { p.p_prime = x; }},
    };

    for (const Panel& panel : panels) {
        if (!which.empty() && which[0] != panel.id) continue;
        run_panel(panel, params, timing, csv_path.empty() ? nullptr : &csv);
    }
    if (!csv_path.empty()) {
        csv.write(csv_path);
        std::printf("wrote %zu data points to %s\n", csv.rows(), csv_path.c_str());
    }

    std::printf("Expected shapes (paper Fig. 4): shorter intervals help most for 1v/3v;\n"
                "duration has minimal effect; larger MTTC helps (non-monotone for 3v-NR);\n"
                "reliability falls with alpha, p and p'; 2v dominates 3v throughout.\n");
    return 0;
}
