// Extension beyond the paper's evaluation: a systematic fault-injection
// campaign over the TinyLeNet traffic-sign classifier (the paper injects a
// single hand-picked fault per model; this sweeps the whole space).
//
//  1. Per-layer weight-corruption campaign (PyTorchFI random_weight_inj
//     fault model): which layers are sensitive to a single corrupted weight?
//  2. Per-bit bit-flip campaign on the first convolution: which IEEE-754 bit
//     positions actually endanger the classifier? (Expected: exponent bits
//     critical, mantissa benign — the rationale for the paper's transient-
//     fault threat model.)
//
// Reuses the Table II cached model when present (run table2_model_accuracy
// first for the fully trained version; otherwise a quick model is trained).

#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/campaign.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    namespace fs = std::filesystem;
    const util::Args args(argc, argv);
    const fs::path cache(args.get("cache", std::string(".mvreju_cache")));

    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 2000;
    data_cfg.test_count = 500;
    const auto dataset = data::make_traffic_signs(data_cfg);

    ml::Sequential model = ml::make_tiny_lenet(3, 16, data::kSignClasses, 38);
    const fs::path cached = cache / "TinyLeNet_signs.params";
    if (fs::exists(cached)) {
        model.load_parameters(cached);
        std::printf("loaded cached TinyLeNet parameters\n");
    } else {
        std::printf("training TinyLeNet (~15 s; run table2_model_accuracy for the "
                    "full model)...\n");
        ml::TrainConfig tc;
        tc.epochs = 10;
        tc.learning_rate = 0.025f;
        tc.lr_decay = 0.9f;
        model.train(dataset.train, tc);
    }

    fi::CampaignConfig cfg;
    cfg.injections_per_site = static_cast<std::size_t>(args.get("injections", 40));

    bench::print_header("Extension: per-layer weight-corruption campaign");
    const auto layer_report = fi::run_weight_campaign(model, dataset.test, cfg);
    std::printf("baseline accuracy %.4f; %zu faults per layer, value range [%.0f, %.0f]\n",
                layer_report.baseline_accuracy, cfg.injections_per_site, cfg.value_min,
                cfg.value_max);
    util::TextTable layers({"Layer", "Params", "Benign", "Degraded", "Critical",
                            "Mean drop", "Worst drop"});
    for (const auto& site : layer_report.sites) {
        layers.add_row({std::to_string(site.site), std::to_string(site.parameters),
                        std::to_string(site.benign), std::to_string(site.degraded),
                        std::to_string(site.critical),
                        util::fmt(site.mean_accuracy_drop, 4),
                        util::fmt(site.worst_accuracy_drop, 4)});
    }
    std::fputs(layers.str().c_str(), stdout);

    bench::print_header("Extension: per-bit bit-flip campaign (layer 0)");
    const auto bit_report = fi::run_bitflip_campaign(model, dataset.test, 0, cfg);
    util::TextTable bits({"Bit", "Meaning", "Benign", "Degraded", "Critical",
                          "Mean drop"});
    auto meaning = [](std::size_t bit) -> std::string {
        if (bit == 31) return "sign";
        if (bit >= 23) return "exponent";
        return "mantissa";
    };
    for (const auto& site : bit_report.sites) {
        bits.add_row({std::to_string(site.site), meaning(site.site),
                      std::to_string(site.benign), std::to_string(site.degraded),
                      std::to_string(site.critical),
                      util::fmt(site.mean_accuracy_drop, 4)});
    }
    std::fputs(bits.str().c_str(), stdout);
    std::printf("\nExpected pattern: high exponent bits are critical, mantissa bits are\n"
                "benign -- the usual DNN bit-flip sensitivity profile, and the reason a\n"
                "single transient fault can take a perception module from H to C.\n");
    return 0;
}
