// Extension: arithmetic diversity as a fourth replica. The paper's E[R_sys]
// gains come from voting *diverse* versions; the int8 backend adds a fourth
// replica that shares version 0's weights but not its arithmetic — quantized
// int32 accumulation disagrees with float32 on a small fraction of argmaxes.
// This fi campaign (extension_five_versions pattern, intensified attack)
// measures whether that arithmetic-only diversity moves system safety, with
// a float32 clone of version 0 as the zero-diversity control: the clone is
// bit-identical to its original, so any difference between the two 4-version
// rows is attributable to quantization alone.
//
// Reported per configuration: colliding runs, collision/skip rates, and the
// empirical steady-state output reliability E[R_sys] = 1 - (unsafe-decided
// frames / total frames) — the closed-loop analogue of the paper's Eq. (3)
// reward, where a safe skip counts as reliable and only an agreed-but-wrong
// output does not.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/av/sensor.hpp"
#include "mvreju/num/backend.hpp"
#include "mvreju/util/table.hpp"

namespace {

using namespace mvreju;

/// The base set plus version 0 cloned as a fourth replica bound to
/// `backend` (healthy model and the whole compromised-variant pool alike,
/// so the fault process treats the clone as a full module).
av::DetectorSet with_fourth_replica(const av::DetectorSet& base,
                                    const num::KernelBackend* backend) {
    av::DetectorSet set = base;
    set.healthy.push_back(base.healthy[0]);
    set.healthy.back().bind_backend(backend);
    set.compromised.push_back(base.compromised[0]);
    for (auto& variant : set.compromised.back()) variant.model.bind_backend(backend);
    set.healthy_accuracy.push_back(base.healthy_accuracy[0]);
    return set;
}

/// Argmax agreement between version 0 and its backend-bound clone on
/// rendered sensor grids (one lead vehicle swept through the bucket range).
double replica_agreement(const ml::Sequential& original, const ml::Sequential& clone,
                         const av::SensorConfig& sensor, int samples) {
    util::Rng rng(97);
    int agree = 0;
    for (int i = 0; i < samples; ++i) {
        const av::Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
        const av::Obb lead{{rng.uniform(4.0, 42.0), rng.uniform(-0.8, 0.8)},
                           2.25, 0.95, 0.0};
        const std::vector<av::Obb> vehicles{lead};
        const ml::Tensor grid = av::render_grid(ego, vehicles, sensor, rng);
        if (original.predict(grid) == clone.predict(grid)) ++agree;
    }
    return static_cast<double>(agree) / samples;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 10);
    const double mttc = args.get("mttc", 4.0);

    av::SensorConfig sensor;
    const av::DetectorSet base = bench::prepare_case_study_detectors(args, sensor);
    const num::KernelBackend* int8 = num::find_backend("int8");
    const av::DetectorSet with_f32_clone =
        with_fourth_replica(base, &num::scalar_backend());
    const av::DetectorSet with_int8 = with_fourth_replica(base, int8);
    std::printf("int8(v0) vs float32(v0) argmax agreement on sensor grids: %.3f\n",
                replica_agreement(base.healthy[0], with_int8.healthy[3], sensor, 400));

    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);

    bench::print_header(
        "Extension: int8 quantized replica in the voting path (fi campaign)");
    std::printf("mttc = %.1f s (intensified attack), rejuvenation interval 3 s, "
                "%d runs x %zu routes\n", mttc, runs, refs.size());
    util::TextTable table({"Configuration", "Coll. runs", "Coll. rate", "Skip rate",
                           "E[R_sys] (emp.)"});

    struct Config {
        const char* name;
        const av::DetectorSet* detectors;
        int versions;
        core::VotingScheme voting;
    };
    for (const Config& config :
         {Config{"3xfloat32 (2 agree)", &base, 3, core::VotingScheme::majority},
          Config{"3xfloat32 + float32 clone of v0", &with_f32_clone, 4,
                 core::VotingScheme::majority},
          Config{"3xfloat32 + 1xint8(v0) (2 agree)", &with_int8, 4,
                 core::VotingScheme::majority},
          Config{"3xfloat32 + 1xint8(v0) (strict majority)", &with_int8, 4,
                 core::VotingScheme::strict_majority}}) {
        int collided = 0;
        int total = 0;
        long long frames = 0;
        long long unsafe_frames = 0;
        double rate = 0.0;
        double skip = 0.0;
        for (std::size_t r = 0; r < refs.size(); ++r) {
            const auto& route = towns[refs[r].town].routes[refs[r].route];
            for (int run = 0; run < runs; ++run) {
                av::ScenarioConfig cfg;
                cfg.versions = config.versions;
                cfg.voting = config.voting;
                cfg.mttc = mttc;
                cfg.seed = 900 + 100 * r + static_cast<std::uint64_t>(run);
                const auto m = av::run_scenario(route, *config.detectors, cfg);
                collided += m.collided() ? 1 : 0;
                rate += m.collision_rate();
                skip += m.skip_rate();
                frames += m.total_frames;
                unsafe_frames += m.unsafe_decided_frames;
                ++total;
            }
        }
        char rsys[32];
        std::snprintf(rsys, sizeof rsys, "%.6f",
                      1.0 - static_cast<double>(unsafe_frames) / frames);
        table.add_row({config.name,
                       std::to_string(collided) + "/" + std::to_string(total),
                       util::fmt_pct(rate / total), util::fmt_pct(skip / total), rsys});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n(Diversity from arithmetic, not weights: the float32-clone row is\n"
                "the control — its fourth replica is bit-identical to version 0.)\n");
    return 0;
}
