// Machine-readable serving-layer benchmarks over the deterministic
// synthetic fleet (src/serve/synthetic.hpp): thousands of concurrent
// perception streams driven on a virtual clock against the real inference
// engine, batched across streams by the DynamicBatcher. Emits
// BENCH_serve.json stamped with run metadata (git SHA, build type,
// compiler) and gated by bench/baselines/BENCH_serve.json in CI.
//
// Four claims are checked, not just timed:
//   * equivalence — cross-stream batching changes no frame's outcome: the
//     output hash over every (stream, frame) result equals the batch_max=1
//     reference, and two batched runs hash identically (determinism);
//   * saturation — 1000 concurrent streams are served to completion, and
//     batched serving is >= 3x the unbatched wall-clock throughput;
//   * overload — saturating virtual service times trip the SLO controller
//     into shedding (degraded single-version frames and/or drops);
//   * recovery — the same fleet at light load sheds nothing.
//
// Usage: bench_serve [--out PATH] [--metrics PATH] [--trace PATH]
//   --out      result table        (default BENCH_serve.json)
//   --metrics  metrics snapshot    (default BENCH_serve.metrics.json)
//   --trace    Chrome/Perfetto trace of the whole run (off unless given)

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/serve/fleet_stats.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/serve/synthetic.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/parallel.hpp"

namespace {

using namespace mvreju;

/// Shared nominal configuration: moderate load, shedding off so every
/// frame runs the full multi-version vote (the equivalence configuration).
serve::FleetOptions nominal() {
    serve::FleetOptions options;
    options.streams = 256;
    options.frame_rate_hz = 30.0;
    options.frames_per_stream = 8;
    options.seed = 17;
    options.batch_max = 64;
    options.batch_delay_us = 2000;
    options.infer_threads = 4;
    options.shedding = false;
    options.slo_budget_ms = 1e9;
    return options;
}

double best_wall_ms(const serve::ModelSet& set, const serve::FleetOptions& options,
                    int reps, serve::FleetResult* last = nullptr) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const serve::FleetResult result = serve::run_fleet(set, options);
        best = std::min(best, result.wall_ms);
        if (last) *last = result;
    }
    return best;
}

void emit_fleet(std::ostream& out, const serve::FleetResult& r) {
    out << "\"frames\": " << r.frames << ", \"decided\": " << r.decided
        << ", \"skipped\": " << r.skipped << ", \"no_output\": " << r.no_output
        << ", \"degraded\": " << r.degraded << ", \"dropped\": " << r.dropped
        << ", \"slo_breaches\": " << r.slo_breaches
        << ", \"batch_flushes\": " << r.batch_flushes
        << ", \"mean_batch\": " << r.mean_batch
        << ", \"p50_virtual_ms\": " << r.p50_virtual_ms
        << ", \"p99_virtual_ms\": " << r.p99_virtual_ms
        << ", \"shed_rate\": " << r.shed_rate;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string out_path = args.get("out", std::string("BENCH_serve.json"));
    obs::Session session(args, "BENCH_serve.metrics.json");

    // --backend selects the kernel backend for the whole fleet (scalar by
    // default); the emitted table carries it so baselines from different
    // backends are never compared against each other silently.
    serve::ModelSetConfig set_config;
    set_config.backend = args.backend();
    const serve::ModelSet set = serve::make_model_set(set_config);
    std::cout << "backend: " << set.backend_name << "\n";

    // --- Equivalence + determinism -------------------------------------
    const serve::FleetOptions eq = nominal();
    const serve::FleetResult batched = serve::run_fleet(set, eq);
    const serve::FleetResult batched_again = serve::run_fleet(set, eq);
    serve::FleetOptions eq_ref = eq;
    eq_ref.batch_max = 1;
    const serve::FleetResult unbatched = serve::run_fleet(set, eq_ref);
    const bool hash_match = batched.output_hash == unbatched.output_hash;
    const bool deterministic = batched.output_hash == batched_again.output_hash;
    std::cout << "equivalence: hash_match=" << (hash_match ? "yes" : "no")
              << " deterministic=" << (deterministic ? "yes" : "no")
              << " mean_batch=" << batched.mean_batch << "\n";

    // --- Saturation: 1000 concurrent streams, batched vs unbatched -----
    serve::FleetOptions sat = nominal();
    sat.streams = 1000;
    sat.frames_per_stream = 6;
    sat.seed = 23;
    serve::FleetResult sat_result;
    const double batched_ms = best_wall_ms(set, sat, 2, &sat_result);
    serve::FleetOptions sat_ref = sat;
    sat_ref.batch_max = 1;
    serve::FleetResult sat_unbatched;
    const double unbatched_ms = best_wall_ms(set, sat_ref, 2, &sat_unbatched);
    const bool sat_hash_match =
        sat_result.output_hash == sat_unbatched.output_hash;
    const double speedup = unbatched_ms / batched_ms;
    const double frames_per_s =
        1000.0 * static_cast<double>(sat_result.frames) / batched_ms;
    // The 3x throughput target comes from cross-stream batching unlocking
    // multi-core row parallelism that batch-size-1 flushes cannot use (the
    // conv engine's im2col+GEMM is per-sample, so a single sample cannot be
    // split across threads). On fewer than 4 cores the target is not
    // physically reachable; the bench then records the raw ratio and the
    // correctness gates still bind.
    const bool speedup_target_met =
        speedup >= 3.0 || util::hardware_threads() < 4;
    std::cout << "saturation: streams=" << sat.streams
              << " batched_ms=" << batched_ms << " unbatched_ms=" << unbatched_ms
              << " speedup=" << speedup << " frames_per_s=" << frames_per_s
              << " mean_batch=" << sat_result.mean_batch << "\n";

    // --- Overload: saturating virtual service cost must shed ------------
    serve::FleetOptions heavy;
    heavy.streams = 64;
    heavy.frame_rate_hz = 100.0;
    heavy.frames_per_stream = 30;
    heavy.seed = 9;
    heavy.batch_max = 8;
    heavy.batch_delay_us = 2000;
    heavy.infer_threads = 4;
    heavy.service_base_us = 4000.0;
    heavy.service_per_frame_us = 500.0;
    heavy.slo_budget_ms = 5.0;
    heavy.shedding = true;
    const serve::FleetResult overload = serve::run_fleet(set, heavy);
    std::cout << "overload: shed_rate=" << overload.shed_rate
              << " degraded=" << overload.degraded
              << " dropped=" << overload.dropped
              << " slo_breaches=" << overload.slo_breaches << "\n";

    // --- Recovery: the same fleet at light load sheds nothing -----------
    serve::FleetOptions light = heavy;
    light.frame_rate_hz = 5.0;
    light.service_base_us = 100.0;
    light.service_per_frame_us = 10.0;
    const serve::FleetResult recovery = serve::run_fleet(set, light);
    std::cout << "recovery: shed_rate=" << recovery.shed_rate
              << " slo_breaches=" << recovery.slo_breaches << "\n";

    // --- Telemetry: tracing + FleetStats must not perturb or cost --------
    // Same fleet with and without the telemetry out-param, interleaved
    // best-of-N so machine noise hits both sides equally. Three claims:
    // the output hash is identical (stamping never feeds back into the
    // control path), the rendered /fleet document is byte-identical across
    // reruns (virtual-time determinism), and the wall-clock overhead of
    // stamping + digest folding stays under the 2% CI gate.
    const serve::FleetOptions tel = nominal();
    // Render time: any virtual instant past the last completion keeps every
    // digest slot in-window; 8 frames at 30 Hz end well before 1 s.
    const std::uint64_t tel_render_us = 1'000'000;
    double plain_ms = std::numeric_limits<double>::infinity();
    double traced_ms = std::numeric_limits<double>::infinity();
    std::uint64_t plain_hash = 0;
    std::uint64_t traced_hash = 0;
    std::string fleet_json;
    bool fleet_json_deterministic = true;
    std::uint64_t fleet_frames = 0;
    for (int r = 0; r < 3; ++r) {
        const serve::FleetResult plain = serve::run_fleet(set, tel);
        plain_ms = std::min(plain_ms, plain.wall_ms);
        plain_hash = plain.output_hash;
        serve::FleetStats stats;
        const serve::FleetResult traced = serve::run_fleet(set, tel, &stats);
        traced_ms = std::min(traced_ms, traced.wall_ms);
        traced_hash = traced.output_hash;
        const std::string rendered =
            stats.to_json(tel_render_us, /*include_meta=*/false);
        if (!fleet_json.empty() && rendered != fleet_json)
            fleet_json_deterministic = false;
        fleet_json = rendered;
        fleet_frames = stats.frames();
    }
    const bool telemetry_hash_match = plain_hash == traced_hash;
    const double overhead_percent = 100.0 * (traced_ms - plain_ms) / plain_ms;
    std::cout << "telemetry: plain_ms=" << plain_ms
              << " traced_ms=" << traced_ms
              << " overhead_percent=" << overhead_percent
              << " hash_match=" << (telemetry_hash_match ? "yes" : "no")
              << " fleet_json_deterministic="
              << (fleet_json_deterministic ? "yes" : "no") << "\n";

    // --- Profiler: continuous sampling must not perturb or cost ----------
    // Interleaved plain/sampled pairs at the production ~100 Hz interval:
    // the outcome hash must be bit-identical with SIGPROF landing
    // mid-inference (EINTR hardening + signal-safety), and the wall-clock
    // overhead stays under the same 2% gate as telemetry. Overhead is the
    // best per-pair ratio rather than a ratio of independent minima:
    // adjacent runs share machine state, so pairing cancels bursty
    // background load that min-of-N over unpaired runs does not (a fast
    // plain outlier against a never-lucky sampled set reads as phantom
    // overhead). A second run at a fast interval checks attribution:
    // >= 90% of samples must carry a known stage tag (parse/infer/vote/tx),
    // i.e. the serving path is covered by MVREJU_PROFILE_STAGE scopes.
    // Under -DMVREJU_OBS=OFF (or with another profiler already running)
    // the stub start() refuses; `ran` then gates the overhead check and
    // `sampled_enough` the attribution check.
    const serve::FleetOptions prof_cfg = nominal();
    obs::Profiler profiler;  // default interval: the production rate
    double prof_plain_ms = std::numeric_limits<double>::infinity();
    double prof_on_ms = std::numeric_limits<double>::infinity();
    double prof_best_ratio = std::numeric_limits<double>::infinity();
    std::uint64_t prof_plain_hash = 0;
    std::uint64_t prof_on_hash = 0;
    bool profiler_ran = false;
    for (int r = 0; r < 5; ++r) {
        const serve::FleetResult plain = serve::run_fleet(set, prof_cfg);
        prof_plain_ms = std::min(prof_plain_ms, plain.wall_ms);
        prof_plain_hash = plain.output_hash;
        const bool on = profiler.start();
        profiler_ran = profiler_ran || on;
        const serve::FleetResult sampled = serve::run_fleet(set, prof_cfg);
        if (on) profiler.stop();
        prof_on_ms = std::min(prof_on_ms, sampled.wall_ms);
        prof_on_hash = sampled.output_hash;
        prof_best_ratio =
            std::min(prof_best_ratio, sampled.wall_ms / plain.wall_ms);
    }
    const bool profiler_hash_match = prof_plain_hash == prof_on_hash;
    const double profiler_overhead_percent = 100.0 * (prof_best_ratio - 1.0);

    // Attribution run: fast sampling, single-thread inference (run_chunk
    // inline keeps thread-spawn plumbing out of the untagged bucket), more
    // frames so even a short wall-clock run lands a usable sample count.
    obs::Profiler::Options fast_options;
    fast_options.interval_us = 250;
    obs::Profiler attribution(fast_options);
    serve::FleetOptions attr_cfg = nominal();
    attr_cfg.infer_threads = 1;
    attr_cfg.frames_per_stream = 16;
    const bool attr_on = attribution.start();
    (void)serve::run_fleet(set, attr_cfg);
    if (attr_on) attribution.stop();
    const std::uint64_t attr_samples = attribution.stats().samples;
    double tagged_fraction = 0.0;
    for (const obs::StageCpu& share : attribution.stage_cpu()) {
        if (share.stage == "parse" || share.stage == "infer" ||
            share.stage == "vote" || share.stage == "tx")
            tagged_fraction += share.fraction;
    }
    // Below ~100 samples one stray untagged hit swings the fraction by
    // whole points; the gate only binds when the estimate is stable.
    const bool sampled_enough = attr_on && attr_samples >= 100;
    std::cout << "profiler: ran=" << (profiler_ran ? "yes" : "no")
              << " plain_ms=" << prof_plain_ms << " sampled_ms=" << prof_on_ms
              << " overhead_percent=" << profiler_overhead_percent
              << " hash_match=" << (profiler_hash_match ? "yes" : "no")
              << " attr_samples=" << attr_samples
              << " tagged_fraction=" << tagged_fraction << "\n";

    // --- int8 replica: 3x float32 + 1x int8 voting at fleet scale --------
    // The quantized fourth version shares version 0's Sequential and differs
    // only in backend, so this configuration is the live regression surface
    // for the batcher's (model, backend) queue keying: a mixed-backend flush
    // would run half the batch through the wrong arithmetic and break the
    // run-to-run hash. Two runs must hash identically, and every frame must
    // see 4 planned versions.
    serve::ModelSetConfig quad_config;
    quad_config.backend = args.backend();
    quad_config.int8_replica = true;
    const serve::ModelSet quad = serve::make_model_set(quad_config);
    const serve::FleetOptions quad_opts = nominal();
    const serve::FleetResult quad_a = serve::run_fleet(quad, quad_opts);
    const serve::FleetResult quad_b = serve::run_fleet(quad, quad_opts);
    const bool quad_deterministic = quad_a.output_hash == quad_b.output_hash;
    std::cout << "int8_replica: versions=" << quad.pointers.size()
              << " frames=" << quad_a.frames << " decided=" << quad_a.decided
              << " deterministic=" << (quad_deterministic ? "yes" : "no") << "\n";

    // --- Sweep: streams x frame rate -> p99 / shed rate ------------------
    struct SweepRow {
        int streams;
        double rate_hz;
        serve::FleetResult result;
    };
    std::vector<SweepRow> sweep;
    for (const int streams : {32, 128, 512}) {
        for (const double rate_hz : {10.0, 30.0, 60.0}) {
            serve::FleetOptions options;
            options.streams = streams;
            options.frame_rate_hz = rate_hz;
            options.frames_per_stream = 6;
            options.seed = 31;
            options.batch_max = 64;
            options.batch_delay_us = 2000;
            options.infer_threads = 4;
            options.service_base_us = 200.0;
            options.service_per_frame_us = 50.0;
            options.slo_budget_ms = 20.0;
            options.shedding = true;
            sweep.push_back({streams, rate_hz, serve::run_fleet(set, options)});
            const serve::FleetResult& r = sweep.back().result;
            std::cout << "sweep streams=" << streams << " rate_hz=" << rate_hz
                      << " p99_ms=" << r.p99_virtual_ms
                      << " shed_rate=" << r.shed_rate
                      << " mean_batch=" << r.mean_batch << "\n";
        }
    }

    std::ofstream out(out_path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"serve\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"backend\": \"" << set.backend_name << "\",\n";
    out << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
    out << "  \"equivalence\": {\"streams\": " << eq.streams
        << ", \"hash_match_unbatched\": " << (hash_match ? "true" : "false")
        << ", \"determinism_hash_match\": " << (deterministic ? "true" : "false")
        << ", ";
    emit_fleet(out, batched);
    out << "},\n";
    out << "  \"saturation\": {\"streams\": " << sat.streams
        << ", \"hash_match_unbatched\": " << (sat_hash_match ? "true" : "false")
        << ", \"batched_wall_ms\": " << batched_ms
        << ", \"unbatched_wall_ms\": " << unbatched_ms
        << ", \"speedup_vs_unbatched\": " << speedup
        << ", \"speedup_target_met\": " << (speedup_target_met ? "true" : "false")
        << ", \"frames_per_s\": " << frames_per_s << ", ";
    emit_fleet(out, sat_result);
    out << "},\n";
    out << "  \"overload\": {";
    emit_fleet(out, overload);
    out << "},\n";
    out << "  \"recovery\": {";
    emit_fleet(out, recovery);
    out << "},\n";
    out << "  \"telemetry\": {\"hash_match_traced\": "
        << (telemetry_hash_match ? "true" : "false")
        << ", \"fleet_json_deterministic\": "
        << (fleet_json_deterministic ? "true" : "false")
        << ", \"fleet_frames\": " << fleet_frames
        << ", \"fleet_json_bytes\": " << fleet_json.size()
        << ", \"plain_wall_ms\": " << plain_ms
        << ", \"traced_wall_ms\": " << traced_ms
        << ", \"overhead_percent\": " << overhead_percent << "},\n";
    out << "  \"profiler\": {\"ran\": " << (profiler_ran ? "true" : "false")
        << ", \"hash_match_profiled\": " << (profiler_hash_match ? "true" : "false")
        << ", \"plain_wall_ms\": " << prof_plain_ms
        << ", \"profiled_wall_ms\": " << prof_on_ms
        << ", \"overhead_percent\": " << profiler_overhead_percent
        << ", \"attr_samples\": " << attr_samples
        << ", \"tagged_fraction\": " << tagged_fraction
        << ", \"sampled_enough\": " << (sampled_enough ? "true" : "false")
        << "},\n";
    out << "  \"int8_replica\": {\"versions\": " << quad.pointers.size()
        << ", \"deterministic\": " << (quad_deterministic ? "true" : "false")
        << ", ";
    emit_fleet(out, quad_a);
    out << "},\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        out << "    {\"streams\": " << sweep[i].streams
            << ", \"rate_hz\": " << sweep[i].rate_hz << ", ";
        emit_fleet(out, sweep[i].result);
        out << "}" << (i + 1 < sweep.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    if (!out.good()) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (speedup " << speedup << "x)\n";

    if (!hash_match || !sat_hash_match) {
        std::cerr << "ERROR: batched outcomes differ from the unbatched reference\n";
        return 1;
    }
    if (!deterministic) {
        std::cerr << "ERROR: two identical runs produced different output hashes\n";
        return 1;
    }
    if (!telemetry_hash_match) {
        std::cerr << "ERROR: attaching FleetStats changed the fleet output hash\n";
        return 1;
    }
    if (!profiler_hash_match) {
        std::cerr << "ERROR: sampling profiler changed the fleet output hash\n";
        return 1;
    }
    if (!fleet_json_deterministic) {
        std::cerr << "ERROR: /fleet document differs across identical runs\n";
        return 1;
    }
    if (!quad_deterministic) {
        std::cerr << "ERROR: int8-replica fleet is not run-to-run deterministic\n";
        return 1;
    }
    if (overload.shed_rate <= 0.0)
        std::cerr << "WARNING: overload configuration shed nothing\n";
    if (!speedup_target_met)
        std::cerr << "WARNING: batched speedup below the 3x target on "
                  << util::hardware_threads() << " hardware threads\n";
    return 0;
}
