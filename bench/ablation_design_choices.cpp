// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own tables):
//
//  1. Solver validation: exact MRGP steady state vs our discrete-event
//     simulator for every Table V configuration.
//  2. Victim-selection weights of the proactive mechanism (Table I weights
//     vs the Section VII-A 2/3 rule vs never-prioritise-compromised), on
//     the analytic model.
//  3. Server semantics: TimeNET-default single-server vs infinite-server
//     compromise/failure clocks.
//  4. Voting scheme in the driving case study: majority (rules R.1-R.3) vs
//     unanimity, with --av to include the (slower) simulation part.

#include <cstdio>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/util/table.hpp"

namespace {

using namespace mvreju;

void solver_validation(const reliability::Params& params,
                       const reliability::TimingParams& timing) {
    bench::print_header("Ablation 1: exact MRGP vs discrete-event simulation");
    util::TextTable table({"Configuration", "Exact", "Simulated mean", "95% CI",
                           "Exact inside CI"});
    for (int n = 1; n <= 3; ++n) {
        for (bool proactive : {false, true}) {
            core::DspnConfig cfg;
            cfg.modules = n;
            cfg.proactive = proactive;
            cfg.timing = timing;
            const double exact = core::steady_state_reliability(cfg, params);
            auto model = core::build_multiversion_dspn(cfg);
            dspn::SimulationOptions opt;
            opt.horizon = 1.5e6;
            opt.warmup = 5.0e4;
            opt.batches = 16;
            opt.seed = 11 + static_cast<std::uint64_t>(n);
            const auto est = dspn::simulate_steady_state_reward(
                model.net,
                [&](const dspn::Marking& m) {
                    return reliability::state_reliability(
                        model.healthy(m), model.compromised(m), model.nonfunctional(m),
                        params);
                },
                opt);
            const bool inside = est.ci.lower <= exact && exact <= est.ci.upper;
            table.add_row({std::to_string(n) + "v " + (proactive ? "w/ rej" : "w/o rej"),
                           util::fmt(exact, 6), util::fmt(est.mean, 6),
                           "[" + util::fmt(est.ci.lower, 6) + ", " +
                               util::fmt(est.ci.upper, 6) + "]",
                           inside ? "yes" : "NO"});
        }
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n");
}

void victim_weights(const reliability::Params& params,
                    const reliability::TimingParams& timing) {
    bench::print_header("Ablation 2: proactive victim-selection weights (3v, analytic)");
    util::TextTable table({"Weights", "E[R]"});
    const std::pair<const char*, core::VictimWeights> options[] = {
        {"Table I (uniform over functional)", core::VictimWeights::table1},
        {"2/3 prioritise compromised", core::VictimWeights::two_thirds},
        {"never prioritise compromised", core::VictimWeights::healthy_only},
    };
    for (const auto& [name, weights] : options) {
        core::DspnConfig cfg;
        cfg.timing = timing;
        cfg.victim_weights = weights;
        table.add_row({name, util::fmt(core::steady_state_reliability(cfg, params), 6)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n");
}

void server_semantics(const reliability::Params& params,
                      const reliability::TimingParams& timing) {
    bench::print_header("Ablation 3: single-server vs infinite-server fault clocks");
    util::TextTable table({"Configuration", "single-server", "infinite-server"});
    for (int n = 1; n <= 3; ++n) {
        for (bool proactive : {false, true}) {
            core::DspnConfig cfg;
            cfg.modules = n;
            cfg.proactive = proactive;
            cfg.timing = timing;
            const double single = core::steady_state_reliability(cfg, params);
            cfg.compromise_semantics = core::ServerSemantics::infinite;
            cfg.failure_semantics = core::ServerSemantics::infinite;
            const double infinite = core::steady_state_reliability(cfg, params);
            table.add_row({std::to_string(n) + "v " + (proactive ? "w/ rej" : "w/o rej"),
                           util::fmt(single, 6), util::fmt(infinite, 6)});
        }
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("(single-server reproduces the paper's Table V)\n\n");
}

void voting_scheme(const util::Args& args) {
    bench::print_header("Ablation 4: majority vs unanimity voting (driving case study)");
    av::SensorConfig sensor;
    const auto detectors = bench::prepare_case_study_detectors(args, sensor);
    const auto towns = av::make_towns();
    const int runs = args.get("runs", 10);
    util::TextTable table({"Voting", "Coll. runs", "Coll. rate", "Skip rate"});
    for (const auto& [name, scheme] :
         {std::pair{"majority (R.1-R.3)", core::VotingScheme::majority},
          std::pair{"unanimity", core::VotingScheme::unanimity}}) {
        int collided = 0;
        double rate = 0.0;
        double skip = 0.0;
        int total = 0;
        for (std::size_t r = 0; r < towns.size(); ++r) {
            const auto& route = towns[r].routes[0];
            for (int run = 0; run < runs; ++run) {
                av::ScenarioConfig cfg;
                cfg.voting = scheme;
                cfg.seed = 500 + 100 * r + static_cast<std::uint64_t>(run);
                const auto m = av::run_scenario(route, detectors, cfg);
                collided += m.collided() ? 1 : 0;
                rate += m.collision_rate();
                skip += m.skip_rate();
                ++total;
            }
        }
        table.add_row({name, std::to_string(collided) + "/" + std::to_string(total),
                       util::fmt_pct(rate / total), util::fmt_pct(skip / total)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("(unanimity trades availability -- more skipped frames -- for fewer "
                "wrongly decided frames)\n");
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const auto params = bench::params_from_args(args);
    const auto timing = bench::timing_from_args(args);

    solver_validation(params, timing);
    victim_weights(params, timing);
    server_semantics(params, timing);
    if (args.has("av")) voting_scheme(args);
    else std::printf("(pass --av to run the driving-simulation voting ablation)\n");
    return 0;
}
