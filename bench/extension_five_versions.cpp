// Extension beyond the paper's evaluation (its stated future work): the
// driving case study with FIVE diverse perception versions. We compare 1-,
// 3- and 5-version systems with rejuvenation under an *intensified* fault
// process (mean time to compromise --mttc, default 4 s: twice the paper's
// attack rate), plus the paper's 2-agree voting vs strict (>half) majority
// for the 5-version system.
//
// Expected: with the harsher adversary the 3-version system starts taking
// hits; the 5-version pool rides out simultaneous compromises better, and
// strict majority trades a few more skips for fewer wrong decisions.

#include <cstdio>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 10);
    const double mttc = args.get("mttc", 4.0);

    av::SensorConfig sensor;
    av::DetectorTrainOptions opts;
    opts.versions = 5;
    opts.cache_dir = args.get("cache", std::string(".mvreju_cache"));
    std::printf("preparing five detector versions (first run trains two extra "
                "models)...\n");
    const auto detectors = av::prepare_detectors(sensor, opts);
    for (std::size_t m = 0; m < detectors.healthy.size(); ++m)
        std::printf("  %-10s healthy %.3f, compromised %.3f\n",
                    detectors.healthy[m].name().c_str(), detectors.healthy_accuracy[m],
                    detectors.compromised[m].front().accuracy);

    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);

    bench::print_header("Extension: 1 vs 3 vs 5 versions under an intensified attack");
    std::printf("mttc = %.1f s (paper case study: 8 s), rejuvenation interval 3 s, "
                "%d runs x %zu routes\n", mttc, runs, refs.size());
    util::TextTable table({"Configuration", "Coll. runs", "Coll. rate", "Skip rate"});

    struct Config {
        const char* name;
        int versions;
        core::VotingScheme voting;
    };
    for (const Config& config :
         {Config{"1-version", 1, core::VotingScheme::majority},
          Config{"3-version (2 agree)", 3, core::VotingScheme::majority},
          Config{"5-version (2 agree)", 5, core::VotingScheme::majority},
          Config{"5-version (strict majority)", 5, core::VotingScheme::strict_majority}}) {
        int collided = 0;
        int total = 0;
        double rate = 0.0;
        double skip = 0.0;
        for (std::size_t r = 0; r < refs.size(); ++r) {
            const auto& route = towns[refs[r].town].routes[refs[r].route];
            for (int run = 0; run < runs; ++run) {
                av::ScenarioConfig cfg;
                cfg.versions = config.versions;
                cfg.voting = config.voting;
                cfg.mttc = mttc;
                cfg.seed = 700 + 100 * r + static_cast<std::uint64_t>(run);
                const auto m = av::run_scenario(route, detectors, cfg);
                collided += m.collided() ? 1 : 0;
                rate += m.collision_rate();
                skip += m.skip_rate();
                ++total;
            }
        }
        table.add_row({config.name,
                       std::to_string(collided) + "/" + std::to_string(total),
                       util::fmt_pct(rate / total), util::fmt_pct(skip / total)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n(The paper's future work asks for 'more replicas and other voting\n"
                "schemes'; this bench is that experiment on our substrate.)\n");
    return 0;
}
