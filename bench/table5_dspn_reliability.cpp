// Regenerates Table V of the paper: expected steady-state output reliability
// of the single-, two- and three-version systems with and without proactive
// rejuvenation, by solving the Fig. 2 / Fig. 3 DSPN models exactly (MRGP
// method). The paper's numbers are TimeNET simulation estimates; the
// no-rejuvenation column matches ours to 1e-6 and the with-rejuvenation
// column to ~2e-3. Pass --simulate to cross-check with our own
// discrete-event simulator (batch-means 95% CIs).

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/table.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    obs::Session session(args);
    const auto params = bench::params_from_args(args);
    const auto timing = bench::timing_from_args(args);
    const bool simulate = args.has("simulate");

    bench::print_header("Table IV: default DSPN input parameters");
    util::TextTable tab4({"Param", "Description", "Value"});
    tab4.add_row({"alpha", "error probability dependency", util::fmt(params.alpha, 6)});
    tab4.add_row({"p", "output failure probability (healthy)", util::fmt(params.p, 6)});
    tab4.add_row(
        {"p'", "output failure probability (compromised)", util::fmt(params.p_prime, 6)});
    tab4.add_row({"1/lambda_c", "mean time to compromise", util::fmt(timing.mttc, 0) + " s"});
    tab4.add_row({"1/lambda", "module mean time to failure", util::fmt(timing.mttf, 0) + " s"});
    tab4.add_row({"1/mu", "mean time to reactive rejuvenate",
                  util::fmt(timing.reactive_duration, 1) + " s"});
    tab4.add_row({"1/mu_r", "mean time to proactive rejuvenate",
                  util::fmt(timing.proactive_duration, 1) + " s"});
    tab4.add_row({"1/gamma", "rejuvenation interval",
                  util::fmt(timing.rejuvenation_interval, 0) + " s"});
    std::fputs(tab4.str().c_str(), stdout);

    bench::print_header("Table V: steady-state reliability (exact MRGP solution)");
    util::TextTable tab5(simulate
                             ? std::vector<std::string>{"Configuration", "w/o rej.",
                                                        "w/ rej.", "w/ rej. simulated CI"}
                             : std::vector<std::string>{"Configuration", "w/o rej.",
                                                        "w/ rej."});
    const char* names[] = {"Single-version (baseline)", "Two-version", "Three-version"};

    // All six exact MRGP solves (3 configurations x with/without
    // rejuvenation) go through the sweep engine, which fans them out over
    // the task pool and reuses the reachability graph of each structure.
    dspn::SweepEngine engine(bench::multiversion_factory());
    std::vector<std::vector<double>> grid(6);
    for (std::size_t idx = 0; idx < 6; ++idx) {
        core::DspnConfig cfg;
        cfg.modules = 1 + static_cast<int>(idx / 2);
        cfg.timing = timing;
        cfg.proactive = (idx % 2) == 1;
        grid[idx] = bench::encode_config(cfg);
    }
    const std::vector<dspn::SweepPoint> points = engine.run(grid);
    std::vector<double> exact(6, 0.0);
    for (std::size_t idx = 0; idx < 6; ++idx) {
        exact[idx] = engine.expected_reward(
            points[idx], [&](const std::vector<double>& pv, const dspn::Marking& m) {
                return bench::marking_reliability(pv, m, params);
            });
    }

    // Cross-check with batch-means simulation of the proactive nets: one
    // RNG substream per grid point, bit-identical at any thread count.
    std::vector<dspn::SimulationEstimate> simulated;
    if (simulate) {
        dspn::SimulationOptions opt;
        opt.horizon = 2.0e6;
        opt.warmup = 5.0e4;
        opt.batches = 20;
        opt.seed = 7;
        const std::vector<std::vector<double>> sim_grid{grid[1], grid[3], grid[5]};
        simulated = engine.run_simulated(
            sim_grid,
            [&](const std::vector<double>& pv, const dspn::Marking& m) {
                return bench::marking_reliability(pv, m, params);
            },
            opt);
    }

    for (int n = 1; n <= 3; ++n) {
        const double without = exact[static_cast<std::size_t>(n - 1) * 2];
        const double with = exact[static_cast<std::size_t>(n - 1) * 2 + 1];

        std::vector<std::string> row{names[n - 1], util::fmt(without, 6),
                                     util::fmt(with, 6)};
        if (simulate) {
            const auto& est = simulated[static_cast<std::size_t>(n - 1)];
            row.push_back("[" + util::fmt(est.ci.lower, 6) + ", " +
                          util::fmt(est.ci.upper, 6) + "]");
        }
        tab5.add_row(std::move(row));
    }
    std::fputs(tab5.str().c_str(), stdout);

    std::printf("\nPaper values (Table V, TimeNET simulation):\n"
                "  Single-version  0.848211 / 0.920217\n"
                "  Two-version     0.943875 / 0.967152\n"
                "  Three-version   0.903190 / 0.952998\n");
    return 0;
}
