// Regenerates Fig. 5 of the paper: the four evaluation towns and their eight
// routes, rendered as ASCII sketches ('o' start, '*' destination).

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/av/route.hpp"

int main() {
    using namespace mvreju;
    bench::print_header("Fig. 5: evaluation towns and routes");
    const auto towns = av::make_towns();
    int route_number = 1;
    for (const auto& town : towns) {
        for (const auto& route : town.routes) {
            std::printf("Route #%d  ", route_number++);
            std::fputs(av::render_ascii(route).c_str(), stdout);
            std::printf("\n");
        }
    }
    return 0;
}
