// Regenerates Table VI of the paper: collision data of the three-version
// perception system with (w/) and without (w/o) time-triggered proactive
// rejuvenation over the eight evaluation routes, --runs runs each
// (default 5, as in the paper).
//
// Expected shape (paper): with rejuvenation the system avoids (nearly) all
// collisions; without it most runs collide with collision rates of tens of
// percent, and the first collision happens earlier.

#include <cstdio>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 5);

    av::SensorConfig sensor;
    const auto detectors = bench::prepare_case_study_detectors(args, sensor);
    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);

    bench::print_header("Table VI: collision data w/ and w/o rejuvenation");
    util::TextTable table({"Route", "1st coll. w/", "1st coll. w/o", "Frames w/",
                           "Frames w/o", "Rate w/", "Rate w/o", "#Coll. w/",
                           "#Coll. w/o"});

    int total_with = 0;
    int total_without = 0;
    double rate_with = 0.0;
    double rate_without = 0.0;
    double skip_with = 0.0;
    for (std::size_t r = 0; r < refs.size(); ++r) {
        const auto& route = towns[refs[r].town].routes[refs[r].route];
        av::ScenarioConfig cfg;
        cfg.rejuvenation = true;
        const auto with =
            bench::aggregate_runs(route, detectors, cfg, runs, 100 * (r + 1));
        cfg.rejuvenation = false;
        const auto without =
            bench::aggregate_runs(route, detectors, cfg, runs, 100 * (r + 1));

        auto first = [](double f) {
            return f < 0 ? std::string("NA") : std::to_string(static_cast<int>(f));
        };
        table.add_row({"#" + std::to_string(r + 1) + " " + route.name(),
                       first(with.mean_first_collision),
                       first(without.mean_first_collision),
                       util::fmt(with.mean_total_frames, 0),
                       util::fmt(without.mean_total_frames, 0),
                       util::fmt_pct(with.mean_collision_rate),
                       util::fmt_pct(without.mean_collision_rate),
                       std::to_string(with.collided_runs) + "/" + std::to_string(runs),
                       std::to_string(without.collided_runs) + "/" +
                           std::to_string(runs)});
        total_with += with.collided_runs;
        total_without += without.collided_runs;
        rate_with += with.mean_collision_rate;
        rate_without += without.mean_collision_rate;
        skip_with += with.mean_skip_rate;
    }
    std::fputs(table.str().c_str(), stdout);
    const auto n_routes = static_cast<double>(refs.size());
    std::printf("\nTotals: w/ rejuvenation %d/%zu colliding runs (mean rate %s, "
                "mean skip rate %s);\n        w/o rejuvenation %d/%zu colliding runs "
                "(mean rate %s)\n",
                total_with, refs.size() * runs, util::fmt_pct(rate_with / n_routes).c_str(),
                util::fmt_pct(skip_with / n_routes).c_str(), total_without,
                refs.size() * runs, util::fmt_pct(rate_without / n_routes).c_str());
    std::printf("\nPaper values (Table VI): w/ rejuvenation 0/40 runs, 0%% collision "
                "rate, ~2%% skipped frames;\nw/o rejuvenation 33/40 runs, rates "
                "9.70-54.13%% (avg 33.54%%), first collision ~frame 287.\n");
    return 0;
}
