// Machine-readable solver benchmarks: dense LU vs the sparse Gauss-Seidel
// steady-state core across state-space sizes, a full DSPN pipeline solve
// (reachability + MRGP steady state) of the paper's rejuvenation model, and
// serial vs parallel ensemble transient simulation across thread counts.
// Emits BENCH_solvers.json stamped with run metadata (git SHA, build type,
// compiler).
//
// Two claims are checked, not just timed:
//   * dense and sparse stationary vectors agree to 1e-10 wherever the dense
//     path is feasible;
//   * the parallel ensemble estimate is bit-identical to the serial one for
//     every thread count (per-replication RNG substreams + output slots).
//
// Usage: bench_solvers [--out PATH] [--metrics PATH] [--trace PATH]
//   --out      result table        (default BENCH_solvers.json)
//   --metrics  metrics snapshot    (default BENCH_solvers.metrics.json)
//   --trace    Chrome/Perfetto trace of the whole run (off unless given)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/reachability.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/num/linalg.hpp"
#include "mvreju/num/sparse_markov.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Best-of-`reps` wall time in milliseconds for `fn`.
template <typename Fn>
double time_best_ms(int reps, Fn&& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        best = std::min(best, ms_since(start));
    }
    return best;
}

/// Random irreducible CTMC generator with ~5 edges per state (a Hamiltonian
/// cycle plus random shortcuts) — the sparsity profile of a tangible
/// reachability graph.
num::SparseMatrix random_ctmc(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<num::Triplet> triplets;
    auto edge = [&](std::size_t from, std::size_t to, double rate) {
        triplets.push_back({from, to, rate});
        triplets.push_back({from, from, -rate});
    };
    for (std::size_t i = 0; i < n; ++i) edge(i, (i + 1) % n, rng.uniform(0.5, 2.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (int k = 0; k < 4; ++k) {
            const std::size_t to = rng.uniform_int(n);
            if (to != i) edge(i, to, rng.uniform(0.1, 3.0));
        }
    }
    return num::SparseMatrix::from_triplets(n, n, std::move(triplets));
}

struct SteadyStateRow {
    std::size_t states = 0;
    std::size_t nnz = 0;
    double dense_ms = -1.0;  // -1: dense path not attempted at this size
    double sparse_ms = 0.0;
    double max_abs_diff = -1.0;
};

struct EnsembleRow {
    std::size_t threads = 0;
    double ms = 0.0;
    double speedup = 0.0;
    double mean = 0.0;
    bool bit_identical_to_serial = false;
};

dspn::PetriNet rejuvenation_net() {
    core::DspnConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    cfg.proactive = true;
    return core::build_multiversion_dspn(cfg).net;
}

/// End-to-end DSPN pipeline solve of the paper's rejuvenation model:
/// reachability-graph construction plus the MRGP steady-state solve. This is
/// the path the obs trace is expected to cover (dspn.reachability and
/// dspn.steady_state spans).
struct DspnPipelineRow {
    std::size_t states = 0;
    double reach_ms = 0.0;
    double solve_ms = 0.0;
    double probability_mass = 0.0;  // sanity: steady-state vector sums to 1
};

DspnPipelineRow bench_dspn_pipeline() {
    const dspn::PetriNet net = rejuvenation_net();
    DspnPipelineRow row;

    auto start = Clock::now();
    const dspn::ReachabilityGraph graph(net);
    row.reach_ms = ms_since(start);
    row.states = graph.state_count();

    start = Clock::now();
    const std::vector<double> pi = dspn::dspn_steady_state(graph);
    row.solve_ms = ms_since(start);
    for (double p : pi) row.probability_mass += p;
    return row;
}

bool write_json(const std::string& path, const std::vector<SteadyStateRow>& steady,
                const DspnPipelineRow& pipeline, const std::vector<EnsembleRow>& ensemble,
                bool all_identical) {
    std::ofstream out(path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"solvers\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
    out << "  \"steady_state_dense_vs_sparse\": [\n";
    for (std::size_t i = 0; i < steady.size(); ++i) {
        const auto& r = steady[i];
        out << "    {\"states\": " << r.states << ", \"nnz\": " << r.nnz
            << ", \"dense_ms\": " << r.dense_ms << ", \"sparse_ms\": " << r.sparse_ms
            << ", \"max_abs_diff\": " << r.max_abs_diff << "}"
            << (i + 1 < steady.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"dspn_pipeline\": {\"states\": " << pipeline.states
        << ", \"reach_ms\": " << pipeline.reach_ms << ", \"solve_ms\": "
        << pipeline.solve_ms << ", \"probability_mass\": " << pipeline.probability_mass
        << "},\n";
    out << "  \"ensemble_transient\": [\n";
    for (std::size_t i = 0; i < ensemble.size(); ++i) {
        const auto& r = ensemble[i];
        out << "    {\"threads\": " << r.threads << ", \"ms\": " << r.ms
            << ", \"speedup\": " << r.speedup << ", \"mean\": " << r.mean
            << ", \"bit_identical_to_serial\": "
            << (r.bit_identical_to_serial ? "true" : "false") << "}"
            << (i + 1 < ensemble.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"parallel_estimates_bit_identical\": " << (all_identical ? "true" : "false")
        << "\n";
    out << "}\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string out_path = args.get("out", std::string("BENCH_solvers.json"));
    // Reference obs wiring: --metrics / --trace; a metrics blob is dropped
    // next to the result table even when --metrics is absent.
    obs::Session session(args, "BENCH_solvers.metrics.json");

    // --- Dense vs sparse steady state -----------------------------------
    std::vector<SteadyStateRow> steady;
    for (std::size_t n : {std::size_t{64}, std::size_t{256}, std::size_t{512},
                          std::size_t{1024}, std::size_t{2048}, std::size_t{8192}}) {
        const num::SparseMatrix q = random_ctmc(n, 17);
        SteadyStateRow row;
        row.states = n;
        row.nnz = q.nnz();

        num::StationaryOptions opts;
        opts.dense_cutoff = 0;  // always take the iterative path
        std::vector<double> sparse_pi;
        const int reps = n <= 1024 ? 3 : 1;
        row.sparse_ms =
            time_best_ms(reps, [&] { sparse_pi = num::ctmc_steady_state(q, opts); });

        if (n <= 1024) {  // dense LU is O(n^3) time, O(n^2) memory
            const num::Matrix qd = q.to_dense();
            std::vector<double> dense_pi;
            row.dense_ms = time_best_ms(reps, [&] { dense_pi = num::solve_stationary(qd); });
            double diff = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                diff = std::max(diff, std::fabs(dense_pi[i] - sparse_pi[i]));
            row.max_abs_diff = diff;
        }
        steady.push_back(row);
        std::cout << "steady_state n=" << row.states << " nnz=" << row.nnz
                  << " sparse_ms=" << row.sparse_ms << " dense_ms=" << row.dense_ms
                  << " max_abs_diff=" << row.max_abs_diff << "\n";
    }

    // --- Full DSPN pipeline (reachability + MRGP steady state) -----------
    const DspnPipelineRow pipeline = bench_dspn_pipeline();
    std::cout << "dspn_pipeline states=" << pipeline.states
              << " reach_ms=" << pipeline.reach_ms << " solve_ms=" << pipeline.solve_ms
              << " probability_mass=" << pipeline.probability_mass << "\n";

    // --- Serial vs parallel ensemble transient ---------------------------
    const dspn::PetriNet net = rejuvenation_net();
    const dspn::RewardFn reward = [](const dspn::Marking& m) {
        return m[0] >= 1 ? 1.0 : 0.0;
    };
    constexpr std::size_t kReplications = 4000;
    constexpr std::uint64_t kSeed = 11;
    constexpr double kHorizon = 50.0;

    std::vector<EnsembleRow> ensemble;
    dspn::SimulationEstimate serial{};
    bool all_identical = true;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
        dspn::SimulationEstimate est{};
        const double ms = time_best_ms(2, [&] {
            est = dspn::simulate_transient_reward(net, reward, kHorizon, kReplications,
                                                  kSeed, threads);
        });
        if (threads == 1) serial = est;
        EnsembleRow row;
        row.threads = threads;
        row.ms = ms;
        row.speedup = ensemble.empty() ? 1.0 : ensemble.front().ms / ms;
        row.mean = est.mean;
        row.bit_identical_to_serial =
            est.mean == serial.mean && est.ci.lower == serial.ci.lower &&
            est.ci.upper == serial.ci.upper;
        all_identical = all_identical && row.bit_identical_to_serial;
        ensemble.push_back(row);
        std::cout << "ensemble threads=" << threads << " ms=" << row.ms
                  << " speedup=" << row.speedup << " mean=" << row.mean
                  << " bit_identical=" << (row.bit_identical_to_serial ? "yes" : "no")
                  << "\n";
    }

    if (!write_json(out_path, steady, pipeline, ensemble, all_identical)) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!all_identical) {
        std::cerr << "ERROR: parallel estimate differs from serial\n";
        return 1;
    }
    return 0;
}
