#pragma once

// Shared plumbing between the sweep-engine benches: the canonical encoding
// of a core::DspnConfig as a SweepEngine parameter vector, the matching net
// factory, the per-state reliability reward over the canonical place layout,
// and the Fig. 4 study grid (used by both fig4_parameter_study and
// bench_sweep so the benchmarked grid is exactly the rendered one).

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/reliability/functions.hpp"

namespace mvreju::bench {

// Parameter-vector layout for the multi-version DSPN family. Everything the
// net builder reads is encoded — a SweepEngine cache key is only sound when
// the factory is a pure function of the vector. Reward parameters (p, p',
// alpha) are deliberately absent: they never enter the DSPN, so panels that
// sweep them share one solved point per timing configuration.
enum Fig4ParamIndex : std::size_t {
    kParamModules = 0,
    kParamProactive = 1,
    kParamMttc = 2,
    kParamMttf = 3,
    kParamReactiveDuration = 4,
    kParamProactiveDuration = 5,
    kParamRejuvenationInterval = 6,
    kParamCompromiseSemantics = 7,
    kParamFailureSemantics = 8,
    kParamVictimWeights = 9,
    kParamCount = 10,
};

inline std::vector<double> encode_config(const core::DspnConfig& cfg) {
    return {static_cast<double>(cfg.modules),
            cfg.proactive ? 1.0 : 0.0,
            cfg.timing.mttc,
            cfg.timing.mttf,
            cfg.timing.reactive_duration,
            cfg.timing.proactive_duration,
            cfg.timing.rejuvenation_interval,
            static_cast<double>(static_cast<int>(cfg.compromise_semantics)),
            static_cast<double>(static_cast<int>(cfg.failure_semantics)),
            static_cast<double>(static_cast<int>(cfg.victim_weights))};
}

inline core::DspnConfig decode_config(const std::vector<double>& v) {
    if (v.size() != kParamCount)
        throw std::invalid_argument("decode_config: wrong parameter count");
    core::DspnConfig cfg;
    cfg.modules = static_cast<int>(v[kParamModules]);
    cfg.proactive = v[kParamProactive] != 0.0;
    cfg.timing.mttc = v[kParamMttc];
    cfg.timing.mttf = v[kParamMttf];
    cfg.timing.reactive_duration = v[kParamReactiveDuration];
    cfg.timing.proactive_duration = v[kParamProactiveDuration];
    cfg.timing.rejuvenation_interval = v[kParamRejuvenationInterval];
    cfg.compromise_semantics =
        static_cast<core::ServerSemantics>(static_cast<int>(v[kParamCompromiseSemantics]));
    cfg.failure_semantics =
        static_cast<core::ServerSemantics>(static_cast<int>(v[kParamFailureSemantics]));
    cfg.victim_weights =
        static_cast<core::VictimWeights>(static_cast<int>(v[kParamVictimWeights]));
    return cfg;
}

inline dspn::SweepEngine::Factory multiversion_factory() {
    return [](const std::vector<double>& v) {
        return std::move(core::build_multiversion_dspn(decode_config(v)).net);
    };
}

/// R_{i,j,k} of a marking under the canonical place layout of
/// build_multiversion_dspn (Pmh=0, Pmc=1, Pmf=2, and Pmr=3 when proactive):
/// mirrors MultiVersionDspn::healthy/compromised/nonfunctional without
/// needing the model struct (the sweep factory only keeps the net).
inline double marking_reliability(const std::vector<double>& params,
                                  const dspn::Marking& m,
                                  const reliability::Params& rp) {
    int k = m[2];
    if (params[kParamProactive] != 0.0) k += m[3];
    return reliability::state_reliability(m[0], m[1], k, rp);
}

/// Sweep values of each Fig. 4 panel (a: rejuvenation interval, b: proactive
/// duration, c: MTTC, d: alpha, e: p, f: p'). Panels d-f sweep reward
/// parameters only.
inline std::vector<double> fig4_xs(char panel) {
    auto linspace = [](double lo, double hi, int n) {
        std::vector<double> out;
        for (int i = 0; i < n; ++i) out.push_back(lo + (hi - lo) * i / (n - 1));
        return out;
    };
    switch (panel) {
        case 'a': return {30, 60, 120, 180, 300, 420, 600, 900, 1200, 1800};
        case 'b': return {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
        case 'c': return {100, 250, 500, 1000, 1523, 2500, 4000, 5500, 7000};
        case 'd': return linspace(0.1, 1.0, 10);
        case 'e': return linspace(0.01, 0.23, 12);
        case 'f': return linspace(0.1, 0.6, 11);
    }
    throw std::invalid_argument("fig4_xs: unknown panel");
}

/// The full Fig. 4 grid as encoded parameter vectors: for every panel, every
/// sweep value, the six configurations (1v/2v/3v x NR/R) in table order.
/// Reward-parameter panels (d-f) repeat the base timing, so the engine
/// memoizes them down to the six distinct configurations.
inline std::vector<std::vector<double>> fig4_grid(
    const reliability::TimingParams& base) {
    std::vector<std::vector<double>> grid;
    for (char id : {'a', 'b', 'c', 'd', 'e', 'f'}) {
        for (double x : fig4_xs(id)) {
            for (std::size_t c = 0; c < 6; ++c) {
                core::DspnConfig cfg;
                cfg.modules = 1 + static_cast<int>(c / 2);
                cfg.proactive = (c % 2) == 1;
                cfg.timing = base;
                if (id == 'a') cfg.timing.rejuvenation_interval = x;
                if (id == 'b') cfg.timing.proactive_duration = x;
                if (id == 'c') cfg.timing.mttc = x;
                grid.push_back(encode_config(cfg));
            }
        }
    }
    return grid;
}

}  // namespace mvreju::bench
