// Regenerates Table VII of the paper: impact of the rejuvenation interval
// (1/gamma in {3, 5, 7, 9} s) on driving safety, on route #1 of Town02.
// The paper uses 5 runs per interval; we default to 15 (--runs overrides)
// because the collision counts at this scale are small and noisy.
//
// Expected shape: collision rate and colliding-run count grow with the
// interval; 3 s stays collision-free.

#include <cstdio>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 15);

    av::SensorConfig sensor;
    const auto detectors = bench::prepare_case_study_detectors(args, sensor);
    const auto towns = av::make_towns();
    const auto& route = towns[0].routes[0];  // route #1

    bench::print_header("Table VII: rejuvenation interval vs driving safety (route #1)");
    util::TextTable table({"1/gamma (s)", "1st coll.", "Total frames", "Coll. rate",
                           "#Coll."});
    for (double interval : {3.0, 5.0, 7.0, 9.0}) {
        av::ScenarioConfig cfg;
        cfg.rejuvenation = true;
        cfg.rejuvenation_interval = interval;
        const auto agg = bench::aggregate_runs(route, detectors, cfg, runs, 100);
        table.add_row({util::fmt(interval, 0),
                       agg.mean_first_collision < 0
                           ? "NA"
                           : std::to_string(static_cast<int>(agg.mean_first_collision)),
                       util::fmt(agg.mean_total_frames, 0),
                       util::fmt_pct(agg.mean_collision_rate),
                       std::to_string(agg.collided_runs) + "/" + std::to_string(runs)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\nPaper values (Table VII, 5 runs): 3 s -> NA/0.00%%/0-5; "
                "5 s -> 526/1.27%%/1-5; 7 s -> 246/8.93%%/2-5; 9 s -> 270/10.44%%/3-5\n");
    return 0;
}
