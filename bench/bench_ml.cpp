// Machine-readable inference-engine benchmarks: the per-sample naive layer
// loop (the pre-batching seed path) against the batched im2col+GEMM engine,
// on the Table II eval-set workload (the procedural signs test set) for all
// three sign-classifier architectures. Emits BENCH_ml.json stamped with run
// metadata (git SHA, build type, compiler).
//
// Three claims are checked, not just timed:
//   * batched predictions reproduce the naive per-sample argmax on every
//     eval image;
//   * batched logits stay within 1e-5 of the naive ones;
//   * batched logits are bit-identical for 1/2/4/8 threads.
//
// Usage: bench_ml [--out PATH] [--metrics PATH] [--trace PATH]
//   --out      result table        (default BENCH_ml.json)
//   --metrics  metrics snapshot    (default BENCH_ml.metrics.json)
//   --trace    Chrome/Perfetto trace of the whole run (off unless given)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "mvreju/data/signs.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/parallel.hpp"

namespace {

using namespace mvreju;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Best-of-`reps` wall time in milliseconds for `fn`.
template <typename Fn>
double time_best_ms(int reps, Fn&& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        best = std::min(best, ms_since(start));
    }
    return best;
}

/// The seed path this PR replaced: one image at a time through every
/// layer's training-grade forward(x, /*training=*/false) loop nest.
std::vector<int> naive_predict_all(ml::Sequential& model,
                                   const std::vector<ml::Tensor>& images,
                                   std::vector<float>* logits_out) {
    std::vector<int> preds;
    preds.reserve(images.size());
    if (logits_out) logits_out->clear();
    for (const ml::Tensor& img : images) {
        ml::Tensor x = img;
        for (std::size_t l = 0; l < model.layer_count(); ++l)
            x = model.layer(l).forward(x, /*training=*/false);
        preds.push_back(static_cast<int>(ml::argmax(x)));
        if (logits_out)
            logits_out->insert(logits_out->end(), x.data().begin(), x.data().end());
    }
    return preds;
}

struct ThreadRow {
    std::size_t threads = 0;
    double ms = 0.0;
    double images_per_s = 0.0;
    double speedup_vs_1 = 0.0;
    bool bit_identical_to_1thread = false;
};

struct ModelRow {
    std::string name;
    std::size_t parameters = 0;
    double naive_ms = 0.0;
    double batched_1thread_ms = 0.0;
    double speedup_1thread = 0.0;
    double max_abs_logit_diff = 0.0;
    bool argmax_identical = false;
    std::vector<ThreadRow> threads;
};

bool write_json(const std::string& path, std::size_t images,
                const std::vector<ModelRow>& rows, bool all_argmax, bool all_bits,
                double min_speedup) {
    std::ofstream out(path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"ml\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
    out << "  \"eval_images\": " << images << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ModelRow& r = rows[i];
        out << "    {\"name\": \"" << r.name << "\", \"parameters\": " << r.parameters
            << ", \"naive_per_sample_ms\": " << r.naive_ms
            << ", \"batched_1thread_ms\": " << r.batched_1thread_ms
            << ", \"speedup_1thread\": " << r.speedup_1thread
            << ", \"max_abs_logit_diff\": " << r.max_abs_logit_diff
            << ", \"argmax_identical\": " << (r.argmax_identical ? "true" : "false")
            << ", \"threads\": [\n";
        for (std::size_t t = 0; t < r.threads.size(); ++t) {
            const ThreadRow& tr = r.threads[t];
            out << "      {\"threads\": " << tr.threads << ", \"ms\": " << tr.ms
                << ", \"images_per_s\": " << tr.images_per_s
                << ", \"speedup_vs_1\": " << tr.speedup_vs_1
                << ", \"bit_identical_to_1thread\": "
                << (tr.bit_identical_to_1thread ? "true" : "false") << "}"
                << (t + 1 < r.threads.size() ? ",\n" : "\n");
        }
        out << "    ]}" << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"all_argmax_identical\": " << (all_argmax ? "true" : "false") << ",\n";
    out << "  \"all_bit_identical\": " << (all_bits ? "true" : "false") << ",\n";
    out << "  \"min_speedup_1thread\": " << min_speedup << "\n";
    out << "}\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string out_path = args.get("out", std::string("BENCH_ml.json"));
    obs::Session session(args, "BENCH_ml.metrics.json");

    // The Table II workload: the full procedural signs test set. Training
    // does not change the FLOP count, so the models run with their seeded
    // initial weights and the bench stays fast enough for CI.
    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 1;  // the test set is independent of train_count
    const auto dataset = data::make_traffic_signs(data_cfg);
    const std::vector<ml::Tensor>& images = dataset.test.images;
    const std::size_t sample_size = images.front().size();

    std::vector<ml::Sequential> models;
    models.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));

    // One (N, C, H, W) batch of the whole eval set for the bit-identity
    // check (predict_batch re-chunks internally for the timed runs).
    ml::Tensor full_batch({images.size(), 3, 16, 16});
    for (std::size_t i = 0; i < images.size(); ++i)
        std::memcpy(full_batch.data().data() + i * sample_size,
                    images[i].data().data(), sample_size * sizeof(float));

    std::vector<ModelRow> rows;
    bool all_argmax = true;
    bool all_bits = true;
    double min_speedup = std::numeric_limits<double>::infinity();

    for (ml::Sequential& model : models) {
        ModelRow row;
        row.name = model.name();
        row.parameters = model.parameter_count();

        std::vector<float> naive_logits;
        std::vector<int> naive_preds;
        row.naive_ms = time_best_ms(
            2, [&] { naive_preds = naive_predict_all(model, images, &naive_logits); });

        std::vector<int> batched_preds;
        row.batched_1thread_ms =
            time_best_ms(3, [&] { batched_preds = model.predict_batch(images, 1); });
        row.speedup_1thread = row.naive_ms / row.batched_1thread_ms;
        row.argmax_identical = batched_preds == naive_preds;

        ml::Workspace ws;
        ml::Tensor logits_1 = model.logits_batch(full_batch, ws, 1);
        for (std::size_t i = 0; i < logits_1.size(); ++i)
            row.max_abs_logit_diff = std::max(
                row.max_abs_logit_diff,
                static_cast<double>(std::fabs(logits_1[i] - naive_logits[i])));

        for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
            ThreadRow tr;
            tr.threads = threads;
            tr.ms = time_best_ms(
                3, [&] { (void)model.predict_batch(images, threads); });
            tr.images_per_s = 1000.0 * static_cast<double>(images.size()) / tr.ms;
            tr.speedup_vs_1 = row.threads.empty() ? 1.0 : row.threads.front().ms / tr.ms;
            ml::Tensor logits_t = model.logits_batch(full_batch, ws, threads);
            tr.bit_identical_to_1thread =
                logits_t.size() == logits_1.size() &&
                std::memcmp(logits_t.data().data(), logits_1.data().data(),
                            logits_1.size() * sizeof(float)) == 0;
            ws.give(std::move(logits_t));
            all_bits = all_bits && tr.bit_identical_to_1thread;
            row.threads.push_back(tr);
            std::cout << row.name << " threads=" << tr.threads << " ms=" << tr.ms
                      << " images_per_s=" << tr.images_per_s
                      << " bit_identical=" << (tr.bit_identical_to_1thread ? "yes" : "no")
                      << "\n";
        }
        std::cout << row.name << " naive_ms=" << row.naive_ms
                  << " batched_1thread_ms=" << row.batched_1thread_ms
                  << " speedup=" << row.speedup_1thread
                  << " max_abs_logit_diff=" << row.max_abs_logit_diff
                  << " argmax_identical=" << (row.argmax_identical ? "yes" : "no")
                  << "\n";

        all_argmax = all_argmax && row.argmax_identical;
        min_speedup = std::min(min_speedup, row.speedup_1thread);
        rows.push_back(std::move(row));
    }

    if (!write_json(out_path, images.size(), rows, all_argmax, all_bits, min_speedup)) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (min 1-thread speedup " << min_speedup
              << "x)\n";
    if (!all_argmax) {
        std::cerr << "ERROR: batched argmax differs from the per-sample path\n";
        return 1;
    }
    if (!all_bits) {
        std::cerr << "ERROR: batched logits not bit-identical across thread counts\n";
        return 1;
    }
    if (min_speedup < 3.0)
        std::cerr << "WARNING: batched speedup below the 3x target\n";
    return 0;
}
