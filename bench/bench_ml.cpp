// Machine-readable inference-engine benchmarks: the per-sample naive layer
// loop (the pre-batching seed path) against the batched im2col+GEMM engine,
// on the Table II eval-set workload (the procedural signs test set) for all
// three sign-classifier architectures, plus the kernel-backend registry
// (scalar / avx2 / int8). Emits BENCH_ml.json stamped with run metadata
// (git SHA, build type, compiler).
//
// Claims checked, not just timed:
//   * batched predictions reproduce the naive per-sample argmax on every
//     eval image;
//   * batched logits stay within 1e-5 of the naive ones;
//   * batched logits are bit-identical for 1/2/4/8 threads;
//   * every supported backend is bit-identical to itself across threads;
//   * on the fully-trained Table II weights (cached like the table2 bench,
//     only the first invocation trains): avx2 argmax-identical to scalar,
//     int8 within the declared drift tolerance at >= 99% argmax agreement
//     per model — the gates bench_compare.py enforces in CI.
//
// Usage: bench_ml [--out PATH] [--metrics PATH] [--trace PATH] [--cache DIR]
//   --out      result table        (default BENCH_ml.json)
//   --metrics  metrics snapshot    (default BENCH_ml.metrics.json)
//   --trace    Chrome/Perfetto trace of the whole run (off unless given)
//   --cache    trained-parameter cache shared with table2_model_accuracy
//              (default .mvreju_cache)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mvreju/data/signs.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"
#include "mvreju/num/backend.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Best-of-`reps` wall time in milliseconds for `fn`.
template <typename Fn>
double time_best_ms(int reps, Fn&& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        best = std::min(best, ms_since(start));
    }
    return best;
}

/// The seed path this PR replaced: one image at a time through every
/// layer's training-grade forward(x, /*training=*/false) loop nest.
std::vector<int> naive_predict_all(ml::Sequential& model,
                                   const std::vector<ml::Tensor>& images,
                                   std::vector<float>* logits_out) {
    std::vector<int> preds;
    preds.reserve(images.size());
    if (logits_out) logits_out->clear();
    for (const ml::Tensor& img : images) {
        ml::Tensor x = img;
        for (std::size_t l = 0; l < model.layer_count(); ++l)
            x = model.layer(l).forward(x, /*training=*/false);
        preds.push_back(static_cast<int>(ml::argmax(x)));
        if (logits_out)
            logits_out->insert(logits_out->end(), x.data().begin(), x.data().end());
    }
    return preds;
}

struct ThreadRow {
    std::size_t threads = 0;
    double ms = 0.0;
    double images_per_s = 0.0;
    double speedup_vs_1 = 0.0;
    bool bit_identical_to_1thread = false;
};

struct ModelRow {
    std::string name;
    std::size_t parameters = 0;
    double naive_ms = 0.0;
    double batched_1thread_ms = 0.0;
    double speedup_1thread = 0.0;
    double max_abs_logit_diff = 0.0;
    bool argmax_identical = false;
    std::vector<ThreadRow> threads;
};

/// One kernel backend's eval-set throughput sweep plus its equivalence
/// verdict against the scalar oracle on the same (untrained) weights.
struct BackendRow {
    std::string name;
    bool supported = false;
    double gemm_gflops = 0.0;  ///< raw 1-thread sgemm throughput
    bool argmax_identical_to_scalar = false;
    bool bit_identical_across_threads = false;
    std::vector<ThreadRow> threads;
};

/// Per-model int8-vs-scalar accuracy on the trained Table II weights.
struct TrainedInt8Row {
    std::string name;
    double agreement = 0.0;
    double max_logit_drift = 0.0;
};

/// Raw C += A·B throughput in GFLOP/s at one thread (the per-core number
/// the avx2 >= 2x scalar gate compares).
double gemm_gflops_1thread(const num::KernelBackend& kb, std::size_t m,
                           std::size_t n, std::size_t k) {
    util::Rng rng(4242);
    std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f);
    for (float& v : a) v = rng.uniform(-1.0f, 1.0f);
    for (float& v : b) v = rng.uniform(-1.0f, 1.0f);
    const double ms =
        time_best_ms(3, [&] { kb.sgemm(m, n, k, a.data(), b.data(), c.data(), 1); });
    return 2.0 * static_cast<double>(m * n * k) / 1e6 / ms;
}

/// Load the trained Table II parameters from `cache`, training and caching
/// them on the first run (same recipe + file naming as table2_model_accuracy,
/// so the two benches share one cache).
void load_or_train(ml::Sequential& model, const ml::Dataset& train,
                   const std::filesystem::path& cache) {
    namespace fs = std::filesystem;
    fs::create_directories(cache);
    const fs::path file = cache / (model.name() + "_signs.params");
    if (fs::exists(file)) {
        model.load_parameters(file);
        return;
    }
    std::cout << "training " << model.name() << " (cold parameter cache)...\n";
    ml::TrainConfig tc;
    tc.epochs = 16;
    tc.learning_rate = 0.025f;
    tc.lr_decay = 0.88f;
    model.train(train, tc);
    model.save_parameters(file);
}

bool write_json(const std::string& path, std::size_t images,
                const std::vector<ModelRow>& rows, bool all_argmax, bool all_bits,
                double min_speedup, const std::string& backend_sections) {
    std::ofstream out(path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"ml\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
    out << "  \"eval_images\": " << images << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ModelRow& r = rows[i];
        out << "    {\"name\": \"" << r.name << "\", \"parameters\": " << r.parameters
            << ", \"naive_per_sample_ms\": " << r.naive_ms
            << ", \"batched_1thread_ms\": " << r.batched_1thread_ms
            << ", \"speedup_1thread\": " << r.speedup_1thread
            << ", \"max_abs_logit_diff\": " << r.max_abs_logit_diff
            << ", \"argmax_identical\": " << (r.argmax_identical ? "true" : "false")
            << ", \"threads\": [\n";
        for (std::size_t t = 0; t < r.threads.size(); ++t) {
            const ThreadRow& tr = r.threads[t];
            out << "      {\"threads\": " << tr.threads << ", \"ms\": " << tr.ms
                << ", \"images_per_s\": " << tr.images_per_s
                << ", \"speedup_vs_1\": " << tr.speedup_vs_1
                << ", \"bit_identical_to_1thread\": "
                << (tr.bit_identical_to_1thread ? "true" : "false") << "}"
                << (t + 1 < r.threads.size() ? ",\n" : "\n");
        }
        out << "    ]}" << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << backend_sections;
    out << "  \"all_argmax_identical\": " << (all_argmax ? "true" : "false") << ",\n";
    out << "  \"all_bit_identical\": " << (all_bits ? "true" : "false") << ",\n";
    out << "  \"min_speedup_1thread\": " << min_speedup << "\n";
    out << "}\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string out_path = args.get("out", std::string("BENCH_ml.json"));
    const std::filesystem::path cache(
        args.get("cache", std::string(".mvreju_cache")));
    obs::Session session(args, "BENCH_ml.metrics.json");

    // The Table II workload: the full procedural signs test set. Training
    // does not change the FLOP count, so the models run with their seeded
    // initial weights and the bench stays fast enough for CI.
    data::SignDatasetConfig data_cfg;
    data_cfg.train_count = 1;  // the test set is independent of train_count
    const auto dataset = data::make_traffic_signs(data_cfg);
    const std::vector<ml::Tensor>& images = dataset.test.images;
    const std::size_t sample_size = images.front().size();

    std::vector<ml::Sequential> models;
    models.push_back(ml::make_mini_alexnet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_micro_resnet(3, 16, data::kSignClasses, 38));
    models.push_back(ml::make_tiny_lenet(3, 16, data::kSignClasses, 38));

    // One (N, C, H, W) batch of the whole eval set for the bit-identity
    // check (predict_batch re-chunks internally for the timed runs).
    ml::Tensor full_batch({images.size(), 3, 16, 16});
    for (std::size_t i = 0; i < images.size(); ++i)
        std::memcpy(full_batch.data().data() + i * sample_size,
                    images[i].data().data(), sample_size * sizeof(float));

    std::vector<ModelRow> rows;
    bool all_argmax = true;
    bool all_bits = true;
    double min_speedup = std::numeric_limits<double>::infinity();

    for (ml::Sequential& model : models) {
        ModelRow row;
        row.name = model.name();
        row.parameters = model.parameter_count();

        std::vector<float> naive_logits;
        std::vector<int> naive_preds;
        row.naive_ms = time_best_ms(
            2, [&] { naive_preds = naive_predict_all(model, images, &naive_logits); });

        std::vector<int> batched_preds;
        row.batched_1thread_ms =
            time_best_ms(3, [&] { batched_preds = model.predict_batch(images, 1); });
        row.speedup_1thread = row.naive_ms / row.batched_1thread_ms;
        row.argmax_identical = batched_preds == naive_preds;

        ml::Workspace ws;
        ml::Tensor logits_1 = model.logits_batch(full_batch, ws, 1);
        for (std::size_t i = 0; i < logits_1.size(); ++i)
            row.max_abs_logit_diff = std::max(
                row.max_abs_logit_diff,
                static_cast<double>(std::fabs(logits_1[i] - naive_logits[i])));

        for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
            ThreadRow tr;
            tr.threads = threads;
            tr.ms = time_best_ms(
                3, [&] { (void)model.predict_batch(images, threads); });
            tr.images_per_s = 1000.0 * static_cast<double>(images.size()) / tr.ms;
            tr.speedup_vs_1 = row.threads.empty() ? 1.0 : row.threads.front().ms / tr.ms;
            ml::Tensor logits_t = model.logits_batch(full_batch, ws, threads);
            tr.bit_identical_to_1thread =
                logits_t.size() == logits_1.size() &&
                std::memcmp(logits_t.data().data(), logits_1.data().data(),
                            logits_1.size() * sizeof(float)) == 0;
            ws.give(std::move(logits_t));
            all_bits = all_bits && tr.bit_identical_to_1thread;
            row.threads.push_back(tr);
            std::cout << row.name << " threads=" << tr.threads << " ms=" << tr.ms
                      << " images_per_s=" << tr.images_per_s
                      << " bit_identical=" << (tr.bit_identical_to_1thread ? "yes" : "no")
                      << "\n";
        }
        std::cout << row.name << " naive_ms=" << row.naive_ms
                  << " batched_1thread_ms=" << row.batched_1thread_ms
                  << " speedup=" << row.speedup_1thread
                  << " max_abs_logit_diff=" << row.max_abs_logit_diff
                  << " argmax_identical=" << (row.argmax_identical ? "yes" : "no")
                  << "\n";

        all_argmax = all_argmax && row.argmax_identical;
        min_speedup = std::min(min_speedup, row.speedup_1thread);
        rows.push_back(std::move(row));
    }

    // ---- Kernel-backend registry: per-backend throughput + equivalence ----
    //
    // Raw GEMM throughput on a conv-shaped problem, then the eval-set sweep
    // per backend on the same (untrained) weights the rows above used —
    // perf is weight-independent, so the scalar rows stay bit-compatible
    // with the pre-registry baselines.
    constexpr std::size_t kGemmM = 256, kGemmN = 1024, kGemmK = 256;
    std::vector<BackendRow> backend_rows;
    bool all_backend_bits = true;
    bool avx2_argmax_identical = false;
    double scalar_gflops = 0.0, avx2_gflops = 0.0, int8_gflops = 0.0;

    ml::Sequential& sweep_model = models[0];  // MiniAlexNet, the largest
    std::vector<int> scalar_preds;
    for (const num::KernelBackend* kb : num::backends()) {
        BackendRow br;
        br.name = std::string(kb->name());
        br.supported = kb->supported();
        if (!br.supported) {
            backend_rows.push_back(std::move(br));
            continue;
        }
        br.gemm_gflops = gemm_gflops_1thread(*kb, kGemmM, kGemmN, kGemmK);
        if (br.name == "scalar") scalar_gflops = br.gemm_gflops;
        if (br.name == "avx2") avx2_gflops = br.gemm_gflops;
        if (br.name == "int8") int8_gflops = br.gemm_gflops;

        // Full-eval-set argmax vs the scalar oracle, across all three
        // architectures (not just the sweep model).
        br.argmax_identical_to_scalar = true;
        for (ml::Sequential& model : models) {
            ml::Workspace ws;
            const ml::Tensor oracle =
                model.logits_batch(full_batch, ws, 1, num::scalar_backend());
            const ml::Tensor mine = model.logits_batch(full_batch, ws, 1, *kb);
            for (std::size_t i = 0; i < images.size(); ++i) {
                const float* orow = oracle.data().data() + i * data::kSignClasses;
                const float* mrow = mine.data().data() + i * data::kSignClasses;
                std::size_t ob = 0, mb = 0;
                for (std::size_t c = 1; c < data::kSignClasses; ++c) {
                    if (orow[c] > orow[ob]) ob = c;
                    if (mrow[c] > mrow[mb]) mb = c;
                }
                if (ob != mb) br.argmax_identical_to_scalar = false;
            }
        }
        if (br.name == "avx2") avx2_argmax_identical = br.argmax_identical_to_scalar;

        ml::Workspace ws;
        const ml::Tensor ref = sweep_model.logits_batch(full_batch, ws, 1, *kb);
        br.bit_identical_across_threads = true;
        for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
            ThreadRow tr;
            tr.threads = threads;
            sweep_model.bind_backend(kb);
            tr.ms = time_best_ms(
                3, [&] { (void)sweep_model.predict_batch(images, threads); });
            sweep_model.bind_backend(nullptr);
            tr.images_per_s = 1000.0 * static_cast<double>(images.size()) / tr.ms;
            tr.speedup_vs_1 = br.threads.empty() ? 1.0 : br.threads.front().ms / tr.ms;
            ml::Tensor logits_t = sweep_model.logits_batch(full_batch, ws, threads, *kb);
            tr.bit_identical_to_1thread =
                logits_t.size() == ref.size() &&
                std::memcmp(logits_t.data().data(), ref.data().data(),
                            ref.size() * sizeof(float)) == 0;
            ws.give(std::move(logits_t));
            br.bit_identical_across_threads =
                br.bit_identical_across_threads && tr.bit_identical_to_1thread;
            br.threads.push_back(tr);
            std::cout << "backend=" << br.name << " threads=" << tr.threads
                      << " ms=" << tr.ms << " images_per_s=" << tr.images_per_s
                      << "\n";
        }
        all_backend_bits = all_backend_bits && br.bit_identical_across_threads;
        std::cout << "backend=" << br.name << " gemm_gflops=" << br.gemm_gflops
                  << " argmax_identical_to_scalar="
                  << (br.argmax_identical_to_scalar ? "yes" : "no") << "\n";
        backend_rows.push_back(std::move(br));
    }
    const bool avx2_supported =
        num::find_backend("avx2") != nullptr && num::avx2_supported();
    const double avx2_speedup =
        scalar_gflops > 0.0 ? avx2_gflops / scalar_gflops : 0.0;

    // ---- int8 accuracy on the fully-trained Table II weights ----
    //
    // The quantized replica serves alongside float32 versions, so its gate
    // runs on serving-grade weights (cached; same recipe as table2).
    data::SignDatasetConfig trained_cfg;  // the full default training set
    const auto trained_ds = data::make_traffic_signs(trained_cfg);
    const num::KernelBackend& int8 = *num::find_backend("int8");
    std::vector<TrainedInt8Row> trained_rows;
    double int8_agreement_min = 1.0;
    double int8_drift_max = 0.0;
    for (ml::Sequential& model : models) {
        load_or_train(model, trained_ds.train, cache);
        ml::Workspace ws;
        const ml::Tensor oracle =
            model.logits_batch(full_batch, ws, 1, num::scalar_backend());
        const ml::Tensor quant = model.logits_batch(full_batch, ws, 1, int8);
        TrainedInt8Row tr;
        tr.name = model.name();
        std::size_t agree = 0;
        for (std::size_t i = 0; i < images.size(); ++i) {
            const float* orow = oracle.data().data() + i * data::kSignClasses;
            const float* qrow = quant.data().data() + i * data::kSignClasses;
            std::size_t ob = 0, qb = 0;
            for (std::size_t c = 0; c < data::kSignClasses; ++c) {
                if (orow[c] > orow[ob]) ob = c;
                if (qrow[c] > qrow[qb]) qb = c;
                tr.max_logit_drift = std::max(
                    tr.max_logit_drift,
                    static_cast<double>(std::fabs(qrow[c] - orow[c])));
            }
            agree += (ob == qb);
        }
        tr.agreement = static_cast<double>(agree) / static_cast<double>(images.size());
        int8_agreement_min = std::min(int8_agreement_min, tr.agreement);
        int8_drift_max = std::max(int8_drift_max, tr.max_logit_drift);
        std::cout << "int8_trained " << tr.name << " agreement=" << tr.agreement
                  << " max_logit_drift=" << tr.max_logit_drift << "\n";
        trained_rows.push_back(std::move(tr));
    }

    std::ostringstream extra;
    extra << std::setprecision(17);
    extra << "  \"backends\": [\n";
    for (std::size_t i = 0; i < backend_rows.size(); ++i) {
        const BackendRow& br = backend_rows[i];
        extra << "    {\"name\": \"" << br.name << "\", \"supported\": "
              << (br.supported ? "true" : "false")
              << ", \"gemm_gflops\": " << br.gemm_gflops
              << ", \"argmax_identical_to_scalar\": "
              << (br.argmax_identical_to_scalar ? "true" : "false")
              << ", \"bit_identical_across_threads\": "
              << (br.bit_identical_across_threads ? "true" : "false")
              << ", \"threads\": [";
        for (std::size_t t = 0; t < br.threads.size(); ++t) {
            const ThreadRow& tr = br.threads[t];
            extra << "\n      {\"threads\": " << tr.threads << ", \"ms\": " << tr.ms
                  << ", \"images_per_s\": " << tr.images_per_s
                  << ", \"speedup_vs_1\": " << tr.speedup_vs_1 << "}"
                  << (t + 1 < br.threads.size() ? "," : "\n    ");
        }
        extra << "]}" << (i + 1 < backend_rows.size() ? ",\n" : "\n");
    }
    extra << "  ],\n";
    extra << "  \"gemm\": {\"m\": " << kGemmM << ", \"n\": " << kGemmN
          << ", \"k\": " << kGemmK << ", \"scalar_gflops\": " << scalar_gflops
          << ", \"avx2_gflops\": " << avx2_gflops
          << ", \"int8_gflops\": " << int8_gflops << "},\n";
    extra << "  \"avx2_supported\": " << (avx2_supported ? "true" : "false") << ",\n";
    extra << "  \"avx2_gemm_speedup\": " << avx2_speedup << ",\n";
    extra << "  \"avx2_argmax_identical\": "
          << (avx2_argmax_identical ? "true" : "false") << ",\n";
    extra << "  \"all_backends_bit_identical\": "
          << (all_backend_bits ? "true" : "false") << ",\n";
    extra << "  \"int8_trained\": {\"agreement_min\": " << int8_agreement_min
          << ", \"max_logit_drift\": " << int8_drift_max << ", \"per_model\": [\n";
    for (std::size_t i = 0; i < trained_rows.size(); ++i) {
        const TrainedInt8Row& tr = trained_rows[i];
        extra << "    {\"name\": \"" << tr.name << "\", \"agreement\": "
              << tr.agreement << ", \"max_logit_drift\": " << tr.max_logit_drift
              << "}" << (i + 1 < trained_rows.size() ? ",\n" : "\n");
    }
    extra << "  ]},\n";

    if (!write_json(out_path, images.size(), rows, all_argmax, all_bits, min_speedup,
                    extra.str())) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (min 1-thread speedup " << min_speedup
              << "x, avx2 " << (avx2_supported ? "supported" : "unavailable")
              << ", avx2_gemm_speedup " << avx2_speedup << "x)\n";
    if (!all_argmax) {
        std::cerr << "ERROR: batched argmax differs from the per-sample path\n";
        return 1;
    }
    if (!all_bits) {
        std::cerr << "ERROR: batched logits not bit-identical across thread counts\n";
        return 1;
    }
    if (!all_backend_bits) {
        std::cerr << "ERROR: a backend is not bit-identical across thread counts\n";
        return 1;
    }
    if (avx2_supported && !avx2_argmax_identical) {
        std::cerr << "ERROR: avx2 backend argmax differs from the scalar oracle\n";
        return 1;
    }
    if (min_speedup < 3.0)
        std::cerr << "WARNING: batched speedup below the 3x target\n";
    return 0;
}
