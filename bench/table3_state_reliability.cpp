// Regenerates Table III of the paper: output reliability R_{i,j,k} of every
// reachable state of the three-version system, computed from the Section V-B
// reliability functions with the paper's fitted constants (exact match to
// all nine published decimals). Override the constants with
// --p / --pprime / --alpha to evaluate your own fit.
//
// A second section weights each state's reliability with its steady-state
// probability from the Fig. 2 / Fig. 3 DSPN (Table IV timings, solved via
// the sweep engine), showing how much each R_{i,j,k} contributes to the
// expected reliability of Table V.

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/reliability/functions.hpp"
#include "mvreju/util/table.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const auto params = bench::params_from_args(args);

    bench::print_header("Table III: output reliability per system state");
    std::printf("p = %.9f, p' = %.9f, alpha = %.9f\n", params.p, params.p_prime,
                params.alpha);
    if (!reliability::params_sane(params) ||
        !reliability::within_three_version_boundary(params)) {
        std::printf("WARNING: parameters violate the Section V-B boundaries\n");
    }

    util::TextTable table({"System state", "Reliability"});
    const int states[9][3] = {{3, 0, 0}, {2, 0, 1}, {2, 1, 0}, {1, 0, 2}, {1, 1, 1},
                              {1, 2, 0}, {0, 3, 0}, {0, 2, 1}, {0, 1, 2}};
    for (const auto& s : states) {
        char name[32];
        std::snprintf(name, sizeof name, "(%d,%d,%d)", s[0], s[1], s[2]);
        table.add_row({name, util::fmt(reliability::state_reliability(
                                           s[0], s[1], s[2], params),
                                       9)});
    }
    std::fputs(table.str().c_str(), stdout);

    std::printf("\nPaper values (Table III): 0.988626295 0.976732729 0.881542506 "
                "0.937107416\n0.943896878 0.815870804 0.926682718 0.911061026 "
                "0.759593560\n");

    // --- Steady-state occupancy weighting (sweep engine) -----------------
    // P(i,j,k) of the three-version DSPN without/with rejuvenation, plus the
    // resulting expected reliability (the 3v row of Table V).
    bench::print_header("Occupancy-weighted reliability, 3-version DSPN");
    const auto timing = bench::timing_from_args(args);
    dspn::SweepEngine engine(bench::multiversion_factory());
    core::DspnConfig cfg;
    cfg.modules = 3;
    cfg.timing = timing;
    cfg.proactive = false;
    const std::vector<double> nr_params = bench::encode_config(cfg);
    cfg.proactive = true;
    const std::vector<double> r_params = bench::encode_config(cfg);
    const std::vector<dspn::SweepPoint> points = engine.run({nr_params, r_params});

    util::TextTable weighted({"System state", "P w/o rej.", "P w/ rej.",
                              "R contribution w/o", "w/"});
    for (const auto& s : states) {
        char name[32];
        std::snprintf(name, sizeof name, "(%d,%d,%d)", s[0], s[1], s[2]);
        const double r = reliability::state_reliability(s[0], s[1], s[2], params);
        // Occupancy of the (i,j,k) class: sum of pi over markings mapping to
        // it (the proactive net counts modules under rejuvenation as
        // non-functional, so several markings can share a class).
        double occupancy[2] = {0.0, 0.0};
        for (int v = 0; v < 2; ++v) {
            const auto& point = points[static_cast<std::size_t>(v)];
            occupancy[v] = engine.expected_reward(
                point, [&](const std::vector<double>& pv, const dspn::Marking& m) {
                    const bool proactive = pv[bench::kParamProactive] != 0.0;
                    const int k = m[2] + (proactive ? m[3] : 0);
                    return (m[0] == s[0] && m[1] == s[1] && k == s[2]) ? 1.0 : 0.0;
                });
        }
        weighted.add_row({name, util::fmt(occupancy[0], 6), util::fmt(occupancy[1], 6),
                          util::fmt(occupancy[0] * r, 6), util::fmt(occupancy[1] * r, 6)});
    }
    std::fputs(weighted.str().c_str(), stdout);
    double expected[2] = {0.0, 0.0};
    for (int v = 0; v < 2; ++v) {
        expected[v] = engine.expected_reward(
            points[static_cast<std::size_t>(v)],
            [&](const std::vector<double>& pv, const dspn::Marking& m) {
                return bench::marking_reliability(pv, m, params);
            });
    }
    std::printf("Expected reliability (Table V, 3v): %s w/o rej., %s w/ rej.\n",
                util::fmt(expected[0], 6).c_str(), util::fmt(expected[1], 6).c_str());
    return 0;
}
