// Regenerates Table III of the paper: output reliability R_{i,j,k} of every
// reachable state of the three-version system, computed from the Section V-B
// reliability functions with the paper's fitted constants (exact match to
// all nine published decimals). Override the constants with
// --p / --pprime / --alpha to evaluate your own fit.

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/reliability/functions.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const auto params = bench::params_from_args(args);

    bench::print_header("Table III: output reliability per system state");
    std::printf("p = %.9f, p' = %.9f, alpha = %.9f\n", params.p, params.p_prime,
                params.alpha);
    if (!reliability::params_sane(params) ||
        !reliability::within_three_version_boundary(params)) {
        std::printf("WARNING: parameters violate the Section V-B boundaries\n");
    }

    util::TextTable table({"System state", "Reliability"});
    const int states[9][3] = {{3, 0, 0}, {2, 0, 1}, {2, 1, 0}, {1, 0, 2}, {1, 1, 1},
                              {1, 2, 0}, {0, 3, 0}, {0, 2, 1}, {0, 1, 2}};
    for (const auto& s : states) {
        char name[32];
        std::snprintf(name, sizeof name, "(%d,%d,%d)", s[0], s[1], s[2]);
        table.add_row({name, util::fmt(reliability::state_reliability(
                                           s[0], s[1], s[2], params),
                                       9)});
    }
    std::fputs(table.str().c_str(), stdout);

    std::printf("\nPaper values (Table III): 0.988626295 0.976732729 0.881542506 "
                "0.937107416\n0.943896878 0.815870804 0.926682718 0.911061026 "
                "0.759593560\n");
    return 0;
}
