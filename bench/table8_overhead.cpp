// Regenerates Table VIII of the paper: overhead comparison of the
// single-version, three-version, and three-version-with-rejuvenation
// perception configurations on route #1: perception throughput (FPS),
// process CPU utilisation, and -- in place of the paper's GPU%, which has no
// counterpart on a CPU-only substrate -- the inference load (average model
// invocations per frame). Three runs per configuration with 95% CIs, as in
// the paper.
//
// Expected shape: the single version has the highest FPS and lowest load;
// the three-version variants cost more; rejuvenation does not add
// statistically visible overhead on top of the three-version system.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/util/table.hpp"

namespace {

double process_cpu_seconds() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    auto to_seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return to_seconds(usage.ru_utime) + to_seconds(usage.ru_stime);
}

std::string ci_string(const mvreju::num::ConfidenceInterval& ci, int digits) {
    return mvreju::util::fmt(ci.mean, digits) + " [" + mvreju::util::fmt(ci.lower, digits) +
           ", " + mvreju::util::fmt(ci.upper, digits) + "]";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 3);

    av::SensorConfig sensor;
    const auto detectors = bench::prepare_case_study_detectors(args, sensor);
    const auto towns = av::make_towns();
    const auto& route = towns[0].routes[0];

    bench::print_header("Table VIII: overhead comparison (route #1)");
    util::TextTable table({"System", "Perception FPS [CI]", "CPU-% [CI]",
                           "Inference load [CI]"});

    struct Config {
        const char* name;
        int versions;
        bool rejuvenation;
    };
    for (const Config& config : {Config{"Single-v", 1, false},
                                 Config{"Three-v", 3, false},
                                 Config{"Three-v w/rej", 3, true}}) {
        std::vector<double> fps;
        std::vector<double> cpu;
        std::vector<double> load;
        for (int run = 0; run < runs; ++run) {
            av::ScenarioConfig cfg;
            cfg.versions = config.versions;
            cfg.rejuvenation = config.rejuvenation;
            cfg.mttc = config.versions == 1 ? 1e9 : cfg.mttc;  // keep 1v comparable
            cfg.seed = 300 + static_cast<std::uint64_t>(run);

            const double cpu_before = process_cpu_seconds();
            const auto wall_before = std::chrono::steady_clock::now();
            const av::RunMetrics m = av::run_scenario(route, detectors, cfg);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_before)
                    .count();
            const double cpu_used = process_cpu_seconds() - cpu_before;

            fps.push_back(m.total_frames / m.perception_wall_seconds);
            cpu.push_back(100.0 * cpu_used / wall);
            load.push_back(static_cast<double>(m.inferences) / m.total_frames);
        }
        table.add_row({config.name, ci_string(num::mean_ci95(fps), 1),
                       ci_string(num::mean_ci95(cpu), 1),
                       ci_string(num::mean_ci95(load), 2)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf(
        "\nNotes: FPS counts only the perception stage (inference + voting), like the\n"
        "paper's measurement of the perception process. CPU-%% is process CPU over wall\n"
        "time (the paper's 3-4%% is of a 10-core machine under a GPU workload; ours is\n"
        "CPU-bound, so expect ~100%%). Inference load is the documented stand-in for\n"
        "GPU-%% (DESIGN.md substitution 5).\n"
        "Paper values (Table VIII): FPS 5.85 / 4.27 / 4.20; CPU 3.62 / 3.97 / 3.76;\n"
        "GPU 28 / 35 / 33 -- the single version is cheapest, rejuvenation adds no\n"
        "statistically significant cost over the three-version system.\n");
    return 0;
}
