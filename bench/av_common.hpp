#pragma once

// Shared setup for the Section VII (CARLA case study) benchmarks: detector
// preparation with disk caching and aggregation helpers over repeated runs.

#include <cstdio>
#include <string>
#include <vector>

#include "mvreju/av/simulation.hpp"
#include "mvreju/num/stats.hpp"
#include "mvreju/util/args.hpp"

namespace mvreju::bench {

/// Train or load the three detector versions (and their compromised twins).
inline av::DetectorSet prepare_case_study_detectors(const util::Args& args,
                                                    const av::SensorConfig& sensor) {
    av::DetectorTrainOptions opts;
    opts.cache_dir = args.get("cache", std::string(".mvreju_cache"));
    const av::DetectorSet set = av::prepare_detectors(sensor, opts);
    std::printf("detector versions (YOLOv5 stand-ins):\n");
    for (std::size_t m = 0; m < set.healthy.size(); ++m) {
        std::printf("  %-10s healthy accuracy %.3f;", set.healthy[m].name().c_str(),
                    set.healthy_accuracy[m]);
        for (const auto& v : set.compromised[m])
            std::printf(" compromised %.3f (layer %zu, seed %llu)", v.accuracy,
                        v.injection_layer,
                        static_cast<unsigned long long>(v.injection_seed));
        std::printf("\n");
    }
    return set;
}

/// Aggregate collision metrics over several runs of one configuration.
struct RouteAggregate {
    int runs = 0;
    int collided_runs = 0;
    double mean_first_collision = 0.0;  ///< over colliding runs; <0 if none
    double mean_total_frames = 0.0;
    double mean_collision_rate = 0.0;
    double mean_skip_rate = 0.0;
};

inline RouteAggregate aggregate_runs(const av::Route& route,
                                     const av::DetectorSet& detectors,
                                     av::ScenarioConfig config, int runs,
                                     std::uint64_t seed_base) {
    RouteAggregate agg;
    agg.runs = runs;
    double first_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
        config.seed = seed_base + static_cast<std::uint64_t>(run);
        const av::RunMetrics m = av::run_scenario(route, detectors, config);
        agg.mean_total_frames += m.total_frames;
        agg.mean_collision_rate += m.collision_rate();
        agg.mean_skip_rate += m.skip_rate();
        if (m.collided()) {
            ++agg.collided_runs;
            first_sum += m.first_collision_frame;
        }
    }
    agg.mean_total_frames /= runs;
    agg.mean_collision_rate /= runs;
    agg.mean_skip_rate /= runs;
    agg.mean_first_collision =
        agg.collided_runs > 0 ? first_sum / agg.collided_runs : -1.0;
    return agg;
}

}  // namespace mvreju::bench
