// Machine-readable sweep-engine benchmark: the full Fig. 4 parameter grid
// solved cold (net + reachability + MRGP per point) versus through
// dspn::SweepEngine (structure-hashed graph reuse, memoized solves,
// deterministic warm starts), plus a cache-warm rerun and a warm-start
// convergence study on a model large enough for the iterative path.
// Emits BENCH_sweep.json stamped with run metadata.
//
// Three claims are checked, not just timed:
//   * every engine grid-point distribution is bit-identical to its cold
//     solve (the paper-model state spaces sit below the dense cutoff, where
//     warm starts are ignored by construction);
//   * the engine result is bit-identical across thread counts;
//   * warm-started iterative solves agree with cold ones to 1e-10 while
//     spending fewer Gauss-Seidel sweeps.
//
// Usage: bench_sweep [--out PATH] [--cache DIR] [--metrics PATH] [--trace PATH]

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/reachability.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/util/args.hpp"
#include "mvreju/util/parallel.hpp"
#include "sweep_common.hpp"

namespace {

using namespace mvreju;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct GridResult {
    std::size_t points = 0;
    std::size_t unique_solves = 0;
    std::size_t cache_hits = 0;
    std::size_t rebuilds = 0;
    std::size_t rebinds = 0;
    std::size_t family_batches = 0;
    std::size_t family_members = 0;
    double cold_ms = 0.0;
    double engine_ms = 0.0;
    double speedup = 0.0;
    double warm_rerun_ms = 0.0;
    std::size_t warm_rerun_disk_hits = 0;
    bool bitwise_equal_to_cold = false;
    bool thread_counts_bit_identical = false;
};

struct WarmStartResult {
    std::size_t states = 0;
    std::size_t grid_points = 0;
    std::size_t cold_sweeps_total = 0;
    std::size_t warm_sweeps_total = 0;
    std::size_t iters_saved = 0;
    double max_abs_diff_vs_cold = 0.0;
    bool within_tolerance = false;
};

/// M/M/1/cap queue as an SPN: cap+1 tangible states, comfortably above the
/// dense cutoff so the stationary solve takes the warm-startable
/// Gauss-Seidel path. Params: [arrival rate, per-token service rate].
dspn::PetriNet birth_death_net(const std::vector<double>& params, int cap) {
    dspn::PetriNet net;
    const auto q = net.add_place("Q", 0);
    const auto birth = net.add_exponential("birth", params[0]);
    net.add_output_arc(birth, q);
    net.add_inhibitor_arc(birth, q, cap);
    const double service = params[1];
    const auto death = net.add_exponential("death", [q, service](const dspn::Marking& m) {
        return service * dspn::tokens(m, q);
    });
    net.add_input_arc(death, q);
    return net;
}

bool write_json(const std::string& path, const GridResult& grid,
                const WarmStartResult& warm) {
    std::ofstream out(path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"sweep\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
    out << "  \"fig4_grid\": {\n";
    out << "    \"points\": " << grid.points << ",\n";
    out << "    \"unique_solves\": " << grid.unique_solves << ",\n";
    out << "    \"cache_hits\": " << grid.cache_hits << ",\n";
    out << "    \"rebuilds\": " << grid.rebuilds << ",\n";
    out << "    \"rebinds\": " << grid.rebinds << ",\n";
    out << "    \"family_batches\": " << grid.family_batches << ",\n";
    out << "    \"family_members\": " << grid.family_members << ",\n";
    out << "    \"cold_ms\": " << grid.cold_ms << ",\n";
    out << "    \"engine_ms\": " << grid.engine_ms << ",\n";
    out << "    \"speedup\": " << grid.speedup << ",\n";
    out << "    \"warm_rerun_ms\": " << grid.warm_rerun_ms << ",\n";
    out << "    \"warm_rerun_disk_hits\": " << grid.warm_rerun_disk_hits << ",\n";
    out << "    \"bitwise_equal_to_cold\": "
        << (grid.bitwise_equal_to_cold ? "true" : "false") << ",\n";
    out << "    \"thread_counts_bit_identical\": "
        << (grid.thread_counts_bit_identical ? "true" : "false") << "\n";
    out << "  },\n";
    out << "  \"warm_start\": {\n";
    out << "    \"states\": " << warm.states << ",\n";
    out << "    \"grid_points\": " << warm.grid_points << ",\n";
    out << "    \"cold_sweeps_total\": " << warm.cold_sweeps_total << ",\n";
    out << "    \"warm_sweeps_total\": " << warm.warm_sweeps_total << ",\n";
    out << "    \"iters_saved\": " << warm.iters_saved << ",\n";
    out << "    \"max_abs_diff_vs_cold\": " << warm.max_abs_diff_vs_cold << ",\n";
    out << "    \"within_tolerance\": " << (warm.within_tolerance ? "true" : "false")
        << "\n";
    out << "  }\n";
    out << "}\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string out_path = args.get("out", std::string("BENCH_sweep.json"));
    const std::string cache_dir = args.get("cache", std::string("bench_sweep_cache"));
    obs::Session session(args, "BENCH_sweep.metrics.json");

    reliability::TimingParams timing;  // Table IV defaults
    const std::vector<std::vector<double>> grid = bench::fig4_grid(timing);
    GridResult result;
    result.points = grid.size();

    // --- Cold baseline: net + reachability + MRGP per grid point ---------
    std::vector<std::vector<double>> cold_pi(grid.size());
    const auto cold_start = Clock::now();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const dspn::PetriNet net =
            core::build_multiversion_dspn(bench::decode_config(grid[i])).net;
        const dspn::ReachabilityGraph graph(net);
        cold_pi[i] = dspn::dspn_steady_state(graph);
    }
    result.cold_ms = ms_since(cold_start);

    // --- Engine pass (fresh caches) --------------------------------------
    std::filesystem::remove_all(cache_dir);
    dspn::SweepOptions engine_options;
    engine_options.cache_dir = cache_dir;
    dspn::SweepEngine engine(bench::multiversion_factory(), engine_options);
    const auto engine_start = Clock::now();
    const std::vector<dspn::SweepPoint> points = engine.run(grid);
    result.engine_ms = ms_since(engine_start);
    result.speedup = result.cold_ms / result.engine_ms;
    result.unique_solves = engine.stats().solves;
    result.cache_hits = engine.stats().cache_hits;
    result.rebuilds = engine.stats().rebuilds;
    result.rebinds = engine.stats().rebinds;
    result.family_batches = engine.stats().family_batches;
    result.family_members = engine.stats().family_members;

    // Gate 1: bitwise equality with the cold path, every grid point.
    result.bitwise_equal_to_cold = true;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (points[i].pi != cold_pi[i]) {
            result.bitwise_equal_to_cold = false;
            std::cerr << "ERROR: grid point " << i
                      << " differs from its cold solve\n";
            break;
        }
    }

    // Gate 2: thread-count independence (fresh engines, memory cache only).
    {
        std::vector<std::vector<dspn::SweepPoint>> by_threads;
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            dspn::SweepOptions opt;
            opt.threads = threads;
            dspn::SweepEngine fresh(bench::multiversion_factory(), opt);
            by_threads.push_back(fresh.run(grid));
        }
        result.thread_counts_bit_identical = true;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (by_threads[0][i].pi != by_threads[1][i].pi) {
                result.thread_counts_bit_identical = false;
                std::cerr << "ERROR: grid point " << i
                          << " differs between 1 and 4 threads\n";
                break;
            }
        }
    }

    // --- Cache-warm rerun: a new engine sharing the disk cache -----------
    {
        dspn::SweepEngine rerun(bench::multiversion_factory(), engine_options);
        const auto rerun_start = Clock::now();
        const std::vector<dspn::SweepPoint> rerun_points = rerun.run(grid);
        result.warm_rerun_ms = ms_since(rerun_start);
        result.warm_rerun_disk_hits = rerun.stats().disk_hits;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (rerun_points[i].pi != points[i].pi) {
                result.bitwise_equal_to_cold = false;
                std::cerr << "ERROR: disk-cached point " << i
                          << " differs from the first engine pass\n";
                break;
            }
        }
    }

    std::cout << "fig4_grid points=" << result.points
              << " unique_solves=" << result.unique_solves
              << " cache_hits=" << result.cache_hits
              << " rebuilds=" << result.rebuilds << " rebinds=" << result.rebinds
              << " family_batches=" << result.family_batches
              << " family_members=" << result.family_members << "\n";
    std::cout << "fig4_grid cold_ms=" << result.cold_ms
              << " engine_ms=" << result.engine_ms << " speedup=" << result.speedup
              << " warm_rerun_ms=" << result.warm_rerun_ms
              << " disk_hits=" << result.warm_rerun_disk_hits << "\n";

    // --- Warm-start study on the iterative path --------------------------
    // 160 tangible states: well above the dense cutoff, so Gauss-Seidel
    // runs and warm starts matter. A sweep over the arrival rate moves the
    // stationary distribution smoothly, the ideal warm-start setting.
    constexpr int kCap = 159;
    WarmStartResult warm;
    warm.states = kCap + 1;
    std::vector<std::vector<double>> bd_grid;
    for (int i = 0; i < 24; ++i)
        bd_grid.push_back({40.0 + 20.0 * i / 23.0, 1.0});
    warm.grid_points = bd_grid.size();
    const auto bd_factory = [](const std::vector<double>& p) {
        return birth_death_net(p, kCap);
    };

    dspn::SweepOptions cold_opt;
    cold_opt.warm_start = false;
    dspn::SweepEngine bd_cold(bd_factory, cold_opt);
    const std::vector<dspn::SweepPoint> bd_cold_points = bd_cold.run(bd_grid);

    dspn::SweepEngine bd_warm(bd_factory);
    const std::vector<dspn::SweepPoint> bd_warm_points = bd_warm.run(bd_grid);

    for (std::size_t i = 0; i < bd_grid.size(); ++i) {
        warm.cold_sweeps_total += bd_cold_points[i].sweeps;
        warm.warm_sweeps_total += bd_warm_points[i].sweeps;
        for (std::size_t s = 0; s < bd_cold_points[i].pi.size(); ++s) {
            warm.max_abs_diff_vs_cold =
                std::max(warm.max_abs_diff_vs_cold,
                         std::fabs(bd_cold_points[i].pi[s] - bd_warm_points[i].pi[s]));
        }
    }
    warm.iters_saved = bd_warm.stats().warmstart_iters_saved;
    warm.within_tolerance = warm.max_abs_diff_vs_cold <= 1e-10;
    std::cout << "warm_start states=" << warm.states
              << " cold_sweeps=" << warm.cold_sweeps_total
              << " warm_sweeps=" << warm.warm_sweeps_total
              << " iters_saved=" << warm.iters_saved
              << " max_abs_diff=" << warm.max_abs_diff_vs_cold << "\n";

    if (!write_json(out_path, result, warm)) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!result.bitwise_equal_to_cold || !result.thread_counts_bit_identical) {
        std::cerr << "ERROR: engine results are not bit-identical to cold solves\n";
        return 1;
    }
    if (!warm.within_tolerance) {
        std::cerr << "ERROR: warm-started solves drift beyond 1e-10\n";
        return 1;
    }
    return 0;
}
