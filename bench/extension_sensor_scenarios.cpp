// Extension: sensor-failure scenario matrix with the degraded-mode policy
// ladder (ROADMAP item 3). The paper's campaigns corrupt model *weights*;
// this suite corrupts the *input* — frozen, blank, salt-and-pepper,
// low-light and occluded frames, plus a compound class that overlaps sensor
// corruption with weight faults aimed at the layer a small fi campaign
// ranks most critical. Every scenario class runs with the trust-driven
// policy ladder off (baseline) and on, reporting the empirical
// E[R_sys] = 1 - unsafe_decided/total and hazard rates per cell.
//
// The whole grid is replayed serially and under 4- and 8-thread
// parallel_for; an FNV-1a hash over every run's outcome record must match
// across all three (the repo-wide bit-determinism contract). A DSPN with a
// two-state sensor channel (core::build_degraded_dspn) provides the
// analytic counterpart per class, with the sensor duty cycle matched to the
// scenario's corruption windows.
//
//   ./build/bench/extension_sensor_scenarios
//       [--runs <n>]   runs per (class, policy) cell   (default 6)
//       [--out <f>]    result JSON                     (default BENCH_scenarios.json)
//       [--cache <d>]  detector parameter cache        (default .mvreju_cache)

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "av_common.hpp"
#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/fi/campaign.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/table.hpp"

namespace {

using namespace mvreju;

/// Everything that can differ between two replays of one run, bit-packed
/// for hashing. Trust is folded in via min_trust scaled to an integer so
/// float formatting never enters the hash.
struct RunRecord {
    int total_frames = 0;
    int unsafe_decided = 0;
    int decided = 0;
    int skipped = 0;
    int no_output = 0;
    int collision_frames = 0;
    int first_collision = -1;
    int sensor_fault_frames = 0;
    int stop_frames = 0;
    int reduced_frames = 0;
    int dropped = 0;
    int degraded_transitions = 0;
    std::int64_t min_trust_micro = 1000000;
};

RunRecord record_of(const av::RunMetrics& m) {
    RunRecord r;
    r.total_frames = m.total_frames;
    r.unsafe_decided = m.unsafe_decided_frames;
    r.decided = m.decided_frames;
    r.skipped = m.skipped_frames;
    r.no_output = m.no_output_frames;
    r.collision_frames = m.collision_frames;
    r.first_collision = m.first_collision_frame;
    r.sensor_fault_frames = m.sensor_fault_frames;
    r.stop_frames = m.stop_frames;
    r.reduced_frames = m.reduced_frames;
    r.dropped = static_cast<int>(m.dropped_proposals);
    r.degraded_transitions = m.degraded_transitions;
    r.min_trust_micro = static_cast<std::int64_t>(m.min_trust * 1e6);
    return r;
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xffu;
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t hash_records(const std::vector<RunRecord>& records) {
    std::uint64_t hash = 1469598103934665603ULL;
    for (const RunRecord& r : records) {
        for (const int v :
             {r.total_frames, r.unsafe_decided, r.decided, r.skipped,
              r.no_output, r.collision_frames, r.first_collision,
              r.sensor_fault_frames, r.stop_frames, r.reduced_frames,
              r.dropped, r.degraded_transitions})
            hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
        hash = fnv1a(hash, static_cast<std::uint64_t>(r.min_trust_micro));
    }
    return hash;
}

/// Fraction of the horizon covered by sensor-corruption windows.
double fault_duty(const av::Scenario& scenario, double horizon) {
    // Windows of the built-in classes do not overlap; clamp to the horizon.
    double covered = 0.0;
    for (const av::SensorFault& f : scenario.sensor_faults) {
        const double end = std::min(f.end, horizon);
        if (end > f.begin) covered += end - f.begin;
    }
    return std::min(1.0, covered / horizon);
}

struct CellAggregate {
    long long frames = 0;
    long long unsafe = 0;
    long long decided = 0;
    long long collision_frames = 0;
    long long stop_frames = 0;
    long long reduced_frames = 0;
    long long dropped = 0;
    long long sensor_fault_frames = 0;
    int collided_runs = 0;
    double skip = 0.0;
    double min_trust = 1.0;

    void add(const RunRecord& r) {
        frames += r.total_frames;
        unsafe += r.unsafe_decided;
        decided += r.decided;
        collision_frames += r.collision_frames;
        stop_frames += r.stop_frames;
        reduced_frames += r.reduced_frames;
        dropped += r.dropped;
        sensor_fault_frames += r.sensor_fault_frames;
        collided_runs += r.first_collision >= 0 ? 1 : 0;
        skip += r.total_frames > 0
                    ? static_cast<double>(r.skipped + r.no_output) / r.total_frames
                    : 0.0;
        min_trust = std::min(
            min_trust, static_cast<double>(r.min_trust_micro) * 1e-6);
    }

    [[nodiscard]] double ersys() const {
        return frames == 0 ? 1.0
                           : 1.0 - static_cast<double>(unsafe) /
                                       static_cast<double>(frames);
    }
    [[nodiscard]] double hazard_rate() const {
        return frames == 0 ? 0.0
                           : static_cast<double>(collision_frames) /
                                 static_cast<double>(frames);
    }
};

}  // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const int runs = args.get("runs", 6);
    const std::string out_path = args.get("out", std::string("BENCH_scenarios.json"));

    av::SensorConfig sensor;
    const av::DetectorSet detectors = bench::prepare_case_study_detectors(args, sensor);

    // Compound-class composition: a small weight campaign on version 1's
    // healthy detector ranks injectable layers by criticality; the compound
    // scenario aims its `inject` directive at the top-ranked layer, so the
    // suite composes input corruption with the *worst* weight fault the fi
    // machinery knows about.
    fi::CampaignConfig campaign_cfg;
    campaign_cfg.injections_per_site = 6;
    campaign_cfg.value_min = -100.0f;
    campaign_cfg.value_max = 300.0f;
    campaign_cfg.seed = 11;
    const ml::Dataset campaign_eval = av::make_detector_dataset(160, sensor, 77);
    ml::Sequential campaign_model = detectors.healthy[1];
    const fi::CampaignReport campaign =
        fi::run_weight_campaign(campaign_model, campaign_eval, campaign_cfg);
    const std::vector<std::size_t> ranked = fi::most_critical_sites(campaign);
    const std::size_t critical_layer = ranked.empty() ? 0 : ranked.front();
    std::printf("fi campaign: %zu sites, most critical layer %zu\n",
                campaign.sites.size(), critical_layer);

    // The scenario classes. `compound` gets the campaign-derived injection
    // appended on top of its built-in compromise + corruption script.
    std::vector<av::Scenario> scenarios;
    for (const std::string& name : av::builtin_scenario_names()) {
        std::string text = av::builtin_scenario_text(name);
        if (name == "compound")
            text += "at 10 inject 1 " + std::to_string(critical_layer) + " 7\n";
        scenarios.push_back(av::parse_scenario(text));
    }

    const auto towns = av::make_towns();
    const auto refs = av::evaluation_routes(towns);
    const av::Route& route = towns[refs[0].town].routes[refs[0].route];

    // Grid runner: every (class, policy, run) cell is one independent
    // run_scenario with its own player and RNG substreams, so distributing
    // cells over threads cannot perturb any cell's outcome.
    const std::size_t cells = scenarios.size() * 2 * static_cast<std::size_t>(runs);
    const auto run_grid = [&](std::size_t threads) {
        std::vector<RunRecord> records(cells);
        util::parallel_for(
            cells,
            [&](std::size_t i) {
                const std::size_t cls = i / (2 * static_cast<std::size_t>(runs));
                const std::size_t rest = i % (2 * static_cast<std::size_t>(runs));
                const bool policy = rest / static_cast<std::size_t>(runs) == 1;
                const int run = static_cast<int>(rest % static_cast<std::size_t>(runs));
                av::ScenarioConfig cfg;
                cfg.sensor = sensor;
                cfg.scenario = &scenarios[cls];
                cfg.trust_policy = policy;
                cfg.seed = 4200 + 100 * static_cast<std::uint64_t>(cls) +
                           static_cast<std::uint64_t>(run);
                records[i] = record_of(av::run_scenario(route, detectors, cfg));
            },
            threads);
        return records;
    };

    bench::print_header("Extension: sensor-failure scenario matrix + degraded-mode policy");
    std::printf("%d runs per cell, route %s/0, %zu scenario classes x {baseline, policy}\n",
                runs, towns[refs[0].town].name.c_str(), scenarios.size());

    const std::vector<RunRecord> serial = run_grid(1);
    const std::vector<RunRecord> four = run_grid(4);
    const std::vector<RunRecord> eight = run_grid(8);
    const std::uint64_t hash1 = hash_records(serial);
    const std::uint64_t hash4 = hash_records(four);
    const std::uint64_t hash8 = hash_records(eight);
    const bool hash_threads_equal = hash1 == hash4 && hash1 == hash8;
    std::printf("replay determinism: serial %016llx, 4 threads %016llx, "
                "8 threads %016llx -> %s\n",
                static_cast<unsigned long long>(hash1),
                static_cast<unsigned long long>(hash4),
                static_cast<unsigned long long>(hash8),
                hash_threads_equal ? "bit-identical" : "MISMATCH");

    // Aggregate per cell and compare policy vs baseline per class.
    struct ClassRow {
        std::string name;
        CellAggregate baseline;
        CellAggregate policy;
        double analytic_baseline = 0.0;
        double analytic_policy = 0.0;
    };
    std::vector<ClassRow> rows;
    const double horizon = av::ScenarioConfig{}.horizon;
    for (std::size_t cls = 0; cls < scenarios.size(); ++cls) {
        ClassRow row;
        row.name = scenarios[cls].name;
        for (int run = 0; run < runs; ++run) {
            const std::size_t base = cls * 2 * static_cast<std::size_t>(runs);
            row.baseline.add(serial[base + static_cast<std::size_t>(run)]);
            row.policy.add(serial[base + static_cast<std::size_t>(runs + run)]);
        }

        // Analytic counterpart: the degraded DSPN with the sensor duty
        // cycle matched to this scenario's corruption windows (20 s mean
        // fault cycle, split by the duty fraction).
        const double duty = fault_duty(scenarios[cls], horizon);
        if (duty > 0.0 && duty < 1.0) {
            core::DegradedDspnConfig dcfg;
            dcfg.sensor_mttf = 20.0 * (1.0 - duty);
            dcfg.sensor_repair = 20.0 * duty;
            const auto params = bench::params_from_args(args);
            row.analytic_baseline =
                core::degraded_steady_state_reliability(dcfg, params, false);
            row.analytic_policy =
                core::degraded_steady_state_reliability(dcfg, params, true);
        }
        rows.push_back(std::move(row));
    }

    util::TextTable table({"Scenario", "E[R] base", "E[R] policy", "Margin",
                           "Hazard base", "Hazard policy", "Stop fr.", "Min trust"});
    double min_margin = 1.0;
    bool all_recover = true;
    long long base_collisions = 0;
    long long policy_collisions = 0;
    for (const ClassRow& row : rows) {
        const double margin = row.policy.ersys() - row.baseline.ersys();
        min_margin = std::min(min_margin, margin);
        all_recover = all_recover && margin >= 0.0;
        base_collisions += row.baseline.collision_frames;
        policy_collisions += row.policy.collision_frames;
        char b0[24], b1[24], b2[24], b3[24], b4[24], b5[24];
        std::snprintf(b0, sizeof b0, "%.6f", row.baseline.ersys());
        std::snprintf(b1, sizeof b1, "%.6f", row.policy.ersys());
        std::snprintf(b2, sizeof b2, "%+.6f", margin);
        std::snprintf(b3, sizeof b3, "%.4f", row.baseline.hazard_rate());
        std::snprintf(b4, sizeof b4, "%.4f", row.policy.hazard_rate());
        std::snprintf(b5, sizeof b5, "%.3f", row.policy.min_trust);
        table.add_row({row.name, b0, b1, b2, b3, b4,
                       std::to_string(row.policy.stop_frames), b5});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("min policy margin %.6f; collisions baseline %lld vs policy %lld\n",
                min_margin, base_collisions, policy_collisions);

    // Analytic sanity on the generic configuration.
    core::DegradedDspnConfig generic;
    const auto params = bench::params_from_args(args);
    const double analytic_base =
        core::degraded_steady_state_reliability(generic, params, false);
    const double analytic_policy =
        core::degraded_steady_state_reliability(generic, params, true);
    std::printf("analytic (generic duty): baseline %.6f, policy %.6f\n",
                analytic_base, analytic_policy);

    std::ofstream out(out_path);
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"bench\": \"scenarios\",\n";
    out << "  \"meta\": " << obs::run_metadata_json() << ",\n";
    out << "  \"runs_per_cell\": " << runs << ",\n";
    out << "  \"campaign\": {\"sites\": " << campaign.sites.size()
        << ", \"critical_layer\": " << critical_layer
        << ", \"baseline_accuracy\": " << campaign.baseline_accuracy << "},\n";
    out << "  \"classes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ClassRow& row = rows[i];
        const double margin = row.policy.ersys() - row.baseline.ersys();
        const auto emit_cell = [&](const char* key, const CellAggregate& cell) {
            out << "\"" << key << "\": {\"ersys\": " << cell.ersys()
                << ", \"hazard_rate\": " << cell.hazard_rate()
                << ", \"collided_runs\": " << cell.collided_runs
                << ", \"frames\": " << cell.frames
                << ", \"unsafe\": " << cell.unsafe
                << ", \"decided\": " << cell.decided
                << ", \"skip_rate\": " << cell.skip / runs
                << ", \"sensor_fault_frames\": " << cell.sensor_fault_frames
                << ", \"stop_frames\": " << cell.stop_frames
                << ", \"reduced_frames\": " << cell.reduced_frames
                << ", \"dropped_proposals\": " << cell.dropped
                << ", \"min_trust\": " << cell.min_trust << "}";
        };
        out << "    {\"name\": \"" << row.name << "\", ";
        emit_cell("baseline", row.baseline);
        out << ", ";
        emit_cell("policy", row.policy);
        out << ", \"margin\": " << margin
            << ", \"policy_recovers\": " << (margin >= 0.0 ? "true" : "false")
            << ", \"analytic_baseline\": " << row.analytic_baseline
            << ", \"analytic_policy\": " << row.analytic_policy << "}"
            << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"summary\": {\"min_policy_margin\": " << min_margin
        << ", \"all_policy_recovers\": " << (all_recover ? "true" : "false")
        << ", \"baseline_collision_frames\": " << base_collisions
        << ", \"policy_collision_frames\": " << policy_collisions
        << ", \"policy_collisions_leq_baseline\": "
        << (policy_collisions <= base_collisions ? "true" : "false") << "},\n";
    out << "  \"determinism\": {\"hash_serial\": \"" << std::hex << hash1
        << "\", \"hash_threads4\": \"" << hash4 << "\", \"hash_threads8\": \""
        << hash8 << std::dec
        << "\", \"hash_threads_equal\": " << (hash_threads_equal ? "true" : "false")
        << "},\n";
    out << "  \"analytic\": {\"baseline\": " << analytic_base
        << ", \"policy\": " << analytic_policy << ", \"policy_geq_baseline\": "
        << (analytic_policy >= analytic_base ? "true" : "false") << "}\n";
    out << "}\n";
    if (!out.good()) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (!hash_threads_equal) {
        std::fprintf(stderr, "ERROR: replay is not bit-identical across thread counts\n");
        return 1;
    }
    if (!all_recover)
        std::fprintf(stderr, "WARNING: policy ladder below baseline on some class "
                             "(min margin %.6f)\n", min_margin);
    return 0;
}
