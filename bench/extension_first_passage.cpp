// Extension beyond the paper's evaluation: first-passage analysis. The
// paper reports long-run averages; operators also ask "how long until the
// system is first at risk?". Two hazard events are analysed, exactly (for
// the reactive-only Fig. 2 SPN) and by ensemble simulation (for the Fig. 3
// DSPN):
//
//   - compromised majority: two modules compromised at once — the state in
//     which agreeing wrong outputs can win the 2-of-3 vote;
//   - total silence: no functional module at all.
//
// Reading: proactive rejuvenation postpones the compromised-majority hazard
// and, in steady state, shrinks its probability by ~5x; the transient dip of
// a module under rejuvenation is the price (visible as skipped frames in
// Table VI, not as a hazard).

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/util/table.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const auto timing = bench::timing_from_args(args);
    const auto replications = static_cast<std::size_t>(args.get("replications", 1500));
    // Simulation cap per replication: rare hazards (total silence needs all
    // three modules down at once against a 0.5 s repair) are censored here
    // and reported as a bound.
    const double max_time = args.get("max-time", 1.0e6);

    bench::print_header("Extension: mean time to hazard states (Table IV parameters)");
    util::TextTable table({"Hazard", "w/o rej. (exact)", "w/ rej. (sim, 95% CI)",
                           "steady P(hazard) w/o", "w/"});

    // Hazards read the canonical place layout (Pmh=0, Pmc=1); both hazards
    // share the same two DSPNs, so the engine solves each net once and
    // serves the second hazard from its caches.
    struct Hazard {
        const char* name;
        std::function<bool(const dspn::Marking&)> holds;
    };
    const Hazard hazards[] = {
        {"compromised majority (#C >= 2)",
         [](const dspn::Marking& mk) { return mk[1] >= 2; }},
        {"total silence (no functional module)",
         [](const dspn::Marking& mk) { return mk[0] + mk[1] == 0; }},
    };

    dspn::SweepEngine engine(bench::multiversion_factory());
    core::DspnConfig cfg;
    cfg.timing = timing;
    cfg.proactive = false;
    const std::vector<double> nr_params = bench::encode_config(cfg);
    cfg.proactive = true;
    const std::vector<double> r_params = bench::encode_config(cfg);

    for (const Hazard& hazard : hazards) {
        const auto& nr_pred = hazard.holds;
        const dspn::BoundGraph nr = engine.graph(nr_params);
        const double exact = dspn::spn_mean_time_to(nr.graph(), nr_pred);
        const double p_nr =
            dspn::probability(nr.graph(), engine.solve(nr_params).pi, nr_pred);

        const auto& r_pred = hazard.holds;
        const dspn::BoundGraph r = engine.graph(r_params);
        const auto sim =
            dspn::simulate_mean_time_to(r.net(), r_pred, max_time, replications, 41);
        const double p_r =
            dspn::probability(r.graph(), engine.solve(r_params).pi, r_pred);

        std::string simulated;
        if (sim.censored == replications) {
            simulated = "> " + util::fmt(max_time, 0) + " s (all runs censored)";
        } else {
            simulated = util::fmt(sim.mean, 0) + " s [" + util::fmt(sim.ci.lower, 0) +
                        ", " + util::fmt(sim.ci.upper, 0) + "]";
            if (sim.censored)
                simulated += " (" + std::to_string(sim.censored) + " censored)";
        }
        table.add_row({hazard.name, util::fmt(exact, 0) + " s", simulated,
                       util::fmt(p_nr, 6), util::fmt(p_r, 6)});
    }
    std::fputs(table.str().c_str(), stdout);
    return 0;
}
