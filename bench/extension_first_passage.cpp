// Extension beyond the paper's evaluation: first-passage analysis. The
// paper reports long-run averages; operators also ask "how long until the
// system is first at risk?". Two hazard events are analysed, exactly (for
// the reactive-only Fig. 2 SPN) and by ensemble simulation (for the Fig. 3
// DSPN):
//
//   - compromised majority: two modules compromised at once — the state in
//     which agreeing wrong outputs can win the 2-of-3 vote;
//   - total silence: no functional module at all.
//
// Reading: proactive rejuvenation postpones the compromised-majority hazard
// and, in steady state, shrinks its probability by ~5x; the transient dip of
// a module under rejuvenation is the price (visible as skipped frames in
// Table VI, not as a hazard).

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const auto timing = bench::timing_from_args(args);
    const auto replications = static_cast<std::size_t>(args.get("replications", 1500));
    // Simulation cap per replication: rare hazards (total silence needs all
    // three modules down at once against a 0.5 s repair) are censored here
    // and reported as a bound.
    const double max_time = args.get("max-time", 1.0e6);

    bench::print_header("Extension: mean time to hazard states (Table IV parameters)");
    util::TextTable table({"Hazard", "w/o rej. (exact)", "w/ rej. (sim, 95% CI)",
                           "steady P(hazard) w/o", "w/"});

    struct Hazard {
        const char* name;
        std::function<bool(const core::MultiVersionDspn&, const dspn::Marking&)> holds;
    };
    const Hazard hazards[] = {
        {"compromised majority (#C >= 2)",
         [](const core::MultiVersionDspn& m, const dspn::Marking& mk) {
             return m.compromised(mk) >= 2;
         }},
        {"total silence (no functional module)",
         [](const core::MultiVersionDspn& m, const dspn::Marking& mk) {
             return m.healthy(mk) + m.compromised(mk) == 0;
         }},
    };

    for (const Hazard& hazard : hazards) {
        core::DspnConfig cfg;
        cfg.timing = timing;

        cfg.proactive = false;
        const auto nr_model = core::build_multiversion_dspn(cfg);
        const dspn::ReachabilityGraph nr_graph(nr_model.net);
        auto nr_pred = [&](const dspn::Marking& mk) { return hazard.holds(nr_model, mk); };
        const double exact = dspn::spn_mean_time_to(nr_graph, nr_pred);
        const double p_nr =
            dspn::probability(nr_graph, dspn::spn_steady_state(nr_graph), nr_pred);

        cfg.proactive = true;
        const auto r_model = core::build_multiversion_dspn(cfg);
        auto r_pred = [&](const dspn::Marking& mk) { return hazard.holds(r_model, mk); };
        const auto sim =
            dspn::simulate_mean_time_to(r_model.net, r_pred, max_time, replications, 41);
        const dspn::ReachabilityGraph r_graph(r_model.net);
        const double p_r =
            dspn::probability(r_graph, dspn::dspn_steady_state(r_graph), r_pred);

        std::string simulated;
        if (sim.censored == replications) {
            simulated = "> " + util::fmt(max_time, 0) + " s (all runs censored)";
        } else {
            simulated = util::fmt(sim.mean, 0) + " s [" + util::fmt(sim.ci.lower, 0) +
                        ", " + util::fmt(sim.ci.upper, 0) + "]";
            if (sim.censored)
                simulated += " (" + std::to_string(sim.censored) + " censored)";
        }
        table.add_row({hazard.name, util::fmt(exact, 0) + " s", simulated,
                       util::fmt(p_nr, 6), util::fmt(p_r, 6)});
    }
    std::fputs(table.str().c_str(), stdout);
    return 0;
}
