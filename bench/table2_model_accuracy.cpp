// Regenerates Table II of the paper: accuracy of the three diverse
// classifier versions in the healthy and the compromised (single injected
// weight fault) state, on the procedural traffic-sign dataset (GTSRB
// stand-in), followed by the Section VI-A parameter fit p / p' / alpha
// (Eq. 6-9).
//
// Like the paper, which picked PyTorchFI seeds (5, 183, 34) that land the
// compromised accuracy near 0.75, we scan injection seeds deterministically
// and keep the first one whose compromised accuracy falls in
// [--band-lo, --band-hi] (default 0.70..0.80).
//
// Trained parameters are cached under --cache (default .mvreju_cache), so
// only the first invocation trains (~90 s); later runs take seconds.

#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/util/table.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    namespace fs = std::filesystem;
    const util::Args args(argc, argv);
    const double band_lo = args.get("band-lo", 0.70);
    const double band_hi = args.get("band-hi", 0.80);
    const fs::path cache(args.get("cache", std::string(".mvreju_cache")));

    bench::print_header("Table II: healthy vs compromised model accuracy");

    data::SignDatasetConfig data_cfg;
    const auto dataset = data::make_traffic_signs(data_cfg);
    std::printf("dataset: %zu train / %zu test images, %d classes (seed %llu)\n",
                dataset.train.size(), dataset.test.size(), data::kSignClasses,
                static_cast<unsigned long long>(data_cfg.seed));

    struct Spec {
        ml::Sequential model;
        std::uint64_t scan_base;
    };
    std::vector<Spec> specs;
    specs.push_back({ml::make_mini_alexnet(3, 16, data::kSignClasses, 38), 5});
    specs.push_back({ml::make_micro_resnet(3, 16, data::kSignClasses, 38), 183});
    specs.push_back({ml::make_tiny_lenet(3, 16, data::kSignClasses, 38), 34});

    std::vector<double> healthy;
    std::vector<double> compromised;
    std::vector<std::vector<std::size_t>> error_sets;
    util::TextTable table({"Model", "Accuracy healthy", "Accuracy compromised",
                           "FI seed"});

    for (auto& spec : specs) {
        fs::create_directories(cache);
        const fs::path file = cache / (spec.model.name() + "_signs.params");
        if (fs::exists(file)) {
            spec.model.load_parameters(file);
        } else {
            std::printf("training %s ...\n", spec.model.name().c_str());
            ml::TrainConfig tc;
            tc.epochs = 16;
            tc.learning_rate = 0.025f;
            tc.lr_decay = 0.88f;
            spec.model.train(dataset.train, tc);
            spec.model.save_parameters(file);
        }
        const auto eval = spec.model.evaluate(dataset.test);
        healthy.push_back(eval.accuracy);
        error_sets.push_back(eval.error_set);

        // PyTorchFI-style injection: one random weight of layer 0 replaced
        // by uniform(-10, 30) -- the paper's random_weight_inj(1, -10, 30).
        // Injections are reversible, so the scan injects into the trained
        // model itself and restores after each batched evaluation.
        double best_acc = -1.0;
        std::uint64_t best_seed = 0;
        for (std::uint64_t seed = spec.scan_base; seed < spec.scan_base + 200; ++seed) {
            const fi::Injection injection =
                fi::random_weight_inj(spec.model, 0, -10.0f, 30.0f, seed);
            const double acc = spec.model.evaluate(dataset.test).accuracy;
            fi::restore(spec.model, injection);
            if (acc >= band_lo && acc <= band_hi) {
                best_acc = acc;
                best_seed = seed;
                break;
            }
        }
        if (best_acc < 0.0) {
            std::printf("WARNING: no seed in the [%.2f, %.2f] band for %s\n", band_lo,
                        band_hi, spec.model.name().c_str());
            best_acc = 0.0;
        }
        compromised.push_back(best_acc);
        table.add_row({spec.model.name(), util::fmt(eval.accuracy, 9),
                       util::fmt(best_acc, 9), std::to_string(best_seed)});
    }
    std::fputs(table.str().c_str(), stdout);

    const auto fitted = reliability::fit_params(healthy, compromised, error_sets);
    bench::print_header("Section VI-A parameter fit (Eq. 6-9)");
    std::printf("p      = %.9f   (paper: 0.062892584)\n", fitted.p);
    std::printf("p'     = %.9f   (paper: 0.240406440)\n", fitted.p_prime);
    std::printf("alpha  = %.9f   (paper: 0.369952542)\n", fitted.alpha);
    std::printf("boundaries: 2v %s, 3v %s\n",
                reliability::within_two_version_boundary(fitted) ? "ok" : "VIOLATED",
                reliability::within_three_version_boundary(fitted) ? "ok" : "VIOLATED");
    std::printf("\nPaper values (Table II): AlexNet 0.960/0.755, ResNet50 0.921/0.772, "
                "LeNet 0.930/0.751\n");
    return 0;
}
