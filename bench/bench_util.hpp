#pragma once

// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.

#include <cstdio>
#include <string>

#include "mvreju/reliability/functions.hpp"
#include "mvreju/util/args.hpp"

namespace mvreju::bench {

/// Reliability-model parameters from the command line, defaulting to the
/// paper's fitted constants (Section VI-A).
inline reliability::Params params_from_args(const util::Args& args) {
    const auto base = reliability::paper_params();
    return {args.get("p", base.p), args.get("pprime", base.p_prime),
            args.get("alpha", base.alpha)};
}

/// Table IV timing parameters from the command line.
inline reliability::TimingParams timing_from_args(const util::Args& args) {
    reliability::TimingParams t;
    t.mttc = args.get("mttc", t.mttc);
    t.mttf = args.get("mttf", t.mttf);
    t.reactive_duration = args.get("mu", t.reactive_duration);
    t.proactive_duration = args.get("mur", t.proactive_duration);
    t.rejuvenation_interval = args.get("gamma-inv", t.rejuvenation_interval);
    return t;
}

inline void print_header(const std::string& title) {
    std::printf("==== %s ====\n", title.c_str());
}

}  // namespace mvreju::bench
