// Google-benchmark microbenchmarks for the performance-critical primitives:
// detector inference, voting, DSPN reachability + steady-state solving, the
// discrete-event health engine and sign rendering. These guard against
// performance regressions; they do not correspond to a paper table.

#include <benchmark/benchmark.h>

#include "mvreju/av/perception.hpp"
#include "mvreju/av/sensor.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

void BM_RngUniform(benchmark::State& state) {
    util::Rng rng(1);
    for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RenderSign(benchmark::State& state) {
    data::SignPose pose;
    pose.noise_sigma = 0.1;
    for (auto _ : state) benchmark::DoNotOptimize(data::render_sign(5, 16, pose));
}
BENCHMARK(BM_RenderSign);

void BM_DetectorInference(benchmark::State& state) {
    av::SensorConfig sensor;
    const ml::Sequential model = av::make_detector_s(sensor, 1);
    util::Rng rng(2);
    const ml::Tensor grid =
        av::render_grid({{0.0, 0.0}, 2.25, 0.95, 0.0}, {}, sensor, rng);
    for (auto _ : state) benchmark::DoNotOptimize(model.predict(grid));
}
BENCHMARK(BM_DetectorInference);

void BM_SignClassifierInference(benchmark::State& state) {
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, data::kSignClasses, 1);
    const ml::Tensor img = data::render_sign(3, 16, {});
    for (auto _ : state) benchmark::DoNotOptimize(model.predict(img));
}
BENCHMARK(BM_SignClassifierInference);

void BM_MajorityVote(benchmark::State& state) {
    core::Voter<int> voter;
    const std::vector<std::optional<int>> proposals{3, 4, 3};
    for (auto _ : state) benchmark::DoNotOptimize(voter.vote(proposals));
}
BENCHMARK(BM_MajorityVote);

void BM_ReachabilityGraph(benchmark::State& state) {
    core::DspnConfig cfg;
    const auto model = core::build_multiversion_dspn(cfg);
    for (auto _ : state) {
        dspn::ReachabilityGraph graph(model.net);
        benchmark::DoNotOptimize(graph.state_count());
    }
}
BENCHMARK(BM_ReachabilityGraph);

void BM_DspnSteadyState(benchmark::State& state) {
    core::DspnConfig cfg;
    const auto model = core::build_multiversion_dspn(cfg);
    const dspn::ReachabilityGraph graph(model.net);
    for (auto _ : state) benchmark::DoNotOptimize(dspn::dspn_steady_state(graph));
}
BENCHMARK(BM_DspnSteadyState);

void BM_HealthEngineSecond(benchmark::State& state) {
    core::HealthEngineConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    core::HealthEngine engine(cfg);
    double t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        engine.advance_to(t);
        benchmark::DoNotOptimize(engine.counts());
    }
}
BENCHMARK(BM_HealthEngineSecond);

}  // namespace

BENCHMARK_MAIN();
