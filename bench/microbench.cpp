// Google-benchmark microbenchmarks for the performance-critical primitives:
// detector inference, voting, DSPN reachability + steady-state solving
// (dense LU vs the sparse Gauss-Seidel core across state-space sizes),
// serial vs parallel ensemble simulation, the discrete-event health engine
// and sign rendering. These guard against performance regressions; they do
// not correspond to a paper table. For the machine-readable solver numbers
// (BENCH_solvers.json) run the bench_solvers binary.

#include <benchmark/benchmark.h>

#include "mvreju/av/perception.hpp"
#include "mvreju/av/sensor.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/data/signs.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/ml/workspace.hpp"
#include "mvreju/num/backend.hpp"
#include "mvreju/num/linalg.hpp"
#include "mvreju/num/sparse_markov.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

/// Random irreducible CTMC generator with ~5 edges per state (a cycle for
/// irreducibility plus random shortcuts) — the shape of a tangible
/// reachability graph.
num::SparseMatrix random_ctmc(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<num::Triplet> triplets;
    auto edge = [&](std::size_t from, std::size_t to, double rate) {
        triplets.push_back({from, to, rate});
        triplets.push_back({from, from, -rate});
    };
    for (std::size_t i = 0; i < n; ++i) edge(i, (i + 1) % n, rng.uniform(0.5, 2.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (int k = 0; k < 4; ++k) {
            const std::size_t to = rng.uniform_int(n);
            if (to != i) edge(i, to, rng.uniform(0.1, 3.0));
        }
    }
    return num::SparseMatrix::from_triplets(n, n, std::move(triplets));
}

void BM_RngUniform(benchmark::State& state) {
    util::Rng rng(1);
    for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RenderSign(benchmark::State& state) {
    data::SignPose pose;
    pose.noise_sigma = 0.1;
    for (auto _ : state) benchmark::DoNotOptimize(data::render_sign(5, 16, pose));
}
BENCHMARK(BM_RenderSign);

void BM_DetectorInference(benchmark::State& state) {
    av::SensorConfig sensor;
    const ml::Sequential model = av::make_detector_s(sensor, 1);
    util::Rng rng(2);
    const ml::Tensor grid =
        av::render_grid({{0.0, 0.0}, 2.25, 0.95, 0.0}, {}, sensor, rng);
    for (auto _ : state) benchmark::DoNotOptimize(model.predict(grid));
}
BENCHMARK(BM_DetectorInference);

void BM_SignClassifierInference(benchmark::State& state) {
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, data::kSignClasses, 1);
    const ml::Tensor img = data::render_sign(3, 16, {});
    for (auto _ : state) benchmark::DoNotOptimize(model.predict(img));
}
BENCHMARK(BM_SignClassifierInference);

void BM_DetectorInferenceBatched(benchmark::State& state) {
    av::SensorConfig sensor;
    const ml::Sequential model = av::make_detector_s(sensor, 1);
    util::Rng rng(2);
    std::vector<ml::Tensor> grids;
    for (int i = 0; i < 64; ++i)
        grids.push_back(av::render_grid({{0.0, 0.0}, 2.25, 0.95, 0.0}, {}, sensor, rng));
    for (auto _ : state) benchmark::DoNotOptimize(model.predict_batch(grids, 1));
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(grids.size()));
}
BENCHMARK(BM_DetectorInferenceBatched);

void BM_SignClassifierInferenceBatched(benchmark::State& state) {
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, data::kSignClasses, 1);
    std::vector<ml::Tensor> images;
    for (int i = 0; i < 64; ++i)
        images.push_back(data::render_sign(i % data::kSignClasses, 16, {}));
    for (auto _ : state) benchmark::DoNotOptimize(model.predict_batch(images, 1));
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(images.size()));
}
BENCHMARK(BM_SignClassifierInferenceBatched);

/// The pooled-im2col guarantee, asserted, per backend: after one warm-up
/// batch sizes the Workspace pool, repeated same-shape conv inference
/// performs zero heap growth (Workspace::allocation_count() is flat). A
/// regression here silently turns the batched hot loop into an allocation
/// storm, so the bench fails rather than just reporting a slower number.
void BM_ConvBatchSteadyState(benchmark::State& state) {
    const std::size_t index = static_cast<std::size_t>(state.range(0));
    if (index >= num::backends().size()) {
        state.SkipWithError("backend not compiled in");
        return;
    }
    const num::KernelBackend& kb = *num::backends()[index];
    if (!kb.supported()) {
        state.SkipWithError("backend not supported on this host");
        return;
    }
    state.SetLabel(std::string(kb.name()));
    const ml::Sequential model = ml::make_mini_alexnet(3, 16, data::kSignClasses, 1);
    std::vector<std::size_t> shape{32, 3, 16, 16};
    ml::Tensor batch(shape);
    util::Rng rng(3);
    for (std::size_t i = 0; i < batch.size(); ++i)
        batch[i] = static_cast<float>(rng.uniform());

    ml::Workspace ws;
    ws.give(model.logits_batch(batch, ws, 4, kb));  // warm-up sizes the pool
    const std::size_t steady = ws.allocation_count();
    for (auto _ : state) {
        ws.give(model.logits_batch(batch, ws, 4, kb));
        benchmark::ClobberMemory();
    }
    if (ws.allocation_count() != steady)
        state.SkipWithError("conv path allocated in steady state");
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ConvBatchSteadyState)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_MajorityVote(benchmark::State& state) {
    core::Voter<int> voter;
    const std::vector<std::optional<int>> proposals{3, 4, 3};
    for (auto _ : state) benchmark::DoNotOptimize(voter.vote(proposals));
}
BENCHMARK(BM_MajorityVote);

void BM_ReachabilityGraph(benchmark::State& state) {
    core::DspnConfig cfg;
    const auto model = core::build_multiversion_dspn(cfg);
    for (auto _ : state) {
        dspn::ReachabilityGraph graph(model.net);
        benchmark::DoNotOptimize(graph.state_count());
    }
}
BENCHMARK(BM_ReachabilityGraph);

void BM_DspnSteadyState(benchmark::State& state) {
    core::DspnConfig cfg;
    const auto model = core::build_multiversion_dspn(cfg);
    const dspn::ReachabilityGraph graph(model.net);
    for (auto _ : state) benchmark::DoNotOptimize(dspn::dspn_steady_state(graph));
}
BENCHMARK(BM_DspnSteadyState);

void BM_DenseSteadyState(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const num::Matrix q = random_ctmc(n, 17).to_dense();
    for (auto _ : state) benchmark::DoNotOptimize(num::solve_stationary(q));
}
BENCHMARK(BM_DenseSteadyState)->Arg(64)->Arg(256)->Arg(512);

void BM_SparseSteadyState(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const num::SparseMatrix q = random_ctmc(n, 17);
    num::StationaryOptions opts;
    opts.dense_cutoff = 0;  // force the iterative path at every size
    for (auto _ : state) benchmark::DoNotOptimize(num::ctmc_steady_state(q, opts));
}
BENCHMARK(BM_SparseSteadyState)->Arg(64)->Arg(256)->Arg(512)->Arg(2048)->Arg(8192);

void BM_EnsembleTransient(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    core::DspnConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    cfg.proactive = true;
    const auto model = core::build_multiversion_dspn(cfg);
    const dspn::RewardFn reward = [](const dspn::Marking& m) {
        return m[0] >= 1 ? 1.0 : 0.0;
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dspn::simulate_transient_reward(model.net, reward, 50.0, 400, 11, threads));
}
BENCHMARK(BM_EnsembleTransient)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Flight-recorder hot path. BM_FlightRecord vs BM_DetectorInference bounds
// the per-frame cost: one record() is tens of nanoseconds against an
// inference in the hundreds of microseconds, so even several events per
// frame stay far below the 2% overhead budget. BM_FlightRecordDisarmed
// measures the steady state everyone else pays: one relaxed load.
void BM_FlightRecord(benchmark::State& state) {
    obs::FlightRecorder recorder;
    recorder.set_enabled(true);
    std::uint64_t frame = 0;
    for (auto _ : state) {
        recorder.record(obs::EventKind::vote_decided, frame++, 0, 3.0, 3.0);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecord);

void BM_FlightRecordDisarmed(benchmark::State& state) {
    obs::FlightRecorder recorder;  // never armed
    std::uint64_t frame = 0;
    for (auto _ : state) {
        recorder.record(obs::EventKind::vote_decided, frame++, 0, 3.0, 3.0);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordDisarmed);

void BM_HealthEngineSecond(benchmark::State& state) {
    core::HealthEngineConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    core::HealthEngine engine(cfg);
    double t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        engine.advance_to(t);
        benchmark::DoNotOptimize(engine.counts());
    }
}
BENCHMARK(BM_HealthEngineSecond);

}  // namespace

BENCHMARK_MAIN();
