// Extension beyond the paper's evaluation: *mission-time* reliability R(t).
// The paper reports steady-state reliability (Table V); a vehicle, however,
// starts every trip with freshly loaded (healthy) modules. This bench
// computes the expected output reliability at mission times t for all six
// configurations: exactly (uniformization) for the purely exponential
// no-rejuvenation models (Fig. 2), and by ensemble simulation with 95% CIs
// for the DSPN rejuvenation models (Fig. 3).
//
// Reading: rejuvenation does not only raise the steady-state plateau -- it
// also delays the decay from the fresh-start reliability towards it.

#include <cstdio>

#include "bench_util.hpp"
#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/dspn/sweep.hpp"
#include "mvreju/util/table.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
    using namespace mvreju;
    const util::Args args(argc, argv);
    const auto params = bench::params_from_args(args);
    const auto timing = bench::timing_from_args(args);
    const auto replications = static_cast<std::size_t>(args.get("replications", 800));

    bench::print_header("Extension: mission-time reliability R(t)");
    util::TextTable table({"t (s)", "1v-NR (exact)", "1v-R (sim)", "2v-NR (exact)",
                           "2v-R (sim)", "3v-NR (exact)", "3v-R (sim)"});

    // Nets and reachability graphs are hoisted out of the time loop via the
    // sweep engine: one graph per configuration serves every sampling
    // instant (only the transient solve depends on t).
    dspn::SweepEngine engine(bench::multiversion_factory());
    std::vector<dspn::BoundGraph> nr_graphs;
    std::vector<dspn::BoundGraph> r_graphs;
    std::vector<std::vector<double>> nr_params;
    std::vector<std::vector<double>> r_params;
    for (int n = 1; n <= 3; ++n) {
        core::DspnConfig cfg;
        cfg.modules = n;
        cfg.timing = timing;
        cfg.proactive = false;
        nr_params.push_back(bench::encode_config(cfg));
        nr_graphs.push_back(engine.graph(nr_params.back()));
        cfg.proactive = true;
        r_params.push_back(bench::encode_config(cfg));
        r_graphs.push_back(engine.graph(r_params.back()));
    }

    // Sampling instants deliberately avoid multiples of the 300 s
    // rejuvenation interval: the deterministic clock makes R(t) *periodic*
    // (see the phase study below), and on-phase samples catch the module
    // fleet mid-rejuvenation.
    for (double t : {0.0, 60.0, 350.0, 950.0, 1850.0, 3650.0, 10850.0}) {
        std::vector<std::string> row{util::fmt(t, 0)};
        for (int n = 1; n <= 3; ++n) {
            const std::size_t c = static_cast<std::size_t>(n - 1);
            const dspn::ReachabilityGraph& nr_graph = nr_graphs[c].graph();
            auto nr_reward = [&](const dspn::Marking& m) {
                return bench::marking_reliability(nr_params[c], m, params);
            };
            row.push_back(util::fmt(
                dspn::expected_reward(
                    nr_graph, dspn::spn_transient_distribution(nr_graph, t), nr_reward),
                6));

            auto r_reward = [&](const dspn::Marking& m) {
                return bench::marking_reliability(r_params[c], m, params);
            };
            const auto est = dspn::simulate_transient_reward(r_graphs[c].net(), r_reward,
                                                             t, replications, 23);
            row.push_back(util::fmt(est.mean, 4) + "±" +
                          util::fmt(est.ci.half_width(), 4));
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\nSteady-state limits for reference (Table V): 0.848/0.920, "
                "0.944/0.969, 0.903/0.954.\n");

    // Phase study: because the rejuvenation clock is deterministic and never
    // disturbed, every replica of the fleet triggers at the same instants
    // k/gamma. Pointwise reliability R(t) therefore oscillates within each
    // interval -- dipping right after the trigger while a module reloads.
    // This effect is invisible in steady-state (time-averaged) analyses and
    // argues for *staggering* rejuvenation clocks across vehicles.
    bench::print_header("Extension: trigger-phase oscillation of R(t), 1-version");
    // The 1v proactive net is already in the engine's prototype registry
    // (first time-loop column): this graph() call is a re-rate, not a build.
    auto phase_reward = [&](const dspn::Marking& m) {
        return bench::marking_reliability(r_params[0], m, params);
    };
    const double base = 10.0 * timing.rejuvenation_interval;
    util::TextTable phase({"t - 10/gamma (s)", "R(t) [CI]"});
    for (double offset : {0.1, 0.3, 1.0, 3.0, 30.0, 150.0, 299.0}) {
        const auto est = dspn::simulate_transient_reward(
            r_graphs[0].net(), phase_reward, base + offset, replications, 29);
        phase.add_row({util::fmt(offset, 1), util::fmt(est.mean, 4) + " ± " +
                                                 util::fmt(est.ci.half_width(), 4)});
    }
    std::fputs(phase.str().c_str(), stdout);
    std::printf("(right after the trigger the lone module is reloading with high\n"
                "probability -- R collapses -- and recovers within ~1/mu_r = %.1f s)\n",
                timing.proactive_duration);
    return 0;
}
