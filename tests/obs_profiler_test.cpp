// obs::Profiler: the sampling-profiler contract. Live-sampling cases burn
// real CPU under a fast sampling interval and assert on what the collector
// aggregated; they are tolerant of scheduling noise (CI machines) but strict
// about the invariants — no samples when off, stage tags attribute nested
// scopes correctly, rings drop (and count) instead of corrupting when
// overrun, and a stopped profiler stays stopped.

#include "mvreju/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "mvreju/obs/obs.hpp"

namespace mvreju::obs {

// Burn CPU in a frame the profiler can both capture and symbolize. External
// linkage (NOT in the tests' anonymous namespace) + noinline so the symbol
// reaches the dynamic symbol table via CMAKE_ENABLE_EXPORTS and dladdr can
// name it; the volatile accumulator keeps the loop from folding away.
[[gnu::noinline]] double profiler_test_burn(std::chrono::milliseconds for_ms) {
    volatile double acc = 1.0;
    const auto until = std::chrono::steady_clock::now() + for_ms;
    while (std::chrono::steady_clock::now() < until) {
        for (int i = 1; i < 1000; ++i) acc = acc + 1.0 / static_cast<double>(i);
    }
    return acc;
}

namespace {

#ifndef MVREJU_OBS_DISABLED

Profiler::Options fast_options() {
    Profiler::Options options;
    options.interval_us = 500;  // ~2 kHz: plenty of samples in a 300 ms burn
    options.window_seconds = 10;
    return options;
}

class ProfilerTest : public ::testing::Test {
protected:
    void SetUp() override { set_enabled(true); }
    void TearDown() override { set_enabled(true); }
};

TEST_F(ProfilerTest, StartStopLifecycle) {
    Profiler profiler(fast_options());
    EXPECT_FALSE(profiler.running());
    ASSERT_TRUE(profiler.start());
    EXPECT_TRUE(profiler.running());
    EXPECT_FALSE(profiler.start());  // double start refused
    profiler.stop();
    EXPECT_FALSE(profiler.running());
    profiler.stop();  // idempotent
}

TEST_F(ProfilerTest, RefusesWhenObsDisabled) {
    set_enabled(false);
    Profiler profiler(fast_options());
    EXPECT_FALSE(profiler.start());
    EXPECT_FALSE(profiler.running());
}

TEST_F(ProfilerTest, OnlyOneProfilerRunsAtATime) {
    Profiler first(fast_options());
    Profiler second(fast_options());
    ASSERT_TRUE(first.start());
    EXPECT_FALSE(second.start());
    first.stop();
    EXPECT_TRUE(second.start());
    second.stop();
}

TEST_F(ProfilerTest, CapturesAndSymbolizesBusyFunction) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    profiler_test_burn(std::chrono::milliseconds(400));
    const std::string folded = profiler.folded();
    const ProfilerStats stats = profiler.stats();
    profiler.stop();

    EXPECT_GT(stats.samples, 10u) << "400ms at ~2kHz should sample many times";
    ASSERT_FALSE(folded.empty());
    EXPECT_NE(folded.find("profiler_test_burn"), std::string::npos)
        << "burn frame not symbolized; folded:\n"
        << folded.substr(0, 2000);
}

TEST_F(ProfilerTest, StageTagsAttributeNestedScopes) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    {
        MVREJU_PROFILE_STAGE(outer, "outer_stage");
        profiler_test_burn(std::chrono::milliseconds(120));
        {
            MVREJU_PROFILE_STAGE(inner, "inner_stage");
            profiler_test_burn(std::chrono::milliseconds(120));
        }
        profiler_test_burn(std::chrono::milliseconds(120));
    }
    const std::vector<StageCpu> stages = profiler.stage_cpu();
    profiler.stop();

    std::uint64_t outer = 0, inner = 0;
    for (const StageCpu& stage : stages) {
        if (stage.stage == "outer_stage") outer = stage.samples;
        if (stage.stage == "inner_stage") inner = stage.samples;
    }
    EXPECT_GT(outer, 0u);
    EXPECT_GT(inner, 0u);
    // Folded lines carry the same tags as their stage prefix.
    // (Re-start to keep the folded view; stage_cpu + folded share buckets.)
}

TEST_F(ProfilerTest, FoldedLinesLeadWithStageTag) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    {
        MVREJU_PROFILE_STAGE(scope, "tagged_burn");
        profiler_test_burn(std::chrono::milliseconds(250));
    }
    const std::string folded = profiler.folded();
    profiler.stop();
    EXPECT_NE(folded.find("tagged_burn;"), std::string::npos)
        << folded.substr(0, 2000);
}

TEST_F(ProfilerTest, WorkerThreadsAreSampledToo) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t)
        workers.emplace_back([] {
            MVREJU_PROFILE_STAGE(scope, "worker_stage");
            profiler_test_burn(std::chrono::milliseconds(300));
        });
    for (std::thread& worker : workers) worker.join();
    const std::vector<StageCpu> stages = profiler.stage_cpu();
    const ProfilerStats stats = profiler.stats();
    profiler.stop();

    EXPECT_GE(stats.rings_claimed, 1u);
    std::uint64_t worker_samples = 0;
    for (const StageCpu& stage : stages)
        if (stage.stage == "worker_stage") worker_samples = stage.samples;
    EXPECT_GT(worker_samples, 0u);
}

TEST_F(ProfilerTest, OverrunDropsAreCountedNotCorrupting) {
    Profiler::Options options = fast_options();
    options.interval_us = 100;  // 10 kHz into...
    options.ring_slots = 8;     // ...an 8-slot ring: the collector (100 ms
                                // cadence) must be lapped between drains.
    Profiler profiler(options);
    ASSERT_TRUE(profiler.start());
    profiler_test_burn(std::chrono::milliseconds(500));
    const ProfilerStats stats = profiler.stats();
    profiler.stop();
    EXPECT_GT(stats.drops, 0u) << "8-slot ring at 10kHz cannot keep up";
    EXPECT_GT(stats.samples, stats.drops) << "most samples still land";
}

TEST_F(ProfilerTest, ClearDropsRetainedSamples) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    profiler_test_burn(std::chrono::milliseconds(200));
    EXPECT_FALSE(profiler.folded().empty());
    profiler.clear();
    // A fresh window may legitimately catch a sample between clear() and
    // folded(); the strong claim is about the stats baseline.
    EXPECT_LT(profiler.stats().samples, 50u);
    profiler.stop();
}

TEST_F(ProfilerTest, StatsAccountHandlerOverhead) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    profiler_test_burn(std::chrono::milliseconds(300));
    const ProfilerStats stats = profiler.stats();
    profiler.stop();
    ASSERT_GT(stats.samples, 0u);
    EXPECT_GT(stats.handler_ns, 0u);
    // Mean handler cost should be far below the sampling interval — the
    // <2% bench overhead gate depends on this being microseconds at worst.
    EXPECT_LT(stats.handler_ns / stats.samples, 100000u);
}

TEST_F(ProfilerTest, NoSamplesAccumulateAfterStop) {
    Profiler profiler(fast_options());
    ASSERT_TRUE(profiler.start());
    profiler_test_burn(std::chrono::milliseconds(150));
    profiler.stop();
    const std::uint64_t at_stop = profiler.stats().samples;
    profiler_test_burn(std::chrono::milliseconds(150));
    EXPECT_EQ(profiler.stats().samples, at_stop);
}

#else  // MVREJU_OBS_DISABLED

TEST(ProfilerDisabledTest, CompilesToInertStubs) {
    Profiler& profiler = Profiler::global();
    EXPECT_FALSE(profiler.start());
    EXPECT_FALSE(profiler.running());
    {
        MVREJU_PROFILE_STAGE(scope, "anything");
        profiler_test_burn(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(profiler.folded().empty());
    EXPECT_TRUE(profiler.stage_cpu().empty());
    EXPECT_EQ(profiler.stats().samples, 0u);
    profiler.stop();
}

#endif  // MVREJU_OBS_DISABLED

}  // namespace
}  // namespace mvreju::obs
