// Gate suite for the kernel-backend registry (ROADMAP item 2): every
// non-scalar backend must earn its place against the scalar oracle on the
// full Table II eval workload before the serving layer may dispatch to it.
//
//  - "avx2": argmax-identical to scalar on every eval image (the FMA tiling
//    reorders float summation, so logits may drift in the last ulps, but a
//    prediction flip would be a silent diversity violation).
//  - "int8": a deliberately diverse replica — logit drift is bounded by an
//    explicit declared tolerance and argmax agreement has a hard floor.
//  - select_backend(): unknown names throw, compiled-but-unsupported avx2
//    falls back to scalar with a warning instead of crashing.
//  - determinism: each backend is bit-identical to itself across thread
//    counts and under an 8-thread shared-model hammer (TSan job runs this).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mvreju/data/signs.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"
#include "mvreju/num/backend.hpp"
#include "mvreju/num/gemm.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::ml {
namespace {

// ---- Declared int8 accuracy contract (mirrored by the BENCH_ml gates) ----
//
// Measured on the full 1000-image signs eval set with the briefly-trained
// trio below (960 train images, 5 epochs): max |logit drift| 0.31, argmax
// agreement 99.2/99.3/99.3% per model, 99.3% pooled. The bounds leave
// headroom for toolchain variation while staying tight enough that a broken
// quantizer cannot hide. The headline per-model >= 99% gate runs against
// the fully-trained Table II weights in bench_ml + bench_compare (agreement
// there: 99.5-99.9%); briefly-trained models keep this binary fast but
// carry weakly-separated logits, so the pooled floor is the stable
// statistic (3000 comparisons) and the per-model floor is a safety net.
constexpr float kInt8LogitTolerance = 0.5f;
constexpr double kInt8PooledAgreementFloor = 0.99;
constexpr double kInt8PerModelAgreementFloor = 0.98;

const data::SignDataset& signs() {
    static const data::SignDataset dataset = [] {
        data::SignDatasetConfig cfg;
        cfg.train_count = 1;  // the test set is independent of train_count
        return data::make_traffic_signs(cfg);
    }();
    return dataset;
}

/// The int8 accuracy contract is defined over *trained* models: untrained
/// random weights produce near-tie logits whose argmax flips under any
/// perturbation, which measures tie-breaking, not quantization quality.
/// Serving only ever dispatches trained models. Trained once per binary.
const std::vector<Sequential>& trained_models() {
    static const std::vector<Sequential> models = [] {
        data::SignDatasetConfig cfg;
        cfg.train_count = 960;
        const data::SignDataset ds = data::make_traffic_signs(cfg);
        std::vector<Sequential> out;
        out.push_back(make_mini_alexnet(3, 16, data::kSignClasses, 38));
        out.push_back(make_micro_resnet(3, 16, data::kSignClasses, 38));
        out.push_back(make_tiny_lenet(3, 16, data::kSignClasses, 38));
        for (Sequential& model : out) {
            TrainConfig tc;
            tc.epochs = 5;
            tc.learning_rate = 0.03f;
            tc.lr_decay = 0.9f;
            model.train(ds.train, tc);
        }
        return out;
    }();
    return models;
}

std::vector<Sequential> reference_models() {
    std::vector<Sequential> models;
    models.push_back(make_mini_alexnet(3, 16, data::kSignClasses, 38));
    models.push_back(make_micro_resnet(3, 16, data::kSignClasses, 38));
    models.push_back(make_tiny_lenet(3, 16, data::kSignClasses, 38));
    return models;
}

Tensor stack(const std::vector<Tensor>& images) {
    std::vector<std::size_t> shape;
    shape.push_back(images.size());
    for (std::size_t d : images.front().shape()) shape.push_back(d);
    Tensor batch(shape);
    const std::size_t sample = images.front().size();
    for (std::size_t i = 0; i < images.size(); ++i)
        std::memcpy(batch.data().data() + i * sample, images[i].data().data(),
                    sample * sizeof(float));
    return batch;
}

/// Full-eval-set logits for `model` through an explicit backend.
Tensor eval_logits(const Sequential& model, const num::KernelBackend& kb,
                   std::size_t threads = 1) {
    Workspace ws;
    return model.logits_batch(stack(signs().test.images), ws, threads, kb);
}

/// Argmax per row of a (n, classes) logits tensor.
std::vector<int> row_argmax(const Tensor& logits, std::size_t classes) {
    std::vector<int> preds;
    for (std::size_t r = 0; r < logits.size() / classes; ++r) {
        const float* row = logits.data().data() + r * classes;
        int best = 0;
        for (std::size_t c = 1; c < classes; ++c)
            if (row[c] > row[best]) best = static_cast<int>(c);
        preds.push_back(best);
    }
    return preds;
}

TEST(BackendRegistry, ScalarIsAlwaysPresentAndFirst) {
    const auto& all = num::backends();
    ASSERT_FALSE(all.empty());
    EXPECT_EQ(all[0], &num::scalar_backend());
    EXPECT_EQ(num::scalar_backend().name(), "scalar");
    EXPECT_TRUE(num::scalar_backend().bit_exact());
    EXPECT_TRUE(num::scalar_backend().supported());
    EXPECT_EQ(num::backend_index(num::scalar_backend()), 0u);
    // int8 is pure C++ and always compiled in.
    ASSERT_NE(num::find_backend("int8"), nullptr);
    EXPECT_FALSE(num::find_backend("int8")->bit_exact());
}

TEST(BackendRegistry, SelectBackendResolvesAndThrows) {
    EXPECT_EQ(&num::select_backend(), &num::scalar_backend());
    EXPECT_EQ(&num::select_backend("scalar"), &num::scalar_backend());
    EXPECT_EQ(num::select_backend("int8").name(), "int8");
    EXPECT_THROW((void)num::select_backend("cuda"), std::invalid_argument);
    EXPECT_THROW((void)num::select_backend("AVX2"), std::invalid_argument);
}

TEST(BackendRegistry, Avx2RequestNeverCrashes) {
    // Compiled in + supported host: resolves to avx2. Compiled in but
    // unsupported host, or not compiled in at all: logged fallback to
    // scalar. All three cases must resolve — never throw, never crash.
    const num::KernelBackend& kb = num::select_backend("avx2");
    if (num::find_backend("avx2") != nullptr && num::avx2_supported())
        EXPECT_EQ(kb.name(), "avx2");
    else
        EXPECT_EQ(&kb, &num::scalar_backend());
}

TEST(BackendRegistry, UnsupportedBackendsAreNeverDispatchable) {
    for (const num::KernelBackend* kb : num::backends()) {
        if (kb->supported()) continue;
        EXPECT_EQ(&num::select_backend(kb->name()), &num::scalar_backend());
    }
}

/// Raw-kernel oracle check: C += A·B (and A·Bᵀ) against the scalar kernels
/// on awkward shapes (panel tails, k tails, m tails for the tiled kernel).
TEST(BackendKernels, GemmMatchesScalarOracleOnAwkwardShapes) {
    util::Rng rng(99);
    const struct { std::size_t m, n, k; } shapes[] = {
        {1, 1, 1}, {3, 17, 5}, {4, 16, 32}, {5, 33, 7}, {64, 100, 27}, {7, 8, 128},
    };
    for (const num::KernelBackend* kb : num::backends()) {
        if (kb == &num::scalar_backend() || !kb->supported()) continue;
        SCOPED_TRACE(std::string(kb->name()));
        // int8 quantization error scales with |A|·|B|; these inputs are in
        // [-1, 1] so a per-element bound of k * 2/127 is comfortably loose.
        const bool quantized = kb->name() == "int8";
        for (const auto& s : shapes) {
            std::vector<float> a(s.m * s.k), b(s.k * s.n), bt(s.n * s.k);
            for (float& v : a) v = rng.uniform(-1.0f, 1.0f);
            for (float& v : b) v = rng.uniform(-1.0f, 1.0f);
            for (std::size_t i = 0; i < s.n; ++i)
                for (std::size_t j = 0; j < s.k; ++j) bt[i * s.k + j] = b[j * s.n + i];
            const float tol = quantized
                ? static_cast<float>(s.k) * 2.0f / 127.0f
                : 1e-4f;

            std::vector<float> want(s.m * s.n, 0.5f), got(s.m * s.n, 0.5f);
            num::sgemm(s.m, s.n, s.k, a.data(), b.data(), want.data(), 1);
            kb->sgemm(s.m, s.n, s.k, a.data(), b.data(), got.data(), 1);
            for (std::size_t i = 0; i < want.size(); ++i)
                ASSERT_NEAR(got[i], want[i], tol)
                    << "sgemm " << s.m << "x" << s.n << "x" << s.k << " elem " << i;

            std::vector<float> want_nt(s.m * s.n, -0.25f), got_nt(s.m * s.n, -0.25f);
            num::sgemm_nt(s.m, s.n, s.k, a.data(), bt.data(), want_nt.data(), 1);
            kb->sgemm_nt(s.m, s.n, s.k, a.data(), bt.data(), got_nt.data(), 1);
            for (std::size_t i = 0; i < want_nt.size(); ++i)
                ASSERT_NEAR(got_nt[i], want_nt[i], tol)
                    << "sgemm_nt " << s.m << "x" << s.n << "x" << s.k << " elem " << i;
        }
    }
}

TEST(BackendEquivalence, Avx2ArgmaxIdenticalOnFullEvalSet) {
    const num::KernelBackend* avx2 = num::find_backend("avx2");
    if (avx2 == nullptr || !avx2->supported())
        GTEST_SKIP() << "avx2 backend not available on this host";
    for (Sequential& model : reference_models()) {
        SCOPED_TRACE(model.name());
        const Tensor scalar = eval_logits(model, num::scalar_backend());
        const Tensor vec = eval_logits(model, *avx2);
        ASSERT_EQ(vec.size(), scalar.size());
        EXPECT_EQ(row_argmax(vec, data::kSignClasses),
                  row_argmax(scalar, data::kSignClasses));
    }
}

TEST(BackendEquivalence, Int8DriftBoundedAndArgmaxAgreementAboveFloor) {
    const num::KernelBackend* int8 = num::find_backend("int8");
    ASSERT_NE(int8, nullptr);
    std::size_t agree_total = 0;
    std::size_t compared_total = 0;
    for (const Sequential& model : trained_models()) {
        SCOPED_TRACE(model.name());
        const Tensor scalar = eval_logits(model, num::scalar_backend());
        const Tensor quant = eval_logits(model, *int8);
        ASSERT_EQ(quant.size(), scalar.size());

        float max_drift = 0.0f;
        for (std::size_t i = 0; i < scalar.size(); ++i)
            max_drift = std::max(max_drift, std::fabs(quant[i] - scalar[i]));
        EXPECT_LE(max_drift, kInt8LogitTolerance);

        const std::vector<int> want = row_argmax(scalar, data::kSignClasses);
        const std::vector<int> got = row_argmax(quant, data::kSignClasses);
        std::size_t agree = 0;
        for (std::size_t i = 0; i < want.size(); ++i) agree += (want[i] == got[i]);
        agree_total += agree;
        compared_total += want.size();
        const double agreement =
            static_cast<double>(agree) / static_cast<double>(want.size());
        RecordProperty("int8_max_drift", std::to_string(max_drift));
        RecordProperty("int8_argmax_agreement", std::to_string(agreement));
        EXPECT_GE(agreement, kInt8PerModelAgreementFloor)
            << "agreement " << agreement << " on " << want.size() << " images";
    }
    const double pooled =
        static_cast<double>(agree_total) / static_cast<double>(compared_total);
    EXPECT_GE(pooled, kInt8PooledAgreementFloor)
        << "pooled agreement " << pooled << " on " << compared_total << " comparisons";
}

TEST(BackendEquivalence, Int8IndependentOfBatchComposition) {
    // Per-row activation scales: a sample's quantized logits must not
    // depend on its batch-mates, or serving's batched path would diverge
    // from the per-frame predict() path.
    const num::KernelBackend& int8 = *num::find_backend("int8");
    Sequential model = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    const std::vector<Tensor>& images = signs().test.images;

    Workspace ws;
    const Tensor full = model.logits_batch(stack(images), ws, 1, int8);
    for (std::size_t i : {std::size_t{0}, std::size_t{17}, images.size() - 1}) {
        const Tensor solo = model.logits(images[i], int8);
        const float* row = full.data().data() + i * data::kSignClasses;
        EXPECT_EQ(std::memcmp(solo.data().data(), row,
                              data::kSignClasses * sizeof(float)),
                  0)
            << "sample " << i;
    }
}

TEST(BackendEquivalence, EachBackendBitIdenticalAcrossThreadCounts) {
    const Tensor batch = stack(signs().test.images);
    Sequential model = make_mini_alexnet(3, 16, data::kSignClasses, 38);
    for (const num::KernelBackend* kb : num::backends()) {
        if (!kb->supported()) continue;
        SCOPED_TRACE(std::string(kb->name()));
        Workspace ws;
        const Tensor reference = model.logits_batch(batch, ws, 1, *kb);
        for (std::size_t threads : {std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
            Tensor logits = model.logits_batch(batch, ws, threads, *kb);
            ASSERT_EQ(logits.size(), reference.size());
            EXPECT_EQ(std::memcmp(logits.data().data(), reference.data().data(),
                                  reference.size() * sizeof(float)),
                      0)
                << "threads=" << threads;
            ws.give(std::move(logits));
        }
    }
}

TEST(BackendEquivalence, BoundBackendFlowsThroughPredictPaths) {
    // A model bound at load time dispatches every public inference path
    // (predict, predict_batch, logits_batch) through its backend.
    const num::KernelBackend& int8 = *num::find_backend("int8");
    Sequential bound = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    bound.bind_backend(&int8);
    EXPECT_EQ(&bound.backend(), &int8);

    Sequential pristine = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    const std::vector<Tensor>& images = signs().test.images;
    for (std::size_t i : {std::size_t{0}, std::size_t{42}}) {
        EXPECT_EQ(bound.predict(images[i]), pristine.predict(images[i], int8));
    }
    // Copies inherit the binding (the serving layer's twin-pool relies on it).
    Sequential copy = bound;
    EXPECT_EQ(&copy.backend(), &int8);
}

TEST(BackendHammer, SharedModelEightThreadsPerBackend) {
    // One const model shared by 8 threads per backend: inference must be
    // data-race free (the TSan CI job runs this case) and every thread must
    // see bit-identical logits.
    const std::vector<Tensor>& images = signs().test.images;
    std::vector<Tensor> subset(images.begin(), images.begin() + 64);
    const Tensor batch = stack(subset);
    Sequential model = make_micro_resnet(3, 16, data::kSignClasses, 38);

    for (const num::KernelBackend* kb : num::backends()) {
        if (!kb->supported()) continue;
        SCOPED_TRACE(std::string(kb->name()));
        Workspace ws;
        const Tensor reference = model.logits_batch(batch, ws, 1, *kb);

        std::atomic<int> mismatches{0};
        std::vector<std::thread> threads;
        for (int t = 0; t < 8; ++t) {
            threads.emplace_back([&, t] {
                Workspace local;
                for (int round = 0; round < 3; ++round) {
                    const Tensor logits =
                        model.logits_batch(batch, local, 1 + (t % 3), *kb);
                    if (logits.size() != reference.size() ||
                        std::memcmp(logits.data().data(), reference.data().data(),
                                    reference.size() * sizeof(float)) != 0)
                        mismatches.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        for (std::thread& t : threads) t.join();
        EXPECT_EQ(mismatches.load(), 0);
    }
}

TEST(BackendWorkspace, ConvPathReachesAllocationSteadyState) {
    // Satellite guarantee behind the pooled im2col buffer: after a warm-up
    // batch, repeated same-shape inference performs zero heap growth.
    Sequential model = make_mini_alexnet(3, 16, data::kSignClasses, 38);
    std::vector<Tensor> subset(signs().test.images.begin(),
                               signs().test.images.begin() + 32);
    const Tensor batch = stack(subset);
    for (const num::KernelBackend* kb : num::backends()) {
        if (!kb->supported()) continue;
        SCOPED_TRACE(std::string(kb->name()));
        Workspace ws;
        ws.give(model.logits_batch(batch, ws, 4, *kb));  // warm-up sizes the pool
        const std::size_t warm = ws.allocation_count();
        for (int round = 0; round < 5; ++round)
            ws.give(model.logits_batch(batch, ws, 4, *kb));
        EXPECT_EQ(ws.allocation_count(), warm) << "steady-state allocations";
    }
}

}  // namespace
}  // namespace mvreju::ml
