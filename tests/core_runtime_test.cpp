#include "mvreju/core/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace mvreju::core {
namespace {

using namespace std::chrono_literals;
using IntRuntime = RuntimeSystem<int, int>;

IntRuntime::ModuleFn echo() {
    return [](const int& x) { return x; };
}

IntRuntime::ModuleFn constant(int value) {
    return [value](const int&) { return value; };
}

IntRuntime::ModuleFn hang(std::chrono::milliseconds duration) {
    return [duration](const int& x) {
        std::this_thread::sleep_for(duration);
        return x;
    };
}

TEST(RuntimeSystem, ValidatesConstruction) {
    EXPECT_THROW(IntRuntime({}, Voter<int>{}), std::invalid_argument);
    std::vector<IntRuntime::ModuleFn> with_null{echo(), nullptr};
    EXPECT_THROW(IntRuntime(std::move(with_null), Voter<int>{}), std::invalid_argument);
}

TEST(RuntimeSystem, HealthyMajorityDecides) {
    IntRuntime runtime({echo(), echo(), echo()}, Voter<int>{});
    const auto result = runtime.process(42);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 42);
    for (std::size_t m = 0; m < 3; ++m) EXPECT_EQ(runtime.timeouts(m), 0u);
}

TEST(RuntimeSystem, FaultyModuleIsOutvoted) {
    IntRuntime runtime({echo(), constant(-1), echo()}, Voter<int>{});
    const auto result = runtime.process(7);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 7);
}

TEST(RuntimeSystem, CrashingModuleSubmitsNothing) {
    auto crash = [](const int&) -> int { throw std::runtime_error("boom"); };
    IntRuntime runtime({echo(), crash, echo()}, Voter<int>{});
    const auto result = runtime.process(5);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 5);
    EXPECT_EQ(runtime.timeouts(1), 1u);  // missed its deadline
}

TEST(RuntimeSystem, NonResponsiveModuleDetectedByDeadline) {
    IntRuntime::Options opt;
    opt.deadline = 40ms;
    IntRuntime runtime({echo(), hang(400ms), echo()}, Voter<int>{}, opt);
    const auto result = runtime.process(9);
    ASSERT_TRUE(result.decided());  // the two healthy modules agree
    EXPECT_EQ(*result.value, 9);
    EXPECT_EQ(runtime.timeouts(1), 1u);
    // A second frame while module 1 is still wedged: busy-drop counted too.
    const auto again = runtime.process(10);
    ASSERT_TRUE(again.decided());
    EXPECT_EQ(runtime.timeouts(1), 2u);
}

TEST(RuntimeSystem, StragglerIsDiscardedNotCorrupting) {
    IntRuntime::Options opt;
    opt.deadline = 30ms;
    IntRuntime runtime({echo(), hang(120ms), echo()}, Voter<int>{}, opt);
    (void)runtime.process(1);
    // Wait for the straggler to wake up and write into the closed frame.
    std::this_thread::sleep_for(200ms);
    // Its worker is idle again and the next frame works normally (module 1
    // hangs afresh on every call, so it times out again -- but cleanly).
    const auto result = runtime.process(2);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 2);
    EXPECT_EQ(runtime.timeouts(1), 2u);
}

TEST(RuntimeSystem, RejuvenationSwapsIdleModule) {
    IntRuntime runtime({echo(), constant(-1), echo()}, Voter<int>{});
    runtime.rejuvenate(1, echo());
    EXPECT_EQ(runtime.rejuvenations(), 1u);
    const auto result = runtime.process(3);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 3);
    EXPECT_THROW(runtime.rejuvenate(9, echo()), std::out_of_range);
    EXPECT_THROW(runtime.rejuvenate(0, nullptr), std::invalid_argument);
}

TEST(RuntimeSystem, RejuvenationRecoversWedgedModule) {
    IntRuntime::Options opt;
    opt.deadline = 30ms;
    IntRuntime runtime({echo(), hang(10s), echo()}, Voter<int>{}, opt);
    (void)runtime.process(1);                 // module 1 wedges for 10 s
    EXPECT_EQ(runtime.timeouts(1), 1u);
    runtime.rejuvenate(1, echo());            // detach + fresh worker
    const auto result = runtime.process(4);
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 4);
    EXPECT_EQ(runtime.timeouts(1), 1u);       // fresh worker responds in time
}

TEST(RuntimeSystem, AllModulesDownGivesNoOutput) {
    IntRuntime::Options opt;
    opt.deadline = 20ms;
    IntRuntime runtime({hang(300ms), hang(300ms)}, Voter<int>{}, opt);
    const auto result = runtime.process(1);
    EXPECT_EQ(result.kind, VoteKind::no_output);
}

TEST(RuntimeSystem, TwoModuleDisagreementSkips) {
    IntRuntime runtime({constant(1), constant(2)}, Voter<int>{});
    EXPECT_EQ(runtime.process(0).kind, VoteKind::skipped);
}

TEST(RuntimeSystem, ManySequentialFramesStayConsistent) {
    std::atomic<int> calls{0};
    auto counting = [&calls](const int& x) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return x * 2;
    };
    IntRuntime runtime({counting, counting, counting}, Voter<int>{});
    for (int i = 0; i < 200; ++i) {
        const auto result = runtime.process(i);
        ASSERT_TRUE(result.decided());
        EXPECT_EQ(*result.value, i * 2);
    }
    EXPECT_EQ(calls.load(), 600);
}

}  // namespace
}  // namespace mvreju::core
