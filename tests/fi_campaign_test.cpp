#include "mvreju/fi/campaign.hpp"

#include <gtest/gtest.h>

namespace mvreju::fi {
namespace {

/// Tiny trained classifier on a separable task, shared across the suite.
struct Fixture {
    ml::Sequential model{"tiny"};
    ml::Dataset eval;
};

Fixture make_fixture() {
    util::Rng rng(3);
    Fixture fx;
    fx.model.add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(8, 6, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(6, 2, rng));

    ml::Dataset train;
    train.num_classes = 2;
    util::Rng data_rng(4);
    auto emit = [&](ml::Dataset& ds, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            const int label = static_cast<int>(i % 2);
            ml::Tensor img({1, 2, 4});
            for (std::size_t k = 0; k < img.size(); ++k)
                img[k] = static_cast<float>((label ? 0.8 : 0.2) +
                                            data_rng.uniform(-0.1, 0.1));
            ds.images.push_back(std::move(img));
            ds.labels.push_back(label);
        }
        ds.num_classes = 2;
    };
    emit(train, 200);
    emit(fx.eval, 80);
    ml::TrainConfig tc;
    tc.epochs = 5;
    tc.learning_rate = 0.05f;
    fx.model.train(train, tc);
    return fx;
}

Fixture& fixture() {
    static Fixture fx = make_fixture();
    return fx;
}

TEST(ClassifyOutcome, ThresholdBands) {
    CampaignConfig cfg;
    cfg.degraded_threshold = 0.05;
    cfg.critical_threshold = 0.30;
    EXPECT_EQ(classify_outcome(0.9, 0.89, cfg), FaultOutcome::benign);
    EXPECT_EQ(classify_outcome(0.9, 0.80, cfg), FaultOutcome::degraded);
    EXPECT_EQ(classify_outcome(0.9, 0.50, cfg), FaultOutcome::critical);
    EXPECT_EQ(classify_outcome(0.9, 0.95, cfg), FaultOutcome::benign);  // improvement
}

TEST(WeightCampaign, CoversEveryLayerAndRestoresModel) {
    auto& fx = fixture();
    const double baseline = fx.model.evaluate(fx.eval).accuracy;
    ASSERT_GT(baseline, 0.9);

    CampaignConfig cfg;
    cfg.injections_per_site = 10;
    const auto report = run_weight_campaign(fx.model, fx.eval, cfg);
    EXPECT_DOUBLE_EQ(report.baseline_accuracy, baseline);
    ASSERT_EQ(report.sites.size(), injectable_layer_count(fx.model));
    for (const auto& site : report.sites) {
        EXPECT_EQ(site.injections(), 10u);
        EXPECT_GT(site.parameters, 0u);
        EXPECT_GE(site.worst_accuracy_drop, site.mean_accuracy_drop - 1e-12);
    }
    // The campaign must leave the model exactly as it found it.
    EXPECT_DOUBLE_EQ(fx.model.evaluate(fx.eval).accuracy, baseline);
}

TEST(WeightCampaign, LargeValueFaultsAreSometimesHarmful) {
    auto& fx = fixture();
    CampaignConfig cfg;
    cfg.injections_per_site = 30;
    cfg.value_min = 50.0f;  // massive corruptions
    cfg.value_max = 200.0f;
    const auto report = run_weight_campaign(fx.model, fx.eval, cfg);
    std::size_t harmful = 0;
    for (const auto& site : report.sites) harmful += site.degraded + site.critical;
    EXPECT_GT(harmful, 0u);
}

TEST(WeightCampaign, DeterministicUnderSeed) {
    auto& fx = fixture();
    CampaignConfig cfg;
    cfg.injections_per_site = 5;
    const auto a = run_weight_campaign(fx.model, fx.eval, cfg);
    const auto b = run_weight_campaign(fx.model, fx.eval, cfg);
    for (std::size_t s = 0; s < a.sites.size(); ++s) {
        EXPECT_EQ(a.sites[s].critical, b.sites[s].critical);
        EXPECT_DOUBLE_EQ(a.sites[s].mean_accuracy_drop, b.sites[s].mean_accuracy_drop);
    }
}

TEST(BitflipCampaign, ThirtyTwoSitesAndExponentSensitivity) {
    auto& fx = fixture();
    CampaignConfig cfg;
    cfg.injections_per_site = 12;
    const auto report = run_bitflip_campaign(fx.model, fx.eval, 0, cfg);
    ASSERT_EQ(report.sites.size(), 32u);

    // The classic result: high exponent bits (30) hurt far more than low
    // mantissa bits (0-10).
    double exponent_drop = report.sites[30].mean_accuracy_drop;
    double mantissa_drop = 0.0;
    for (int bit = 0; bit <= 10; ++bit)
        mantissa_drop = std::max(mantissa_drop, report.sites[bit].mean_accuracy_drop);
    EXPECT_GE(exponent_drop, mantissa_drop);
    // Low mantissa flips are essentially benign.
    EXPECT_LT(report.sites[0].mean_accuracy_drop, 0.02);
    // Model restored.
    EXPECT_DOUBLE_EQ(fx.model.evaluate(fx.eval).accuracy, report.baseline_accuracy);
}

TEST(Campaign, Validation) {
    auto& fx = fixture();
    CampaignConfig cfg;
    EXPECT_THROW((void)run_weight_campaign(fx.model, ml::Dataset{}, cfg),
                 std::invalid_argument);
    cfg.injections_per_site = 0;
    EXPECT_THROW((void)run_weight_campaign(fx.model, fx.eval, cfg),
                 std::invalid_argument);
    cfg.injections_per_site = 1;
    cfg.degraded_threshold = 0.5;
    cfg.critical_threshold = 0.1;
    EXPECT_THROW((void)run_weight_campaign(fx.model, fx.eval, cfg),
                 std::invalid_argument);
    CampaignConfig ok;
    EXPECT_THROW((void)run_bitflip_campaign(fx.model, fx.eval, 99, ok),
                 std::out_of_range);
}

}  // namespace
}  // namespace mvreju::fi
