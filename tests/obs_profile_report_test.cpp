// obs/profile_report: pure-text folded-stacks analysis. Runs identically
// with and without MVREJU_OBS — the report library has no profiler
// dependency, by design (tools/profile_render must digest profiles captured
// on other builds).

#include "mvreju/obs/profile_report.hpp"

#include <gtest/gtest.h>

namespace mvreju::obs {
namespace {

const char kSample[] =
    "infer;main;serve::flush;num::sgemm 60\n"
    "infer;main;serve::flush;num::im2col 25\n"
    "vote;main;serve::finalize;core::vote 10\n"
    "untagged;main;idle_wait 5\n";

TEST(ProfileReportTest, ParsesStageFramesAndCounts) {
    const std::vector<FoldedStack> stacks = parse_folded(kSample);
    ASSERT_EQ(stacks.size(), 4u);
    EXPECT_EQ(stacks[0].stage, "infer");
    ASSERT_EQ(stacks[0].frames.size(), 3u);
    EXPECT_EQ(stacks[0].frames[0], "main");
    EXPECT_EQ(stacks[0].frames[2], "num::sgemm");
    EXPECT_EQ(stacks[0].count, 60u);
    EXPECT_EQ(stacks[3].stage, "untagged");
}

TEST(ProfileReportTest, SkipsMalformedLines) {
    const std::vector<FoldedStack> stacks = parse_folded(
        "\n"
        "no_count_here\n"
        "stage;frame notanumber\n"
        "stage;frame 0\n"
        "ok;frame 3\n");
    ASSERT_EQ(stacks.size(), 1u);
    EXPECT_EQ(stacks[0].stage, "ok");
    EXPECT_EQ(stacks[0].count, 3u);
}

TEST(ProfileReportTest, StageOnlyLineParses) {
    const std::vector<FoldedStack> stacks = parse_folded("lonely_stage 7\n");
    ASSERT_EQ(stacks.size(), 1u);
    EXPECT_EQ(stacks[0].stage, "lonely_stage");
    EXPECT_TRUE(stacks[0].frames.empty());
}

TEST(ProfileReportTest, HotspotsSelfVsTotal) {
    const std::vector<Hotspot> spots = hotspots(parse_folded(kSample));
    ASSERT_FALSE(spots.empty());
    // num::sgemm leads by self samples.
    EXPECT_EQ(spots[0].frame, "num::sgemm");
    EXPECT_EQ(spots[0].self, 60u);
    EXPECT_EQ(spots[0].total, 60u);
    // main appears in every stack: total 100, self 0.
    for (const Hotspot& spot : spots)
        if (spot.frame == "main") {
            EXPECT_EQ(spot.total, 100u);
            EXPECT_EQ(spot.self, 0u);
        }
}

TEST(ProfileReportTest, RecursionCountedOncePerStack) {
    const std::vector<Hotspot> spots =
        hotspots(parse_folded("s;rec;rec;rec 9\n"));
    ASSERT_EQ(spots.size(), 1u);
    EXPECT_EQ(spots[0].total, 9u) << "recursive frame must not triple-count";
    EXPECT_EQ(spots[0].self, 9u);
}

TEST(ProfileReportTest, StageTotalsFractionsAndOrder) {
    const std::vector<StageTotal> stages = stage_totals(parse_folded(kSample));
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].stage, "infer");
    EXPECT_EQ(stages[0].samples, 85u);
    EXPECT_NEAR(stages[0].fraction, 0.85, 1e-12);
    EXPECT_EQ(stages.back().stage, "untagged") << "untagged sorts last";
}

TEST(ProfileReportTest, RenderMentionsTopFrameAndStages) {
    const std::string table = render_hotspots(parse_folded(kSample), 5);
    EXPECT_NE(table.find("num::sgemm"), std::string::npos);
    EXPECT_NE(table.find("by stage:"), std::string::npos);
    EXPECT_NE(table.find("infer"), std::string::npos);
    EXPECT_NE(table.find("100 samples"), std::string::npos);
}

TEST(ProfileReportTest, EmptyInputRendersEmptyReport) {
    const std::vector<FoldedStack> stacks = parse_folded("");
    EXPECT_TRUE(stacks.empty());
    const std::string table = render_hotspots(stacks, 5);
    EXPECT_NE(table.find("0 samples"), std::string::npos);
}

}  // namespace
}  // namespace mvreju::obs
