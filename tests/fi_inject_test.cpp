#include "mvreju/fi/inject.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace mvreju::fi {
namespace {

ml::Sequential small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    ml::Sequential model("small");
    model.add(std::make_unique<ml::Conv2D>(1, 2, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(2 * 4 * 4, 4, rng));
    return model;
}

TEST(Inject, LayerCountMatchesParameterizedLayers) {
    auto model = small_model(1);
    EXPECT_EQ(injectable_layer_count(model), 2u);  // conv and dense
}

TEST(Inject, RandomWeightInjChangesExactlyOneWeight) {
    auto model = small_model(2);
    auto before = model;  // deep copy
    const Injection inj = random_weight_inj(model, 0, -10.0f, 30.0f, 42);

    auto spans_after = model.parameter_spans();
    auto spans_before = before.parameter_spans();
    std::size_t diffs = 0;
    for (std::size_t s = 0; s < spans_after.size(); ++s)
        for (std::size_t i = 0; i < spans_after[s].size(); ++i)
            if (spans_after[s][i] != spans_before[s][i]) ++diffs;
    EXPECT_EQ(diffs, 1u);
    EXPECT_EQ(spans_after[inj.span_index][inj.offset], inj.new_value);
    EXPECT_GE(inj.new_value, -10.0f);
    EXPECT_LT(inj.new_value, 30.0f);
}

TEST(Inject, DeterministicUnderSeed) {
    auto a = small_model(3);
    auto b = small_model(3);
    const Injection ia = random_weight_inj(a, 1, -5.0f, 5.0f, 7);
    const Injection ib = random_weight_inj(b, 1, -5.0f, 5.0f, 7);
    EXPECT_EQ(ia.offset, ib.offset);
    EXPECT_EQ(ia.new_value, ib.new_value);
}

TEST(Inject, RestoreUndoesInjection) {
    auto model = small_model(4);
    auto pristine = model;
    const Injection inj = random_weight_inj(model, 0, -10.0f, 30.0f, 9);
    restore(model, inj);
    auto spans = model.parameter_spans();
    auto ref = pristine.parameter_spans();
    for (std::size_t s = 0; s < spans.size(); ++s)
        for (std::size_t i = 0; i < spans[s].size(); ++i)
            EXPECT_EQ(spans[s][i], ref[s][i]);
}

TEST(Inject, BitFlipTogglesExactlyOneBit) {
    auto model = small_model(5);
    const Injection inj = bit_flip_weight(model, 0, 30, 11);  // exponent MSB
    const auto before = std::bit_cast<std::uint32_t>(inj.old_value);
    const auto after = std::bit_cast<std::uint32_t>(inj.new_value);
    EXPECT_EQ(before ^ after, std::uint32_t{1} << 30);
    EXPECT_THROW((void)bit_flip_weight(model, 0, 32, 1), std::invalid_argument);
    EXPECT_THROW((void)bit_flip_weight(model, 0, -1, 1), std::invalid_argument);
}

TEST(Inject, SignBitFlipNegatesValue) {
    auto model = small_model(6);
    const Injection inj = bit_flip_weight(model, 1, 31, 3);
    EXPECT_FLOAT_EQ(inj.new_value, -inj.old_value);
}

TEST(Inject, StuckAtForcesChosenWeight) {
    auto model = small_model(7);
    const Injection inj = stuck_at(model, 1, 5, 0.0f);
    EXPECT_EQ(inj.offset, 5u);
    EXPECT_EQ(model.parameter_spans()[1][5], 0.0f);
    EXPECT_THROW((void)stuck_at(model, 1, 1'000'000, 0.0f), std::out_of_range);
}

TEST(Inject, BurstInjectionsAllRecordedAndReversible) {
    auto model = small_model(8);
    auto pristine = model;
    auto injections = burst_weight_inj(model, 0, 5, -1.0f, 1.0f, 13);
    EXPECT_EQ(injections.size(), 5u);
    restore_all(model, injections);
    auto spans = model.parameter_spans();
    auto ref = pristine.parameter_spans();
    for (std::size_t s = 0; s < spans.size(); ++s)
        for (std::size_t i = 0; i < spans[s].size(); ++i)
            EXPECT_EQ(spans[s][i], ref[s][i]) << "span " << s << " index " << i;
}

TEST(Inject, OverlappingBurstRestoresInReverseOrder) {
    // Force two injections at the same offset; restore_all must end at the
    // original value, which only works when undone in reverse.
    auto model = small_model(9);
    const float original = model.parameter_spans()[0][3];
    std::vector<Injection> injections;
    injections.push_back(stuck_at(model, 0, 3, 100.0f));
    injections.push_back(stuck_at(model, 0, 3, -100.0f));
    restore_all(model, injections);
    EXPECT_EQ(model.parameter_spans()[0][3], original);
}

TEST(Inject, InvalidArgumentsThrow) {
    auto model = small_model(10);
    EXPECT_THROW((void)random_weight_inj(model, 99, 0.0f, 1.0f, 1), std::out_of_range);
    EXPECT_THROW((void)random_weight_inj(model, 0, 1.0f, 1.0f, 1),
                 std::invalid_argument);
    Injection bogus;
    bogus.span_index = 0;
    bogus.offset = 1'000'000;
    EXPECT_THROW(restore(model, bogus), std::out_of_range);
}

TEST(Inject, FaultDegradesClassifierBehaviour) {
    // A huge weight in the first conv layer should change predictions on at
    // least some inputs (sanity link between FI and model behaviour).
    auto model = small_model(11);
    auto pristine = model;
    (void)stuck_at(model, 0, 0, 1000.0f);
    util::Rng rng(12);
    int changed = 0;
    for (int i = 0; i < 20; ++i) {
        ml::Tensor img({1, 4, 4});
        for (std::size_t k = 0; k < img.size(); ++k)
            img[k] = static_cast<float>(rng.uniform());
        if (model.predict(img) != pristine.predict(img)) ++changed;
    }
    EXPECT_GT(changed, 0);
}

}  // namespace
}  // namespace mvreju::fi
