#include "mvreju/data/signs.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mvreju::data {
namespace {

TEST(Signs, LabelEncodingRoundTrip) {
    std::set<int> labels;
    for (int s = 0; s < 4; ++s)
        for (int g = 0; g < 4; ++g)
            labels.insert(sign_label(static_cast<SignShape>(s), static_cast<SignGlyph>(g)));
    EXPECT_EQ(labels.size(), static_cast<std::size_t>(kSignClasses));
    EXPECT_EQ(*labels.begin(), 0);
    EXPECT_EQ(*labels.rbegin(), kSignClasses - 1);
}

TEST(Signs, ClassNamesAreDistinct) {
    std::set<std::string> names;
    for (int label = 0; label < kSignClasses; ++label)
        names.insert(sign_class_name(label));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kSignClasses));
    EXPECT_THROW((void)sign_class_name(-1), std::out_of_range);
    EXPECT_THROW((void)sign_class_name(kSignClasses), std::out_of_range);
}

TEST(RenderSign, ShapeAndRange) {
    SignPose pose;
    ml::Tensor img = render_sign(0, 16, pose);
    EXPECT_EQ(img.shape(), (std::vector<std::size_t>{3, 16, 16}));
    for (std::size_t i = 0; i < img.size(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
    EXPECT_THROW((void)render_sign(99, 16, pose), std::out_of_range);
    EXPECT_THROW((void)render_sign(0, 4, pose), std::invalid_argument);
}

TEST(RenderSign, DeterministicUnderPose) {
    SignPose pose;
    pose.noise_sigma = 0.1;
    pose.noise_seed = 77;
    EXPECT_EQ(render_sign(3, 16, pose), render_sign(3, 16, pose));
}

TEST(RenderSign, DifferentClassesProduceDifferentImages) {
    SignPose pose;  // no noise
    for (int a = 0; a < kSignClasses; ++a) {
        for (int b = a + 1; b < kSignClasses; ++b) {
            EXPECT_NE(render_sign(a, 16, pose), render_sign(b, 16, pose))
                << "classes " << a << " and " << b << " render identically";
        }
    }
}

TEST(RenderSign, CircleHasRedBorderPixels) {
    SignPose pose;  // centred, radius 6, no noise
    ml::Tensor img = render_sign(sign_label(SignShape::circle, SignGlyph::dot), 16, pose);
    // A pixel on the ring (x = center + radius - 1) must be strongly red.
    const float r = img.at3(0, 8, 13);
    const float g = img.at3(1, 8, 13);
    EXPECT_GT(r, 0.6f);
    EXPECT_LT(g, 0.3f);
    // The centre is glyph-dark.
    EXPECT_LT(img.at3(0, 8, 8), 0.2f);
}

TEST(RenderSign, BrightnessScalesIntensity) {
    SignPose dim;
    dim.brightness = 0.5;
    SignPose bright;
    bright.brightness = 1.2;
    ml::Tensor a = render_sign(0, 16, dim);
    ml::Tensor b = render_sign(0, 16, bright);
    double mean_a = 0.0;
    double mean_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    EXPECT_LT(mean_a, mean_b);
}

TEST(Dataset, SplitSizesAndBalance) {
    SignDatasetConfig cfg;
    cfg.train_count = 160;
    cfg.test_count = 64;
    auto ds = make_traffic_signs(cfg);
    EXPECT_EQ(ds.train.size(), 160u);
    EXPECT_EQ(ds.test.size(), 64u);
    EXPECT_EQ(ds.train.num_classes, kSignClasses);
    std::vector<int> counts(kSignClasses, 0);
    for (int label : ds.train.labels) ++counts[static_cast<std::size_t>(label)];
    for (int c : counts) EXPECT_EQ(c, 10);  // balanced round-robin
}

TEST(Dataset, TestSplitIndependentOfTrainCount) {
    SignDatasetConfig small;
    small.train_count = 16;
    small.test_count = 32;
    SignDatasetConfig large = small;
    large.train_count = 160;
    auto a = make_traffic_signs(small);
    auto b = make_traffic_signs(large);
    ASSERT_EQ(a.test.size(), b.test.size());
    for (std::size_t i = 0; i < a.test.size(); ++i)
        EXPECT_EQ(a.test.images[i], b.test.images[i]) << "test image " << i;
}

TEST(Dataset, SeedChangesData) {
    SignDatasetConfig a;
    a.train_count = 16;
    a.test_count = 16;
    SignDatasetConfig b = a;
    b.seed = 39;
    EXPECT_NE(make_traffic_signs(a).train.images[0],
              make_traffic_signs(b).train.images[0]);
}

TEST(Dataset, InvalidConfigsRejected) {
    SignDatasetConfig cfg;
    cfg.train_count = 0;
    EXPECT_THROW((void)make_traffic_signs(cfg), std::invalid_argument);
    cfg.train_count = 16;
    cfg.noise_min = 0.5;
    cfg.noise_max = 0.1;
    EXPECT_THROW((void)make_traffic_signs(cfg), std::invalid_argument);
}

// Property sweep: every class renders with its glyph visible (a dark pixel
// strictly inside the sign) across a range of poses.
class GlyphVisibility : public ::testing::TestWithParam<int> {};

TEST_P(GlyphVisibility, DarkGlyphPixelExists) {
    const int label = GetParam();
    SignPose pose;
    pose.radius = 6.5;
    ml::Tensor img = render_sign(label, 16, pose);
    bool found_dark = false;
    for (std::size_t y = 4; y < 12 && !found_dark; ++y)
        for (std::size_t x = 4; x < 12 && !found_dark; ++x)
            if (img.at3(0, y, x) < 0.2f && img.at3(1, y, x) < 0.2f) found_dark = true;
    EXPECT_TRUE(found_dark) << sign_class_name(label);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, GlyphVisibility,
                         ::testing::Range(0, kSignClasses));

}  // namespace
}  // namespace mvreju::data
