#include "mvreju/dspn/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "mvreju/dspn/solver.hpp"

namespace mvreju::dspn {
namespace {

// A paper-sized DSPN: failure/rejuvenation cycle with one deterministic
// transition. params = {failure rate, rejuvenation interval}. Small enough
// (3 states) for the dense LU path, so engine results must be bit-identical
// to cold solves.
PetriNet small_dspn(const std::vector<double>& params) {
    PetriNet net;
    auto up = net.add_place("up", 1);
    auto down = net.add_place("down");
    auto fail = net.add_exponential("fail", params[0]);
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    auto repair = net.add_exponential("repair", 2.0);
    net.add_input_arc(repair, down);
    net.add_output_arc(repair, up);
    auto clock = net.add_place("clock", 1);
    auto armed = net.add_place("armed");
    auto arm = net.add_exponential("arm", 1.0 / params[1]);
    net.add_input_arc(arm, clock);
    net.add_output_arc(arm, armed);
    auto rejuvenate = net.add_deterministic("rejuvenate", 0.5);
    net.add_input_arc(rejuvenate, armed);
    net.add_output_arc(rejuvenate, clock);
    return net;
}

// Birth-death chain with a marking-dependent death rate and `cap`+1 states —
// big enough to take the Gauss-Seidel path, where warm starts actually
// iterate. params = {arrival rate}.
PetriNet birth_death(const std::vector<double>& params, int cap = 100) {
    PetriNet net;
    auto queue = net.add_place("queue");
    auto free_slots = net.add_place("free", cap);
    auto arrive = net.add_exponential("arrive", params[0]);
    net.add_input_arc(arrive, free_slots);
    net.add_output_arc(arrive, queue);
    auto serve = net.add_exponential(
        "serve", [queue](const Marking& m) { return 50.0 * m[queue.index]; });
    net.add_input_arc(serve, queue);
    net.add_output_arc(serve, free_slots);
    return net;
}

std::vector<std::vector<double>> small_grid() {
    std::vector<std::vector<double>> grid;
    for (double rate : {0.5, 1.0, 1.5})
        for (double interval : {10.0, 20.0, 40.0}) grid.push_back({rate, interval});
    return grid;
}

std::vector<double> cold_solve(const std::vector<double>& params) {
    PetriNet net = small_dspn(params);
    ReachabilityGraph graph(net);
    return dspn_steady_state(graph);
}

TEST(SweepEngine, MatchesColdSolvesBitwise) {
    SweepEngine engine(small_dspn);
    const auto grid = small_grid();
    const auto points = engine.run(grid);
    ASSERT_EQ(points.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(points[i].pi, cold_solve(grid[i])) << "grid point " << i;
        EXPECT_EQ(points[i].params, grid[i]);
    }
    // One prototype build, everything else re-rated in place.
    EXPECT_EQ(engine.stats().rebuilds, 1u);
    EXPECT_EQ(engine.stats().points, grid.size());
}

TEST(SweepEngine, ThreadCountsAreBitIdentical) {
    const auto grid = small_grid();
    std::vector<std::vector<std::vector<double>>> results;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SweepOptions options;
        options.threads = threads;
        SweepEngine engine(small_dspn, options);
        std::vector<std::vector<double>> pis;
        for (const auto& point : engine.run(grid)) pis.push_back(point.pi);
        results.push_back(std::move(pis));
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(SweepEngine, DiskCacheServesARestartedEngine) {
    const auto cache_dir =
        (std::filesystem::temp_directory_path() / "dspn_sweep_test_cache").string();
    std::filesystem::remove_all(cache_dir);
    const auto grid = small_grid();

    SweepOptions options;
    options.cache_dir = cache_dir;
    SweepEngine first(small_dspn, options);
    const auto cold_points = first.run(grid);
    EXPECT_GT(first.stats().solves, 0u);
    EXPECT_EQ(first.stats().disk_hits, 0u);

    // A fresh engine sharing the directory simulates a process restart:
    // every point must come off disk, bit-identical, with zero solves.
    SweepEngine second(small_dspn, options);
    const auto warm_points = second.run(grid);
    EXPECT_EQ(second.stats().solves, 0u);
    EXPECT_EQ(second.stats().disk_hits, first.stats().solves);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(warm_points[i].cache_hit);
        EXPECT_EQ(warm_points[i].pi, cold_points[i].pi) << "grid point " << i;
    }
    std::filesystem::remove_all(cache_dir);
}

TEST(SweepEngine, StructureChangeForcesRebuildPerStructure) {
    // The third parameter changes the net's capacity — a structural change
    // the rebind path must not paper over.
    auto factory = [](const std::vector<double>& params) {
        return birth_death({params[0]}, static_cast<int>(params[1]));
    };
    SweepEngine engine(factory);
    const std::vector<std::vector<double>> grid = {
        {40.0, 8.0}, {45.0, 8.0}, {40.0, 12.0}, {45.0, 12.0}};
    const auto points = engine.run(grid);
    EXPECT_EQ(engine.stats().rebuilds, 2u);  // one prototype per capacity
    EXPECT_NE(points[0].structure, points[2].structure);
    EXPECT_EQ(points[0].structure, points[1].structure);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        PetriNet net = factory(grid[i]);
        ReachabilityGraph graph(net);
        EXPECT_EQ(points[i].pi, dspn_steady_state(graph)) << "grid point " << i;
    }
}

TEST(SweepEngine, WarmStartSavesSweepsWithinTolerance) {
    std::vector<std::vector<double>> grid;
    for (int i = 0; i < 12; ++i) grid.push_back({40.0 + i});

    const auto factory = [](const std::vector<double>& params) {
        return birth_death(params);
    };
    SweepOptions cold_options;
    cold_options.warm_start = false;
    SweepEngine cold(factory, cold_options);
    const auto cold_points = cold.run(grid);

    SweepEngine warm(factory);
    const auto warm_points = warm.run(grid);
    EXPECT_GT(warm.stats().warm_started, 0u);
    EXPECT_GT(warm.stats().warmstart_iters_saved, 0u);

    double max_diff = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i)
        for (std::size_t s = 0; s < cold_points[i].pi.size(); ++s)
            max_diff = std::max(max_diff, std::abs(cold_points[i].pi[s] -
                                                   warm_points[i].pi[s]));
    EXPECT_LE(max_diff, 1e-8);
}

TEST(SweepEngine, RewardParametersShareCacheEntries) {
    // Content addressing: appending a reward-only parameter the net ignores
    // must not multiply the solves.
    auto factory = [](const std::vector<double>& params) {
        return small_dspn({params[0], params[1]});
    };
    SweepEngine engine(factory);
    std::vector<std::vector<double>> grid;
    for (double reward : {1.0, 2.0, 3.0}) grid.push_back({1.0, 20.0, reward});
    const auto points = engine.run(grid);
    EXPECT_EQ(engine.stats().solves, 1u);
    EXPECT_EQ(engine.stats().cache_hits, 2u);
    EXPECT_EQ(points[0].pi, points[1].pi);
    EXPECT_EQ(points[0].pi, points[2].pi);
}

TEST(StructureHash, SeesStructureNotRates) {
    PetriNet base = small_dspn({1.0, 20.0});
    PetriNet rerated = small_dspn({2.0, 35.0});
    EXPECT_EQ(structure_hash(base), structure_hash(rerated));
    EXPECT_NE(numeric_hash(base), numeric_hash(rerated));

    PetriNet bigger = small_dspn({1.0, 20.0});
    auto extra = bigger.add_place("extra");
    auto leak = bigger.add_exponential("leak", 1.0);
    bigger.add_input_arc(leak, extra);
    EXPECT_NE(structure_hash(base), structure_hash(bigger));
}

TEST(DspnSolveFamily, BitIdenticalToIndividualSolves) {
    // Delay family on the Gauss-Seidel path: same chain, three deterministic
    // delays, solved as one batch. Each member must match its own cold solve
    // bit for bit.
    auto family_net = [](double delay) {
        PetriNet net;
        auto queue = net.add_place("queue");
        auto free_slots = net.add_place("free", 80);
        auto arrive = net.add_exponential("arrive", 30.0);
        net.add_input_arc(arrive, free_slots);
        net.add_output_arc(arrive, queue);
        auto drain = net.add_deterministic("drain", delay);
        net.add_input_arc(drain, queue);
        net.add_output_arc(drain, free_slots);
        return net;
    };
    const std::vector<double> delays = {0.01, 0.02, 0.05};
    std::vector<PetriNet> nets;
    std::vector<ReachabilityGraph> graphs;
    for (double d : delays) nets.push_back(family_net(d));
    for (const PetriNet& net : nets) graphs.emplace_back(net);

    std::vector<const ReachabilityGraph*> pointers;
    for (const ReachabilityGraph& g : graphs) pointers.push_back(&g);
    const std::vector<DspnSolveOptions> options(delays.size());
    const auto family = dspn_solve_family(pointers, options);
    ASSERT_EQ(family.size(), delays.size());
    for (std::size_t f = 0; f < delays.size(); ++f) {
        const DspnSolution solo = dspn_solve(graphs[f], options[f]);
        EXPECT_EQ(family[f].pi, solo.pi) << "family member " << f;
        EXPECT_EQ(family[f].nu, solo.nu) << "family member " << f;
        EXPECT_EQ(family[f].sweeps, solo.sweeps) << "family member " << f;
    }
}

}  // namespace
}  // namespace mvreju::dspn
