#include "mvreju/dspn/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mvreju::dspn {
namespace {

/// Two-place cycle a <-> b with rates lam and mu.
PetriNet two_state_net(double lam, double mu) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t1 = net.add_exponential("t1", lam);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", mu);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, a);
    return net;
}

TEST(SpnSteadyState, TwoStateBalance) {
    PetriNet net = two_state_net(1.0, 3.0);
    ReachabilityGraph graph(net);
    auto pi = spn_steady_state(graph);
    const auto s_a = *graph.find({1, 0});
    const auto s_b = *graph.find({0, 1});
    EXPECT_NEAR(pi[s_a], 0.75, 1e-12);
    EXPECT_NEAR(pi[s_b], 0.25, 1e-12);
}

TEST(SpnSteadyState, RejectsDeterministicNets) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 1.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", 1.0);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)spn_steady_state(graph), std::invalid_argument);
}

TEST(SpnSteadyState, ReducibleNetThrows) {
    // One-way chain with an absorbing end: not irreducible.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto t1 = net.add_exponential("t1", 1.0);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", 1.0);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, c);
    // c has an outgoing edge to b, but a is never re-entered.
    auto t3 = net.add_exponential("t3", 1.0);
    net.add_input_arc(t3, c);
    net.add_output_arc(t3, b);
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)spn_steady_state(graph), std::runtime_error);
}

TEST(DspnSteadyState, FallsBackToSpnWithoutDeterministic) {
    PetriNet net = two_state_net(2.0, 2.0);
    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    EXPECT_NEAR(pi[0], 0.5, 1e-12);
    EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(DspnSteadyState, DeterministicCycleClosedForm) {
    // a --det(tau)--> b --exp(mu)--> a. Renewal process: expected cycle
    // tau + 1/mu, fraction of time in a is tau / (tau + 1/mu).
    const double tau = 2.0;
    const double mu = 0.8;
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", tau);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", mu);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);

    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    const auto s_a = *graph.find({1, 0});
    EXPECT_NEAR(pi[s_a], tau / (tau + 1.0 / mu), 1e-10);
}

TEST(DspnSteadyState, MdOneQueueMatchesPollaczekKhinchine) {
    // M/D/1 queue with capacity 3: Poisson arrivals (lambda), deterministic
    // service (tau). Validated against a long discrete-event simulation of
    // the same net (see dspn_simulate_test); here we check basic sanity and
    // utilisation: server busy fraction = 1 - pi(empty) ~ rho for small rho.
    const double lambda = 0.2;
    const double tau = 1.0;
    PetriNet net;
    auto queue = net.add_place("queue");
    auto capacity = net.add_place("capacity", 3);
    auto arrive = net.add_exponential("arrive", lambda);
    net.add_input_arc(arrive, capacity);
    net.add_output_arc(arrive, queue);
    auto serve = net.add_deterministic("serve", tau);
    net.add_input_arc(serve, queue);
    net.add_output_arc(serve, capacity);

    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    const auto empty = *graph.find({0, 3});
    const double busy = 1.0 - pi[empty];
    // For a capacity-3 M/D/1, busy is slightly below rho = lambda * tau.
    EXPECT_GT(busy, 0.15);
    EXPECT_LT(busy, 0.20);
    double sum = 0.0;
    for (double v : pi) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(DspnSteadyState, DeterministicDisabledByCompetingExponential) {
    // Both det and exp compete for the token in a; det may be disabled
    // before firing. P(exp fires first) = 1 - e^{-mu tau}.
    const double tau = 1.0;
    const double mu = 1.2;
    const double back_rate = 5.0;
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");  // det destination
    auto c = net.add_place("c");  // exp destination
    auto d = net.add_deterministic("d", tau);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", mu);
    net.add_input_arc(e, a);
    net.add_output_arc(e, c);
    auto rb = net.add_exponential("rb", back_rate);
    net.add_input_arc(rb, b);
    net.add_output_arc(rb, a);
    auto rcb = net.add_exponential("rc", back_rate);
    net.add_input_arc(rcb, c);
    net.add_output_arc(rcb, a);

    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    // Closed form via renewal-reward: cycle = time in a + 1/back_rate;
    // E[time in a] = (1 - e^{-mu tau}) / mu. Visit b with prob e^{-mu tau}.
    const double p_det = std::exp(-mu * tau);
    const double ea = (1.0 - p_det) / mu;
    const double cycle = ea + 1.0 / back_rate;
    const auto s_a = *graph.find({1, 0, 0});
    const auto s_b = *graph.find({0, 1, 0});
    const auto s_c = *graph.find({0, 0, 1});
    EXPECT_NEAR(pi[s_a], ea / cycle, 1e-10);
    EXPECT_NEAR(pi[s_b], (p_det / back_rate) / cycle, 1e-10);
    EXPECT_NEAR(pi[s_c], ((1.0 - p_det) / back_rate) / cycle, 1e-10);
}

TEST(ExpectedReward, WeightsByDistribution) {
    PetriNet net = two_state_net(1.0, 3.0);
    ReachabilityGraph graph(net);
    auto pi = spn_steady_state(graph);
    // Reward = tokens in place a.
    const double reward =
        expected_reward(graph, pi, [](const Marking& m) { return double(m[0]); });
    EXPECT_NEAR(reward, 0.75, 1e-12);
}

TEST(ExpectedReward, SizeMismatchThrows) {
    PetriNet net = two_state_net(1.0, 1.0);
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)expected_reward(graph, {1.0}, [](const Marking&) { return 1.0; }),
                 std::invalid_argument);
}

TEST(Probability, PredicateMass) {
    PetriNet net = two_state_net(1.0, 3.0);
    ReachabilityGraph graph(net);
    auto pi = spn_steady_state(graph);
    const double prob =
        probability(graph, pi, [](const Marking& m) { return m[1] == 1; });
    EXPECT_NEAR(prob, 0.25, 1e-12);
}

TEST(ExpectedFiringRate, TwoStateThroughput) {
    // a <-> b with rates 1 and 3: both transitions fire at the same rate in
    // steady state (flow balance), = pi_a * 1 = 0.75.
    PetriNet net = two_state_net(1.0, 3.0);
    ReachabilityGraph graph(net);
    auto pi = spn_steady_state(graph);
    EXPECT_NEAR(expected_firing_rate(graph, pi, TransitionId{0}), 0.75, 1e-12);
    EXPECT_NEAR(expected_firing_rate(graph, pi, TransitionId{1}), 0.75, 1e-12);
}

TEST(ExpectedFiringRate, Validation) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 1.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", 1.0);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);
    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    EXPECT_THROW((void)expected_firing_rate(graph, pi, d), std::invalid_argument);
    EXPECT_THROW((void)expected_firing_rate(graph, {1.0}, e), std::invalid_argument);
    // Throughput of e equals the renewal rate 1 / (tau + 1/mu).
    EXPECT_NEAR(expected_firing_rate(graph, pi, e), 1.0 / (1.0 + 1.0), 1e-9);
}

// Property sweep: the deterministic cycle formula holds across delays.
class DetCycleProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetCycleProperty, FractionOfTimeMatchesRenewalTheory) {
    const double tau = GetParam();
    const double mu = 1.7;
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", tau);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", mu);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);
    ReachabilityGraph graph(net);
    auto pi = dspn_steady_state(graph);
    EXPECT_NEAR(pi[*graph.find({1, 0})], tau / (tau + 1.0 / mu), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Delays, DetCycleProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 100.0, 300.0));

}  // namespace
}  // namespace mvreju::dspn
