#include "mvreju/dspn/reachability.hpp"

#include <gtest/gtest.h>

namespace mvreju::dspn {
namespace {

TEST(Reachability, SimpleCycleHasAllMarkings) {
    // a <-> b, one token.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t1 = net.add_exponential("t1", 1.0);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", 2.0);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, a);

    ReachabilityGraph graph(net);
    EXPECT_EQ(graph.state_count(), 2u);
    EXPECT_FALSE(graph.has_deterministic());
    ASSERT_TRUE(graph.find({1, 0}).has_value());
    ASSERT_TRUE(graph.find({0, 1}).has_value());
    EXPECT_FALSE(graph.find({1, 1}).has_value());

    const auto s0 = *graph.find({1, 0});
    ASSERT_EQ(graph.exponential_edges(s0).size(), 1u);
    EXPECT_DOUBLE_EQ(graph.exponential_edges(s0)[0].rate, 1.0);
}

TEST(Reachability, TokenCountGrowsStateSpace) {
    // n tokens circulating in a 2-place cycle: n+1 tangible markings.
    for (int n : {1, 2, 3, 5}) {
        PetriNet net;
        auto a = net.add_place("a", n);
        auto b = net.add_place("b");
        auto t1 = net.add_exponential("t1", 1.0);
        net.add_input_arc(t1, a);
        net.add_output_arc(t1, b);
        auto t2 = net.add_exponential("t2", 2.0);
        net.add_input_arc(t2, b);
        net.add_output_arc(t2, a);
        ReachabilityGraph graph(net);
        EXPECT_EQ(graph.state_count(), static_cast<std::size_t>(n + 1));
    }
}

TEST(Reachability, VanishingMarkingsAreEliminated) {
    // a --exp--> v, v --imm--> b or c with weights 1 and 3.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto v = net.add_place("v");
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, a);
    net.add_output_arc(te, v);
    auto ib = net.add_immediate("ib", 1.0);
    net.add_input_arc(ib, v);
    net.add_output_arc(ib, b);
    auto ic = net.add_immediate("ic", 3.0);
    net.add_input_arc(ic, v);
    net.add_output_arc(ic, c);
    // Return arcs so the chain is irreducible (not needed for this test but
    // keeps the net meaningful).
    auto rb = net.add_exponential("rb", 1.0);
    net.add_input_arc(rb, b);
    net.add_output_arc(rb, a);
    auto rc = net.add_exponential("rc", 1.0);
    net.add_input_arc(rc, c);
    net.add_output_arc(rc, a);

    ReachabilityGraph graph(net);
    // Tangible markings: a, b, c — the v marking is vanishing.
    EXPECT_EQ(graph.state_count(), 3u);
    EXPECT_FALSE(graph.find({0, 1, 0, 0}).has_value());

    const auto s_a = *graph.find({1, 0, 0, 0});
    const auto& edges = graph.exponential_edges(s_a);
    ASSERT_EQ(edges.size(), 2u);
    double to_b = 0.0;
    double to_c = 0.0;
    for (const auto& e : edges) {
        if (graph.marking(e.target)[2] == 1) to_b = e.rate;
        if (graph.marking(e.target)[3] == 1) to_c = e.rate;
    }
    EXPECT_NEAR(to_b, 0.25, 1e-12);  // weight 1 of 4
    EXPECT_NEAR(to_c, 0.75, 1e-12);  // weight 3 of 4
}

TEST(Reachability, VanishingInitialMarkingResolves) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto i = net.add_immediate("i");
    net.add_input_arc(i, a);
    net.add_output_arc(i, b);
    auto back = net.add_exponential("back", 1.0);
    net.add_input_arc(back, b);
    net.add_output_arc(back, a);

    ReachabilityGraph graph(net);
    const auto& init = graph.initial_distribution();
    ASSERT_EQ(init.size(), 1u);
    EXPECT_DOUBLE_EQ(init[0].probability, 1.0);
    EXPECT_EQ(graph.marking(init[0].target), (Marking{0, 1}));
}

TEST(Reachability, ChainedVanishingMarkings) {
    // exp -> v1 -(imm)-> v2 -(imm)-> tangible; two vanishing hops.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto v1 = net.add_place("v1");
    auto v2 = net.add_place("v2");
    auto d = net.add_place("d");
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, a);
    net.add_output_arc(te, v1);
    auto i1 = net.add_immediate("i1");
    net.add_input_arc(i1, v1);
    net.add_output_arc(i1, v2);
    auto i2 = net.add_immediate("i2");
    net.add_input_arc(i2, v2);
    net.add_output_arc(i2, d);
    auto back = net.add_exponential("back", 1.0);
    net.add_input_arc(back, d);
    net.add_output_arc(back, a);

    ReachabilityGraph graph(net);
    EXPECT_EQ(graph.state_count(), 2u);
    const auto s_a = *graph.find({1, 0, 0, 0});
    ASSERT_EQ(graph.exponential_edges(s_a).size(), 1u);
    EXPECT_EQ(graph.marking(graph.exponential_edges(s_a)[0].target),
              (Marking{0, 0, 0, 1}));
}

TEST(Reachability, ImmediateCycleThrows) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto i1 = net.add_immediate("i1");
    net.add_input_arc(i1, a);
    net.add_output_arc(i1, b);
    auto i2 = net.add_immediate("i2");
    net.add_input_arc(i2, b);
    net.add_output_arc(i2, a);
    EXPECT_THROW(ReachabilityGraph{net}, std::runtime_error);
}

TEST(Reachability, StateLimitEnforced) {
    // Unbounded net: a source transition keeps adding tokens.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto t = net.add_exponential("t", 1.0);
    net.add_input_arc(t, a);
    net.add_output_arc(t, a, 2);
    EXPECT_THROW(ReachabilityGraph(net, 50), std::runtime_error);
}

TEST(Reachability, DeterministicBranchesRecorded) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 5.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto back = net.add_exponential("back", 1.0);
    net.add_input_arc(back, b);
    net.add_output_arc(back, a);

    ReachabilityGraph graph(net);
    EXPECT_TRUE(graph.has_deterministic());
    const auto s_a = *graph.find({1, 0});
    ASSERT_EQ(graph.deterministic_enabled(s_a).size(), 1u);
    const auto branches = graph.deterministic_branches(s_a, d);
    ASSERT_EQ(branches.size(), 1u);
    EXPECT_EQ(graph.marking(branches[0].target), (Marking{0, 1}));
    // Not enabled in the other state.
    const auto s_b = *graph.find({0, 1});
    EXPECT_TRUE(graph.deterministic_enabled(s_b).empty());
    EXPECT_THROW((void)graph.deterministic_branches(s_b, d), std::invalid_argument);
}

TEST(Reachability, PriorityShadowsLowerImmediates) {
    // v enables low- and high-priority immediates; only the high one fires.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto v = net.add_place("v");
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, a);
    net.add_output_arc(te, v);
    auto low = net.add_immediate("low", 100.0, 1);
    net.add_input_arc(low, v);
    net.add_output_arc(low, b);
    auto high = net.add_immediate("high", 1.0, 2);
    net.add_input_arc(high, v);
    net.add_output_arc(high, c);
    auto rc = net.add_exponential("rc", 1.0);
    net.add_input_arc(rc, c);
    net.add_output_arc(rc, a);

    ReachabilityGraph graph(net);
    // b is never reached: the high-priority immediate always wins.
    EXPECT_FALSE(graph.find({0, 0, 1, 0}).has_value());
    EXPECT_TRUE(graph.find({0, 0, 0, 1}).has_value());
}

}  // namespace
}  // namespace mvreju::dspn
