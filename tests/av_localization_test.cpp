#include "mvreju/av/localization.hpp"

#include <gtest/gtest.h>

#include "mvreju/av/simulation.hpp"
#include "mvreju/av/vehicle.hpp"

namespace mvreju::av {
namespace {

TEST(SampleGnss, NoiseStatisticsMatchConfig) {
    GnssConfig cfg;
    cfg.position_sigma = 0.5;
    cfg.heading_sigma = 0.02;
    cfg.dropout_probability = 0.1;
    util::Rng rng(3);
    int valid = 0;
    double sq_err = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        const GnssFix fix = sample_gnss({10.0, -4.0}, 0.7, cfg, rng);
        if (!fix.valid) continue;
        ++valid;
        sq_err += (fix.position - Vec2{10.0, -4.0}).dot(fix.position - Vec2{10.0, -4.0});
    }
    EXPECT_NEAR(static_cast<double>(valid) / n, 0.9, 0.01);
    // E[|err|^2] = 2 sigma^2 for two independent axes.
    EXPECT_NEAR(sq_err / valid, 2.0 * 0.5 * 0.5, 0.02);
}

TEST(Localizer, Validation) {
    EXPECT_THROW(Localizer({0, 0}, 0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Localizer({0, 0}, 0.0, 1.5), std::invalid_argument);
    EXPECT_THROW(Localizer({0, 0}, 0.0, 0.2, -1.0), std::invalid_argument);
    Localizer loc({0, 0}, 0.0);
    EXPECT_THROW(loc.predict(1.0, 0.0, 0.0), std::invalid_argument);
}

TEST(Localizer, DeadReckoningMatchesBicycleModel) {
    // With perfect inputs and no corrections, the estimate tracks the
    // vehicle exactly (same integration scheme).
    EgoVehicle ego({2.0, 3.0}, 0.4);
    Localizer loc(ego.position(), ego.heading());
    for (int i = 0; i < 200; ++i) {
        const double accel = (i < 100) ? 1.0 : 0.0;
        const double steer = 0.1;
        ego.step(accel, steer, 0.05);
        loc.predict(ego.speed(), steer, 0.05);
    }
    EXPECT_NEAR(loc.position_error(ego.position()), 0.0, 1e-9);
    EXPECT_NEAR(loc.heading(), ego.heading(), 1e-9);
}

TEST(Localizer, CorrectsTowardsFix) {
    Localizer loc({0.0, 0.0}, 0.0, 0.5);
    GnssFix fix;
    fix.valid = true;
    fix.position = {10.0, 0.0};
    fix.heading = 0.2;
    loc.correct(fix);
    EXPECT_NEAR(loc.position().x, 5.0, 1e-12);  // blend 0.5
    EXPECT_NEAR(loc.heading(), 0.1, 1e-12);
    // Invalid fixes are ignored.
    GnssFix invalid;
    loc.correct(invalid);
    EXPECT_NEAR(loc.position().x, 5.0, 1e-12);
}

TEST(Localizer, HeadingBlendWrapsCorrectly) {
    // Estimate at +3.1, fix at -3.1: the short way crosses the pi boundary.
    Localizer loc({0.0, 0.0}, 3.1, 0.5);
    GnssFix fix;
    fix.valid = true;
    fix.heading = -3.1;
    loc.correct(fix);
    // Moving halfway along the short arc (length ~0.083) lands near +-pi,
    // not near 0.
    EXPECT_GT(std::fabs(loc.heading()), 3.0);
}

TEST(Localizer, BoundedErrorUnderNoisyFixes) {
    // Drive a long curve with biased dead reckoning (slight steer error) and
    // noisy fixes: the filter keeps the position error bounded, while pure
    // dead reckoning diverges.
    EgoVehicle ego({0.0, 0.0}, 0.0);
    ego.set_speed(8.0);
    Localizer filtered(ego.position(), ego.heading(), 0.25);
    Localizer dead_reckoning(ego.position(), ego.heading(), 1e-9 + 0.0001);
    GnssConfig cfg;
    util::Rng rng(9);
    double worst_filtered = 0.0;
    for (int i = 0; i < 2000; ++i) {  // 100 s
        const double steer = 0.05;
        ego.step(0.0, steer, 0.05);
        const double biased_steer = steer + 0.01;  // systematic gyro/odo bias
        filtered.predict(ego.speed(), biased_steer, 0.05);
        dead_reckoning.predict(ego.speed(), biased_steer, 0.05);
        if (i % 20 == 0)
            filtered.correct(sample_gnss(ego.position(), ego.heading(), cfg, rng));
        worst_filtered = std::max(worst_filtered, filtered.position_error(ego.position()));
    }
    EXPECT_LT(worst_filtered, 6.0);
    EXPECT_GT(dead_reckoning.position_error(ego.position()), 20.0);
}

TEST(Simulation, LocalizationDrivenRunStaysSafeWhenHealthy) {
    // With healthy perception and GNSS-based steering the ego still follows
    // the route without collisions (slightly sloppier tracking is fine).
    const auto towns = make_towns();
    SensorConfig sensor;
    DetectorTrainOptions opts;
    opts.train_samples = 1200;
    opts.eval_samples = 400;
    opts.epochs = 4;
    opts.cache_dir = std::filesystem::temp_directory_path() / "mvreju_test_detectors";
    const DetectorSet detectors = prepare_detectors(sensor, opts);

    ScenarioConfig cfg;
    cfg.mttc = 1e9;
    cfg.rejuvenation = false;
    cfg.use_localization = true;
    cfg.seed = 12;
    const RunMetrics m = run_scenario(towns[2].routes[0], detectors, cfg);
    EXPECT_EQ(m.collision_frames, 0);
    EXPECT_GT(m.route_completed, 0.3);
}

}  // namespace
}  // namespace mvreju::av
