#include "mvreju/dspn/dot.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mvreju::dspn {
namespace {

// Golden renderings: the exporter's output is consumed verbatim by docs and
// debugging scripts, so any change to node shapes, labels or edge styles must
// show up here as an intentional diff.

TEST(Dot, NetGoldenRendering) {
    // All three transition kinds, a marked place, an arc multiplicity and an
    // inhibitor arc — one of everything the exporter draws.
    PetriNet net;
    auto a = net.add_place("a", 2);
    auto b = net.add_place("b");
    auto ti = net.add_immediate("ti", 1.0);
    net.add_input_arc(ti, a);
    net.add_output_arc(ti, b);
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, b);
    net.add_output_arc(te, a, 2);
    auto td = net.add_deterministic("td", 5.0);
    net.add_input_arc(td, b);
    net.add_output_arc(td, a);
    net.add_inhibitor_arc(td, a);

    const std::string expected =
        "digraph dspn {\n"
        "  rankdir=LR;\n"
        "  p0 [shape=circle,label=\"a\\n(2)\"];\n"
        "  p1 [shape=circle,label=\"b\"];\n"
        "  t0 [shape=box,height=0.1,style=filled,fillcolor=black,fontcolor=white,"
        "label=\"ti\"];\n"
        "  t1 [shape=box,style=\"\",label=\"te\"];\n"
        "  t2 [shape=box,style=filled,fillcolor=gray30,fontcolor=white,"
        "label=\"td\"];\n"
        "  p0 -> t0;\n"
        "  t0 -> p1;\n"
        "  p1 -> t1;\n"
        "  t1 -> p0 [label=\"2\"];\n"
        "  p1 -> t2;\n"
        "  t2 -> p0;\n"
        "  p0 -> t2 [arrowhead=odot,style=dotted];\n"
        "}\n";
    EXPECT_EQ(to_dot(net), expected);
}

TEST(Dot, ReachabilityGraphGoldenRendering) {
    // Two tangible states: an exponential edge forward, a deterministic
    // (dashed) branch back.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, a);
    net.add_output_arc(te, b);
    auto td = net.add_deterministic("td", 5.0);
    net.add_input_arc(td, b);
    net.add_output_arc(td, a);

    ReachabilityGraph graph(net);
    ASSERT_EQ(graph.state_count(), 2u);

    const std::string expected =
        "digraph tangible {\n"
        "  s0 [shape=ellipse,label=\"1,0\"];\n"
        "  s1 [shape=ellipse,label=\"0,1\"];\n"
        "  s0 -> s1 [label=\"te\"];\n"
        "  s1 -> s0 [style=dashed,label=\"td\"];\n"
        "}\n";
    EXPECT_EQ(to_dot(graph), expected);
}

}  // namespace
}  // namespace mvreju::dspn
