#include "mvreju/reliability/synthetic.hpp"

#include <gtest/gtest.h>

#include "mvreju/reliability/functions.hpp"

namespace mvreju::reliability {
namespace {

constexpr std::size_t kUniverse = 100'000;

TEST(SyntheticPair, SizesAndOverlapAsRequested) {
    const auto family = make_pair_family(kUniverse, 0.06, 0.10, 0.4);
    ASSERT_EQ(family.sets.size(), 2u);
    EXPECT_EQ(family.sets[0].size(), 6000u);
    EXPECT_EQ(family.sets[1].size(), 10000u);
    EXPECT_NEAR(alpha_pair(family.sets[0], family.sets[1]), 0.4, 1e-9);
}

TEST(SyntheticPair, RejectsImpossibleOverlap) {
    // alpha * max = 0.9 * 10000 = 9000 > |E_1| = 1000.
    EXPECT_THROW((void)make_pair_family(kUniverse, 0.01, 0.10, 0.9),
                 std::invalid_argument);
    // Sets larger than the universe.
    EXPECT_THROW((void)make_pair_family(100, 0.9, 0.9, 0.0), std::invalid_argument);
    EXPECT_THROW((void)make_pair_family(kUniverse, 1.5, 0.1, 0.1),
                 std::invalid_argument);
}

// Ground-truth check of the two-version reliability entry R_{2,0,0} = 1 -
// alpha * p (Eq. 4): with equal-size error sets, the set of inputs on which
// *both* modules err is exactly the pairwise intersection.
class TwoVersionFormula : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TwoVersionFormula, MatchesEmpiricalVoting) {
    const auto [p, alpha] = GetParam();
    const auto family = make_pair_family(kUniverse, p, p, alpha);
    const double empirical = empirical_failure(family, 2);
    EXPECT_NEAR(empirical, alpha * p, 1e-4);  // F = 1 - R_{2,0,0}
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoVersionFormula,
    ::testing::Combine(::testing::Values(0.02, 0.0629, 0.15, 0.3),
                       ::testing::Values(0.0, 0.1, 0.37, 0.8, 1.0)));

TEST(SyntheticTriple, PairwiseAndTripleStructure) {
    const auto family =
        make_triple_family(kUniverse, 0.10, 0.08, 0.06, 0.4, 0.3, 0.2);
    ASSERT_EQ(family.sets.size(), 3u);
    EXPECT_EQ(family.sets[0].size(), 10000u);
    EXPECT_EQ(family.sets[1].size(), 8000u);
    EXPECT_EQ(family.sets[2].size(), 6000u);
    EXPECT_NEAR(alpha_pair(family.sets[0], family.sets[1]), 0.4, 1e-9);
    EXPECT_NEAR(alpha_pair(family.sets[0], family.sets[2]), 0.3, 1e-9);
    EXPECT_NEAR(alpha_pair(family.sets[1], family.sets[2]), 0.2, 1e-9);
}

// Ground-truth check of the paper's Eq. (2) (Wen & Machida): under the
// triple-overlap convention |E1^E2^E3| = alpha12*alpha13*|E1|, the closed
// form F = a12 p1 + a13 p1 + a23 p2 - 2 a12 a13 p1 equals the counted
// fraction of inputs misclassified by >= 2 of 3 modules (p1 >= p2 >= p3).
class WenMachidaFormula
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(WenMachidaFormula, MatchesEmpiricalVoting) {
    const auto [a12, a13, a23] = GetParam();
    const double p1 = 0.12;
    const double p2 = 0.10;
    const double p3 = 0.08;
    const auto family = make_triple_family(kUniverse, p1, p2, p3, a12, a13, a23);
    const double empirical = empirical_failure(family, 2);
    const double formula = wen_machida_failure(p1, p2, a12, a13, a23);
    EXPECT_NEAR(empirical, formula, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Grid, WenMachidaFormula,
                         ::testing::Values(std::tuple{0.3, 0.3, 0.3},
                                           std::tuple{0.4, 0.2, 0.3},
                                           std::tuple{0.5, 0.4, 0.45},
                                           std::tuple{0.2, 0.15, 0.6},
                                           std::tuple{0.0, 0.0, 0.0}));

TEST(SyntheticTriple, Eq2ReducesToEq1UnderEqualParameters) {
    // With p1 = p2 = p3 = p and all alphas equal, Eq. (2) collapses to
    // Eq. (1), and both match the counted failure probability.
    const double p = 0.1;
    const double alpha = 0.35;
    const auto family = make_triple_family(kUniverse, p, p, p, alpha, alpha, alpha);
    const double empirical = empirical_failure(family, 2);
    EXPECT_NEAR(empirical, ege_failure(p, alpha), 2e-4);
}

TEST(EmpiricalFailure, ThresholdSemantics) {
    const auto family = make_triple_family(1000, 0.2, 0.2, 0.2, 0.5, 0.5, 0.5);
    // Threshold 1: union of all sets; threshold 3: triple intersection.
    const double any = empirical_failure(family, 1);
    const double majority = empirical_failure(family, 2);
    const double all = empirical_failure(family, 3);
    EXPECT_GE(any, majority);
    EXPECT_GE(majority, all);
    EXPECT_NEAR(all, 0.5 * 0.5 * 0.2, 1e-9);  // alpha12*alpha13*p1
    EXPECT_THROW((void)empirical_failure({}, 1), std::invalid_argument);
}

TEST(SyntheticTriple, FittedAlphaRoundTrips) {
    // Eq. 9 fitting applied to a constructed family recovers the mean alpha.
    const auto family =
        make_triple_family(kUniverse, 0.1, 0.1, 0.1, 0.4, 0.3, 0.2);
    EXPECT_NEAR(fit_alpha(family.sets), (0.4 + 0.3 + 0.2) / 3.0, 1e-9);
}

}  // namespace
}  // namespace mvreju::reliability
