#include "mvreju/dspn/simulate.hpp"

#include <gtest/gtest.h>

namespace mvreju::dspn {
namespace {

PetriNet two_state_net(double lam, double mu) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t1 = net.add_exponential("t1", lam);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", mu);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, a);
    return net;
}

TEST(Simulate, TwoStateMatchesExact) {
    PetriNet net = two_state_net(1.0, 3.0);
    SimulationOptions opt;
    opt.horizon = 3.0e4;
    opt.warmup = 1.0e3;
    opt.batches = 10;
    opt.seed = 1;
    auto est = simulate_steady_state_reward(
        net, [](const Marking& m) { return double(m[0]); }, opt);
    EXPECT_NEAR(est.mean, 0.75, 0.02);
    EXPECT_LE(est.ci.lower, 0.75);
    EXPECT_GE(est.ci.upper, 0.75);
}

TEST(Simulate, DeterministicCycleMatchesRenewalTheory) {
    const double tau = 2.0;
    const double mu = 0.8;
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", tau);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", mu);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);

    SimulationOptions opt;
    opt.horizon = 4.0e4;
    opt.warmup = 1.0e3;
    opt.batches = 10;
    opt.seed = 2;
    auto est = simulate_steady_state_reward(
        net, [](const Marking& m) { return double(m[0]); }, opt);
    EXPECT_NEAR(est.mean, tau / (tau + 1.0 / mu), 0.01);
}

TEST(Simulate, ImmediateResolutionByWeight) {
    // exp -> vanishing -> b (w=1) or c (w=3); fraction of time with the
    // token in c (before returning) should be ~3x that of b under equal
    // return rates.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto v = net.add_place("v");
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto te = net.add_exponential("te", 1.0);
    net.add_input_arc(te, a);
    net.add_output_arc(te, v);
    auto ib = net.add_immediate("ib", 1.0);
    net.add_input_arc(ib, v);
    net.add_output_arc(ib, b);
    auto ic = net.add_immediate("ic", 3.0);
    net.add_input_arc(ic, v);
    net.add_output_arc(ic, c);
    auto rb = net.add_exponential("rb", 1.0);
    net.add_input_arc(rb, b);
    net.add_output_arc(rb, a);
    auto rc = net.add_exponential("rc", 1.0);
    net.add_input_arc(rc, c);
    net.add_output_arc(rc, a);

    SimulationOptions opt;
    opt.horizon = 6.0e4;
    opt.warmup = 1.0e3;
    opt.batches = 10;
    opt.seed = 3;
    auto in_b = simulate_steady_state_reward(
        net, [](const Marking& m) { return double(m[2]); }, opt);
    auto in_c = simulate_steady_state_reward(
        net, [](const Marking& m) { return double(m[3]); }, opt);
    EXPECT_NEAR(in_c.mean / in_b.mean, 3.0, 0.25);
}

TEST(Simulate, DeterministicClockSurvivesIrrelevantFirings) {
    // A deterministic transition stays enabled while an independent
    // exponential toggles another token; its firing frequency must equal
    // 1/tau exactly (checked via time fraction of the post-firing place).
    const double tau = 5.0;
    PetriNet net;
    auto armed = net.add_place("armed", 1);
    auto fired = net.add_place("fired");
    auto noisea = net.add_place("noise_a", 1);
    auto noiseb = net.add_place("noise_b");
    auto d = net.add_deterministic("d", tau);
    net.add_input_arc(d, armed);
    net.add_output_arc(d, fired);
    auto rearm = net.add_exponential("rearm", 4.0);
    net.add_input_arc(rearm, fired);
    net.add_output_arc(rearm, armed);
    auto n1 = net.add_exponential("n1", 10.0);
    net.add_input_arc(n1, noisea);
    net.add_output_arc(n1, noiseb);
    auto n2 = net.add_exponential("n2", 10.0);
    net.add_input_arc(n2, noiseb);
    net.add_output_arc(n2, noisea);

    SimulationOptions opt;
    opt.horizon = 5.0e4;
    opt.warmup = 1.0e3;
    opt.batches = 10;
    opt.seed = 4;
    auto est = simulate_steady_state_reward(
        net, [](const Marking& m) { return double(m[0]); }, opt);
    // If the noise restarted the clock, the armed fraction would approach 1.
    EXPECT_NEAR(est.mean, tau / (tau + 0.25), 0.01);
}

TEST(Simulate, RejectsBadOptions) {
    PetriNet net = two_state_net(1.0, 1.0);
    SimulationOptions opt;
    opt.horizon = 10.0;
    opt.warmup = 20.0;
    EXPECT_THROW((void)simulate_steady_state_reward(
                     net, [](const Marking&) { return 1.0; }, opt),
                 std::invalid_argument);
    opt.warmup = 1.0;
    opt.batches = 1;
    EXPECT_THROW((void)simulate_steady_state_reward(
                     net, [](const Marking&) { return 1.0; }, opt),
                 std::invalid_argument);
}

TEST(Simulate, DeadMarkingThrows) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t = net.add_exponential("t", 1.0);
    net.add_input_arc(t, a);
    net.add_output_arc(t, b);  // b is a dead end
    SimulationOptions opt;
    opt.horizon = 100.0;
    opt.warmup = 1.0;
    opt.batches = 2;
    EXPECT_THROW((void)simulate_steady_state_reward(
                     net, [](const Marking&) { return 1.0; }, opt),
                 std::runtime_error);
}

}  // namespace
}  // namespace mvreju::dspn
