#include "mvreju/reliability/functions.hpp"

#include <gtest/gtest.h>

namespace mvreju::reliability {
namespace {

TEST(Params, PaperConstants) {
    const Params params = paper_params();
    EXPECT_NEAR(params.p, 0.062892584, 1e-12);
    EXPECT_NEAR(params.p_prime, 0.240406440, 1e-12);
    EXPECT_NEAR(params.alpha, 0.369952542, 1e-12);
    EXPECT_TRUE(params_sane(params));
    EXPECT_TRUE(within_two_version_boundary(params));
    EXPECT_TRUE(within_three_version_boundary(params));
}

TEST(Params, SanityChecks) {
    EXPECT_FALSE(params_sane({0.5, 0.2, 0.3}));   // p > p'
    EXPECT_FALSE(params_sane({0.1, 1.2, 0.3}));   // p' > 1
    EXPECT_FALSE(params_sane({0.1, 0.2, 1.3}));   // alpha > 1
    EXPECT_FALSE(params_sane({-0.1, 0.2, 0.3}));  // negative p
    EXPECT_TRUE(params_sane({0.1, 0.2, 0.3}));
}

TEST(Params, Boundaries) {
    // p(2 - alpha) <= 1
    EXPECT_TRUE(within_two_version_boundary({0.5, 0.6, 0.0}));
    EXPECT_FALSE(within_two_version_boundary({0.6, 0.7, 0.0}));
    // p(3(1-alpha) + alpha^2) <= 1
    EXPECT_FALSE(within_three_version_boundary({0.4, 0.5, 0.0}));
    EXPECT_TRUE(within_three_version_boundary({0.4, 0.5, 1.0}));
}

TEST(ClassicFailureModels, LyonsAndEge) {
    EXPECT_DOUBLE_EQ(lyons_failure(0.0), 0.0);
    EXPECT_DOUBLE_EQ(lyons_failure(1.0), 1.0);
    EXPECT_NEAR(lyons_failure(0.1), 3.0 * 0.9 * 0.01 + 0.001, 1e-15);
    // Eq. (1): full dependency (alpha=1) collapses to p.
    EXPECT_NEAR(ege_failure(0.1, 1.0), 0.1, 1e-15);
    EXPECT_DOUBLE_EQ(ege_failure(0.1, 0.0), 0.0);
}

TEST(ClassicFailureModels, WenMachidaReducesToEge) {
    // With equal p and alpha, Eq. (2) gives a*p + a*p + a*p - 2*a*a*p
    // = 3*a*p - 2*a^2*p = 3*a*p*(1-a) + a^2*p = Eq. (1).
    const double p = 0.07;
    const double a = 0.3;
    EXPECT_NEAR(wen_machida_failure(p, p, a, a, a), ege_failure(p, a), 1e-15);
}

// Table III of the paper: all nine reachable states, reproduced with the
// paper's fitted constants to all published decimal places.
struct TableIIIRow {
    int i, j, k;
    double reliability;
};

class TableIII : public ::testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIII, MatchesPublishedValue) {
    const auto row = GetParam();
    EXPECT_NEAR(state_reliability(row.i, row.j, row.k, paper_params()), row.reliability,
                5e-10);
}

INSTANTIATE_TEST_SUITE_P(PaperValues, TableIII,
                         ::testing::Values(TableIIIRow{3, 0, 0, 0.988626295},
                                           TableIIIRow{2, 0, 1, 0.976732729},
                                           TableIIIRow{2, 1, 0, 0.881542506},
                                           TableIIIRow{1, 0, 2, 0.937107416},
                                           TableIIIRow{1, 1, 1, 0.943896878},
                                           TableIIIRow{1, 2, 0, 0.815870804},
                                           TableIIIRow{0, 3, 0, 0.926682718},
                                           TableIIIRow{0, 2, 1, 0.911061026},
                                           TableIIIRow{0, 1, 2, 0.759593560}));

TEST(StateReliability, SingleVersionStates) {
    const Params params{0.1, 0.3, 0.5};
    EXPECT_DOUBLE_EQ(r_single(1, 0, 0, params), 0.9);
    EXPECT_DOUBLE_EQ(r_single(0, 1, 0, params), 0.7);
    EXPECT_DOUBLE_EQ(r_single(0, 0, 1, params), 0.0);
    EXPECT_THROW((void)r_single(1, 1, 0, params), std::invalid_argument);
}

TEST(StateReliability, TwoVersionDegradation) {
    const Params params{0.1, 0.3, 0.5};
    // Degraded (k=1) states equal the single-version values.
    EXPECT_DOUBLE_EQ(r_two(1, 0, 1, params), r_single(1, 0, 0, params));
    EXPECT_DOUBLE_EQ(r_two(0, 1, 1, params), r_single(0, 1, 0, params));
    EXPECT_DOUBLE_EQ(r_two(0, 0, 2, params), 0.0);
    // Full states follow Eq. (4).
    EXPECT_DOUBLE_EQ(r_two(2, 0, 0, params), 1.0 - 0.5 * 0.1);
    EXPECT_DOUBLE_EQ(r_two(0, 2, 0, params), 1.0 - 0.5 * 0.3);
    EXPECT_DOUBLE_EQ(r_two(1, 1, 0, params), 1.0 - 0.2 * 0.5);
}

TEST(StateReliability, ThreeVersionDegradation) {
    const Params params{0.1, 0.3, 0.5};
    EXPECT_DOUBLE_EQ(r_three(2, 0, 1, params), r_two(2, 0, 0, params));
    EXPECT_DOUBLE_EQ(r_three(1, 1, 1, params), r_two(1, 1, 0, params));
    EXPECT_DOUBLE_EQ(r_three(0, 1, 2, params), r_single(0, 1, 0, params));
    EXPECT_DOUBLE_EQ(r_three(0, 0, 3, params), 0.0);
}

TEST(StateReliability, InvalidStatesThrow) {
    const Params params = paper_params();
    EXPECT_THROW((void)state_reliability(0, 0, 0, params), std::invalid_argument);
    EXPECT_THROW((void)state_reliability(2, 2, 2, params), std::invalid_argument);
    EXPECT_THROW((void)state_reliability(-1, 1, 1, params), std::invalid_argument);
    EXPECT_THROW((void)state_reliability(4, 0, 0, params), std::invalid_argument);
}

// Property: reliability decreases (weakly) in p, p' and alpha, for every
// fully functional state of every system size.
class Monotonicity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Monotonicity, ReliabilityDecreasesWithWorseParameters) {
    const auto [i, j] = GetParam();
    const int n = i + j;
    if (n < 1 || n > 3) GTEST_SKIP();
    const Params base{0.05, 0.2, 0.4};
    const double r0 = state_reliability(i, j, 0, base);
    // Raising p, p' or alpha individually never increases reliability
    // (p'-independence when j == 0 and alpha-independence when n == 1 show
    // up as equality).
    EXPECT_LE(state_reliability(i, j, 0, {0.10, 0.2, 0.4}), r0 + 1e-12);
    EXPECT_LE(state_reliability(i, j, 0, {0.05, 0.4, 0.4}), r0 + 1e-12);
    EXPECT_LE(state_reliability(i, j, 0, {0.05, 0.2, 0.8}), r0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(States, Monotonicity,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST(Fitting, PFromAccuracies) {
    // Paper Table II healthy accuracies -> p = 0.062892584.
    EXPECT_NEAR(fit_p({0.960095012, 0.920981789, 0.930245447}), 0.062892584, 1e-9);
    // Compromised accuracies -> p' = 0.240406440.
    EXPECT_NEAR(fit_p_prime({0.755423595, 0.772050673, 0.751306413}), 0.240406440, 1e-9);
}

TEST(Fitting, AlphaPairBasics) {
    EXPECT_DOUBLE_EQ(alpha_pair({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(alpha_pair({1, 2, 3}, {4, 5, 6}), 0.0);
    EXPECT_DOUBLE_EQ(alpha_pair({1, 2, 3, 4}, {3, 4}), 0.5);  // 2 / max(4,2)
    EXPECT_DOUBLE_EQ(alpha_pair({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(alpha_pair({1}, {}), 0.0);
}

TEST(Fitting, AlphaAveragesPairs) {
    const std::vector<std::vector<std::size_t>> sets{{1, 2}, {2, 3}, {3, 4}};
    // a12 = 1/2, a13 = 0, a23 = 1/2 -> mean = 1/3.
    EXPECT_NEAR(fit_alpha(sets), 1.0 / 3.0, 1e-12);
    EXPECT_THROW((void)fit_alpha({{1}}), std::invalid_argument);
}

TEST(Fitting, FullFitProducesSaneParams) {
    const auto params = fit_params({0.96, 0.92, 0.93}, {0.75, 0.77, 0.75},
                                   {{1, 2, 9}, {2, 3, 9}, {3, 4, 9}});
    EXPECT_TRUE(params_sane(params));
    EXPECT_GT(params.p_prime, params.p);
    EXPECT_GT(params.alpha, 0.0);
}

}  // namespace
}  // namespace mvreju::reliability
