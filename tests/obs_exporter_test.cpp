// Tests for the obs exporter: Prometheus text exposition (names, types,
// cumulative histogram buckets), the /metrics /healthz /record routing via
// handle(), health-report freshness, error responses, the runtime kill
// switch, and one real end-to-end HTTP GET over a loopback socket.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/obs.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/util/json.hpp"

namespace {

using namespace mvreju;

class ObsExporterTest : public ::testing::Test {
protected:
    void SetUp() override { obs::set_enabled(true); }
    void TearDown() override { obs::set_enabled(true); }
};

std::string body_of(const std::string& response) {
    const std::size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST_F(ObsExporterTest, PrometheusExpositionFormat) {
    obs::Registry reg;
    reg.counter("av.frames").add(42);
    reg.gauge("dspn.residual").set(1e-10);
    obs::Histogram& h =
        reg.histogram("solve.ms", obs::HistogramBounds::linear(0.0, 1.0, 3));
    h.record(0.5);   // bucket le=1
    h.record(1.5);   // bucket le=2
    h.record(99.0);  // overflow: only visible in +Inf/_count

    const std::string text = to_prometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE mvreju_build_info gauge\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_build_info{git_sha=\""), std::string::npos);
    // Dots are sanitised to underscores; counters and gauges are typed.
    EXPECT_NE(text.find("# TYPE mvreju_av_frames counter\nmvreju_av_frames 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE mvreju_dspn_residual gauge\n"), std::string::npos);
    // Histogram buckets are cumulative and end with +Inf == _count.
    EXPECT_NE(text.find("mvreju_solve_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_solve_ms_bucket{le=\"2\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_solve_ms_bucket{le=\"3\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_solve_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_solve_ms_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("mvreju_solve_ms_sum 101\n"), std::string::npos);
}

TEST_F(ObsExporterTest, HealthzReflectsPublishedReportsImmediately) {
    obs::Exporter exporter;

    // No report published yet: status ok, no modules section.
    util::Json doc = util::Json::parse(exporter.healthz_json());
    EXPECT_EQ(doc.at("status").str(), "ok");
    EXPECT_EQ(doc.find("modules"), nullptr);
    EXPECT_GE(doc.at("uptime_seconds").number(), 0.0);
    EXPECT_FALSE(doc.at("meta").at("git_sha").str().empty());

    // Publish a degraded pool; the very next scrape must see it.
    obs::HealthReport report;
    report.healthy = 1;
    report.compromised = 1;
    report.rejuvenating = 1;
    report.module_states = {"healthy", "compromised", "rejuvenating"};
    report.last_rejuvenation_age_s = 2.5;
    exporter.set_health(report);
    doc = util::Json::parse(exporter.healthz_json());
    EXPECT_EQ(doc.at("status").str(), "degraded");
    EXPECT_EQ(doc.at("modules").at("healthy").number(), 1.0);
    EXPECT_EQ(doc.at("modules").at("compromised").number(), 1.0);
    EXPECT_EQ(doc.at("modules").at("rejuvenating").number(), 1.0);
    EXPECT_EQ(doc.at("modules").at("states").size(), 3u);
    EXPECT_EQ(doc.at("modules").at("states").at(1).str(), "compromised");
    EXPECT_EQ(doc.at("last_rejuvenation_age_seconds").number(), 2.5);

    // All modules down: critical.
    obs::HealthReport dead;
    dead.nonfunctional = 3;
    dead.module_states = {"nonfunctional", "nonfunctional", "nonfunctional"};
    exporter.set_health(dead);
    doc = util::Json::parse(exporter.healthz_json());
    EXPECT_EQ(doc.at("status").str(), "critical");

    // Recovery: back to ok.
    obs::HealthReport fine;
    fine.healthy = 3;
    fine.module_states = {"healthy", "healthy", "healthy"};
    exporter.set_health(fine);
    EXPECT_EQ(util::Json::parse(exporter.healthz_json()).at("status").str(), "ok");
}

TEST_F(ObsExporterTest, HandleRoutesMetricsHealthzAndErrors) {
    obs::Exporter exporter;

    const std::string metrics = exporter.handle("GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(metrics.find("mvreju_build_info"), std::string::npos);
    // No health published: no module-state gauges.
    EXPECT_EQ(metrics.find("mvreju_module_state_count"), std::string::npos);

    obs::HealthReport report;
    report.healthy = 2;
    report.nonfunctional = 1;
    report.module_states = {"healthy", "healthy", "nonfunctional"};
    exporter.set_health(report);
    const std::string with_health = exporter.handle("GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(with_health.find("mvreju_module_state_count{state=\"healthy\"} 2\n"),
              std::string::npos);
    EXPECT_NE(
        with_health.find("mvreju_module_state_count{state=\"nonfunctional\"} 1\n"),
        std::string::npos);

    const std::string healthz = exporter.handle("GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("Content-Type: application/json"), std::string::npos);
    EXPECT_EQ(util::Json::parse(body_of(healthz)).at("status").str(), "degraded");

    // Query strings are stripped before routing.
    EXPECT_NE(exporter.handle("GET /healthz?verbose=1 HTTP/1.0\r\n\r\n")
                  .find("200 OK"),
              std::string::npos);

    EXPECT_NE(exporter.handle("GET /nope HTTP/1.0\r\n\r\n").find("404 Not Found"),
              std::string::npos);
    EXPECT_NE(exporter.handle("POST /metrics HTTP/1.0\r\n\r\n")
                  .find("405 Method Not Allowed"),
              std::string::npos);
    EXPECT_NE(exporter.handle("garbage").find("400 Bad Request"), std::string::npos);
}

TEST_F(ObsExporterTest, RecordEndpointForcesAFlightRecorderDump) {
    obs::Exporter exporter;
    obs::FlightRecorder& recorder = obs::FlightRecorder::global();

    // Recorder disarmed: the endpoint refuses rather than writing an empty box.
    recorder.set_enabled(false);
    EXPECT_NE(exporter.handle("GET /record HTTP/1.0\r\n\r\n")
                  .find("503 Service Unavailable"),
              std::string::npos);

    recorder.set_enabled(true);
    recorder.set_dump_dir(::testing::TempDir());
    recorder.record(obs::EventKind::custom, 1, 0, 1.0, 2.0);
    const std::string response = exporter.handle("GET /record HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    const std::string path = util::Json::parse(body_of(response)).at("dumped").str();
    EXPECT_NE(path.find("postmortem-"), std::string::npos);
    std::remove(path.c_str());
    recorder.set_enabled(false);
}

#ifndef MVREJU_OBS_DISABLED
TEST_F(ObsExporterTest, ServesARealHttpGetOverLoopback) {
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start(0));  // ephemeral port
    ASSERT_TRUE(exporter.running());
    const int port = exporter.port();
    ASSERT_GT(port, 0);
    EXPECT_FALSE(exporter.start(port));  // already running

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    const char request[] = "GET /healthz HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof request - 1, 0),
              static_cast<ssize_t>(sizeof request - 1));
    std::string response;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(got));
    ::close(fd);

    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_EQ(util::Json::parse(body_of(response)).at("status").str(), "ok");

    exporter.stop();
    EXPECT_FALSE(exporter.running());
    EXPECT_EQ(exporter.port(), 0);
    exporter.stop();  // idempotent
}
#endif  // MVREJU_OBS_DISABLED

#ifndef MVREJU_OBS_DISABLED

TEST_F(ObsExporterTest, ProfileRouteRefusesWithoutARunningProfiler) {
    obs::Exporter exporter;
    // No profiler running: 503 with a hint, not a hang or an empty 200.
    const std::string off = exporter.handle("GET /profile HTTP/1.0\r\n\r\n");
    EXPECT_NE(off.find("503 Service Unavailable"), std::string::npos);
    EXPECT_NE(off.find("profiler not running"), std::string::npos);
    // The 404 hint names the route so operators can discover it.
    EXPECT_NE(exporter.handle("GET /nope HTTP/1.0\r\n\r\n").find("/profile"),
              std::string::npos);
}

TEST_F(ObsExporterTest, ProfileRouteServesFoldedStacks) {
    obs::Profiler::Options options;
    options.interval_us = 500;
    obs::Profiler profiler(options);
    ASSERT_TRUE(profiler.start());
    // Burn CPU so the scrape has samples to fold.
    volatile double sink = 0.0;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(150);
    while (std::chrono::steady_clock::now() < until)
        for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;

    obs::Exporter exporter;
    const std::string ok = exporter.handle("GET /profile HTTP/1.0\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos);
    EXPECT_FALSE(body_of(ok).empty());
    // ?seconds=N is accepted (clamped to the retention window).
    EXPECT_NE(exporter.handle("GET /profile?seconds=1 HTTP/1.0\r\n\r\n")
                  .find("200 OK"),
              std::string::npos);
    profiler.stop();
}

// A scraper that dribbles its request one byte at a time (or stalls
// mid-request forever) must neither lose its response nor wedge the
// exporter loop for everyone else — the serving thread stays event-driven.
TEST_F(ObsExporterTest, SlowAndStalledClientsDoNotBlockTheLoop) {
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start(0));
    const int port = exporter.port();
    ASSERT_GT(port, 0);

    auto dial = [port]() {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
                  0);
        return fd;
    };

    // A stalled client: half a request line, then silence. Keep it open for
    // the whole test — the loop must serve others around it.
    const int stalled = dial();
    ASSERT_EQ(::send(stalled, "GET /hea", 8, MSG_NOSIGNAL), 8);

    // A byte-at-a-time client: the exporter must buffer across reads and
    // answer once the blank line lands.
    const int slow = dial();
    const char request[] = "GET /healthz HTTP/1.0\r\n\r\n";
    for (std::size_t i = 0; i + 1 < sizeof request; ++i)
        ASSERT_EQ(::send(slow, request + i, 1, MSG_NOSIGNAL), 1);
    std::string slow_response;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(slow, buf, sizeof buf, 0)) > 0)
        slow_response.append(buf, static_cast<std::size_t>(got));
    ::close(slow);
    EXPECT_NE(slow_response.find("HTTP/1.0 200 OK"), std::string::npos);

    // A normal client connecting *while* the stalled one sits mid-request
    // still gets served promptly.
    const int fresh = dial();
    ASSERT_EQ(::send(fresh, request, sizeof request - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof request - 1));
    std::string fresh_response;
    while ((got = ::recv(fresh, buf, sizeof buf, 0)) > 0)
        fresh_response.append(buf, static_cast<std::size_t>(got));
    ::close(fresh);
    EXPECT_NE(fresh_response.find("HTTP/1.0 200 OK"), std::string::npos);

    ::close(stalled);
    exporter.stop();
}

#endif  // MVREJU_OBS_DISABLED

TEST_F(ObsExporterTest, StartRefusedWhenObsIsKilled) {
    obs::Exporter exporter;
    obs::set_enabled(false);
    EXPECT_FALSE(exporter.start(0));
    EXPECT_FALSE(exporter.running());
    obs::set_enabled(true);
}

}  // namespace
