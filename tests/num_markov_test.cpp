#include "mvreju/num/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace mvreju::num {
namespace {

TEST(PoissonWeights, ZeroLambdaIsDegenerate) {
    auto pw = poisson_weights(0.0);
    EXPECT_EQ(pw.left, 0u);
    ASSERT_EQ(pw.weights.size(), 1u);
    EXPECT_DOUBLE_EQ(pw.weights[0], 1.0);
}

TEST(PoissonWeights, SmallLambdaMatchesClosedForm) {
    const double lambda = 2.5;
    auto pw = poisson_weights(lambda, 1e-14);
    for (std::size_t k = pw.left; k - pw.left < pw.weights.size(); ++k) {
        const double expected =
            std::exp(-lambda + static_cast<double>(k) * std::log(lambda) -
                     std::lgamma(static_cast<double>(k) + 1.0));
        EXPECT_NEAR(pw.weights[k - pw.left], expected, 1e-10) << "k=" << k;
    }
}

TEST(PoissonWeights, NormalisedForLargeLambda) {
    auto pw = poisson_weights(1200.0);
    const double sum = std::accumulate(pw.weights.begin(), pw.weights.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Mass concentrated near the mode (sigma = sqrt(1200) ~ 35; the window
    // extends a few sigma each side, far from zero).
    EXPECT_GT(pw.left, 800u);
    EXPECT_LT(pw.left, 1200u);
    EXPECT_LT(pw.weights.size(), 800u);
}

TEST(PoissonWeights, MeanMatchesLambda) {
    const double lambda = 37.5;
    auto pw = poisson_weights(lambda, 1e-14);
    double mean = 0.0;
    for (std::size_t k = 0; k < pw.weights.size(); ++k)
        mean += static_cast<double>(pw.left + k) * pw.weights[k];
    EXPECT_NEAR(mean, lambda, 1e-8);
}

TEST(PoissonWeights, NegativeLambdaThrows) {
    EXPECT_THROW(poisson_weights(-1.0), std::invalid_argument);
}

TEST(CheckGenerator, AcceptsValidRejectsInvalid) {
    Matrix good{{-1.0, 1.0}, {2.0, -2.0}};
    EXPECT_NO_THROW(check_generator(good));
    Matrix bad_row{{-1.0, 2.0}, {2.0, -2.0}};
    EXPECT_THROW(check_generator(bad_row), std::invalid_argument);
    Matrix bad_sign{{1.0, -1.0}, {2.0, -2.0}};
    EXPECT_THROW(check_generator(bad_sign), std::invalid_argument);
}

TEST(CtmcSteadyState, TwoStates) {
    Matrix q{{-2.0, 2.0}, {1.0, -1.0}};
    auto pi = ctmc_steady_state(q);
    EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(DtmcStationary, ThreeStateCycleIsUniform) {
    Matrix p{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};
    auto pi = dtmc_stationary(p);
    for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Uniformize, ZeroHorizonIsIdentity) {
    Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
    auto tm = uniformize(q, 0.0);
    EXPECT_DOUBLE_EQ(tm.omega(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(tm.omega(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(tm.psi(0, 0), 0.0);
}

TEST(Uniformize, TwoStateClosedForm) {
    // Symmetric two-state chain with rate r: P00(t) = (1 + e^{-2rt}) / 2.
    const double r = 0.7;
    const double tau = 1.3;
    Matrix q{{-r, r}, {r, -r}};
    auto tm = uniformize(q, tau, 1e-14);
    const double p00 = 0.5 * (1.0 + std::exp(-2.0 * r * tau));
    EXPECT_NEAR(tm.omega(0, 0), p00, 1e-10);
    EXPECT_NEAR(tm.omega(0, 1), 1.0 - p00, 1e-10);
    // int_0^tau P00(t) dt = tau/2 + (1 - e^{-2 r tau}) / (4 r).
    const double i00 = tau / 2.0 + (1.0 - std::exp(-2.0 * r * tau)) / (4.0 * r);
    EXPECT_NEAR(tm.psi(0, 0), i00, 1e-9);
    EXPECT_NEAR(tm.psi(0, 1), tau - i00, 1e-9);
}

TEST(Uniformize, RowsSumToOneAndTau) {
    Matrix q{{-2.0, 1.5, 0.5}, {0.0, -1.0, 1.0}, {3.0, 0.0, -3.0}};
    const double tau = 2.5;
    auto tm = uniformize(q, tau, 1e-13);
    for (std::size_t i = 0; i < 3; ++i) {
        double omega_sum = 0.0;
        double psi_sum = 0.0;
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_GE(tm.omega(i, j), -1e-12);
            omega_sum += tm.omega(i, j);
            psi_sum += tm.psi(i, j);
        }
        EXPECT_NEAR(omega_sum, 1.0, 1e-10);
        EXPECT_NEAR(psi_sum, tau, 1e-8);
    }
}

TEST(Uniformize, AbsorbingStateKeepsMass) {
    // State 1 absorbing; from state 0 with rate r the survival in 0 is e^{-rt}.
    const double r = 1.1;
    const double tau = 0.9;
    Matrix q{{-r, r}, {0.0, 0.0}};
    auto tm = uniformize(q, tau, 1e-14);
    EXPECT_NEAR(tm.omega(0, 0), std::exp(-r * tau), 1e-10);
    EXPECT_NEAR(tm.omega(1, 1), 1.0, 1e-12);
    // Expected time in 0 before absorption within [0,tau].
    EXPECT_NEAR(tm.psi(0, 0), (1.0 - std::exp(-r * tau)) / r, 1e-9);
}

TEST(CtmcTransient, MatchesUniformizeRow) {
    Matrix q{{-2.0, 1.5, 0.5}, {0.0, -1.0, 1.0}, {3.0, 0.0, -3.0}};
    const double t = 1.7;
    auto tm = uniformize(q, t, 1e-13);
    auto pi = ctmc_transient(q, {1.0, 0.0, 0.0}, t, 1e-13);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(pi[j], tm.omega(0, j), 1e-10);
}

TEST(CtmcTransient, LongHorizonApproachesSteadyState) {
    Matrix q{{-2.0, 2.0}, {1.0, -1.0}};
    auto pi = ctmc_transient(q, {1.0, 0.0}, 200.0);
    EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-8);
    EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-8);
}

// Property: transient distribution stays a distribution across horizons.
class TransientProperty : public ::testing::TestWithParam<double> {};

TEST_P(TransientProperty, RemainsStochastic) {
    Matrix q{{-0.002, 0.002, 0.0}, {0.0, -0.00065, 0.00065}, {2.0, 0.0, -2.0}};
    auto pi = ctmc_transient(q, {1.0, 0.0, 0.0}, GetParam());
    double sum = 0.0;
    for (double v : pi) {
        EXPECT_GE(v, -1e-12);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Horizons, TransientProperty,
                         ::testing::Values(0.0, 0.1, 1.0, 10.0, 300.0, 3000.0));

}  // namespace
}  // namespace mvreju::num
