// Tests for the deterministic synthetic fleet and the overload controller:
// run-to-run determinism, bit-identical outcomes for batched vs unbatched
// serving of the same seeded inputs, load shedding under overload with
// recovery when load drops, and the hysteresis of OverloadControl itself.

#include <gtest/gtest.h>

#include "mvreju/serve/overload.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/serve/synthetic.hpp"

namespace {

using namespace mvreju;

const serve::ModelSet& shared_set() {
    static const serve::ModelSet set = serve::make_model_set();
    return set;
}

serve::FleetOptions small_fleet() {
    serve::FleetOptions options;
    options.streams = 24;
    options.frame_rate_hz = 50.0;
    options.frames_per_stream = 12;
    options.seed = 5;
    options.batch_max = 16;
    options.batch_delay_us = 3000;
    options.shedding = false;  // equivalence configuration
    options.slo_budget_ms = 1e9;
    return options;
}

TEST(ServeFleetTest, DeterministicUnderSeed) {
    const serve::FleetResult a = serve::run_fleet(shared_set(), small_fleet());
    const serve::FleetResult b = serve::run_fleet(shared_set(), small_fleet());
    EXPECT_EQ(a.output_hash, b.output_hash);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.no_output, b.no_output);
    EXPECT_EQ(a.slo_breaches, b.slo_breaches);
    EXPECT_EQ(a.batch_flushes, b.batch_flushes);
    EXPECT_EQ(a.frames, 24u * 12u);
    EXPECT_EQ(a.decided + a.skipped + a.no_output + a.dropped, a.frames);

    serve::FleetOptions different = small_fleet();
    different.seed = 6;
    const serve::FleetResult c = serve::run_fleet(shared_set(), different);
    EXPECT_NE(a.output_hash, c.output_hash);
}

TEST(ServeFleetTest, BatchedOutcomesBitIdenticalToUnbatched) {
    // The tentpole equivalence gate: cross-stream batching must not change
    // a single frame's outcome. batch_max = 1 is the unbatched reference —
    // every inference runs alone — and the outcome hash covers status,
    // label, agreeing count and functional-module count of every frame.
    const serve::FleetResult batched = serve::run_fleet(shared_set(), small_fleet());

    serve::FleetOptions unbatched = small_fleet();
    unbatched.batch_max = 1;
    const serve::FleetResult reference =
        serve::run_fleet(shared_set(), unbatched);

    EXPECT_EQ(batched.output_hash, reference.output_hash);
    EXPECT_EQ(batched.decided, reference.decided);
    EXPECT_EQ(batched.skipped, reference.skipped);
    EXPECT_EQ(batched.no_output, reference.no_output);
    // And it genuinely batched: fewer flushes than frames were served.
    EXPECT_LT(batched.batch_flushes, reference.batch_flushes);
    EXPECT_GT(batched.mean_batch, 1.0);
}

TEST(ServeFleetTest, MultiThreadFlushMatchesSerial) {
    // logits_batch is bit-identical for any num_threads; so is the fleet.
    const serve::FleetResult serial = serve::run_fleet(shared_set(), small_fleet());
    serve::FleetOptions threaded = small_fleet();
    threaded.infer_threads = 4;
    const serve::FleetResult parallel = serve::run_fleet(shared_set(), threaded);
    EXPECT_EQ(serial.output_hash, parallel.output_hash);
}

TEST(ServeFleetTest, OverloadShedsAndLightLoadDoesNot) {
    // Saturating virtual service times trip the SLO controller: a large
    // share of frames must go out degraded (single-version) or dropped.
    serve::FleetOptions heavy;
    heavy.streams = 64;
    heavy.frame_rate_hz = 100.0;
    heavy.frames_per_stream = 30;
    heavy.seed = 9;
    heavy.batch_max = 8;
    heavy.batch_delay_us = 2000;
    heavy.service_base_us = 4000.0;   // engine saturates immediately
    heavy.service_per_frame_us = 500.0;
    heavy.slo_budget_ms = 5.0;
    heavy.shedding = true;
    const serve::FleetResult overload = serve::run_fleet(shared_set(), heavy);
    EXPECT_GT(overload.shed_rate, 0.2);
    EXPECT_GT(overload.degraded, 0u);
    EXPECT_GT(overload.slo_breaches, 0u);
    EXPECT_GT(overload.p99_virtual_ms, heavy.slo_budget_ms);

    // The same fleet at a light load breaches nothing and sheds nothing.
    serve::FleetOptions light = heavy;
    light.frame_rate_hz = 5.0;
    light.service_base_us = 100.0;
    light.service_per_frame_us = 10.0;
    const serve::FleetResult relaxed = serve::run_fleet(shared_set(), light);
    EXPECT_EQ(relaxed.shed_rate, 0.0);
    EXPECT_EQ(relaxed.degraded, 0u);
    EXPECT_EQ(relaxed.dropped, 0u);
}

TEST(ServeFleetTest, HardCapDropsFrames) {
    serve::FleetOptions options = small_fleet();
    options.shedding = true;
    options.slo_budget_ms = 5.0;
    options.batch_delay_us = 1'000'000;  // batches pile up...
    options.batch_max = 1024;
    options.max_inflight = 8;            // ...into a tiny inflight budget
    const serve::FleetResult result = serve::run_fleet(shared_set(), options);
    EXPECT_GT(result.dropped, 0u);
    EXPECT_EQ(result.decided + result.skipped + result.no_output + result.dropped,
              result.frames);
}

TEST(ServeFleetTest, SynchronousCompletionDoesNotLeakInflight) {
    // With batch_max = 1 every frame completes synchronously inside its own
    // submit loop — the arrangement that once default-inserted an empty
    // inflight entry per frame via operator[] after the erase. The genuine
    // inflight population never exceeds one here, so a small hard cap must
    // never trip over hundreds of frames; leaked entries would saturate it
    // and drop nearly everything.
    serve::FleetOptions options = small_fleet();
    options.batch_max = 1;
    options.max_inflight = 8;
    const serve::FleetResult result = serve::run_fleet(shared_set(), options);
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_EQ(result.decided + result.skipped + result.no_output, result.frames);
}

TEST(ServeOverloadControlTest, HysteresisEntersAndExits) {
    serve::OverloadControl::Options options;
    options.window = 10;
    options.enter_breach_fraction = 0.5;
    options.exit_breach_fraction = 0.1;
    serve::OverloadControl control(options);

    // A couple of early breaches are not enough evidence (half a window).
    control.record(true);
    control.record(true);
    EXPECT_FALSE(control.overloaded());

    for (int i = 0; i < 8; ++i) control.record(true);
    EXPECT_TRUE(control.overloaded());

    // Healthy frames above the exit threshold keep it latched (hysteresis)...
    for (int i = 0; i < 6; ++i) control.record(false);
    EXPECT_TRUE(control.overloaded());
    // ...until the breach fraction falls to the exit bound.
    for (int i = 0; i < 4; ++i) control.record(false);
    EXPECT_FALSE(control.overloaded());
}

}  // namespace
