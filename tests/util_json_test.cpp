// Tests for the minimal JSON document model: scalar and container parsing,
// escapes (including \uXXXX), the lookup helpers, strictness on malformed
// input (with byte offsets in the message), and roundtrips over the JSON the
// repo's own exporters emit.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mvreju/util/json.hpp"

namespace {

using mvreju::util::Json;

TEST(UtilJsonTest, ParsesScalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_TRUE(Json::parse("true").boolean());
    EXPECT_FALSE(Json::parse("false").boolean());
    EXPECT_EQ(Json::parse("42").number(), 42.0);
    EXPECT_EQ(Json::parse("-3.5e2").number(), -350.0);
    EXPECT_EQ(Json::parse("0.125").number(), 0.125);
    EXPECT_EQ(Json::parse("\"hi\"").str(), "hi");
    EXPECT_EQ(Json::parse("  \"ws\"  ").str(), "ws");
}

TEST(UtilJsonTest, ParsesStringEscapes) {
    EXPECT_EQ(Json::parse(R"("a\"b\\c\/d")").str(), "a\"b\\c/d");
    EXPECT_EQ(Json::parse(R"("line\nfeed\ttab")").str(), "line\nfeed\ttab");
    EXPECT_EQ(Json::parse(R"("\u0041\u00e9")").str(), "A\xc3\xa9");  // A, é
    EXPECT_EQ(Json::parse(R"("\u20ac")").str(), "\xe2\x82\xac");     // €
}

TEST(UtilJsonTest, ParsesArraysAndObjects) {
    const Json arr = Json::parse("[1, \"two\", [3], {\"four\": 4}, null]");
    ASSERT_TRUE(arr.is_array());
    ASSERT_EQ(arr.size(), 5u);
    EXPECT_EQ(arr.at(0).number(), 1.0);
    EXPECT_EQ(arr.at(1).str(), "two");
    EXPECT_EQ(arr.at(2).at(0).number(), 3.0);
    EXPECT_EQ(arr.at(3).at("four").number(), 4.0);
    EXPECT_TRUE(arr.at(4).is_null());
    EXPECT_THROW((void)arr.at(5), std::runtime_error);

    const Json obj = Json::parse(R"({"a": 1, "b": {"c": [true]}, "a": 2})");
    ASSERT_TRUE(obj.is_object());
    // Duplicate keys: members() preserves both, find/at return the first.
    EXPECT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj.at("a").number(), 1.0);
    EXPECT_TRUE(obj.at("b").at("c").at(0).boolean());
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
    EXPECT_EQ(Json::parse("{}").size(), 0u);
    EXPECT_EQ(Json::parse("[]").size(), 0u);
}

TEST(UtilJsonTest, MembersAndItemsIterateInDocumentOrder) {
    const Json obj = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_EQ(obj.members()[1].first, "a");
    EXPECT_EQ(obj.members()[2].first, "m");

    const Json arr = Json::parse("[3, 1, 2]");
    ASSERT_EQ(arr.items().size(), 3u);
    EXPECT_EQ(arr.items()[0].number(), 3.0);
}

TEST(UtilJsonTest, TypeMismatchesThrow) {
    const Json num = Json::parse("1");
    EXPECT_THROW((void)num.str(), std::runtime_error);
    EXPECT_THROW((void)num.boolean(), std::runtime_error);
    EXPECT_THROW((void)num.items(), std::runtime_error);
    EXPECT_THROW((void)num.members(), std::runtime_error);
    EXPECT_THROW((void)Json::parse("\"s\"").number(), std::runtime_error);
    EXPECT_EQ(num.find("key"), nullptr);  // find is noexcept on non-objects
    EXPECT_EQ(num.size(), 0u);
}

TEST(UtilJsonTest, MalformedInputThrowsWithByteOffset) {
    for (const char* bad :
         {"", "{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "1.2.3", "\"unterminated",
          "\"bad\\q\"", "\"\\u12\"", "[1] garbage", "{'a': 1}", "nan"}) {
        EXPECT_THROW((void)Json::parse(bad), std::runtime_error) << bad;
    }
    try {
        (void)Json::parse("[1, x]");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
    }
}

TEST(UtilJsonTest, DepthLimitRejectsPathologicalNesting) {
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    deep += "1";
    for (int i = 0; i < 100; ++i) deep += "]";
    EXPECT_THROW((void)Json::parse(deep), std::runtime_error);

    std::string fine = "1";
    for (int i = 0; i < 32; ++i) fine = "[" + fine + "]";
    EXPECT_NO_THROW((void)Json::parse(fine));
}

TEST(UtilJsonTest, ReadsTheReposOwnMetricsBlobShape) {
    const Json blob = Json::parse(R"({
      "meta": {"git_sha": "abc", "build_type": "Release"},
      "metrics": {
        "counters": {"av.frames": 1200},
        "gauges": {"dspn.residual": 1e-12},
        "histograms": {"solve.ms": {"count": 3, "p99": 4.5, "buckets": [1, 2, 0]}}
      }
    })");
    EXPECT_EQ(blob.at("meta").at("git_sha").str(), "abc");
    EXPECT_EQ(blob.at("metrics").at("counters").at("av.frames").number(), 1200.0);
    EXPECT_EQ(blob.at("metrics").at("gauges").at("dspn.residual").number(), 1e-12);
    const Json& hist = blob.at("metrics").at("histograms").at("solve.ms");
    EXPECT_EQ(hist.at("count").number(), 3.0);
    EXPECT_EQ(hist.at("buckets").at(1).number(), 2.0);
}

}  // namespace
