// Equivalence suite for the batched im2col+GEMM inference engine: the
// stateless infer() path must reproduce the per-sample training-grade
// forward() path (identical argmax on the full signs eval set, logits within
// 1e-5) and be bit-identical across thread counts. Also covers the
// input-shape validation added to the layers, the Softmax layer, and the
// Workspace buffer pool.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "mvreju/data/signs.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"

namespace mvreju::ml {
namespace {

/// The full Table II eval workload, rendered once per binary.
const data::SignDataset& signs() {
    static const data::SignDataset dataset = [] {
        data::SignDatasetConfig cfg;
        cfg.train_count = 1;  // the test set is independent of train_count
        return data::make_traffic_signs(cfg);
    }();
    return dataset;
}

std::vector<Sequential> reference_models() {
    std::vector<Sequential> models;
    models.push_back(make_mini_alexnet(3, 16, data::kSignClasses, 38));
    models.push_back(make_micro_resnet(3, 16, data::kSignClasses, 38));
    models.push_back(make_tiny_lenet(3, 16, data::kSignClasses, 38));
    return models;
}

/// The pre-batching seed path: one image at a time through every layer's
/// forward(x, /*training=*/false).
Tensor naive_logits(Sequential& model, const Tensor& image) {
    Tensor x = image;
    for (std::size_t l = 0; l < model.layer_count(); ++l)
        x = model.layer(l).forward(x, /*training=*/false);
    return x;
}

/// Stack equally-shaped images into one (N, ...) batch.
Tensor stack(const std::vector<Tensor>& images) {
    std::vector<std::size_t> shape;
    shape.push_back(images.size());
    for (std::size_t d : images.front().shape()) shape.push_back(d);
    Tensor batch(shape);
    const std::size_t sample = images.front().size();
    for (std::size_t i = 0; i < images.size(); ++i)
        std::memcpy(batch.data().data() + i * sample, images[i].data().data(),
                    sample * sizeof(float));
    return batch;
}

TEST(InferEquivalence, BatchedMatchesPerSampleOnFullEvalSet) {
    const std::vector<Tensor>& images = signs().test.images;
    for (Sequential& model : reference_models()) {
        SCOPED_TRACE(model.name());

        std::vector<int> naive_preds;
        std::vector<float> naive;
        for (const Tensor& img : images) {
            const Tensor logits = naive_logits(model, img);
            naive_preds.push_back(static_cast<int>(argmax(logits)));
            naive.insert(naive.end(), logits.data().begin(), logits.data().end());
        }

        // Identical argmax on every eval image, through the chunked path.
        EXPECT_EQ(model.predict_batch(images, 1), naive_preds);

        // Logits within 1e-5 of the per-sample path on one full-set batch.
        Workspace ws;
        const Tensor logits = model.logits_batch(stack(images), ws, 1);
        ASSERT_EQ(logits.size(), naive.size());
        float max_diff = 0.0f;
        for (std::size_t i = 0; i < naive.size(); ++i)
            max_diff = std::max(max_diff, std::fabs(logits[i] - naive[i]));
        EXPECT_LE(max_diff, 1e-5f);
    }
}

TEST(InferEquivalence, BitIdenticalAcrossThreadCounts) {
    const Tensor batch = stack(signs().test.images);
    for (Sequential& model : reference_models()) {
        SCOPED_TRACE(model.name());
        Workspace ws;
        const Tensor reference = model.logits_batch(batch, ws, 1);
        for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            Tensor logits = model.logits_batch(batch, ws, threads);
            ASSERT_EQ(logits.size(), reference.size());
            EXPECT_EQ(std::memcmp(logits.data().data(), reference.data().data(),
                                  reference.size() * sizeof(float)),
                      0)
                << "threads=" << threads;
            ws.give(std::move(logits));
        }
    }
}

TEST(InferEquivalence, PredictBatchIndependentOfThreadsAndChunking) {
    const std::vector<Tensor>& images = signs().test.images;  // > one 256-chunk
    Sequential model = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    std::vector<int> per_sample;
    per_sample.reserve(images.size());
    for (const Tensor& img : images) per_sample.push_back(model.predict(img));

    EXPECT_EQ(model.predict_batch(images, 1), per_sample);
    EXPECT_EQ(model.predict_batch(images, 4), per_sample);
    EXPECT_EQ(model.predict_batch(images, 0), per_sample);  // 0 = auto
}

TEST(InferEquivalence, EvaluateMatchesPerSamplePath) {
    const Dataset& test = signs().test;
    Sequential model = make_mini_alexnet(3, 16, data::kSignClasses, 38);

    std::size_t correct = 0;
    std::vector<std::size_t> errors;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (model.predict(test.images[i]) == test.labels[i]) ++correct;
        else errors.push_back(i);
    }

    const Evaluation serial = model.evaluate(test, 1);
    EXPECT_DOUBLE_EQ(serial.accuracy,
                     static_cast<double>(correct) / static_cast<double>(test.size()));
    EXPECT_EQ(serial.error_set, errors);

    const Evaluation threaded = model.evaluate(test, 8);
    EXPECT_DOUBLE_EQ(threaded.accuracy, serial.accuracy);
    EXPECT_EQ(threaded.error_set, serial.error_set);
}

TEST(InferValidation, DenseRejectsWrongShapes) {
    util::Rng rng(7);
    Dense dense(16, 4, rng);
    Workspace ws;
    EXPECT_THROW((void)dense.forward(Tensor({15}), false), std::invalid_argument);
    EXPECT_NO_THROW((void)dense.forward(Tensor({16}), false));
    EXPECT_NO_THROW((void)dense.forward(Tensor({4, 4}), false));  // 16 elements
    EXPECT_THROW((void)dense.infer(Tensor({16}), ws, 1), std::invalid_argument);
    EXPECT_THROW((void)dense.infer(Tensor({2, 15}), ws, 1), std::invalid_argument);
    EXPECT_NO_THROW((void)dense.infer(Tensor({2, 16}), ws, 1));
}

TEST(InferValidation, Conv2DRejectsWrongShapes) {
    util::Rng rng(7);
    Conv2D conv(3, 4, 3, 1, rng);
    Workspace ws;
    EXPECT_THROW((void)conv.forward(Tensor({4, 8, 8}), false), std::invalid_argument);
    EXPECT_THROW((void)conv.forward(Tensor({3, 8}), false), std::invalid_argument);
    EXPECT_NO_THROW((void)conv.forward(Tensor({3, 8, 8}), false));
    EXPECT_THROW((void)conv.infer(Tensor({3, 8, 8}), ws, 1), std::invalid_argument);
    EXPECT_THROW((void)conv.infer(Tensor({2, 4, 8, 8}), ws, 1), std::invalid_argument);
    EXPECT_NO_THROW((void)conv.infer(Tensor({2, 3, 8, 8}), ws, 1));

    // Kernel larger than the padded input must throw, not wrap around.
    Conv2D big(1, 1, 5, 0, rng);
    EXPECT_THROW((void)big.forward(Tensor({1, 4, 4}), false), std::invalid_argument);
    EXPECT_THROW((void)big.infer(Tensor({1, 1, 4, 4}), ws, 1), std::invalid_argument);
}

TEST(InferValidation, MaxPoolFlattenAndPredictBatchRejectWrongShapes) {
    Workspace ws;
    MaxPool2D pool;
    EXPECT_THROW((void)pool.infer(Tensor({2, 1, 3, 4}), ws, 1), std::invalid_argument);
    EXPECT_THROW((void)pool.infer(Tensor({2, 4, 4}), ws, 1), std::invalid_argument);
    EXPECT_NO_THROW((void)pool.infer(Tensor({2, 1, 4, 4}), ws, 1));

    Flatten flatten;
    EXPECT_THROW((void)flatten.infer(Tensor({8}), ws, 1), std::invalid_argument);

    Sequential model = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    std::vector<Tensor> mixed{Tensor({3, 16, 16}), Tensor({3, 8, 8})};
    EXPECT_THROW((void)model.predict_batch(mixed, 1), std::invalid_argument);
}

TEST(SoftmaxLayer, ForwardInferBackwardAreConsistent) {
    Softmax softmax;
    Workspace ws;
    const Tensor logits({4}, {1.5f, -0.25f, 0.0f, 2.0f});

    // forward: a probability vector preserving the logit ordering.
    Tensor y = softmax.forward(logits, /*training=*/true);
    float sum = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(y[i], 0.0f);
        sum += y[i];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_EQ(argmax(y), argmax(logits));

    // infer: each batch row matches an independent forward pass.
    Tensor batch({2, 4}, {1.5f, -0.25f, 0.0f, 2.0f, -3.0f, 0.5f, 0.5f, 1.0f});
    Tensor rows = softmax.infer(batch, ws, 1);
    ASSERT_EQ(rows.shape(), batch.shape());
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(rows[i], y[i]);
    float second_sum = 0.0f;
    for (std::size_t i = 4; i < 8; ++i) second_sum += rows[i];
    EXPECT_NEAR(second_sum, 1.0f, 1e-6f);

    // backward: numeric Jacobian-vector check against the analytic gradient.
    const Tensor upstream({4}, {0.3f, -1.0f, 0.2f, 0.5f});
    const Tensor grad = softmax.backward(upstream);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < 4; ++i) {
        Tensor plus = logits;
        plus[i] += eps;
        Tensor minus = logits;
        minus[i] -= eps;
        Softmax probe;
        const Tensor yp = probe.forward(plus, false);
        const Tensor ym = probe.forward(minus, false);
        double numeric = 0.0;
        for (std::size_t j = 0; j < 4; ++j)
            numeric += static_cast<double>(upstream[j]) * (yp[j] - ym[j]) / (2.0 * eps);
        EXPECT_NEAR(numeric, grad[i], 1e-4);
    }
}

TEST(WorkspaceTest, RecyclesBuffersAcrossShapes) {
    Workspace ws;
    Tensor a = ws.take({64});
    float* storage = a.data().data();
    a[0] = 42.0f;
    ws.give(std::move(a));

    // Same element count, different shape: the pooled buffer is reused.
    Tensor b = ws.take({8, 8});
    EXPECT_EQ(b.data().data(), storage);
    EXPECT_EQ(b.shape(), (std::vector<std::size_t>{8, 8}));
    ws.give(std::move(b));

    const std::size_t grown = ws.bytes();
    EXPECT_GE(grown, 64 * sizeof(float));

    // Scratch buffers are sized on demand and tracked by bytes().
    (void)ws.col(128);
    EXPECT_GE(ws.bytes(), grown + 128 * sizeof(float));
}

}  // namespace
}  // namespace mvreju::ml
