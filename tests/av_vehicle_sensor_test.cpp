#include <gtest/gtest.h>

#include "mvreju/av/sensor.hpp"
#include "mvreju/av/vehicle.hpp"

namespace mvreju::av {
namespace {

TEST(EgoVehicle, StraightLineMotion) {
    EgoVehicle ego({0.0, 0.0}, 0.0);
    for (int i = 0; i < 100; ++i) ego.step(1.0, 0.0, 0.1);  // 10 s at 1 m/s^2
    EXPECT_NEAR(ego.speed(), 10.0, 1e-9);
    // x = a t^2 / 2 with forward-Euler discretisation error.
    EXPECT_NEAR(ego.position().x, 50.0, 1.1);
    EXPECT_NEAR(ego.position().y, 0.0, 1e-9);
}

TEST(EgoVehicle, SpeedNeverNegative) {
    EgoVehicle ego({0.0, 0.0}, 0.0);
    ego.step(-5.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(ego.speed(), 0.0);
    ego.set_speed(-3.0);
    EXPECT_DOUBLE_EQ(ego.speed(), 0.0);
}

TEST(EgoVehicle, SteeringTurnsLeft) {
    EgoVehicle ego({0.0, 0.0}, 0.0);
    ego.set_speed(5.0);
    for (int i = 0; i < 50; ++i) ego.step(0.0, 0.3, 0.05);
    EXPECT_GT(ego.heading(), 0.2);
    EXPECT_GT(ego.position().y, 0.0);
}

TEST(EgoVehicle, Validation) {
    EXPECT_THROW(EgoVehicle({0.0, 0.0}, 0.0, 0.0), std::invalid_argument);
    EgoVehicle ego({0.0, 0.0}, 0.0);
    EXPECT_THROW(ego.step(0.0, 0.0, 0.0), std::invalid_argument);
}

TEST(NpcVehicle, FollowsStopAndGoCycle) {
    Route route("r", {{0.0, 0.0}, {500.0, 0.0}}, 10.0);
    NpcProfile profile;
    profile.cruise_speed = 8.0;
    profile.cruise_time = 2.0;
    profile.stop_time = 1.0;
    NpcVehicle npc(route, 0.0, profile, 7);
    bool seen_stopped = false;
    bool seen_cruise = false;
    double prev_s = 0.0;
    for (int i = 0; i < 600; ++i) {  // 30 s
        npc.step(0.05);
        EXPECT_GE(npc.s(), prev_s);  // never reverses
        prev_s = npc.s();
        if (npc.speed() == 0.0) seen_stopped = true;
        if (npc.speed() == profile.cruise_speed) seen_cruise = true;
    }
    EXPECT_TRUE(seen_stopped);
    EXPECT_TRUE(seen_cruise);
    EXPECT_GT(npc.s(), 50.0);
}

TEST(NpcVehicle, RejectsBadStart) {
    Route route("r", {{0.0, 0.0}, {100.0, 0.0}}, 10.0);
    EXPECT_THROW(NpcVehicle(route, -1.0, {}, 1), std::invalid_argument);
    EXPECT_THROW(NpcVehicle(route, 200.0, {}, 1), std::invalid_argument);
}

TEST(Buckets, RoundTripConsistency) {
    EXPECT_EQ(distance_to_bucket(100.0), 0);
    EXPECT_EQ(distance_to_bucket(36.0), 1);
    EXPECT_EQ(distance_to_bucket(5.0), 6);
    EXPECT_EQ(distance_to_bucket(0.0), 7);
    EXPECT_EQ(distance_to_bucket(-1.0), 7);
    // Conservative mapping: representative distance <= any distance in the
    // bucket (safety property used by the planner).
    for (double d : {0.5, 3.0, 7.0, 12.0, 17.0, 25.0, 30.0, 40.0}) {
        const int bucket = distance_to_bucket(d);
        if (bucket > 0) {
            EXPECT_LE(bucket_to_distance(bucket), d) << d;
        }
    }
    EXPECT_THROW((void)bucket_to_distance(-1), std::out_of_range);
    EXPECT_THROW((void)bucket_to_distance(8), std::out_of_range);
}

TEST(Buckets, MonotoneInDistance) {
    int prev = 8;
    for (double d = 0.0; d < 60.0; d += 0.5) {
        const int b = distance_to_bucket(d);
        EXPECT_LE(b, prev);  // farther -> never a nearer bucket
        prev = b;
    }
}

TEST(SensorGrid, ShapeAndCleanScene) {
    SensorConfig cfg;
    cfg.noise_sigma = 0.0;
    util::Rng rng(1);
    const Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
    ml::Tensor grid = render_grid(ego, {}, cfg, rng);
    EXPECT_EQ(grid.shape(), (std::vector<std::size_t>{2, cfg.grid, cfg.grid}));
    // Channel 0 empty, channel 1 is the distance ramp.
    for (std::size_t r = 0; r < cfg.grid; ++r)
        for (std::size_t c = 0; c < cfg.grid; ++c) EXPECT_EQ(grid.at3(0, r, c), 0.0f);
    EXPECT_GT(grid.at3(1, 0, 0), grid.at3(1, cfg.grid - 1, 0));
}

TEST(SensorGrid, VehicleAppearsAtExpectedRow) {
    SensorConfig cfg;
    cfg.noise_sigma = 0.0;
    util::Rng rng(2);
    const Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
    const Obb lead{{24.0, 0.0}, 2.25, 0.95, 0.0};  // centre 24 m ahead
    ml::Tensor grid = render_grid(ego, {{lead}}, cfg, rng);
    // 24 m ahead of a 48 m range with 12 rows: row index ~ (48-24)/4 = 6.
    double occupancy_row6 = 0.0;
    double occupancy_row0 = 0.0;
    for (std::size_t c = 0; c < cfg.grid; ++c) {
        occupancy_row6 += grid.at3(0, 6, c);
        occupancy_row0 += grid.at3(0, 0, c);
    }
    EXPECT_GT(occupancy_row6, 0.0);
    EXPECT_EQ(occupancy_row0, 0.0);
}

TEST(SensorGrid, BehindAndOutOfRangeInvisible) {
    SensorConfig cfg;
    cfg.noise_sigma = 0.0;
    util::Rng rng(3);
    const Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
    for (const Obb& other :
         {Obb{{-20.0, 0.0}, 2.25, 0.95, 0.0}, Obb{{80.0, 0.0}, 2.25, 0.95, 0.0},
          Obb{{20.0, 30.0}, 2.25, 0.95, 0.0}}) {
        ml::Tensor grid = render_grid(ego, {{other}}, cfg, rng);
        double total = 0.0;
        for (std::size_t r = 0; r < cfg.grid; ++r)
            for (std::size_t c = 0; c < cfg.grid; ++c) total += grid.at3(0, r, c);
        EXPECT_EQ(total, 0.0);
    }
}

TEST(GroundTruth, BumperToBumperGap) {
    SensorConfig cfg;
    const Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
    const Obb lead{{24.0, 0.0}, 2.25, 0.95, 0.0};
    // Gap = 24 - 2.25 - 2.25 = 19.5.
    EXPECT_NEAR(ground_truth_distance(ego, {{lead}}, cfg), 19.5, 1e-9);
    // Off-corridor vehicle ignored.
    const Obb side{{24.0, 6.0}, 2.25, 0.95, 0.0};
    EXPECT_TRUE(std::isinf(ground_truth_distance(ego, {{side}}, cfg)));
    // Nearest of several.
    const Obb close{{10.0, 0.3}, 2.25, 0.95, 0.0};
    EXPECT_NEAR(ground_truth_distance(ego, {{lead, close}}, cfg), 5.5, 1e-9);
}

TEST(DetectorDataset, LabelsMatchGroundTruthConstruction) {
    SensorConfig cfg;
    ml::Dataset ds = make_detector_dataset(400, cfg, 9);
    EXPECT_EQ(ds.size(), 400u);
    EXPECT_EQ(ds.num_classes, kDistanceBuckets);
    int clear = 0;
    for (int label : ds.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, kDistanceBuckets);
        if (label == 0) ++clear;
    }
    // Mixture: some clear scenes, some hazards.
    EXPECT_GT(clear, 40);
    EXPECT_LT(clear, 360);
    EXPECT_THROW((void)make_detector_dataset(0, cfg, 1), std::invalid_argument);
}

TEST(DetectorDataset, DeterministicUnderSeed) {
    SensorConfig cfg;
    ml::Dataset a = make_detector_dataset(20, cfg, 11);
    ml::Dataset b = make_detector_dataset(20, cfg, 11);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.labels[i], b.labels[i]);
        EXPECT_EQ(a.images[i], b.images[i]);
    }
}

}  // namespace
}  // namespace mvreju::av
