#include "mvreju/core/health.hpp"

#include <gtest/gtest.h>

#include <map>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/solver.hpp"

namespace mvreju::core {
namespace {

HealthEngineConfig fast_config(int modules, bool proactive, std::uint64_t seed) {
    HealthEngineConfig cfg;
    cfg.modules = modules;
    cfg.proactive = proactive;
    cfg.seed = seed;
    // Compressed time scale (the Section VII-A style parameters).
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.reactive_duration = 0.5;
    cfg.timing.proactive_duration = 0.5;
    cfg.timing.rejuvenation_interval = 3.0;
    return cfg;
}

TEST(HealthEngine, StartsAllHealthy) {
    HealthEngine engine(fast_config(3, true, 1));
    EXPECT_EQ(engine.module_count(), 3);
    const auto c = engine.counts();
    EXPECT_EQ(c.healthy, 3);
    EXPECT_EQ(c.compromised, 0);
    EXPECT_EQ(c.nonfunctional, 0);
    EXPECT_TRUE(engine.functional(0));
}

TEST(HealthEngine, RejectsInvalidConfig) {
    HealthEngineConfig cfg = fast_config(0, true, 1);
    EXPECT_THROW(HealthEngine{cfg}, std::invalid_argument);
    cfg = fast_config(3, true, 1);
    cfg.timing.mttc = 0.0;
    EXPECT_THROW(HealthEngine{cfg}, std::invalid_argument);
}

TEST(HealthEngine, TimeReversalThrows) {
    HealthEngine engine(fast_config(3, true, 2));
    engine.advance_to(10.0);
    EXPECT_THROW(engine.advance_to(5.0), std::invalid_argument);
}

TEST(HealthEngine, ModulesEventuallyCompromiseAndFail) {
    HealthEngine engine(fast_config(3, false, 3));
    engine.advance_to(500.0);
    EXPECT_GT(engine.stats().compromises, 10u);
    EXPECT_GT(engine.stats().failures, 10u);
    EXPECT_GT(engine.stats().reactive_rejuvenations, 10u);
    EXPECT_EQ(engine.stats().proactive_triggers, 0u);
}

TEST(HealthEngine, ProactiveTriggersAtDeterministicInterval) {
    HealthEngine engine(fast_config(3, true, 4));
    engine.advance_to(30.1);
    // Interval 3.0 -> 10 triggers in (0, 30].
    EXPECT_EQ(engine.stats().proactive_triggers, 10u);
}

TEST(HealthEngine, ProactiveKeepsModulesHealthier) {
    HealthEngine with(fast_config(3, true, 5));
    HealthEngine without(fast_config(3, false, 5));
    // Time-average healthy counts over a long run, sampled densely.
    double healthy_with = 0.0;
    double healthy_without = 0.0;
    const int samples = 20'000;
    for (int i = 1; i <= samples; ++i) {
        const double t = 0.05 * i;
        with.advance_to(t);
        without.advance_to(t);
        healthy_with += with.counts().healthy;
        healthy_without += without.counts().healthy;
    }
    EXPECT_GT(healthy_with / samples, healthy_without / samples + 0.3);
}

TEST(HealthEngine, ForcedTransitions) {
    HealthEngine engine(fast_config(3, false, 6));
    engine.force_compromise(0);
    EXPECT_EQ(engine.state(0), ModuleState::compromised);
    EXPECT_THROW(engine.force_compromise(0), std::logic_error);
    engine.force_failure(0);
    EXPECT_EQ(engine.state(0), ModuleState::nonfunctional);
    EXPECT_THROW(engine.force_failure(0), std::logic_error);
    // Reactive rejuvenation repairs it shortly after.
    engine.advance_to(engine.now() + 50.0);
    EXPECT_NE(engine.state(0), ModuleState::nonfunctional);
    EXPECT_GE(engine.stats().reactive_rejuvenations, 1u);
}

TEST(HealthEngine, DeterministicUnderSeed) {
    HealthEngine a(fast_config(3, true, 7));
    HealthEngine b(fast_config(3, true, 7));
    for (double t = 1.0; t < 100.0; t += 1.0) {
        a.advance_to(t);
        b.advance_to(t);
        for (int m = 0; m < 3; ++m) EXPECT_EQ(a.state(m), b.state(m)) << t;
    }
}

TEST(HealthEngine, ReactivePrecedesProactive) {
    // While a module is non-functional, no proactive rejuvenation may run.
    HealthEngine engine(fast_config(3, true, 8));
    for (double t = 0.05; t < 400.0; t += 0.05) {
        engine.advance_to(t);
        int proactive = 0;
        int nonfunctional_waiting = 0;
        for (int m = 0; m < 3; ++m) {
            if (engine.state(m) == ModuleState::rejuvenating_proactive) ++proactive;
            if (engine.state(m) == ModuleState::nonfunctional) ++nonfunctional_waiting;
        }
        EXPECT_LE(proactive, 1);
        // A proactive repair may outlast a later crash, but a *new* proactive
        // repair never starts while a module is down. We can only assert the
        // strong invariant at trigger instants, so assert the weak global
        // one here: never more than one proactive repair.
    }
    EXPECT_GT(engine.stats().proactive_rejuvenations, 50u);
}

/// Long-run state distribution of the engine must match the exact DSPN
/// steady state (the engine is the runtime twin of the Fig. 2/3 models).
class HealthVsDspn : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(HealthVsDspn, LongRunDistributionMatchesExactSolver) {
    const auto [modules, proactive] = GetParam();

    DspnConfig dspn_cfg;
    dspn_cfg.modules = modules;
    dspn_cfg.proactive = proactive;
    dspn_cfg.timing.mttc = 8.0;
    dspn_cfg.timing.mttf = 16.0;
    dspn_cfg.timing.reactive_duration = 0.5;
    dspn_cfg.timing.proactive_duration = 0.5;
    dspn_cfg.timing.rejuvenation_interval = 3.0;
    auto model = build_multiversion_dspn(dspn_cfg);
    dspn::ReachabilityGraph graph(model.net);
    const auto pi = dspn::dspn_steady_state(graph);

    // Exact marginal distribution over (healthy, compromised) counts.
    std::map<std::pair<int, int>, double> exact;
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        const auto& m = graph.marking(s);
        exact[{model.healthy(m), model.compromised(m)}] += pi[s];
    }

    HealthEngineConfig cfg;
    cfg.modules = modules;
    cfg.proactive = proactive;
    cfg.seed = 99;
    cfg.timing = dspn_cfg.timing;
    HealthEngine engine(cfg);

    std::map<std::pair<int, int>, double> observed;
    const int samples = 120'000;
    const double dt = 0.21;  // incommensurate with the 3.0 trigger period
    const int warmup = 500;
    for (int i = 0; i < samples + warmup; ++i) {
        engine.advance_to(dt * (i + 1));
        if (i < warmup) continue;
        const auto c = engine.counts();
        observed[{c.healthy, c.compromised}] += 1.0 / samples;
    }

    for (const auto& [state, probability] : exact) {
        EXPECT_NEAR(observed[state], probability, 0.02)
            << "state (h=" << state.first << ", c=" << state.second << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Configurations, HealthVsDspn,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(false, true)));

TEST(VictimPolicy, TwoThirdsPrefersCompromised) {
    // With one healthy + one compromised module, the 2/3 policy should pick
    // the compromised module about twice as often.
    int compromised_picked = 0;
    const int trials = 300;
    for (int trial = 0; trial < trials; ++trial) {
        HealthEngineConfig cfg = fast_config(2, true, 1000 + trial);
        cfg.policy = VictimPolicy::two_thirds_compromised;
        cfg.timing.mttc = 1.0;                    // compromise fast
        cfg.timing.mttf = 1e9;                    // never crash
        cfg.timing.rejuvenation_interval = 2.0;   // trigger soon
        cfg.timing.proactive_duration = 1e-3;
        HealthEngine engine(cfg);
        // Let exactly one compromise happen before the first trigger often
        // enough; sample the state right before the trigger.
        engine.advance_to(1.9999);
        const auto before = engine.counts();
        if (before.compromised != 1 || before.healthy != 1) continue;
        engine.advance_to(2.0001);
        // Victim went to rejuvenation: if the compromised one was chosen the
        // compromised count returns to zero.
        if (engine.counts().compromised == 0) ++compromised_picked;
        else --compromised_picked;
    }
    // 2/3 vs 1/3 -> expected positive margin.
    EXPECT_GT(compromised_picked, 20);
}

}  // namespace
}  // namespace mvreju::core
