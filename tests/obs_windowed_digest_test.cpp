// Tests for the windowed latency digest behind fleet telemetry. The
// load-bearing property is deterministic merging: every accumulator is
// integral (fixed-point sum/min/max), so splitting a sample stream over
// any number of shards and merging in any order must reproduce the
// single-digest result bit for bit. The rest pins the exact time-decay
// semantics: whole slots age out of the window, stale samples at a reused
// ring position are dropped, newer ones evict.

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mvreju/obs/windowed_digest.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

obs::WindowedDigest::Options geometry() {
    obs::WindowedDigest::Options options;
    options.slot_width_us = 1'000'000;
    options.slots = 4;
    return options;
}

struct Sample {
    std::uint64_t t_us = 0;
    double value = 0.0;
};

/// Seeded samples spanning the whole window but never wrapping the ring,
/// so record order cannot change which samples survive.
std::vector<Sample> make_samples(std::size_t n) {
    util::Rng rng(42);
    std::vector<Sample> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Sample s;
        s.t_us = static_cast<std::uint64_t>(rng.uniform(0.0, 3'999'999.0));
        s.value = rng.uniform(0.0, 600.0);  // spills into the overflow bucket
        out.push_back(s);
    }
    return out;
}

void expect_identical(const obs::HistogramValue& got,
                      const obs::HistogramValue& want) {
    EXPECT_EQ(got.count, want.count);
    // Fixed-point accumulators make these exact equalities, not tolerances.
    EXPECT_EQ(got.sum, want.sum);
    EXPECT_EQ(got.min, want.min);
    EXPECT_EQ(got.max, want.max);
    EXPECT_EQ(got.buckets, want.buckets);
    EXPECT_EQ(got.quantile(0.5), want.quantile(0.5));
    EXPECT_EQ(got.quantile(0.99), want.quantile(0.99));
}

TEST(WindowedDigestTest, ShardSplitsMergeBitIdentical) {
    const std::vector<Sample> samples = make_samples(1000);
    const std::uint64_t now_us = 3'999'999;

    obs::WindowedDigest reference(geometry());
    for (const Sample& s : samples) reference.record(s.t_us, s.value);
    const obs::HistogramValue want = reference.window(now_us);
    ASSERT_EQ(want.count, samples.size());

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
        std::vector<obs::WindowedDigest> shard(shards,
                                               obs::WindowedDigest(geometry()));
        for (std::size_t i = 0; i < samples.size(); ++i)
            shard[i % shards].record(samples[i].t_us, samples[i].value);

        obs::WindowedDigest forward(geometry());
        for (const obs::WindowedDigest& s : shard) forward.merge(s);
        expect_identical(forward.window(now_us), want);

        // Merge order must not matter (associative + commutative folds).
        obs::WindowedDigest backward(geometry());
        for (std::size_t i = shard.size(); i-- > 0;) backward.merge(shard[i]);
        expect_identical(backward.window(now_us), want);
    }
}

TEST(WindowedDigestTest, WholeSlotsAgeOutOfTheWindow) {
    obs::WindowedDigest digest(geometry());
    digest.record(500'000, 1.0);    // epoch 0
    digest.record(1'500'000, 2.0);  // epoch 1
    digest.record(2'500'000, 3.0);  // epoch 2
    digest.record(3'500'000, 4.0);  // epoch 3
    EXPECT_EQ(digest.count(3'999'999), 4u);
    EXPECT_EQ(digest.window(3'999'999).min, 1.0);

    // One epoch later the oldest whole slot leaves; nothing is scaled.
    EXPECT_EQ(digest.count(4'500'000), 3u);
    EXPECT_EQ(digest.window(4'500'000).min, 2.0);
    EXPECT_EQ(digest.window(4'500'000).max, 4.0);

    // A slot is visible for exactly `slots` epochs: the epoch-3 sample is
    // still in-window through epoch 6...
    EXPECT_EQ(digest.count(6'999'999), 1u);
    EXPECT_EQ(digest.window(6'999'999).min, 4.0);
    // ...and gone the instant epoch 7 starts.
    EXPECT_EQ(digest.count(7'000'000), 0u);
    EXPECT_EQ(digest.window(7'000'000).count, 0u);
}

TEST(WindowedDigestTest, StaleSamplesDropNewerSamplesEvict) {
    obs::WindowedDigest digest(geometry());
    digest.record(5'500'000, 10.0);  // epoch 5 -> ring position 1

    // Same position, older epoch: the window has moved past it — dropped.
    digest.record(1'200'000, 99.0);  // epoch 1 -> ring position 1
    EXPECT_EQ(digest.count(5'999'999), 1u);
    EXPECT_EQ(digest.window(5'999'999).max, 10.0);

    // Same position, newer epoch: evicts the resident slot.
    digest.record(9'100'000, 7.0);  // epoch 9 -> ring position 1
    EXPECT_EQ(digest.count(9'999'999), 1u);
    EXPECT_EQ(digest.window(9'999'999).min, 7.0);
}

TEST(WindowedDigestTest, MergeRefusesMismatchedGeometry) {
    obs::WindowedDigest digest(geometry());

    obs::WindowedDigest::Options more_slots = geometry();
    more_slots.slots = 8;
    EXPECT_THROW(digest.merge(obs::WindowedDigest(more_slots)), std::logic_error);

    obs::WindowedDigest::Options wider_slots = geometry();
    wider_slots.slot_width_us = 2'000'000;
    EXPECT_THROW(digest.merge(obs::WindowedDigest(wider_slots)), std::logic_error);

    obs::WindowedDigest::Options other_bounds = geometry();
    other_bounds.bounds = obs::HistogramBounds::linear(1.0, 1.0, 4);
    EXPECT_THROW(digest.merge(obs::WindowedDigest(other_bounds)), std::logic_error);
}

TEST(WindowedDigestTest, MergeTakesTheNewerEpochPerSlot) {
    // Two shards whose ring position 0 holds different epochs: the merge
    // must keep the newer slot outright, not add a stale one in.
    obs::WindowedDigest old_shard(geometry());
    old_shard.record(500'000, 1.0);  // epoch 0 -> position 0
    obs::WindowedDigest new_shard(geometry());
    new_shard.record(4'500'000, 2.0);  // epoch 4 -> position 0

    obs::WindowedDigest a(geometry());
    a.merge(old_shard);
    a.merge(new_shard);
    obs::WindowedDigest b(geometry());
    b.merge(new_shard);
    b.merge(old_shard);

    expect_identical(a.window(4'999'999), b.window(4'999'999));
    EXPECT_EQ(a.count(4'999'999), 1u);
    EXPECT_EQ(a.window(4'999'999).max, 2.0);
}

TEST(WindowedDigestTest, ClearRetainsGeometry) {
    obs::WindowedDigest digest(geometry());
    digest.record(500'000, 1.0);
    digest.clear();
    EXPECT_EQ(digest.count(500'000), 0u);
    digest.record(600'000, 3.0);
    EXPECT_EQ(digest.count(999'999), 1u);

    obs::WindowedDigest other(geometry());
    other.record(700'000, 4.0);
    digest.merge(other);  // geometry intact: merge still accepted
    EXPECT_EQ(digest.count(999'999), 2u);
}

}  // namespace
