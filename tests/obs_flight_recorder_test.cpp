// Tests for the obs flight recorder: record/snapshot roundtrip, ring wrap
// retention, the enabled/disabled gates, trigger-driven postmortem dumps
// (content validated through util::Json), dump limits, and an 8-thread
// writer/reader hammer that the TSan CI job runs to certify the lock-free
// hot path race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/obs.hpp"
#include "mvreju/util/json.hpp"

namespace {

using namespace mvreju;
using obs::EventKind;
using obs::FlightRecorder;

class ObsFlightRecorderTest : public ::testing::Test {
protected:
    void SetUp() override { obs::set_enabled(true); }
    void TearDown() override { obs::set_enabled(true); }
};

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST_F(ObsFlightRecorderTest, RecordRoundtripPreservesOrderAndFields) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    recorder.record_at(100, EventKind::vote_decided, 1, 0, 3.0, 3.0);
    recorder.record_at(200, EventKind::deadline_miss, 2, 1, 100.0, 0.0);
    recorder.record_at(300, EventKind::collision, 3, 0, 7.5, 1.0);

    const auto threads = recorder.snapshot();
    ASSERT_EQ(threads.size(), 1u);
    EXPECT_EQ(threads[0].track, 1u);
    ASSERT_EQ(threads[0].events.size(), 3u);
    EXPECT_EQ(threads[0].events[0].t_ns, 100u);
    EXPECT_EQ(threads[0].events[0].kind, EventKind::vote_decided);
    EXPECT_EQ(threads[0].events[1].frame, 2u);
    EXPECT_EQ(threads[0].events[1].module, 1u);
    EXPECT_EQ(threads[0].events[1].a, 100.0);
    EXPECT_EQ(threads[0].events[2].kind, EventKind::collision);
    EXPECT_EQ(threads[0].events[2].b, 1.0);
}

TEST_F(ObsFlightRecorderTest, RingWrapKeepsTheLastCapacityEvents) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    const std::size_t total = FlightRecorder::kRingCapacity + 300;
    for (std::size_t i = 0; i < total; ++i)
        recorder.record_at(i, EventKind::custom, i, 0, static_cast<double>(i), 0.0);

    const auto threads = recorder.snapshot();
    ASSERT_EQ(threads.size(), 1u);
    const auto& events = threads[0].events;
    // The postmortem contract guarantees at least the last 256 events.
    ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
    ASSERT_GE(events.size(), 256u);
    // Oldest retained event is `total - capacity`; order is preserved.
    for (std::size_t k = 0; k < events.size(); ++k)
        EXPECT_EQ(events[k].frame, 300 + k);
}

TEST_F(ObsFlightRecorderTest, DisarmedAndKillSwitchedRecordersDropEverything) {
    FlightRecorder recorder;
    recorder.record(EventKind::custom, 1, 0);  // never armed
    EXPECT_TRUE(recorder.snapshot().empty());

    recorder.set_enabled(true);
    obs::set_enabled(false);  // MVREJU_OBS=off wins over set_enabled(true)
    EXPECT_FALSE(recorder.enabled());
    recorder.record(EventKind::custom, 2, 0);
    obs::set_enabled(true);
    EXPECT_TRUE(recorder.snapshot().empty());

    recorder.record(EventKind::custom, 3, 0);  // flows again once both are on
    ASSERT_EQ(recorder.snapshot().size(), 1u);
}

TEST_F(ObsFlightRecorderTest, TriggerWritesAValidPostmortemDocument) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    recorder.set_dump_dir(::testing::TempDir());
    recorder.set_trigger(EventKind::deadline_miss, true);

    for (int i = 0; i < 5; ++i)
        recorder.record_at(100 + i, EventKind::vote_decided, i, 0, 3.0, 3.0);
    EXPECT_EQ(recorder.trigger_dumps(), 0u);
    recorder.record_at(200, EventKind::deadline_miss, 5, 2, 100.0, 1.0);
    ASSERT_EQ(recorder.trigger_dumps(), 1u);

    const std::string path = recorder.last_dump_path();
    ASSERT_FALSE(path.empty());
    const util::Json doc = util::Json::parse(read_file(path));
    EXPECT_EQ(doc.at("reason").str(), "deadline_miss");
    EXPECT_FALSE(doc.at("meta").at("git_sha").str().empty());
    EXPECT_FALSE(doc.at("meta").at("compiler").str().empty());
    const util::Json& trigger = doc.at("trigger");
    EXPECT_EQ(trigger.at("kind").str(), "deadline_miss");
    EXPECT_EQ(trigger.at("frame").number(), 5.0);
    EXPECT_EQ(trigger.at("module").number(), 2.0);
    EXPECT_EQ(trigger.at("a").number(), 100.0);
    const util::Json& threads = doc.at("threads");
    ASSERT_EQ(threads.size(), 1u);
    // 5 votes + the miss itself are all in the black box.
    EXPECT_EQ(threads.at(0).at("events").size(), 6u);
    EXPECT_NE(doc.find("metrics"), nullptr);
    std::remove(path.c_str());
}

TEST_F(ObsFlightRecorderTest, TriggerThresholdIgnoresEventsBelowMinA) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    recorder.set_dump_dir(::testing::TempDir());
    recorder.set_trigger(EventKind::slo_breach, true, 10.0);

    recorder.record(EventKind::slo_breach, 1, 0, 5.0, 10.0);  // below threshold
    EXPECT_EQ(recorder.trigger_dumps(), 0u);
    recorder.record(EventKind::slo_breach, 2, 0, 15.0, 10.0);
    EXPECT_EQ(recorder.trigger_dumps(), 1u);
    std::remove(recorder.last_dump_path().c_str());
}

TEST_F(ObsFlightRecorderTest, DumpLimitBoundsTriggerStormsButNotForcedDumps) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    recorder.set_dump_dir(::testing::TempDir());
    recorder.set_dump_limit(2);
    recorder.set_trigger(EventKind::collision, true);

    std::vector<std::string> paths;
    for (int i = 0; i < 5; ++i) {
        recorder.record(EventKind::collision, i, 0, 1.0, 0.0);
        if (!recorder.last_dump_path().empty() &&
            (paths.empty() || paths.back() != recorder.last_dump_path()))
            paths.push_back(recorder.last_dump_path());
    }
    EXPECT_EQ(recorder.trigger_dumps(), 2u);

    // A forced dump (the /record endpoint) ignores the trigger budget.
    const std::string forced = recorder.dump("forced");
    ASSERT_FALSE(forced.empty());
    EXPECT_EQ(recorder.trigger_dumps(), 2u);
    EXPECT_EQ(util::Json::parse(read_file(forced)).at("reason").str(), "forced");
    paths.push_back(forced);
    for (const std::string& p : paths) std::remove(p.c_str());
}

TEST_F(ObsFlightRecorderTest, ClearDropsEventsAndResetsTheTriggerBudget) {
    FlightRecorder recorder;
    recorder.set_enabled(true);
    recorder.set_dump_dir(::testing::TempDir());
    recorder.set_dump_limit(1);
    recorder.set_trigger(EventKind::collision, true);
    recorder.record(EventKind::collision, 1, 0);
    EXPECT_EQ(recorder.trigger_dumps(), 1u);
    std::remove(recorder.last_dump_path().c_str());

    recorder.clear();
    EXPECT_TRUE(recorder.snapshot().empty());
    EXPECT_EQ(recorder.trigger_dumps(), 0u);
    recorder.record(EventKind::collision, 2, 0);  // budget is fresh again
    EXPECT_EQ(recorder.trigger_dumps(), 1u);
    std::remove(recorder.last_dump_path().c_str());
}

TEST_F(ObsFlightRecorderTest, EightWriterHammerWithConcurrentSnapshots) {
    // The TSan job runs this: 8 writers spin on the lock-free hot path while
    // a reader snapshots continuously. Correctness bar: no race reports, and
    // every event a snapshot returns is internally consistent (a == thread
    // id, b == sequence within that thread) — torn slots would break that.
    FlightRecorder recorder;
    recorder.set_enabled(true);
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;

    std::atomic<bool> start{false};
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            for (const auto& thread_events : recorder.snapshot())
                for (const auto& e : thread_events.events)
                    if (e.t_ns != e.frame || e.a + e.b < 0.0)
                        torn.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
        writers.emplace_back([&, w] {
            while (!start.load(std::memory_order_acquire)) {}
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                recorder.record_at(i, EventKind::custom, i,
                                   static_cast<std::uint32_t>(w),
                                   static_cast<double>(w), static_cast<double>(i));
        });
    }
    start.store(true, std::memory_order_release);
    for (std::thread& t : writers) t.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u);
    const auto threads = recorder.snapshot();
    ASSERT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
    for (const auto& thread_events : threads) {
        // Quiescent rings yield exactly the last kRingCapacity events, in
        // order, with consistent payloads.
        ASSERT_EQ(thread_events.events.size(), FlightRecorder::kRingCapacity);
        const std::uint32_t module = thread_events.events[0].module;
        for (std::size_t k = 0; k < thread_events.events.size(); ++k) {
            const auto& e = thread_events.events[k];
            EXPECT_EQ(e.frame, kPerThread - FlightRecorder::kRingCapacity + k);
            EXPECT_EQ(e.module, module);
            EXPECT_EQ(e.a, static_cast<double>(module));
            EXPECT_EQ(e.b, static_cast<double>(e.frame));
        }
    }
}

#ifdef MVREJU_OBS_DISABLED
TEST_F(ObsFlightRecorderTest, CompiledOutMacrosAreNoOps) {
    // With -DMVREJU_OBS=OFF the macros must not evaluate their arguments.
    int evaluations = 0;
    MVREJU_OBS_EVENT(EventKind::custom, ++evaluations, 0, 0.0, 0.0);
    MVREJU_OBS_EVENT_AT(0, EventKind::custom, ++evaluations, 0, 0.0, 0.0);
    EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
