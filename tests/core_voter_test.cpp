#include "mvreju/core/voter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mvreju/util/rng.hpp"

namespace mvreju::core {
namespace {

using IntVoter = Voter<int>;
using Proposals = std::vector<std::optional<int>>;

TEST(Voter, NoProposalsGivesNoOutput) {
    IntVoter voter;
    EXPECT_EQ(voter.vote(Proposals{}).kind, VoteKind::no_output);
    EXPECT_EQ(voter.vote(Proposals{std::nullopt, std::nullopt, std::nullopt}).kind,
              VoteKind::no_output);
}

TEST(Voter, RuleR3SingleProposalAccepted) {
    IntVoter voter;
    const auto result = voter.vote({std::nullopt, 7, std::nullopt});
    EXPECT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 7);
}

TEST(Voter, RuleR2AgreementAndSkip) {
    IntVoter voter;
    const auto agree = voter.vote({5, 5, std::nullopt});
    EXPECT_TRUE(agree.decided());
    EXPECT_EQ(*agree.value, 5);
    const auto disagree = voter.vote({5, 6, std::nullopt});
    EXPECT_EQ(disagree.kind, VoteKind::skipped);
    EXPECT_FALSE(disagree.value.has_value());
}

TEST(Voter, RuleR1MajorityOutvotesFaultyModule) {
    IntVoter voter;
    const auto result = voter.vote({3, 9, 3});
    EXPECT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 3);
}

TEST(Voter, RuleR1AllDifferentSkips) {
    IntVoter voter;
    EXPECT_EQ(voter.vote({1, 2, 3}).kind, VoteKind::skipped);
}

TEST(Voter, UnanimitySkipsOnAnyDisagreement) {
    IntVoter voter(VotingScheme::unanimity);
    EXPECT_TRUE(voter.vote({4, 4, 4}).decided());
    EXPECT_EQ(voter.vote({4, 4, 5}).kind, VoteKind::skipped);
    // Majority would have decided here:
    IntVoter majority;
    EXPECT_TRUE(majority.vote({4, 4, 5}).decided());
    // Single proposal still accepted under unanimity (R.3 analogue).
    EXPECT_TRUE(voter.vote({std::nullopt, 4, std::nullopt}).decided());
}

TEST(Voter, ApproximateAgreementPredicate) {
    struct Near {
        bool operator()(double a, double b) const { return std::fabs(a - b) < 0.5; }
    };
    Voter<double, Near> voter;
    const auto result =
        voter.vote(std::vector<std::optional<double>>{1.0, 1.3, 9.0});
    EXPECT_TRUE(result.decided());
    EXPECT_NEAR(*result.value, 1.0, 0.31);
    EXPECT_EQ(voter.vote(std::vector<std::optional<double>>{1.0, 2.0, 9.0}).kind,
              VoteKind::skipped);
}

TEST(Voter, MajorityValueIsASupportedProposal) {
    IntVoter voter;
    const auto result = voter.vote({8, 8, 1});
    ASSERT_TRUE(result.decided());
    EXPECT_EQ(*result.value, 8);
}

// Property sweep: with k identical correct proposals and 3-k distinct wrong
// ones, the majority voter decides correctly iff k >= 2, and never outputs
// a value nobody proposed.
class VoterProperty : public ::testing::TestWithParam<int> {};

TEST_P(VoterProperty, TwoAgreeingProposalsSuffice) {
    const int k = GetParam();
    Proposals proposals;
    for (int i = 0; i < k; ++i) proposals.emplace_back(42);
    for (int i = k; i < 3; ++i) proposals.emplace_back(100 + i);  // distinct wrong
    IntVoter voter;
    const auto result = voter.vote(proposals);
    if (k >= 2) {
        ASSERT_TRUE(result.decided());
        EXPECT_EQ(*result.value, 42);
    } else {
        EXPECT_EQ(result.kind, VoteKind::skipped);
    }
}

INSTANTIATE_TEST_SUITE_P(AgreementCounts, VoterProperty, ::testing::Values(0, 1, 2, 3));

TEST(Voter, StrictMajorityNeedsMoreThanHalf) {
    IntVoter strict(VotingScheme::strict_majority);
    // 2 of 5 agreeing: paper-majority decides, strict does not.
    Proposals two_of_five{9, 9, 1, 2, 3};
    EXPECT_TRUE(IntVoter{}.vote(two_of_five).decided());
    EXPECT_EQ(strict.vote(two_of_five).kind, VoteKind::skipped);
    // 3 of 5 agreeing: strict majority decides.
    const auto three_of_five = strict.vote({9, 9, 9, 1, 2});
    ASSERT_TRUE(three_of_five.decided());
    EXPECT_EQ(*three_of_five.value, 9);
    // With 3 functional modules strict majority coincides with the paper's
    // 2-agree rule.
    EXPECT_TRUE(strict.vote({4, 4, 7}).decided());
    EXPECT_EQ(strict.vote({4, 5, 7}).kind, VoteKind::skipped);
    // Degraded pool: 2 functional -> both must agree; 1 -> accepted.
    EXPECT_TRUE(strict.vote({4, 4, std::nullopt, std::nullopt, std::nullopt}).decided());
    EXPECT_EQ(strict.vote({4, 5, std::nullopt, std::nullopt, std::nullopt}).kind,
              VoteKind::skipped);
    EXPECT_TRUE(strict.vote({std::nullopt, 4, std::nullopt, std::nullopt, std::nullopt})
                    .decided());
}

// Property: a strict-majority decision is always also a paper-majority
// decision (strictness only removes decisions, never adds them), and both
// never output a value that fewer than the required supporters proposed.
class StrictVsPaper : public ::testing::TestWithParam<int> {};

TEST_P(StrictVsPaper, StrictDecisionsAreSubset) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    IntVoter paper;
    IntVoter strict(VotingScheme::strict_majority);
    for (int trial = 0; trial < 200; ++trial) {
        Proposals proposals;
        const std::size_t n = 1 + rng.uniform_int(5);
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.bernoulli(0.2)) proposals.emplace_back(std::nullopt);
            else proposals.emplace_back(static_cast<int>(rng.uniform_int(3)));
        }
        const auto s = strict.vote(proposals);
        const auto p = paper.vote(proposals);
        if (s.decided()) {
            EXPECT_TRUE(p.decided());
            // The strict winner enjoys >half support.
            std::size_t supporters = 0;
            std::size_t active = 0;
            for (const auto& proposal : proposals) {
                if (!proposal) continue;
                ++active;
                if (*proposal == *s.value) ++supporters;
            }
            EXPECT_GT(2 * supporters, active);
        }
        EXPECT_EQ(s.kind == VoteKind::no_output, p.kind == VoteKind::no_output);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictVsPaper, ::testing::Range(1, 6));

}  // namespace
}  // namespace mvreju::core
