#include "mvreju/data/image_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "mvreju/data/signs.hpp"

namespace mvreju::data {
namespace {

namespace fs = std::filesystem;

TEST(ImageIo, PpmRoundTrip) {
    const fs::path path = fs::temp_directory_path() / "mvreju_sign.ppm";
    SignPose pose;
    pose.noise_sigma = 0.05;
    pose.noise_seed = 3;
    const ml::Tensor original = render_sign(5, 16, pose);
    write_ppm(original, path);
    const ml::Tensor reloaded = read_ppm(path);
    ASSERT_EQ(reloaded.shape(), original.shape());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(reloaded[i], original[i], 1.0 / 255.0);  // 8-bit quantisation
    fs::remove(path);
}

TEST(ImageIo, ClampsOutOfRangeValues) {
    const fs::path path = fs::temp_directory_path() / "mvreju_clamp.ppm";
    ml::Tensor image({3, 2, 2});
    image[0] = -2.0f;
    image[1] = 3.0f;
    write_ppm(image, path);
    const ml::Tensor reloaded = read_ppm(path);
    EXPECT_EQ(reloaded[0], 0.0f);
    EXPECT_EQ(reloaded[1], 1.0f);
    fs::remove(path);
}

TEST(ImageIo, PgmWritesSingleChannel) {
    const fs::path path = fs::temp_directory_path() / "mvreju_gray.pgm";
    ml::Tensor image({1, 4, 4}, 0.5f);
    write_pgm(image, path);
    EXPECT_GT(fs::file_size(path), 10u);
    fs::remove(path);
}

TEST(ImageIo, ValidatesShapes) {
    ml::Tensor wrong({2, 4, 4});
    EXPECT_THROW(write_ppm(wrong, "x.ppm"), std::invalid_argument);
    EXPECT_THROW(write_pgm(wrong, "x.pgm"), std::invalid_argument);
    EXPECT_THROW((void)read_ppm("/nonexistent_zz.ppm"), std::runtime_error);
    ml::Tensor rgb({3, 2, 2});
    EXPECT_THROW(write_ppm(rgb, "/nonexistent_dir_zz/x.ppm"), std::runtime_error);
}

TEST(ImageIo, RejectsForeignHeaders) {
    const fs::path path = fs::temp_directory_path() / "mvreju_bad.ppm";
    {
        std::ofstream out(path);
        out << "P3\n2 2\n255\n";  // ASCII PPM: unsupported
    }
    EXPECT_THROW((void)read_ppm(path), std::runtime_error);
    fs::remove(path);
}

}  // namespace
}  // namespace mvreju::data
