#include <gtest/gtest.h>

#include <filesystem>

#include "mvreju/av/simulation.hpp"

namespace mvreju::av {
namespace {

/// Small, fast detector set shared by the whole suite (trained once).
const DetectorSet& test_detectors() {
    static const DetectorSet set = [] {
        SensorConfig sensor;
        DetectorTrainOptions opts;
        opts.train_samples = 1200;
        opts.eval_samples = 400;
        opts.epochs = 4;
        opts.cache_dir = std::filesystem::temp_directory_path() / "mvreju_test_detectors";
        return prepare_detectors(sensor, opts);
    }();
    return set;
}

TEST(Detectors, HealthyModelsBeatChanceByFar) {
    const DetectorSet& set = test_detectors();
    ASSERT_EQ(set.healthy.size(), 3u);
    for (double acc : set.healthy_accuracy) EXPECT_GT(acc, 0.6);  // chance = 1/8
}

TEST(Detectors, CompromisedVariantsAreDegradedAndOptimistic) {
    const DetectorSet& set = test_detectors();
    ASSERT_EQ(set.compromised.size(), 3u);
    for (std::size_t m = 0; m < 3; ++m) {
        ASSERT_FALSE(set.compromised[m].empty());
        for (const auto& variant : set.compromised[m]) {
            EXPECT_LT(variant.accuracy, set.healthy_accuracy[m]);
            EXPECT_GE(variant.optimism, 0.5);
        }
    }
}

TEST(Detectors, CacheRoundTripReproducesModels) {
    const DetectorSet& set = test_detectors();
    SensorConfig sensor;
    DetectorTrainOptions opts;
    opts.train_samples = 1200;
    opts.eval_samples = 400;
    opts.epochs = 4;
    opts.cache_dir = std::filesystem::temp_directory_path() / "mvreju_test_detectors";
    const DetectorSet reloaded = prepare_detectors(sensor, opts);
    for (std::size_t m = 0; m < 3; ++m)
        EXPECT_DOUBLE_EQ(reloaded.healthy_accuracy[m], set.healthy_accuracy[m]);
}

TEST(Detect, ReturnsValidBucket) {
    const DetectorSet& set = test_detectors();
    SensorConfig sensor;
    util::Rng rng(4);
    ml::Tensor grid = render_grid({{0.0, 0.0}, 2.25, 0.95, 0.0}, {}, sensor, rng);
    const Detection d = detect(set.healthy[0], grid);
    EXPECT_GE(d.bucket, 0);
    EXPECT_LT(d.bucket, kDistanceBuckets);
}

TEST(DetectionNear, AdjacentBucketsAgree) {
    DetectionNear near;
    EXPECT_TRUE(near({3}, {3}));
    EXPECT_TRUE(near({3}, {4}));
    EXPECT_TRUE(near({4}, {3}));
    EXPECT_FALSE(near({3}, {5}));
    EXPECT_FALSE(near({0}, {7}));
}

TEST(RunScenario, ValidatesConfig) {
    const auto towns = make_towns();
    const DetectorSet& set = test_detectors();
    ScenarioConfig cfg;
    cfg.versions = 0;
    EXPECT_THROW((void)run_scenario(towns[0].routes[0], set, cfg), std::invalid_argument);
    cfg.versions = 4;  // valid range, but only 3 versions prepared
    EXPECT_THROW((void)run_scenario(towns[0].routes[0], set, cfg), std::invalid_argument);
    cfg.versions = 3;
    cfg.dt = 0.0;
    EXPECT_THROW((void)run_scenario(towns[0].routes[0], set, cfg), std::invalid_argument);
}

TEST(RunScenario, DeterministicUnderSeed) {
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.horizon = 8.0;
    cfg.seed = 5;
    const RunMetrics a = run_scenario(towns[0].routes[0], test_detectors(), cfg);
    const RunMetrics b = run_scenario(towns[0].routes[0], test_detectors(), cfg);
    EXPECT_EQ(a.total_frames, b.total_frames);
    EXPECT_EQ(a.collision_frames, b.collision_frames);
    EXPECT_EQ(a.skipped_frames, b.skipped_frames);
    EXPECT_EQ(a.decided_frames, b.decided_frames);
    EXPECT_EQ(a.route_completed, b.route_completed);
}

TEST(RunScenario, FrameAccountingAddsUp) {
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.horizon = 10.0;
    cfg.seed = 6;
    const RunMetrics m = run_scenario(towns[1].routes[0], test_detectors(), cfg);
    EXPECT_EQ(m.total_frames,
              m.decided_frames + m.skipped_frames + m.no_output_frames);
    EXPECT_EQ(m.total_frames, 200);
    EXPECT_GE(m.route_completed, 0.0);
    EXPECT_LE(m.route_completed, 1.0);
    EXPECT_GT(m.inferences, 0u);
    EXPECT_GT(m.perception_wall_seconds, 0.0);
}

TEST(RunScenario, HealthyPerceptionMakesProgressWithoutCollisions) {
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.mttc = 1e9;  // modules never degrade
    cfg.rejuvenation = false;
    cfg.seed = 7;
    const RunMetrics m = run_scenario(towns[2].routes[0], test_detectors(), cfg);
    EXPECT_EQ(m.collision_frames, 0);
    EXPECT_FALSE(m.collided());
    EXPECT_GT(m.route_completed, 0.3);
}

TEST(RunScenario, SingleVersionRunsWithOneModule) {
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.versions = 1;
    cfg.horizon = 10.0;
    cfg.mttc = 1e9;
    cfg.rejuvenation = false;  // keep the lone module up for exact accounting
    cfg.seed = 8;
    const RunMetrics m = run_scenario(towns[0].routes[0], test_detectors(), cfg);
    // One inference per frame.
    EXPECT_EQ(m.inferences, static_cast<std::size_t>(m.total_frames));
    EXPECT_EQ(m.skipped_frames, 0);  // a single module can't diverge
}

TEST(RunScenario, FaultsDegradeSafetyWithoutRejuvenation) {
    // Aggregate over a few seeds: no-rejuvenation runs must show collisions
    // while the fault-free baseline (above) shows none.
    const auto towns = make_towns();
    int collision_frames = 0;
    for (std::uint64_t seed = 100; seed < 106; ++seed) {
        ScenarioConfig cfg;
        cfg.rejuvenation = false;
        cfg.seed = seed;
        collision_frames +=
            run_scenario(towns[3].routes[1], test_detectors(), cfg).collision_frames;
    }
    EXPECT_GT(collision_frames, 0);
}

TEST(RunScenario, RejuvenationReducesCollisionFrames) {
    const auto towns = make_towns();
    int with = 0;
    int without = 0;
    for (std::size_t r = 0; r < 4; ++r) {
        const auto& route = towns[r].routes[1];
        for (std::uint64_t seed = 50; seed < 55; ++seed) {
            ScenarioConfig cfg;
            cfg.seed = seed;
            cfg.rejuvenation = true;
            with += run_scenario(route, test_detectors(), cfg).collision_frames;
            cfg.rejuvenation = false;
            without += run_scenario(route, test_detectors(), cfg).collision_frames;
        }
    }
    EXPECT_LT(with, without);
}

TEST(Detectors, FiveVersionPoolPreparable) {
    SensorConfig sensor;
    DetectorTrainOptions opts;
    opts.versions = 5;
    opts.train_samples = 1200;
    opts.eval_samples = 400;
    opts.epochs = 4;
    opts.cache_dir = std::filesystem::temp_directory_path() / "mvreju_test_detectors5";
    const DetectorSet set = prepare_detectors(sensor, opts);
    ASSERT_EQ(set.healthy.size(), 5u);
    ASSERT_EQ(set.compromised.size(), 5u);
    for (double acc : set.healthy_accuracy) EXPECT_GT(acc, 0.5);
    DetectorTrainOptions bad = opts;
    bad.versions = 6;
    EXPECT_THROW((void)prepare_detectors(sensor, bad), std::invalid_argument);

    // And the scenario accepts the 5-version configuration.
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.versions = 5;
    cfg.horizon = 6.0;
    cfg.voting = core::VotingScheme::strict_majority;
    cfg.seed = 31;
    const RunMetrics m = run_scenario(towns[0].routes[0], set, cfg);
    EXPECT_EQ(m.total_frames, 120);
    // Even fleet sizes are legal too (the 3xfloat32 + 1xint8 experiment).
    ScenarioConfig four = cfg;
    four.versions = 4;
    EXPECT_EQ(run_scenario(towns[0].routes[0], set, four).total_frames, 120);
    ScenarioConfig invalid = cfg;
    invalid.versions = 6;
    EXPECT_THROW((void)run_scenario(towns[0].routes[0], set, invalid),
                 std::invalid_argument);
}

TEST(RunScenario, HealthStatsReported) {
    const auto towns = make_towns();
    ScenarioConfig cfg;
    cfg.seed = 9;
    const RunMetrics m = run_scenario(towns[0].routes[0], test_detectors(), cfg);
    EXPECT_GT(m.health_stats.proactive_triggers, 5u);  // ~33 s / 3 s interval
}

}  // namespace
}  // namespace mvreju::av
