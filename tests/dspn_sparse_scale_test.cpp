// Scale tests for the sparse solver core: tangible graphs with thousands of
// states that the dense O(n^2)-storage / O(n^3)-solve path could not handle
// in a unit test. The closed cyclic queueing network has a product-form
// stationary distribution, giving an exact cross-check at 10k+ states.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mvreju/dspn/solver.hpp"

namespace mvreju::dspn {
namespace {

/// Closed cyclic network: `tokens` customers circulate through `stations`
/// single-server exponential stations arranged in a ring. The tangible state
/// space is every composition of `tokens` over `stations` places:
/// C(tokens + stations - 1, stations - 1) states, each with at most
/// `stations` outgoing edges — inherently sparse.
PetriNet cyclic_network(std::size_t stations, int tokens,
                        const std::vector<double>& rates) {
    PetriNet net;
    std::vector<PlaceId> places;
    for (std::size_t i = 0; i < stations; ++i)
        places.push_back(net.add_place("s" + std::to_string(i), i == 0 ? tokens : 0));
    for (std::size_t i = 0; i < stations; ++i) {
        auto t = net.add_exponential("t" + std::to_string(i), rates[i]);
        net.add_input_arc(t, places[i]);
        net.add_output_arc(t, places[(i + 1) % stations]);
    }
    return net;
}

TEST(SparseScale, TenThousandStateNetworkMatchesProductForm) {
    // 5 stations, 20 customers: C(24, 4) = 10626 tangible states.
    const std::vector<double> rates{1.0, 1.4, 0.8, 2.0, 1.1};
    PetriNet net = cyclic_network(5, 20, rates);
    ReachabilityGraph graph(net);
    ASSERT_EQ(graph.state_count(), 10626u);

    const auto pi = spn_steady_state(graph);

    // Gordon-Newell product form for a cyclic single-server network:
    // pi(n_1..n_k) = (1/G) prod_i (1/r_i)^{n_i}.
    std::vector<double> weight(graph.state_count());
    double g = 0.0;
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        const Marking& m = graph.marking(s);
        double w = 1.0;
        for (std::size_t i = 0; i < rates.size(); ++i)
            w *= std::pow(1.0 / rates[i], m[i]);
        weight[s] = w;
        g += w;
    }
    double total = 0.0;
    double max_err = 0.0;
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        total += pi[s];
        max_err = std::max(max_err, std::fabs(pi[s] - weight[s] / g));
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
    EXPECT_LT(max_err, 1e-10);
}

TEST(SparseScale, LargeMdOneQueueSolvesViaMrgp) {
    // M/D/1/100: 101 tangible states, every queue state enabling the
    // deterministic service. Exercises the sparse MRGP path (row-targeted
    // subordinated uniformization + iterative EMC stationary solve, which
    // sits above the dense fallback cutoff).
    const double lambda = 0.3;
    const double tau = 1.0;
    PetriNet net;
    auto queue = net.add_place("queue");
    auto capacity = net.add_place("capacity", 100);
    auto arrive = net.add_exponential("arrive", lambda);
    net.add_input_arc(arrive, capacity);
    net.add_output_arc(arrive, queue);
    auto serve = net.add_deterministic("serve", tau);
    net.add_input_arc(serve, queue);
    net.add_output_arc(serve, capacity);

    ReachabilityGraph graph(net);
    ASSERT_EQ(graph.state_count(), 101u);
    const auto pi = dspn_steady_state(graph);

    double total = 0.0;
    for (double v : pi) {
        EXPECT_GE(v, -1e-12);
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);

    // At rho = 0.3 and capacity 100 the loss probability is negligible, so
    // the server-busy fraction equals rho to high accuracy (PASTA).
    const double busy = 1.0 - pi[*graph.find([&] {
        Marking m(2, 0);
        m[1] = 100;
        return m;
    }())];
    EXPECT_NEAR(busy, lambda * tau, 1e-6);

    // Queue-length tail must decay geometrically for rho < 1.
    double tail = 0.0;
    for (std::size_t s = 0; s < graph.state_count(); ++s)
        if (graph.marking(s)[0] > 20) tail += pi[s];
    EXPECT_LT(tail, 1e-8);
}

TEST(SpnMeanTimeTo, ScalesToThousandsOfStatesAndMatchesStructure) {
    // First passage from "all customers at station 0" to "station 2 holds
    // every customer" in a 4-station ring with 15 customers: C(18, 3) = 816
    // states, solved through the sparse absorbing-system path.
    const std::vector<double> rates{2.0, 2.0, 0.4, 2.0};
    PetriNet net = cyclic_network(4, 15, rates);
    ReachabilityGraph graph(net);
    ASSERT_EQ(graph.state_count(), 816u);
    const double mtt = spn_mean_time_to(
        graph, [](const Marking& m) { return m[2] == 15; });
    // The slow station must accumulate all 15 customers: each of the 15 must
    // be served by the three fast stations, so the mean is far above the
    // single-pass time 15 / 0.4 yet finite.
    EXPECT_GT(mtt, 15.0 / 2.0);
    EXPECT_TRUE(std::isfinite(mtt));
}

TEST(SpnMeanTimeTo, UnsatisfiablePredicateIsExplicitError) {
    PetriNet net = cyclic_network(3, 2, {1.0, 1.0, 1.0});
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)spn_mean_time_to(
                     graph, [](const Marking& m) { return m[0] > 99; }),
                 std::invalid_argument);
}

TEST(SpnMeanTimeTo, UnreachableTargetIsExplicitError) {
    // One-way fork: from a you reach either b or c, both absorbing... but
    // make c absorbing-with-self-escape impossible: a -> b, a -> c, and only
    // b returns to a. States that entered c can never reach b.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto tab = net.add_exponential("tab", 1.0);
    net.add_input_arc(tab, a);
    net.add_output_arc(tab, b);
    auto tac = net.add_exponential("tac", 1.0);
    net.add_input_arc(tac, a);
    net.add_output_arc(tac, c);
    auto tba = net.add_exponential("tba", 1.0);
    net.add_input_arc(tba, b);
    net.add_output_arc(tba, a);
    auto tcc = net.add_exponential("tcc", 1.0);  // c self-loops forever
    net.add_input_arc(tcc, c);
    net.add_output_arc(tcc, c);
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)spn_mean_time_to(
                     graph, [](const Marking& m) { return m[1] == 1; }),
                 std::runtime_error);
}

}  // namespace
}  // namespace mvreju::dspn
