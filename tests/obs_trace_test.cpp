// Tests for the obs tracer: a golden-file check of the Chrome trace-event
// JSON exporter (fixed timestamps through the low-level complete() entry
// point), span/counter recording semantics, the enable/disable switches, and
// the obs::Session CLI wiring.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "mvreju/obs/obs.hpp"
#include "mvreju/obs/session.hpp"
#include "mvreju/obs/trace.hpp"
#include "mvreju/util/args.hpp"

namespace {

using namespace mvreju;

class ObsTraceTest : public ::testing::Test {
protected:
    void SetUp() override { obs::set_enabled(true); }
    void TearDown() override {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
        obs::set_enabled(true);
    }
};

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST_F(ObsTraceTest, GoldenChromeJson) {
    obs::Tracer tracer;
    tracer.enable();

    // Deterministic input: fixed timestamps, one counter sample and one
    // complete span, recorded out of order to exercise the ts sort. The
    // main thread is the first to touch this tracer, so its tid is 0.
    const obs::TraceArg args[] = {{"states", 22.0}, {"residual", 1e-9}};
    tracer.complete("dspn.steady_state", 10.0, 5.5, args, 2);
    tracer.counter("num.gs.residual", 2.0, 0.25);

    const std::string expected =
        "{\"traceEvents\": [\n"
        "{\"name\": \"num.gs.residual\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, "
        "\"ts\": 2.000, \"args\": {\"value\": 0.25}},\n"
        "{\"name\": \"dspn.steady_state\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
        "\"ts\": 10.000, \"dur\": 5.500, \"args\": {\"states\": 22, \"residual\": "
        "1e-09}}\n"
        "], \"displayTimeUnit\": \"ms\"}\n";
    EXPECT_EQ(tracer.chrome_json(), expected);
    // Rendering is a read: a second export must be identical.
    EXPECT_EQ(tracer.chrome_json(), expected);
}

TEST_F(ObsTraceTest, EmptyTracerStillRendersValidSchema) {
    obs::Tracer tracer;
    EXPECT_EQ(tracer.chrome_json(), "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n");
}

TEST_F(ObsTraceTest, DisabledTracerRecordsNothing) {
    obs::Tracer tracer;  // never enabled
    tracer.complete("x", 0.0, 1.0);
    tracer.counter("y", 0.0, 1.0);
    EXPECT_EQ(tracer.chrome_json(), "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n");

    tracer.enable();
    tracer.complete("x", 0.0, 1.0);
    tracer.disable();
    tracer.complete("x", 2.0, 1.0);  // dropped
    EXPECT_NE(tracer.chrome_json().find("\"ts\": 0.000"), std::string::npos);
    EXPECT_EQ(tracer.chrome_json().find("\"ts\": 2.000"), std::string::npos);
}

TEST_F(ObsTraceTest, ObsOffWinsOverEnable) {
    obs::set_enabled(false);
    obs::Tracer tracer;
    tracer.enable();  // must be a no-op under MVREJU_OBS=off
    EXPECT_FALSE(tracer.enabled());
    obs::set_enabled(true);
}

TEST_F(ObsTraceTest, SpanRecordsDurationAndArgs) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable();
    {
        obs::Span span("unit.test.span");
        EXPECT_TRUE(span.active());
        span.arg("k", 3.0);
    }
    tracer.disable();
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("\"name\": \"unit.test.span\""), std::string::npos);
    EXPECT_NE(json.find("\"k\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
}

TEST_F(ObsTraceTest, SpanEndIsIdempotent) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable();
    {
        obs::Span span("ended.twice");
        span.end();
        EXPECT_FALSE(span.active());
        span.end();  // second end + destructor must not re-record
    }
    tracer.disable();
    const std::string json = tracer.chrome_json();
    std::size_t occurrences = 0;
    for (std::size_t pos = json.find("ended.twice"); pos != std::string::npos;
         pos = json.find("ended.twice", pos + 1))
        ++occurrences;
    EXPECT_EQ(occurrences, 1u);
}

TEST_F(ObsTraceTest, InactiveSpanWhenTracerDisabled) {
    obs::Tracer::global().disable();
    obs::Span span("not.recorded");
    EXPECT_FALSE(span.active());
}

TEST_F(ObsTraceTest, ThreadsGetDistinctTids) {
    obs::Tracer tracer;
    tracer.enable();
    std::thread a([&] { tracer.complete("thread.a", 1.0, 1.0); });
    a.join();
    std::thread b([&] { tracer.complete("thread.b", 2.0, 1.0); });
    b.join();
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("thread.a"), std::string::npos);
    EXPECT_NE(json.find("thread.b"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
}

TEST_F(ObsTraceTest, ClearDropsRecordedEvents) {
    obs::Tracer tracer;
    tracer.enable();
    tracer.complete("gone", 1.0, 1.0);
    tracer.clear();
    EXPECT_EQ(tracer.chrome_json(), "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n");
}

TEST_F(ObsTraceTest, WriteProducesLoadableFile) {
    obs::Tracer tracer;
    tracer.enable();
    tracer.complete("written", 1.0, 2.0);
    const std::string path = ::testing::TempDir() + "obs_trace_test.json";
    tracer.write(path);
    const std::string content = slurp(path);
    EXPECT_EQ(content, tracer.chrome_json());
    EXPECT_NE(content.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTraceTest, SessionWritesMetricsBlobAndTrace) {
    const std::string metrics_path = ::testing::TempDir() + "obs_session_metrics.json";
    const std::string trace_path = ::testing::TempDir() + "obs_session_trace.json";
    const char* argv[] = {"prog", "--metrics", metrics_path.c_str(), "--trace",
                          trace_path.c_str()};
    const util::Args args(5, argv);
    EXPECT_EQ(args.metrics_path(), metrics_path);
    EXPECT_EQ(args.trace_path(), trace_path);

    {
        obs::Session session(args);
        EXPECT_TRUE(obs::Tracer::global().enabled());
        obs::Span span("session.span");
    }  // destructor flushes

    const std::string blob = slurp(metrics_path);
    EXPECT_NE(blob.find("\"meta\": "), std::string::npos);
    EXPECT_NE(blob.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(blob.find("\"metrics\": "), std::string::npos);
    const std::string trace = slurp(trace_path);
    EXPECT_NE(trace.find("session.span"), std::string::npos);
    std::remove(metrics_path.c_str());
    std::remove(trace_path.c_str());
}

}  // namespace
