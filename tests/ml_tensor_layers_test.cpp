#include <gtest/gtest.h>

#include <cmath>

#include "mvreju/ml/layers.hpp"
#include "mvreju/ml/tensor.hpp"

namespace mvreju::ml {
namespace {

TEST(Tensor, ShapeAndFill) {
    Tensor t({2, 3, 4}, 1.5f);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.rank(), 3u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, DataShapeMismatchThrows) {
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Tensor, At3Layout) {
    Tensor t({2, 3, 4});
    t.at3(1, 2, 3) = 7.0f;
    EXPECT_FLOAT_EQ(t[(1 * 3 + 2) * 4 + 3], 7.0f);
}

TEST(Tensor, Argmax) {
    Tensor t({4}, std::vector<float>{0.1f, 3.0f, -2.0f, 3.0f});
    EXPECT_EQ(argmax(t), 1u);  // first of the tied maxima
    EXPECT_THROW((void)argmax(Tensor{}), std::invalid_argument);
}

/// Numerical gradient check of a layer via central differences on a scalar
/// objective sum(w_out * output).
double numeric_vs_analytic_max_error(Layer& layer, Tensor input,
                                     const std::vector<float>& out_weights) {
    // Analytic: backward of dL/dOut = out_weights.
    Tensor out = layer.forward(input, true);
    EXPECT_EQ(out.size(), out_weights.size());
    Tensor grad_out(out.shape());
    for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = out_weights[i];
    Tensor grad_in = layer.backward(grad_out);

    // Numeric: perturb each input element.
    const float eps = 1e-3f;
    double max_err = 0.0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const float saved = input[i];
        input[i] = saved + eps;
        Tensor plus = layer.forward(input, false);
        input[i] = saved - eps;
        Tensor minus = layer.forward(input, false);
        input[i] = saved;
        double lp = 0.0;
        double lm = 0.0;
        for (std::size_t k = 0; k < plus.size(); ++k) {
            lp += static_cast<double>(out_weights[k]) * plus[k];
            lm += static_cast<double>(out_weights[k]) * minus[k];
        }
        const double numeric = (lp - lm) / (2.0 * eps);
        max_err = std::max(max_err, std::fabs(numeric - grad_in[i]));
    }
    return max_err;
}

TEST(Dense, ForwardMatchesManualComputation) {
    util::Rng rng(1);
    Dense dense(2, 2, rng);
    // Overwrite parameters with known values: W = [[1,2],[3,4]], b = [5,6].
    auto params = dense.parameters();
    const float values[] = {1, 2, 3, 4, 5, 6};
    std::copy(std::begin(values), std::end(values), params.begin());
    Tensor out = dense.forward(Tensor({2}, {1.0f, -1.0f}), false);
    EXPECT_FLOAT_EQ(out[0], 1 - 2 + 5);
    EXPECT_FLOAT_EQ(out[1], 3 - 4 + 6);
}

TEST(Dense, GradientCheck) {
    util::Rng rng(2);
    Dense dense(5, 3, rng);
    Tensor input({5});
    for (std::size_t i = 0; i < 5; ++i) input[i] = static_cast<float>(rng.normal());
    EXPECT_LT(numeric_vs_analytic_max_error(dense, input, {0.3f, -1.0f, 0.7f}), 1e-2);
}

TEST(Dense, TrainingReducesLossOnLinearTask) {
    util::Rng rng(3);
    Dense dense(3, 1, rng);
    // Learn y = 2 x0 - x1 + 0.5 x2 by plain SGD on squared error.
    double first_loss = -1.0;
    double last_loss = 0.0;
    for (int step = 0; step < 400; ++step) {
        Tensor x({3});
        for (int i = 0; i < 3; ++i) x[i] = static_cast<float>(rng.normal());
        const float target = 2 * x[0] - x[1] + 0.5f * x[2];
        Tensor out = dense.forward(x, true);
        const float err = out[0] - target;
        last_loss = 0.5 * err * err;
        if (first_loss < 0) first_loss = last_loss;
        Tensor grad({1}, {err});
        dense.zero_gradients();
        (void)dense.backward(grad);
        dense.apply_gradients(0.05f, 0.0f);
    }
    EXPECT_LT(last_loss, first_loss / 10.0);
}

TEST(Conv2D, IdentityKernelPreservesImage) {
    util::Rng rng(4);
    Conv2D conv(1, 1, 3, 1, rng);
    auto params = conv.parameters();
    std::fill(params.begin(), params.end(), 0.0f);
    params[4] = 1.0f;  // centre of the 3x3 kernel
    Tensor img({1, 4, 4});
    for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
    Tensor out = conv.forward(img, false);
    ASSERT_EQ(out.shape(), img.shape());
    for (std::size_t i = 0; i < img.size(); ++i) EXPECT_FLOAT_EQ(out[i], img[i]);
}

TEST(Conv2D, OutputShapeWithoutPadding) {
    util::Rng rng(5);
    Conv2D conv(2, 3, 3, 0, rng);
    Tensor out = conv.forward(Tensor({2, 8, 8}), false);
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{3, 6, 6}));
}

TEST(Conv2D, GradientCheck) {
    util::Rng rng(6);
    Conv2D conv(2, 2, 3, 1, rng);
    Tensor input({2, 4, 4});
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<float>(rng.normal());
    std::vector<float> w(2 * 4 * 4);
    for (float& v : w) v = static_cast<float>(rng.normal());
    EXPECT_LT(numeric_vs_analytic_max_error(conv, input, w), 2e-2);
}

TEST(ReLU, ClampsAndGates) {
    ReLU relu;
    Tensor out = relu.forward(Tensor({3}, {-1.0f, 0.0f, 2.0f}), true);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[2], 2.0f);
    Tensor grad = relu.backward(Tensor({3}, {1.0f, 1.0f, 1.0f}));
    EXPECT_FLOAT_EQ(grad[0], 0.0f);
    EXPECT_FLOAT_EQ(grad[1], 0.0f);  // gradient gated at exactly zero
    EXPECT_FLOAT_EQ(grad[2], 1.0f);
}

TEST(MaxPool2D, PicksMaximaAndRoutesGradients) {
    MaxPool2D pool;
    Tensor img({1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
    Tensor out = pool.forward(img, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    Tensor grad = pool.backward(Tensor({1, 1, 1}, {2.5f}));
    EXPECT_FLOAT_EQ(grad[1], 2.5f);  // the argmax position
    EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(MaxPool2D, OddSizeRejected) {
    MaxPool2D pool;
    EXPECT_THROW((void)pool.forward(Tensor({1, 3, 4}), false), std::invalid_argument);
}

TEST(Flatten, RoundTrip) {
    Flatten flatten;
    Tensor img({2, 3, 4});
    for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
    Tensor flat = flatten.forward(img, true);
    EXPECT_EQ(flat.shape(), (std::vector<std::size_t>{24}));
    Tensor back = flatten.backward(flat);
    EXPECT_EQ(back.shape(), img.shape());
    EXPECT_EQ(back, img);
}

TEST(ResidualBlock, PreservesShapeAndSkipsGradient) {
    util::Rng rng(7);
    ResidualBlock block(3, 3, rng);
    Tensor input({3, 4, 4});
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<float>(rng.normal() + 1.0);
    Tensor out = block.forward(input, true);
    EXPECT_EQ(out.shape(), input.shape());
    std::vector<float> w(out.size());
    for (float& v : w) v = static_cast<float>(rng.normal());
    ResidualBlock block2(3, 3, rng);
    EXPECT_LT(numeric_vs_analytic_max_error(block2, input, w), 2e-2);
}

TEST(ResidualBlock, ExposesTwoParameterSpans) {
    util::Rng rng(8);
    ResidualBlock block(3, 3, rng);
    std::vector<std::span<float>> spans;
    block.collect_parameters(spans);
    EXPECT_EQ(spans.size(), 2u);
}

TEST(Layers, BackwardBeforeForwardThrows) {
    util::Rng rng(9);
    Dense dense(2, 2, rng);
    EXPECT_THROW((void)dense.backward(Tensor({2})), std::logic_error);
    MaxPool2D pool;
    EXPECT_THROW((void)pool.backward(Tensor({1, 1, 1})), std::logic_error);
    Flatten flatten;
    EXPECT_THROW((void)flatten.backward(Tensor({4})), std::logic_error);
}

TEST(Layers, CloneIsDeepCopy) {
    util::Rng rng(10);
    Dense dense(2, 2, rng);
    auto copy = dense.clone();
    auto* copy_dense = dynamic_cast<Dense*>(copy.get());
    ASSERT_NE(copy_dense, nullptr);
    copy_dense->parameters()[0] += 1.0f;
    EXPECT_NE(copy_dense->parameters()[0], dense.parameters()[0]);
}

}  // namespace
}  // namespace mvreju::ml
