#include "mvreju/num/sparse.hpp"

#include <gtest/gtest.h>

#include "mvreju/util/rng.hpp"

namespace mvreju::num {
namespace {

TEST(SparseMatrix, FromTripletsMergesDuplicatesAndSorts) {
    auto a = SparseMatrix::from_triplets(3, 3,
                                         {{2, 1, 4.0},
                                          {0, 2, 1.0},
                                          {0, 0, -1.0},
                                          {2, 1, -1.5},
                                          {0, 2, 2.0}});
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_EQ(a.cols(), 3u);
    EXPECT_EQ(a.nnz(), 3u);  // (0,0), (0,2) merged, (2,1) merged
    EXPECT_DOUBLE_EQ(a.at(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(a.at(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(a.at(2, 1), 2.5);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
    // Rows are column-sorted.
    const auto row0 = a.row(0);
    ASSERT_EQ(row0.size(), 2u);
    EXPECT_LT(row0[0].col, row0[1].col);
}

TEST(SparseMatrix, FromTripletsRejectsOutOfRange) {
    EXPECT_THROW((void)SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
                 std::out_of_range);
    EXPECT_THROW((void)SparseMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
                 std::out_of_range);
}

TEST(SparseMatrix, DenseRoundTrip) {
    Matrix dense{{0.0, 2.0, 0.0}, {-1.0, 0.0, 0.5}};
    const auto sparse = SparseMatrix::from_dense(dense);
    EXPECT_EQ(sparse.nnz(), 3u);
    const Matrix back = sparse.to_dense();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(back(r, c), dense(r, c));
}

TEST(SparseMatrix, MatVecMatchesDense) {
    util::Rng rng(11);
    const std::size_t n = 40;
    Matrix dense(n, n);
    for (std::size_t k = 0; k < 5 * n; ++k)
        dense(rng.uniform_int(n), rng.uniform_int(n)) = rng.uniform(-2.0, 2.0);
    const auto sparse = SparseMatrix::from_dense(dense);

    std::vector<double> x(n);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);

    const auto dense_ax = dense * x;
    const auto sparse_ax = sparse * x;
    const auto dense_xa = vec_mat(x, dense);
    const auto sparse_xa = vec_mat(x, sparse);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(sparse_ax[i], dense_ax[i], 1e-14);
        EXPECT_NEAR(sparse_xa[i], dense_xa[i], 1e-14);
    }
}

TEST(SparseMatrix, TransposeMatchesDense) {
    auto a = SparseMatrix::from_triplets(2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {1, 2, 5.0}});
    const auto t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(t.at(0, 1), -1.0);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 5.0);
}

TEST(SparseMatrix, ScaleAndMaxAbs) {
    auto a = SparseMatrix::from_triplets(2, 2, {{0, 1, 3.0}, {1, 0, -4.0}});
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    a *= 0.5;
    EXPECT_DOUBLE_EQ(a.at(0, 1), 1.5);
    EXPECT_DOUBLE_EQ(a.max_abs(), 2.0);
}

TEST(SparseMatrix, ShapeMismatchThrows) {
    auto a = SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
    EXPECT_THROW((void)(a * std::vector<double>(2, 1.0)), std::invalid_argument);
    EXPECT_THROW((void)vec_mat(std::vector<double>(3, 1.0), a), std::invalid_argument);
    EXPECT_THROW((void)a.row(2), std::out_of_range);
    EXPECT_THROW((void)a.at(0, 3), std::out_of_range);
}

}  // namespace
}  // namespace mvreju::num
