#include "mvreju/dspn/net.hpp"

#include <gtest/gtest.h>

#include "mvreju/dspn/dot.hpp"

namespace mvreju::dspn {
namespace {

PetriNet simple_chain() {
    // a --T--> b with one initial token in a.
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t = net.add_exponential("T", 2.0);
    net.add_input_arc(t, a);
    net.add_output_arc(t, b);
    return net;
}

TEST(PetriNet, InitialMarkingReflectsPlaces) {
    PetriNet net;
    net.add_place("x", 3);
    net.add_place("y");
    const Marking m = net.initial_marking();
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0], 3);
    EXPECT_EQ(m[1], 0);
}

TEST(PetriNet, EnablingRequiresTokens) {
    PetriNet net = simple_chain();
    const TransitionId t{0};
    EXPECT_TRUE(net.enabled(t, {1, 0}));
    EXPECT_FALSE(net.enabled(t, {0, 1}));
}

TEST(PetriNet, FireMovesTokens) {
    PetriNet net = simple_chain();
    const Marking next = net.fire(TransitionId{0}, {1, 0});
    EXPECT_EQ(next[0], 0);
    EXPECT_EQ(next[1], 1);
}

TEST(PetriNet, FireDisabledThrows) {
    PetriNet net = simple_chain();
    EXPECT_THROW((void)net.fire(TransitionId{0}, {0, 0}), std::logic_error);
}

TEST(PetriNet, MultiplicityEnabling) {
    PetriNet net;
    auto a = net.add_place("a", 3);
    auto b = net.add_place("b");
    auto t = net.add_exponential("T", 1.0);
    net.add_input_arc(t, a, 2);
    net.add_output_arc(t, b, 5);
    EXPECT_FALSE(net.enabled(t, {1, 0}));
    EXPECT_TRUE(net.enabled(t, {2, 0}));
    const Marking next = net.fire(t, {3, 0});
    EXPECT_EQ(next[0], 1);
    EXPECT_EQ(next[1], 5);
}

TEST(PetriNet, InhibitorDisables) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto blocker = net.add_place("blocker");
    auto t = net.add_exponential("T", 1.0);
    net.add_input_arc(t, a);
    net.add_inhibitor_arc(t, blocker, 2);
    EXPECT_TRUE(net.enabled(t, {1, 0}));
    EXPECT_TRUE(net.enabled(t, {1, 1}));   // below threshold
    EXPECT_FALSE(net.enabled(t, {1, 2}));  // at threshold
}

TEST(PetriNet, GuardDisables) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto t = net.add_exponential("T", 1.0);
    net.add_input_arc(t, a);
    net.set_guard(t, [](const Marking& m) { return m[0] >= 1 && m.size() == 1; });
    EXPECT_TRUE(net.enabled(t, {1}));
    net.set_guard(t, [](const Marking&) { return false; });
    EXPECT_FALSE(net.enabled(t, {1}));
}

TEST(PetriNet, MarkingDependentRateZeroDisables) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto t = net.add_exponential("T", [](const Marking& m) { return 0.5 * m[0]; });
    net.add_input_arc(t, a);
    EXPECT_TRUE(net.enabled(t, {2}));
    EXPECT_DOUBLE_EQ(net.rate(t, {2}), 1.0);
    EXPECT_FALSE(net.enabled(t, {0}));
    EXPECT_DOUBLE_EQ(net.rate(t, {0}), 0.0);
}

TEST(PetriNet, VanishingDetection) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto t = net.add_immediate("I");
    net.add_input_arc(t, a);
    EXPECT_TRUE(net.is_vanishing({1}));
    EXPECT_FALSE(net.is_vanishing({0}));
}

TEST(PetriNet, FirableImmediatesRespectPriority) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto low = net.add_immediate("low", 1.0, 1);
    auto high = net.add_immediate("high", 1.0, 5);
    net.add_input_arc(low, a);
    net.add_input_arc(high, a);
    auto firable = net.firable_immediates({1});
    ASSERT_EQ(firable.size(), 1u);
    EXPECT_EQ(firable[0], high);
}

TEST(PetriNet, KindAndNames) {
    PetriNet net;
    net.add_place("p");
    auto i = net.add_immediate("imm");
    auto e = net.add_exponential("exp", 1.0);
    auto d = net.add_deterministic("det", 3.0);
    EXPECT_EQ(net.kind(i), TransitionKind::immediate);
    EXPECT_EQ(net.kind(e), TransitionKind::exponential);
    EXPECT_EQ(net.kind(d), TransitionKind::deterministic);
    EXPECT_EQ(net.transition_name(d), "det");
    EXPECT_EQ(net.place_name(PlaceId{0}), "p");
    EXPECT_DOUBLE_EQ(net.delay(d), 3.0);
    EXPECT_THROW((void)net.delay(e), std::invalid_argument);
    EXPECT_THROW((void)net.rate(d, {0}), std::invalid_argument);
    EXPECT_THROW((void)net.weight(e, {0}), std::invalid_argument);
}

TEST(PetriNet, SetDeterministicDelay) {
    PetriNet net;
    auto d = net.add_deterministic("det", 3.0);
    net.set_deterministic_delay(d, 7.5);
    EXPECT_DOUBLE_EQ(net.delay(d), 7.5);
    EXPECT_THROW(net.set_deterministic_delay(d, 0.0), std::invalid_argument);
    auto e = net.add_exponential("exp", 1.0);
    EXPECT_THROW(net.set_deterministic_delay(e, 1.0), std::invalid_argument);
}

TEST(PetriNet, ConstructionValidation) {
    PetriNet net;
    auto p = net.add_place("p");
    EXPECT_THROW(net.add_place("neg", -1), std::invalid_argument);
    EXPECT_THROW(net.add_exponential("bad", 0.0), std::invalid_argument);
    EXPECT_THROW(net.add_deterministic("bad", -1.0), std::invalid_argument);
    EXPECT_THROW(net.add_immediate("bad", 0.0), std::invalid_argument);
    auto t = net.add_exponential("t", 1.0);
    EXPECT_THROW(net.add_input_arc(t, p, 0), std::invalid_argument);
    EXPECT_THROW(net.add_input_arc(t, PlaceId{99}), std::out_of_range);
    EXPECT_THROW(net.add_input_arc(TransitionId{99}, p), std::out_of_range);
}

TEST(PetriNet, ArcViews) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto t = net.add_exponential("T", 1.0);
    net.add_input_arc(t, a, 2);
    net.add_output_arc(t, b, 3);
    net.add_inhibitor_arc(t, b, 4);
    ASSERT_EQ(net.input_arcs(t).size(), 1u);
    EXPECT_EQ(net.input_arcs(t)[0].place, a);
    EXPECT_EQ(net.input_arcs(t)[0].multiplicity, 2);
    EXPECT_EQ(net.output_arcs(t)[0].multiplicity, 3);
    EXPECT_EQ(net.inhibitor_arcs(t)[0].multiplicity, 4);
}

TEST(Dot, NetExportMentionsEverything) {
    PetriNet net = simple_chain();
    const std::string dot = to_dot(net);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"a"), std::string::npos);
    EXPECT_NE(dot.find("\"T\""), std::string::npos);
    EXPECT_NE(dot.find("p0 -> t0"), std::string::npos);
    EXPECT_NE(dot.find("t0 -> p1"), std::string::npos);
}

}  // namespace
}  // namespace mvreju::dspn
