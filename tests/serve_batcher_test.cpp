// Tests for the cross-stream DynamicBatcher: flush-on-max-batch, deadline
// flushes under injected time, no starvation for a lone stream, and the
// contract everything above it relies on — labels produced through any
// batching and any thread count are bit-identical to model->predict().

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mvreju/ml/model.hpp"
#include "mvreju/num/backend.hpp"
#include "mvreju/serve/batcher.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

std::vector<float> random_sample(util::Rng& rng, std::size_t n) {
    std::vector<float> sample(n);
    for (float& v : sample) v = static_cast<float>(rng.uniform());
    return sample;
}

serve::DynamicBatcher::Options options_with(int max_batch,
                                            std::uint64_t max_delay_us,
                                            std::size_t threads = 1) {
    serve::DynamicBatcher::Options options;
    options.max_batch = max_batch;
    options.max_delay_us = max_delay_us;
    options.num_threads = threads;
    options.input_shape = {3, 16, 16};
    return options;
}

TEST(ServeBatcherTest, FlushesWhenBatchFills) {
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, 8, 7);
    serve::DynamicBatcher batcher(options_with(4, 1'000'000));
    util::Rng rng(11);

    std::vector<int> labels;
    std::vector<serve::BatchStamp> stamps;
    for (int i = 0; i < 4; ++i) {
        const auto sample = random_sample(rng, batcher.sample_size());
        batcher.submit(&model, sample.data(), /*now_us=*/100,
                       [&](int label, const serve::BatchStamp& stamp) {
                           labels.push_back(label);
                           stamps.push_back(stamp);
                       });
        // Nothing completes until the fourth submit fills the batch; the
        // deadline is far away, so only max_batch can flush.
        if (i < 3) {
            EXPECT_EQ(labels.size(), 0u);
        }
    }
    ASSERT_EQ(labels.size(), 4u);
    EXPECT_EQ(batcher.pending(), 0u);
    for (const auto& stamp : stamps) {
        EXPECT_EQ(stamp.seq, 1u);
        EXPECT_EQ(stamp.size, 4u);
    }
}

TEST(ServeBatcherTest, DeadlineFlushUnderInjectedTime) {
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, 8, 7);
    serve::DynamicBatcher batcher(options_with(64, 2000));
    util::Rng rng(12);

    int completions = 0;
    const auto sample = random_sample(rng, batcher.sample_size());
    batcher.submit(&model, sample.data(), /*now_us=*/1000,
                   [&](int, const serve::BatchStamp&) { ++completions; });
    ASSERT_TRUE(batcher.next_deadline_us().has_value());
    EXPECT_EQ(*batcher.next_deadline_us(), 3000u);

    // Before the deadline nothing moves; at the deadline the batch flushes.
    EXPECT_EQ(batcher.flush_due(2999), 0u);
    EXPECT_EQ(completions, 0);
    EXPECT_EQ(batcher.flush_due(3000), 1u);
    EXPECT_EQ(completions, 1);
    EXPECT_FALSE(batcher.next_deadline_us().has_value());
}

TEST(ServeBatcherTest, LoneStreamIsNeverStarved) {
    // A single stream on an otherwise idle server: every frame must complete
    // by its max-delay deadline even though the batch never fills.
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, 8, 7);
    serve::DynamicBatcher batcher(options_with(64, 500));
    util::Rng rng(13);

    std::uint64_t now = 0;
    for (int frame = 0; frame < 20; ++frame) {
        const auto sample = random_sample(rng, batcher.sample_size());
        bool done = false;
        batcher.submit(&model, sample.data(), now,
                       [&](int, const serve::BatchStamp& stamp) {
                           done = true;
                           EXPECT_EQ(stamp.size, 1u);
                       });
        const auto deadline = batcher.next_deadline_us();
        ASSERT_TRUE(deadline.has_value());
        EXPECT_EQ(*deadline, now + 500);
        batcher.flush_due(*deadline);
        EXPECT_TRUE(done) << "frame " << frame << " starved past its deadline";
        now += 1000;  // next frame arrives after the previous one completed
    }
}

TEST(ServeBatcherTest, BatchedLabelsBitIdenticalToPredict) {
    // The serving layer's correctness hinge: however samples are batched
    // and however many threads flush them, every label equals the
    // unbatched model->predict() for that sample.
    const std::vector<ml::Sequential> models = {
        ml::make_tiny_lenet(3, 16, 8, 7),
        ml::make_mini_alexnet(3, 16, 8, 8),
        ml::make_micro_resnet(3, 16, 8, 9),
    };
    util::Rng rng(14);
    constexpr int kSamples = 48;

    std::vector<std::vector<float>> samples;
    std::vector<const ml::Sequential*> targets;
    std::vector<int> expected;
    for (int i = 0; i < kSamples; ++i) {
        samples.push_back(random_sample(rng, 3 * 16 * 16));
        const auto* model = &models[static_cast<std::size_t>(i) % models.size()];
        targets.push_back(model);
        expected.push_back(model->predict(
            ml::Tensor({3, 16, 16}, samples.back())));
    }

    for (const int max_batch : {1, 3, 16, 64}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            serve::DynamicBatcher batcher(options_with(max_batch, 10, threads));
            std::vector<std::optional<int>> got(kSamples);
            for (int i = 0; i < kSamples; ++i)
                batcher.submit(targets[static_cast<std::size_t>(i)],
                               samples[static_cast<std::size_t>(i)].data(),
                               /*now_us=*/static_cast<std::uint64_t>(i),
                               [&got, i](int label, const serve::BatchStamp&) {
                                   got[static_cast<std::size_t>(i)] = label;
                               });
            batcher.flush_all();
            for (int i = 0; i < kSamples; ++i) {
                ASSERT_TRUE(got[static_cast<std::size_t>(i)].has_value());
                EXPECT_EQ(*got[static_cast<std::size_t>(i)],
                          expected[static_cast<std::size_t>(i)])
                    << "sample " << i << " max_batch " << max_batch
                    << " threads " << threads;
            }
        }
    }
}

TEST(ServeBatcherTest, MixedBackendReplicasNeverShareAFlush) {
    // The int8 diversity replica aliases version 0's Sequential and differs
    // only in its backend pointer (serve::make_model_set). Queues are keyed
    // on (model, backend): coalescing float32 and int8 frames of the same
    // architecture into one flush would silently run half the batch through
    // the wrong kernels.
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, 8, 7);
    const num::KernelBackend* f32 = &num::scalar_backend();
    const num::KernelBackend* int8 = num::find_backend("int8");
    ASSERT_NE(int8, nullptr);

    serve::DynamicBatcher batcher(options_with(6, 1'000'000));
    util::Rng rng(16);
    std::vector<std::vector<float>> samples;
    for (int i = 0; i < 6; ++i) samples.push_back(random_sample(rng, 3 * 16 * 16));

    std::vector<int> f32_labels, int8_labels;
    std::vector<serve::BatchStamp> f32_stamps, int8_stamps;
    for (int i = 0; i < 3; ++i) {  // interleave the two replicas
        batcher.submit(&model, samples[static_cast<std::size_t>(2 * i)].data(), 0,
                       [&](int label, const serve::BatchStamp& stamp) {
                           f32_labels.push_back(label);
                           f32_stamps.push_back(stamp);
                       },
                       f32);
        batcher.submit(&model, samples[static_cast<std::size_t>(2 * i + 1)].data(), 0,
                       [&](int label, const serve::BatchStamp& stamp) {
                           int8_labels.push_back(label);
                           int8_stamps.push_back(stamp);
                       },
                       int8);
    }
    // Six pending frames of one architecture, max_batch 6 — but two
    // distinct (model, backend) queues of 3, so neither may flush yet.
    EXPECT_EQ(batcher.pending(), 6u);
    EXPECT_TRUE(f32_labels.empty());
    EXPECT_TRUE(int8_labels.empty());

    batcher.flush_all();
    ASSERT_EQ(f32_labels.size(), 3u);
    ASSERT_EQ(int8_labels.size(), 3u);
    // Each flush was a pure single-backend batch...
    for (const auto& stamp : f32_stamps) EXPECT_EQ(stamp.size, 3u);
    for (const auto& stamp : int8_stamps) EXPECT_EQ(stamp.size, 3u);
    EXPECT_NE(f32_stamps[0].seq, int8_stamps[0].seq);
    // ...and every label matches that backend's unbatched predict().
    for (int i = 0; i < 3; ++i) {
        const ml::Tensor even({3, 16, 16}, samples[static_cast<std::size_t>(2 * i)]);
        const ml::Tensor odd({3, 16, 16}, samples[static_cast<std::size_t>(2 * i + 1)]);
        EXPECT_EQ(f32_labels[static_cast<std::size_t>(i)], model.predict(even, *f32));
        EXPECT_EQ(int8_labels[static_cast<std::size_t>(i)], model.predict(odd, *int8));
    }
}

TEST(ServeBatcherTest, CompletionMayResubmit) {
    // A session's completion often submits the stream's next frame; the
    // flush must tolerate re-entrant submits into the queue being flushed.
    const ml::Sequential model = ml::make_tiny_lenet(3, 16, 8, 7);
    serve::DynamicBatcher batcher(options_with(2, 1'000'000));
    util::Rng rng(15);
    const auto sample = random_sample(rng, batcher.sample_size());

    int second_wave = 0;
    auto resubmit = [&](int, const serve::BatchStamp&) {
        batcher.submit(&model, sample.data(), 0,
                       [&](int, const serve::BatchStamp&) { ++second_wave; });
    };
    batcher.submit(&model, sample.data(), 0, resubmit);
    batcher.submit(&model, sample.data(), 0, resubmit);  // fills batch of 2
    // The two re-entrant submits filled a second batch of 2, which flushed
    // itself in turn.
    EXPECT_EQ(second_wave, 2);
    EXPECT_EQ(batcher.pending(), 0u);
}

}  // namespace
