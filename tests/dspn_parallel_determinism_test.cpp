// The parallel execution layer must never change numerical results: for a
// fixed seed, ensemble estimates are bit-identical for every thread count
// (replication r draws only from RNG substream r + 1 and writes only its own
// sample slot, regardless of which worker executes it).

#include <gtest/gtest.h>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"

namespace mvreju::dspn {
namespace {

PetriNet rejuvenation_model() {
    core::DspnConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    cfg.proactive = true;
    return core::build_multiversion_dspn(cfg).net;
}

TEST(ParallelDeterminism, TransientRewardBitIdenticalAcrossThreadCounts) {
    const PetriNet net = rejuvenation_model();
    const RewardFn reward = [](const Marking& m) {
        double tokens = 0.0;
        for (int v : m) tokens += v;
        return tokens;
    };
    const auto serial = simulate_transient_reward(net, reward, 25.0, 200, 42, 1);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        const auto parallel = simulate_transient_reward(net, reward, 25.0, 200, 42, threads);
        EXPECT_EQ(parallel.mean, serial.mean) << threads;  // bit-identical
        EXPECT_EQ(parallel.ci.lower, serial.ci.lower) << threads;
        EXPECT_EQ(parallel.ci.upper, serial.ci.upper) << threads;
    }
}

TEST(ParallelDeterminism, FirstPassageBitIdenticalAcrossThreadCounts) {
    const PetriNet net = rejuvenation_model();
    core::DspnConfig cfg;
    cfg.timing.mttc = 8.0;
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    cfg.proactive = true;
    const auto model = core::build_multiversion_dspn(cfg);
    const auto predicate = [&](const Marking& m) { return model.compromised(m) >= 2; };

    const auto serial = simulate_mean_time_to(model.net, predicate, 1e4, 150, 7, 1);
    const auto parallel = simulate_mean_time_to(model.net, predicate, 1e4, 150, 7, 8);
    EXPECT_EQ(parallel.mean, serial.mean);
    EXPECT_EQ(parallel.ci.lower, serial.ci.lower);
    EXPECT_EQ(parallel.ci.upper, serial.ci.upper);
    EXPECT_EQ(parallel.censored, serial.censored);
}

TEST(ParallelDeterminism, SeedChangesEstimate) {
    // Guard against the degenerate failure mode where parallel plumbing
    // ignores the seed entirely.
    const PetriNet net = rejuvenation_model();
    const RewardFn reward = [](const Marking& m) { return m[0] >= 1 ? 1.0 : 0.0; };
    const auto a = simulate_transient_reward(net, reward, 10.0, 100, 1, 4);
    const auto b = simulate_transient_reward(net, reward, 10.0, 100, 2, 4);
    EXPECT_NE(a.mean, b.mean);
}

}  // namespace
}  // namespace mvreju::dspn
