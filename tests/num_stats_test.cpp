#include "mvreju/num/stats.hpp"

#include <gtest/gtest.h>

#include "mvreju/util/rng.hpp"

namespace mvreju::num {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    RunningStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStats, ShiftInvarianceOfVariance) {
    RunningStats a;
    RunningStats b;
    util::Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform();
        a.add(x);
        b.add(x + 1e6);
    }
    EXPECT_NEAR(a.variance(), b.variance(), 1e-6);
}

TEST(TCritical, KnownValues) {
    EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
    EXPECT_NEAR(t_critical_95(2), 4.303, 1e-3);   // used by 3-run CIs (Table VIII)
    EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
    EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
}

TEST(MeanCi95, DegenerateCases) {
    auto empty = mean_ci95({});
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);
    auto single = mean_ci95({7.0});
    EXPECT_DOUBLE_EQ(single.mean, 7.0);
    EXPECT_DOUBLE_EQ(single.lower, 7.0);
    EXPECT_DOUBLE_EQ(single.upper, 7.0);
}

TEST(MeanCi95, SymmetricAroundMean) {
    auto ci = mean_ci95({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(ci.mean, 3.0);
    EXPECT_NEAR(ci.mean - ci.lower, ci.upper - ci.mean, 1e-12);
    // sd = sqrt(2.5), sem = sqrt(0.5), t(4) = 2.776
    EXPECT_NEAR(ci.half_width(), 2.776 * std::sqrt(0.5), 1e-3);
}

TEST(MeanCi95, CoversTrueMeanMostOfTheTime) {
    // Frequentist coverage check: ~95% of CIs from N(0,1) samples contain 0.
    util::Rng rng(99);
    int covered = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> sample(10);
        for (double& x : sample) x = rng.normal();
        auto ci = mean_ci95(sample);
        if (ci.lower <= 0.0 && 0.0 <= ci.upper) ++covered;
    }
    const double coverage = static_cast<double>(covered) / trials;
    EXPECT_GT(coverage, 0.90);
    EXPECT_LT(coverage, 0.99);
}

TEST(ConfidenceInterval, OverlapDetection) {
    ConfidenceInterval a{1.0, 0.5, 1.5};
    ConfidenceInterval b{1.4, 1.2, 1.6};
    ConfidenceInterval c{3.0, 2.5, 3.5};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
}

}  // namespace
}  // namespace mvreju::num
