// End-to-end tests for serve::Server over real sockets: request/response
// round trips with echoed frame ids, cross-stream batching of concurrent
// clients, admission control beyond max_streams, and clean stop with
// connections open.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/serve/protocol.hpp"
#include "mvreju/serve/server.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

/// Receive exactly one length-prefixed response frame.
bool recv_response(int fd, serve::ResponseFrame& response) {
    std::string received;
    char buf[256];
    while (received.size() < 24) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) return false;
        received.append(buf, static_cast<std::size_t>(n));
    }
    return serve::decode_response(received.data() + 4, received.size() - 4, response);
}

const serve::ModelSet& shared_set() {
    static const serve::ModelSet set = serve::make_model_set();
    return set;
}

serve::Server::Options fast_options() {
    serve::Server::Options options;
    options.batch_delay_us = 500;
    options.tick_ms = 2;
    options.slo_budget_ms = 1e9;  // no shedding noise in functional tests
    return options;
}

TEST(ServeServerTest, AnswersRequestsWithEchoedIds) {
    serve::Server server(shared_set(), fast_options());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0);

    const int fd = connect_to(server.port());
    util::Rng rng(21);
    for (std::uint64_t frame = 1; frame <= 10; ++frame) {
        serve::RequestFrame request;
        request.frame_id = frame * 100;
        request.image.resize(shared_set().sample_size());
        for (float& v : request.image) v = static_cast<float>(rng.uniform());
        const std::string wire = serve::encode_request(request);
        ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
        serve::ResponseFrame response;
        ASSERT_TRUE(recv_response(fd, response));
        EXPECT_EQ(response.frame_id, frame * 100);
        // With a fresh health process every version is functional: the vote
        // either decides or (rarely) safely skips; it never errors.
        EXPECT_TRUE(response.status == serve::ResponseStatus::decided ||
                    response.status == serve::ResponseStatus::skipped);
        EXPECT_FALSE(response.degraded);
        EXPECT_GT(response.functional_modules, 0u);
        if (response.status == serve::ResponseStatus::decided) {
            EXPECT_GE(response.label, 0);
            EXPECT_GE(response.agreeing, 1);
        }
    }
    ::close(fd);

    const serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.frames, 10u);
    EXPECT_EQ(stats.decided + stats.skipped + stats.no_output, 10u);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ServeServerTest, BatchesAcrossConcurrentStreams) {
    serve::Server::Options options = fast_options();
    options.batch_max = 8;
    options.batch_delay_us = 20000;  // wide window: coalesce the burst
    serve::Server server(shared_set(), options);
    ASSERT_TRUE(server.start());

    // A burst of clients all in flight at once; every stream must get its
    // own answer even though their inferences share batches.
    constexpr int kStreams = 12;
    std::vector<int> fds;
    util::Rng rng(22);
    for (int s = 0; s < kStreams; ++s) fds.push_back(connect_to(server.port()));
    for (int s = 0; s < kStreams; ++s) {
        serve::RequestFrame request;
        request.frame_id = static_cast<std::uint64_t>(s);
        request.image.resize(shared_set().sample_size());
        for (float& v : request.image) v = static_cast<float>(rng.uniform());
        const std::string wire = serve::encode_request(request);
        ASSERT_EQ(::send(fds[static_cast<std::size_t>(s)], wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
    }
    for (int s = 0; s < kStreams; ++s) {
        serve::ResponseFrame response;
        ASSERT_TRUE(recv_response(fds[static_cast<std::size_t>(s)], response));
        EXPECT_EQ(response.frame_id, static_cast<std::uint64_t>(s));
        EXPECT_NE(response.status, serve::ResponseStatus::error);
    }
    for (const int fd : fds) ::close(fd);

    const serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.frames, static_cast<std::uint64_t>(kStreams));
    EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kStreams));
    server.stop();
}

TEST(ServeServerTest, RefusesStreamsBeyondMaxStreams) {
    serve::Server::Options options = fast_options();
    options.max_streams = 2;
    serve::Server server(shared_set(), options);
    ASSERT_TRUE(server.start());

    const int first = connect_to(server.port());
    const int second = connect_to(server.port());
    // Nudge the loop so both accepts land before the third connection.
    serve::RequestFrame request;
    request.frame_id = 1;
    request.image.assign(shared_set().sample_size(), 0.25f);
    const std::string wire = serve::encode_request(request);
    ASSERT_EQ(::send(first, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    serve::ResponseFrame response;
    ASSERT_TRUE(recv_response(first, response));

    const int third = connect_to(server.port());
    serve::ResponseFrame refusal;
    ASSERT_TRUE(recv_response(third, refusal));
    EXPECT_EQ(refusal.status, serve::ResponseStatus::error);
    // The refused connection is then closed by the server.
    char buf[16];
    EXPECT_EQ(::recv(third, buf, sizeof buf, 0), 0);

    // Existing streams keep working.
    ASSERT_EQ(::send(second, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    ASSERT_TRUE(recv_response(second, response));
    EXPECT_NE(response.status, serve::ResponseStatus::error);

    EXPECT_GE(server.stats().admission_refusals, 1u);
    for (const int fd : {first, second, third}) ::close(fd);
    server.stop();
}

TEST(ServeServerTest, StopsCleanlyWithConnectionsOpen) {
    serve::Server server(shared_set(), fast_options());
    ASSERT_TRUE(server.start());
    const int port = server.port();
    const int fd = connect_to(port);
    serve::RequestFrame request;
    request.frame_id = 7;
    request.image.assign(shared_set().sample_size(), 0.1f);
    const std::string wire = serve::encode_request(request);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    serve::ResponseFrame response;
    ASSERT_TRUE(recv_response(fd, response));

    server.stop();  // with the client still connected
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
    ::close(fd);

    // And start() works again after a stop (fresh socket, fresh loop).
    ASSERT_TRUE(server.start());
    EXPECT_GT(server.port(), 0);
    server.stop();
}

}  // namespace
