#include "mvreju/num/matrix.hpp"

#include <gtest/gtest.h>

#include "mvreju/num/linalg.hpp"

namespace mvreju::num {
namespace {

TEST(Matrix, ConstructsZeroFilled) {
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, InitializerListLayout) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m(0, 1), 2.0);
    EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix product = a * Matrix::identity(2);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(product(r, c), a(r, c));
}

TEST(Matrix, MultiplicationMatchesHandComputation) {
    Matrix a{{1.0, 2.0, 0.0}, {0.0, 1.0, -1.0}};
    Matrix b{{2.0, 1.0}, {0.0, 3.0}, {4.0, 0.0}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(c(1, 0), -4.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, ShapeMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
    EXPECT_THROW(a += Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    std::vector<double> x{1.0, -1.0};
    auto y = a * x;
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, VecMatIsLeftMultiplication) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    auto y = vec_mat({1.0, 1.0}, a);
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposedSwapsIndices) {
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MaxAbs) {
    Matrix a{{1.0, -7.5}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(a.max_abs(), 7.5);
}

TEST(Matrix, AtChecksBounds) {
    Matrix a(2, 2);
    EXPECT_THROW((void)a.at(2, 0), std::out_of_range);
    EXPECT_THROW((void)std::as_const(a).at(0, 2), std::out_of_range);
}

TEST(Solve, RecoverExactSolution) {
    Matrix a{{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
    auto x = solve(a, {8.0, -11.0, -3.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
    EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Solve, NeedsPivoting) {
    // Zero on the initial pivot position; only works with row exchanges.
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    auto x = solve(a, {3.0, 5.0});
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularThrows) {
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveStationary, TwoStateChain) {
    // Rates: 0 -> 1 at 1.0, 1 -> 0 at 3.0. pi = (0.75, 0.25).
    Matrix q{{-1.0, 1.0}, {3.0, -3.0}};
    auto pi = solve_stationary(q);
    EXPECT_NEAR(pi[0], 0.75, 1e-12);
    EXPECT_NEAR(pi[1], 0.25, 1e-12);
}

TEST(SolveStationary, SingleState) {
    Matrix q{{0.0}};
    auto pi = solve_stationary(q);
    ASSERT_EQ(pi.size(), 1u);
    EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

// Property sweep: random birth-death generators must yield normalised,
// non-negative stationary vectors satisfying pi Q = 0.
class StationaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(StationaryProperty, BirthDeathBalances) {
    const int n = 4;
    const double mu = 1.0 + GetParam() * 0.37;
    const double lam = 2.0 + GetParam() * 0.11;
    Matrix q(n, n);
    for (int i = 0; i < n; ++i) {
        if (i + 1 < n) {
            q(i, i + 1) = lam;
            q(i, i) -= lam;
        }
        if (i > 0) {
            q(i, i - 1) = mu;
            q(i, i) -= mu;
        }
    }
    auto pi = solve_stationary(q);
    double sum = 0.0;
    for (double v : pi) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    auto residual = vec_mat(pi, q);
    for (double v : residual) EXPECT_NEAR(v, 0.0, 1e-10);
    // Detailed balance for birth-death: pi[i] lam = pi[i+1] mu.
    for (int i = 0; i + 1 < n; ++i) EXPECT_NEAR(pi[i] * lam, pi[i + 1] * mu, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Rates, StationaryProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace mvreju::num
