#include "mvreju/core/midpoint_voter.hpp"

#include <gtest/gtest.h>

#include "mvreju/util/rng.hpp"

namespace mvreju::core {
namespace {

using Proposals = std::vector<std::optional<double>>;

TEST(MidpointVoter, NoProposalsNoOutput) {
    MidpointVoter voter;
    EXPECT_EQ(voter.vote({}).kind, VoteKind::no_output);
    EXPECT_EQ(voter.vote({std::nullopt, std::nullopt}).kind, VoteKind::no_output);
}

TEST(MidpointVoter, AgreeingProposalsPassThrough) {
    MidpointVoter voter(1);
    const auto result = voter.vote({2.0, 2.0, 2.0});
    ASSERT_EQ(result.kind, VoteKind::decided);
    EXPECT_DOUBLE_EQ(result.value, 2.0);
    EXPECT_FALSE(result.degraded);
}

TEST(MidpointVoter, OneOutlierIsDiscarded) {
    MidpointVoter voter(1);
    // Correct modules say ~10; one faulty module screams 1e6.
    const auto high = voter.vote({10.0, 10.4, 1e6});
    EXPECT_GE(high.value, 10.0);
    EXPECT_LE(high.value, 10.4);
    const auto low = voter.vote({-1e6, 10.0, 10.4});
    EXPECT_GE(low.value, 10.0);
    EXPECT_LE(low.value, 10.4);
}

TEST(MidpointVoter, ValueWithinCorrectRangeProperty) {
    // Fuzz: with 2f+1 proposals of which f are arbitrary, the output always
    // lies within [min, max] of the correct values.
    util::Rng rng(5);
    for (std::size_t f : {1u, 2u}) {
        MidpointVoter voter(f);
        for (int trial = 0; trial < 500; ++trial) {
            Proposals proposals;
            double lo = 1e18;
            double hi = -1e18;
            for (std::size_t i = 0; i < f + 1; ++i) {  // correct modules
                const double v = rng.uniform(-5.0, 5.0);
                lo = std::min(lo, v);
                hi = std::max(hi, v);
                proposals.emplace_back(v);
            }
            for (std::size_t i = 0; i < f; ++i)  // Byzantine modules
                proposals.emplace_back(rng.uniform(-1e9, 1e9));
            const auto result = voter.vote(proposals);
            ASSERT_EQ(result.kind, VoteKind::decided);
            EXPECT_GE(result.value, lo);
            EXPECT_LE(result.value, hi);
            EXPECT_FALSE(result.degraded);
        }
    }
}

TEST(MidpointVoter, DegradedPoolFlagged) {
    MidpointVoter voter(1);
    const auto two = voter.vote({3.0, 5.0, std::nullopt});
    EXPECT_TRUE(two.degraded);  // 2 < 2f+1 = 3
    EXPECT_DOUBLE_EQ(two.value, 4.0);  // cannot discard: plain midpoint
    const auto one = voter.vote({std::nullopt, 7.0});
    EXPECT_TRUE(one.degraded);
    EXPECT_DOUBLE_EQ(one.value, 7.0);
}

TEST(MidpointVoter, FaultToleranceScalesWithF) {
    MidpointVoter voter(2);
    // 5 proposals, 2 Byzantine extremes on the same side.
    const auto result = voter.vote({1.0, 1.2, 1.4, 900.0, 901.0});
    EXPECT_GE(result.value, 1.0);
    EXPECT_LE(result.value, 1.4);
}

TEST(MidpointVoter, MidpointIsNotTheMedian) {
    MidpointVoter voter(1);
    // Survivors after discarding one per side: {1, 9} -> midpoint 5 (a
    // median voter would answer 8 here; midpoint bounds the range instead).
    const auto result = voter.vote({0.0, 1.0, 8.0, 9.0, 100.0});
    EXPECT_DOUBLE_EQ(result.value, 5.0);
}

}  // namespace
}  // namespace mvreju::core
