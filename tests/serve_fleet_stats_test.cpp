// Tests for the fleet telemetry aggregator: byte-identical /fleet
// documents from reruns of a seeded virtual-time fleet (and no outcome
// perturbation from attaching the stats at all), SLO-breach attribution
// to the dominant pipeline stage, the deterministic worst-stream
// ordering, and the bounded-stage rule that keeps frames which never
// reached a stage out of its digest.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "mvreju/serve/fleet_stats.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/serve/synthetic.hpp"

namespace {

using namespace mvreju;

const serve::ModelSet& shared_set() {
    static const serve::ModelSet set = serve::make_model_set();
    return set;
}

serve::FleetOptions small_fleet() {
    serve::FleetOptions options;
    options.streams = 16;
    options.frame_rate_hz = 40.0;
    options.frames_per_stream = 6;
    options.seed = 11;
    options.batch_max = 16;
    options.batch_delay_us = 3000;
    options.shedding = false;
    options.slo_budget_ms = 1e9;
    return options;
}

/// Local-only options: unit tests must not write into the process-wide
/// metrics registry or flight recorder.
serve::FleetStats::Options local_options() {
    serve::FleetStats::Options options;
    options.publish_metrics = false;
    return options;
}

/// A fully-stamped trace starting at `start_us` with the given per-stage
/// durations, in pipeline order.
serve::FrameTrace make_trace(std::uint64_t start_us, std::uint64_t parse_us,
                             std::uint64_t queue_us, std::uint64_t dispatch_us,
                             std::uint64_t infer_us, std::uint64_t vote_us,
                             std::uint64_t tx_us) {
    serve::FrameTrace trace;
    std::uint64_t at = start_us;
    trace.stamp(serve::TracePoint::rx, at);
    trace.stamp(serve::TracePoint::enqueue, at += parse_us);
    trace.stamp(serve::TracePoint::formed, at += queue_us);
    trace.stamp(serve::TracePoint::infer_start, at += dispatch_us);
    trace.stamp(serve::TracePoint::infer_end, at += infer_us);
    trace.stamp(serve::TracePoint::vote, at += vote_us);
    trace.stamp(serve::TracePoint::tx, at += tx_us);
    return trace;
}

serve::FrameObservation clean_frame(std::uint32_t stream, std::uint64_t frame) {
    serve::FrameObservation obs;
    obs.stream = stream;
    obs.frame = frame;
    obs.trace = make_trace(1'000 * frame + 1, 100, 200, 50, 800, 30, 20);
    obs.status = serve::ResponseStatus::decided;
    obs.latency_ms = 1.2;
    obs.slo_budget_ms = 5.0;
    return obs;
}

TEST(ServeFleetStatsTest, SeededFleetDocumentByteIdentical) {
    const serve::FleetOptions options = small_fleet();
    const std::uint64_t render_us = 1'000'000;

    serve::FleetStats a;
    const serve::FleetResult ra = serve::run_fleet(shared_set(), options, &a);
    serve::FleetStats b;
    const serve::FleetResult rb = serve::run_fleet(shared_set(), options, &b);

    // The rendered /fleet document is a pure function of (seed, now_us).
    const std::string doc = a.to_json(render_us, /*include_meta=*/false);
    EXPECT_EQ(doc, b.to_json(render_us, /*include_meta=*/false));
    EXPECT_NE(doc.find("\"schema\": \"mvreju.fleet.v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"stages\""), std::string::npos);
    EXPECT_NE(doc.find("\"worst_streams\""), std::string::npos);

    // Every fleet frame was observed, spread over every stream.
    EXPECT_EQ(a.frames(), static_cast<std::uint64_t>(options.streams) *
                              options.frames_per_stream);
    EXPECT_EQ(a.stream_count(), static_cast<std::size_t>(options.streams));
#ifndef MVREJU_OBS_DISABLED
    const obs::HistogramValue total =
        a.stage_window(serve::Stage::total, render_us);
    EXPECT_GT(total.count, 0u);
    EXPECT_LE(total.count, a.frames());
#endif

    // Attaching the stats must not perturb outcomes: same hash either way.
    const serve::FleetResult plain = serve::run_fleet(shared_set(), options);
    EXPECT_EQ(ra.output_hash, plain.output_hash);
    EXPECT_EQ(ra.output_hash, rb.output_hash);
}

TEST(ServeFleetStatsTest, BuildStampIsAlwaysPresent) {
    // The "build" block names the binary in every document — including the
    // meta-less renders the golden tests use — and is constant within one
    // build, so byte-determinism is unaffected.
    serve::FleetStats stats(local_options());
    const std::string doc = stats.to_json(1'000, /*include_meta=*/false);
    EXPECT_NE(doc.find("\"build\": {\"git_sha\": \""), std::string::npos);
    EXPECT_NE(doc.find("\"build_type\": \""), std::string::npos);
}

TEST(ServeFleetStatsTest, CpuByStageBlockIsOptIn) {
    serve::FleetStats stats(local_options());
    stats.observe(clean_frame(0, 1), 2'000);

    // Default: no profiler attribution pushed, no block — so unprofiled
    // documents (and their goldens) are unchanged.
    const std::string without = stats.to_json(3'000, /*include_meta=*/false);
    EXPECT_EQ(without.find("cpu_by_stage"), std::string::npos);

    stats.set_cpu_by_stage({{"infer", 90, 0.75}, {"parse", 30, 0.25}});
    const std::string with = stats.to_json(3'000, /*include_meta=*/false);
    EXPECT_NE(with.find("\"cpu_by_stage\": {\"infer\": {\"fraction\": 0.75, "
                        "\"samples\": 90}, \"parse\": {\"fraction\": 0.25, "
                        "\"samples\": 30}}"),
              std::string::npos);

    // Clearing the attribution removes the block again (a serving loop
    // whose profiler stopped goes back to the classic document).
    stats.set_cpu_by_stage({});
    const std::string cleared = stats.to_json(3'000, /*include_meta=*/false);
    EXPECT_EQ(cleared.find("cpu_by_stage"), std::string::npos);
}

// Stage-trace-dependent behaviour: under -DMVREJU_OBS=OFF stamp() is a
// no-op and every digest stays empty, so these suites only run with the
// observability layer compiled in (same pattern as the obs tests).
#ifndef MVREJU_OBS_DISABLED

TEST(ServeFleetStatsTest, BreachAttributionPinsTheDominantStage) {
    serve::FleetStats stats(local_options());

    // Queue-dominated breach: 5 ms queueing dwarfs everything else.
    serve::FrameObservation queued = clean_frame(1, 1);
    queued.trace = make_trace(1'001, 100, 5'000, 50, 800, 30, 20);
    queued.latency_ms = 6.0;
    stats.observe(queued, 10'000);

    // Infer-dominated breach on another stream.
    serve::FrameObservation inferred = clean_frame(2, 2);
    inferred.trace = make_trace(2'001, 100, 50, 50, 9'000, 30, 20);
    inferred.latency_ms = 9.25;
    stats.observe(inferred, 12'000);

    // Under budget: no breach, no attribution.
    stats.observe(clean_frame(3, 3), 14'000);

    // Budget 0 disables breach accounting entirely.
    serve::FrameObservation unbudgeted = clean_frame(4, 4);
    unbudgeted.trace = make_trace(4'001, 100, 50, 50, 20'000, 30, 20);
    unbudgeted.latency_ms = 20.0;
    unbudgeted.slo_budget_ms = 0.0;
    stats.observe(unbudgeted, 30'000);

    const auto& by_stage = stats.breach_by_stage();
    EXPECT_EQ(by_stage[static_cast<std::size_t>(serve::Stage::queue)], 1u);
    EXPECT_EQ(by_stage[static_cast<std::size_t>(serve::Stage::infer)], 1u);
    EXPECT_EQ(by_stage[static_cast<std::size_t>(serve::Stage::parse)], 0u);
    // Stage::total spans every breach but never wins the attribution.
    EXPECT_EQ(by_stage[static_cast<std::size_t>(serve::Stage::total)], 0u);

    const std::string doc = stats.to_json(30'000, /*include_meta=*/false);
    EXPECT_NE(doc.find("\"slo_breaches\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"queue\": 1"), std::string::npos);
}

TEST(ServeFleetStatsTest, WorstStreamsOrderIsDeterministic) {
    serve::FleetStats stats(local_options());
    const std::uint64_t now_us = 100'000;

    for (std::uint64_t i = 0; i < 5; ++i) {
        // Stream 1: nothing but errors -> quality 0 every frame.
        serve::FrameObservation failing = clean_frame(1, 10 + i);
        failing.status = serve::ResponseStatus::error;
        stats.observe(failing, now_us);

        // Stream 2: every frame breaches its budget -> quality 0.5.
        serve::FrameObservation breaching = clean_frame(2, 20 + i);
        breaching.latency_ms = 50.0;
        stats.observe(breaching, now_us);

        // Streams 3, 5 and 7: identical clean histories (the id tie-break).
        stats.observe(clean_frame(3, 30 + i), now_us);
        stats.observe(clean_frame(5, 50 + i), now_us);
        stats.observe(clean_frame(7, 70 + i), now_us);
    }

    const auto worst = stats.worst_streams(now_us);
    ASSERT_EQ(worst.size(), 5u);
    EXPECT_EQ(worst[0].stream, 1u);  // lowest reliability first
    EXPECT_EQ(worst[1].stream, 2u);
    EXPECT_EQ(worst[2].stream, 3u);  // equal histories order by stream id
    EXPECT_EQ(worst[3].stream, 5u);
    EXPECT_EQ(worst[4].stream, 7u);
    EXPECT_LT(worst[0].reliability, worst[1].reliability);
    EXPECT_LT(worst[1].reliability, worst[2].reliability);
    EXPECT_EQ(worst[2].reliability, worst[3].reliability);
    EXPECT_EQ(worst[1].breaches, 5u);

    // top_k truncates the ranking, keeping the worst entries.
    serve::FleetStats::Options top2 = local_options();
    top2.top_k = 2;
    serve::FleetStats truncated(top2);
    for (std::uint64_t i = 0; i < 5; ++i) {
        serve::FrameObservation failing = clean_frame(1, 10 + i);
        failing.status = serve::ResponseStatus::error;
        truncated.observe(failing, now_us);
        truncated.observe(clean_frame(3, 30 + i), now_us);
        truncated.observe(clean_frame(5, 50 + i), now_us);
    }
    const auto top = truncated.worst_streams(now_us);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].stream, 1u);
    EXPECT_EQ(top[1].stream, 3u);
}

TEST(ServeFleetStatsTest, OnlyBoundedStagesEnterTheDigests) {
    serve::FleetStats stats(local_options());
    const std::uint64_t now_us = 50'000;

    stats.observe(clean_frame(1, 1), now_us);

    // A shed frame never reaches the batcher: only rx and tx are stamped,
    // so `total` is bounded but the interior stages are not.
    serve::FrameObservation shed;
    shed.stream = 2;
    shed.frame = 2;
    shed.trace.stamp(serve::TracePoint::rx, 5'000);
    shed.trace.stamp(serve::TracePoint::tx, 6'000);
    shed.status = serve::ResponseStatus::shed;
    stats.observe(shed, now_us);

    EXPECT_EQ(stats.stage_window(serve::Stage::total, now_us).count, 2u);
    EXPECT_EQ(stats.stage_window(serve::Stage::parse, now_us).count, 1u);
    EXPECT_EQ(stats.stage_window(serve::Stage::infer, now_us).count, 1u);

    const std::string doc = stats.to_json(now_us, /*include_meta=*/false);
    EXPECT_NE(doc.find("\"status\": {\"decided\": 1, \"skipped\": 0, "
                       "\"no_output\": 0, \"shed\": 1, \"error\": 0}"),
              std::string::npos);
}

#endif  // MVREJU_OBS_DISABLED

TEST(ServeFleetStatsTest, ClearDropsStateButKeepsOptions) {
    serve::FleetStats::Options top3 = local_options();
    top3.top_k = 3;
    serve::FleetStats stats(top3);
    stats.observe(clean_frame(1, 1), 10'000);
    ASSERT_EQ(stats.frames(), 1u);

    stats.clear();
    EXPECT_EQ(stats.frames(), 0u);
    EXPECT_EQ(stats.stream_count(), 0u);
    EXPECT_EQ(stats.breach_by_stage()[0], 0u);
    EXPECT_EQ(stats.options().top_k, 3u);

    stats.observe(clean_frame(4, 4), 20'000);
    EXPECT_EQ(stats.frames(), 1u);
    EXPECT_EQ(stats.stream_count(), 1u);
}

}  // namespace
