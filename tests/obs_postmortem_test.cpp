// Tests for the postmortem tooling: parsing a dump document back into
// structured form, the exact rendered timeline for a fixed fixture (the
// golden contract behind the tools/postmortem CLI), and byte-determinism of
// dumps produced by a seeded MultiVersionSystem run through the real
// flight-recorder instrumentation.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mvreju/core/system.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/obs.hpp"
#include "mvreju/obs/postmortem.hpp"

namespace {

using namespace mvreju;
namespace pm = mvreju::obs::postmortem;

// A hand-written dump document covering every section the renderer handles:
// meta, trigger, two modules on one thread, and embedded metrics counters.
const char kFixture[] = R"({
"meta": {"git_sha": "abc1234", "build_type": "Release", "compiler": "g++ 13.2"},
"reason": "deadline_miss",
"dumped_at_ns": 999,
"trigger": {"t_ns": 3000000, "frame": 3, "module": 1, "kind": "deadline_miss", "a": 100, "b": 0},
"threads": [
 {"track": 1, "events": [
  {"t_ns": 1000000, "frame": 1, "module": 0, "kind": "vote_decided", "a": 3, "b": 3},
  {"t_ns": 2000000, "frame": 2, "module": 1, "kind": "module_state", "a": 1, "b": 0},
  {"t_ns": 3000000, "frame": 3, "module": 1, "kind": "deadline_miss", "a": 100, "b": 0},
  {"t_ns": 4000000, "frame": 4, "module": 0, "kind": "vote_skipped", "a": 3, "b": 1}
 ]}
],
"metrics": {"counters": {"av.frames": 4, "av.votes.decided": 1}}
})";

TEST(ObsPostmortemTest, ParseRecoversStructureAndSortsEvents) {
    const pm::Dump dump = pm::parse(kFixture);
    EXPECT_EQ(dump.reason, "deadline_miss");
    EXPECT_EQ(dump.git_sha, "abc1234");
    EXPECT_EQ(dump.build_type, "Release");
    EXPECT_EQ(dump.compiler, "g++ 13.2");
    EXPECT_EQ(dump.thread_count, 1u);
    ASSERT_TRUE(dump.trigger.has_value());
    EXPECT_EQ(dump.trigger->kind, "deadline_miss");
    EXPECT_EQ(dump.trigger->a, 100.0);
    ASSERT_EQ(dump.events.size(), 4u);
    for (std::size_t i = 1; i < dump.events.size(); ++i)
        EXPECT_LE(dump.events[i - 1].t_ns, dump.events[i].t_ns);
    EXPECT_EQ(dump.events[0].track, 1u);
    ASSERT_EQ(dump.counters.size(), 2u);
    EXPECT_EQ(dump.counters[0].first, "av.frames");
    EXPECT_EQ(dump.counters[0].second, 4u);
}

TEST(ObsPostmortemTest, ParseRejectsMalformedDumps) {
    EXPECT_THROW((void)pm::parse("{"), std::runtime_error);
    EXPECT_THROW((void)pm::parse("{}"), std::runtime_error);  // no reason/meta
    EXPECT_THROW((void)pm::parse(R"({"reason": "x"})"), std::runtime_error);
    EXPECT_THROW((void)pm::load("/nonexistent/postmortem.json"), std::runtime_error);
}

TEST(ObsPostmortemTest, RenderMatchesTheGoldenTimeline) {
    const std::string golden =
        "postmortem: reason=deadline_miss  events=4  threads=1\n"
        "build: abc1234 (Release, g++ 13.2)\n"
        "trigger: deadline_miss at +2.000ms frame 3 module 1 (a=100, b=0)\n"
        "\n"
        "module 0 (2 events):\n"
        "  +0.000ms       frame 1      vote_decided        a=3 b=3\n"
        "  +3.000ms       frame 4      vote_skipped        a=3 b=1\n"
        "\n"
        "module 1 (2 events):\n"
        "  +1.000ms       frame 2      module_state        a=1 b=0\n"
        "  +2.000ms       frame 3      deadline_miss       a=100 b=0   <<< TRIGGER\n"
        "\n"
        "event counts around trigger (before / at-or-after):\n"
        "  deadline_miss            0      1\n"
        "  module_state             1      0\n"
        "  vote_decided             1      0\n"
        "  vote_skipped             0      1\n"
        "\n"
        "metrics counters at dump time:\n"
        "  av.frames = 4\n"
        "  av.votes.decided = 1\n";
    EXPECT_EQ(pm::render(pm::parse(kFixture)), golden);
}

TEST(ObsPostmortemTest, RenderOptionsTrimMetaMetricsAndOldEvents) {
    const pm::Dump dump = pm::parse(kFixture);
    pm::RenderOptions options;
    options.show_meta = false;
    options.show_metrics = false;
    options.max_events_per_module = 1;
    const std::string out = pm::render(dump, options);
    EXPECT_EQ(out.find("build:"), std::string::npos);
    EXPECT_EQ(out.find("metrics counters"), std::string::npos);
    EXPECT_NE(out.find("... 1 older events elided ..."), std::string::npos);
    EXPECT_NE(out.find("<<< TRIGGER"), std::string::npos);
}

#ifndef MVREJU_OBS_DISABLED

/// One seeded run of the three-version system with the traffic-sign-monitor
/// health parameters, recorded through the real core instrumentation into
/// the global flight recorder; returns the dump rendered without the
/// wall-clock-dependent sections.
std::string record_seeded_run() {
    obs::FlightRecorder& recorder = obs::FlightRecorder::global();
    recorder.clear();
    recorder.set_enabled(true);

    std::vector<core::VersionSpec<int, int>> specs;
    for (int m = 0; m < 3; ++m) {
        core::VersionSpec<int, int> spec;
        spec.healthy = [](const int& x) { return x; };
        spec.compromised = [m](const int& x) { return x + 100 + m; };
        specs.push_back(std::move(spec));
    }
    core::HealthEngineConfig health_cfg;  // compressed Section VII-A scale
    health_cfg.timing.mttc = 8.0;
    health_cfg.timing.mttf = 16.0;
    health_cfg.timing.rejuvenation_interval = 3.0;
    health_cfg.policy = core::VictimPolicy::two_thirds_compromised;
    health_cfg.seed = 2024;
    core::MultiVersionSystem<int, int> system(std::move(specs), core::Voter<int>{},
                                              core::HealthEngine{health_cfg});
    for (int frame = 0; frame < 300; ++frame)
        (void)system.process(frame * 0.1, frame);

    const std::string json = recorder.dump_json("golden");
    recorder.set_enabled(false);
    pm::RenderOptions options;
    options.show_meta = false;     // git SHA varies per checkout
    options.show_metrics = false;  // global registry varies per test binary
    return pm::render(pm::parse(json), options);
}

TEST(ObsPostmortemTest, SeededRunsProduceByteIdenticalRenderings) {
    obs::set_enabled(true);
    const std::string first = record_seeded_run();
    const std::string second = record_seeded_run();
    EXPECT_EQ(first, second);

    // The dump is a real black box: simulated-time stamps, vote events every
    // frame, and health transitions from the seeded fault process.
    EXPECT_NE(first.find("vote_decided"), std::string::npos);
    EXPECT_NE(first.find("module_state"), std::string::npos);
    EXPECT_NE(first.find("threads=1"), std::string::npos);
    EXPECT_NE(first.find("+100.000ms"), std::string::npos);  // frame 1 at dt=0.1
}

#endif  // MVREJU_OBS_DISABLED

}  // namespace
