// Concurrency hammer for the stateless inference contract: many threads
// drive predict(), predict_batch() and evaluate() on ONE shared const model
// simultaneously and every result must equal the serial golden. Sized to
// stay fast under ThreadSanitizer, which is where this suite earns its keep
// (the contract in ml/model.hpp promises no hidden mutable state).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mvreju/data/signs.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"

namespace mvreju::ml {
namespace {

Dataset small_eval_set(std::size_t count) {
    Dataset ds;
    ds.num_classes = data::kSignClasses;
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(i) % data::kSignClasses;
        data::SignPose pose;
        pose.noise_sigma = 0.12;
        pose.noise_seed = 1000 + i;
        ds.images.push_back(data::render_sign(label, 16, pose));
        ds.labels.push_back(label);
    }
    return ds;
}

TEST(InferHammer, SharedConstModelSurvivesConcurrentInference) {
    const Dataset eval = small_eval_set(64);
    const Sequential model = make_micro_resnet(3, 16, data::kSignClasses, 38);

    // Serial goldens, computed before any concurrency starts.
    const std::vector<int> golden_preds = model.predict_batch(eval.images, 1);
    const Evaluation golden_eval = model.evaluate(eval, 1);
    const int golden_single = model.predict(eval.images.front());

    constexpr std::size_t kThreads = 8;
    constexpr int kRounds = 6;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                switch ((t + static_cast<std::size_t>(round)) % 3) {
                    case 0: {
                        if (model.predict(eval.images.front()) != golden_single)
                            mismatches.fetch_add(1);
                        break;
                    }
                    case 1: {
                        if (model.predict_batch(eval.images, 1) != golden_preds)
                            mismatches.fetch_add(1);
                        break;
                    }
                    default: {
                        const Evaluation e = model.evaluate(eval, 1);
                        if (e.accuracy != golden_eval.accuracy ||
                            e.error_set != golden_eval.error_set)
                            mismatches.fetch_add(1);
                        break;
                    }
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(InferHammer, SharedWorkspaceFreeLogitsBatchPerThread) {
    const Dataset eval = small_eval_set(32);
    const Sequential model = make_tiny_lenet(3, 16, data::kSignClasses, 38);

    Tensor batch({eval.images.size(), 3, 16, 16});
    const std::size_t sample = eval.images.front().size();
    for (std::size_t i = 0; i < eval.images.size(); ++i)
        for (std::size_t k = 0; k < sample; ++k)
            batch[i * sample + k] = eval.images[i][k];

    Workspace golden_ws;
    const Tensor golden = model.logits_batch(batch, golden_ws, 1);

    // Each thread brings its own Workspace, as the Layer contract requires;
    // the model itself is shared and must never be written.
    constexpr std::size_t kThreads = 8;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            Workspace ws;
            for (int round = 0; round < 4; ++round) {
                Tensor logits = model.logits_batch(batch, ws, 1);
                if (logits.size() != golden.size()) {
                    mismatches.fetch_add(1);
                } else {
                    for (std::size_t i = 0; i < golden.size(); ++i)
                        if (logits[i] != golden[i]) {
                            mismatches.fetch_add(1);
                            break;
                        }
                }
                ws.give(std::move(logits));
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace mvreju::ml
