#include "mvreju/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mvreju/util/rng.hpp"

namespace mvreju::util {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
        std::vector<std::atomic<int>> counts(257);
        parallel_for(257, [&](std::size_t i) { ++counts[i]; }, threads);
        for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
    }
}

TEST(ParallelFor, ZeroAndSingleIndex) {
    int calls = 0;
    parallel_for(0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PerIndexSlotsAreDeterministicAcrossThreadCounts) {
    // The contract the simulators rely on: index-keyed RNG substreams plus
    // per-index output slots give bit-identical results for any thread count.
    const Rng root(123);
    auto run = [&](std::size_t threads) {
        std::vector<double> out(500);
        parallel_for(
            out.size(),
            [&](std::size_t i) {
                Rng rng = root.split(i + 1);
                double acc = 0.0;
                for (int k = 0; k < 100; ++k) acc += rng.uniform();
                out[i] = acc;
            },
            threads);
        return out;
    };
    const auto serial = run(1);
    const auto two = run(2);
    const auto eight = run(8);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], two[i]);  // bit-identical, not just close
        EXPECT_EQ(serial[i], eight[i]);
    }
}

TEST(ParallelFor, PropagatesFirstException) {
    EXPECT_THROW(
        parallel_for(
            100,
            [](std::size_t i) {
                if (i == 37) throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
}

TEST(ParallelFor, SerialPathPropagatesException) {
    EXPECT_THROW(
        parallel_for(10, [](std::size_t) { throw std::logic_error("bad"); }, 1),
        std::logic_error);
}

TEST(HardwareThreads, PositiveAndEnvOverridable) {
    EXPECT_GE(hardware_threads(), 1u);
    ASSERT_EQ(setenv("MVREJU_THREADS", "3", 1), 0);
    EXPECT_EQ(hardware_threads(), 3u);
    ASSERT_EQ(setenv("MVREJU_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(hardware_threads(), 1u);  // invalid values fall back to auto
    unsetenv("MVREJU_THREADS");
}

TEST(ParallelFor, SumsLargeRange) {
    std::vector<long> partial(10'000);
    parallel_for(partial.size(), [&](std::size_t i) {
        partial[i] = static_cast<long>(i);
    });
    const long total = std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(total, 10'000L * 9'999L / 2);
}

}  // namespace
}  // namespace mvreju::util
