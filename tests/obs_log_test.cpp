// Tests for the leveled stderr log facility: level parsing, threshold
// gating, and the emitted line format.

#include <gtest/gtest.h>

#include <string>

#include "mvreju/obs/log.hpp"

namespace {

using namespace mvreju;

class ObsLogTest : public ::testing::Test {
protected:
    void TearDown() override { obs::set_log_level(obs::LogLevel::warn); }
};

TEST_F(ObsLogTest, ParseLogLevel) {
    using obs::LogLevel;
    using obs::parse_log_level;
    EXPECT_EQ(parse_log_level("off", LogLevel::warn), LogLevel::off);
    EXPECT_EQ(parse_log_level("error", LogLevel::warn), LogLevel::error);
    EXPECT_EQ(parse_log_level("warn", LogLevel::off), LogLevel::warn);
    EXPECT_EQ(parse_log_level("info", LogLevel::warn), LogLevel::info);
    EXPECT_EQ(parse_log_level("debug", LogLevel::warn), LogLevel::debug);
    // Anything unrecognised falls back rather than guessing.
    EXPECT_EQ(parse_log_level("verbose", LogLevel::warn), LogLevel::warn);
    EXPECT_EQ(parse_log_level("", LogLevel::info), LogLevel::info);
}

TEST_F(ObsLogTest, ThresholdGatesLevels) {
    obs::set_log_level(obs::LogLevel::info);
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::error));
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::warn));
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::info));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::debug));

    obs::set_log_level(obs::LogLevel::off);
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::error));
}

TEST_F(ObsLogTest, EmitsPrefixedLineToStderr) {
    obs::set_log_level(obs::LogLevel::warn);
    ::testing::internal::CaptureStderr();
    obs::log_warn("gauss_seidel did not converge");
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "[mvreju][warn] gauss_seidel did not converge\n");
}

TEST_F(ObsLogTest, BelowThresholdMessagesAreSuppressed) {
    obs::set_log_level(obs::LogLevel::warn);
    ::testing::internal::CaptureStderr();
    obs::log_info("should not appear");
    obs::log_debug("nor this");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(ObsLogTest, OffSilencesEverything) {
    obs::set_log_level(obs::LogLevel::off);
    ::testing::internal::CaptureStderr();
    obs::log_error("silent");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
