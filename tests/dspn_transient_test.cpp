#include <gtest/gtest.h>

#include <cmath>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"

namespace mvreju::dspn {
namespace {

PetriNet two_state_net(double lam, double mu, int initial = 1) {
    PetriNet net;
    auto a = net.add_place("a", initial);
    auto b = net.add_place("b");
    auto t1 = net.add_exponential("t1", lam);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", mu);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, a);
    return net;
}

TEST(SpnTransient, MatchesTwoStateClosedForm) {
    const double lam = 0.7;
    const double mu = 1.3;
    PetriNet net = two_state_net(lam, mu);
    ReachabilityGraph graph(net);
    const auto s_a = *graph.find({1, 0});
    for (double t : {0.0, 0.3, 1.0, 5.0, 40.0}) {
        const auto pi = spn_transient_distribution(graph, t);
        // P(in a at t | start a) = mu/(lam+mu) + lam/(lam+mu) e^{-(lam+mu)t}.
        const double expected =
            mu / (lam + mu) + lam / (lam + mu) * std::exp(-(lam + mu) * t);
        EXPECT_NEAR(pi[s_a], expected, 1e-9) << "t=" << t;
    }
}

TEST(SpnTransient, RejectsDeterministicNets) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 1.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", 1.0);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);
    ReachabilityGraph graph(net);
    EXPECT_THROW((void)spn_transient_distribution(graph, 1.0), std::invalid_argument);
}

TEST(SpnTransient, ConvergesToSteadyState) {
    core::DspnConfig cfg;
    cfg.proactive = false;  // Fig. 2 net: purely exponential
    const auto model = core::build_multiversion_dspn(cfg);
    ReachabilityGraph graph(model.net);
    const auto steady = spn_steady_state(graph);
    const auto late = spn_transient_distribution(graph, 1e6);
    for (std::size_t s = 0; s < steady.size(); ++s)
        EXPECT_NEAR(late[s], steady[s], 1e-6);
}

TEST(SpnTransient, MissionReliabilityDecaysFromFreshStart) {
    // R(t) of the Fig. 2 three-version system: starts at R(3,0,0) with all
    // modules fresh and decays towards the steady state.
    core::DspnConfig cfg;
    cfg.proactive = false;
    const auto model = core::build_multiversion_dspn(cfg);
    ReachabilityGraph graph(model.net);
    const auto params = reliability::paper_params();
    auto reward = [&](const Marking& m) {
        return reliability::state_reliability(model.healthy(m), model.compromised(m),
                                              model.nonfunctional(m), params);
    };
    double previous = 1.0;
    for (double t : {0.0, 100.0, 500.0, 2000.0, 10000.0}) {
        const double r = expected_reward(graph, spn_transient_distribution(graph, t),
                                         reward);
        EXPECT_LE(r, previous + 1e-9) << "t=" << t;
        previous = r;
    }
    // t = 0: everything healthy.
    EXPECT_NEAR(expected_reward(graph, spn_transient_distribution(graph, 0.0), reward),
                reliability::state_reliability(3, 0, 0, params), 1e-9);
    // Very late: the steady-state Table V value (no rejuvenation).
    EXPECT_NEAR(expected_reward(graph, spn_transient_distribution(graph, 1e6), reward),
                0.903190, 1e-4);
}

TEST(SimulateTransient, MatchesExactForExponentialNet) {
    const double lam = 0.7;
    const double mu = 1.3;
    PetriNet net = two_state_net(lam, mu);
    const double t = 1.0;
    const double expected =
        mu / (lam + mu) + lam / (lam + mu) * std::exp(-(lam + mu) * t);
    const auto est = simulate_transient_reward(
        net, [](const Marking& m) { return double(m[0]); }, t, 4000, 3);
    EXPECT_NEAR(est.mean, expected, 0.03);
    EXPECT_LE(est.ci.lower, expected);
    EXPECT_GE(est.ci.upper, expected);
}

TEST(SimulateTransient, DeterministicNetBeforeAndAfterFiring) {
    // a --det(2s)--> b with nothing else: at t < 2 the token is in a with
    // certainty, at t > 2 in b (absorbing behaviour handled without a dead-
    // marking error because `b` keeps an outgoing self-cycle).
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 2.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto loop = net.add_exponential("loop", 1.0);
    net.add_input_arc(loop, b);
    net.add_output_arc(loop, b);

    const auto before = simulate_transient_reward(
        net, [](const Marking& m) { return double(m[0]); }, 1.9, 200, 5);
    EXPECT_DOUBLE_EQ(before.mean, 1.0);
    const auto after = simulate_transient_reward(
        net, [](const Marking& m) { return double(m[0]); }, 2.1, 200, 5);
    EXPECT_DOUBLE_EQ(after.mean, 0.0);
}

TEST(SimulateTransient, Validation) {
    PetriNet net = two_state_net(1.0, 1.0);
    auto reward = [](const Marking&) { return 1.0; };
    EXPECT_THROW((void)simulate_transient_reward(net, reward, -1.0, 10, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)simulate_transient_reward(net, reward, 1.0, 1, 1),
                 std::invalid_argument);
}

TEST(SimulateTransient, DspnMissionReliabilityImprovesWithRejuvenation) {
    // At mission time 1000 s, the Fig. 3 system (with rejuvenation) holds a
    // higher expected reliability than the Fig. 2 system (without).
    const auto params = reliability::paper_params();
    auto reward_for = [&](const core::MultiVersionDspn& model) {
        return [&model, params](const Marking& m) {
            return reliability::state_reliability(model.healthy(m),
                                                  model.compromised(m),
                                                  model.nonfunctional(m), params);
        };
    };
    core::DspnConfig cfg;
    cfg.proactive = true;
    const auto with_model = core::build_multiversion_dspn(cfg);
    const auto with = simulate_transient_reward(with_model.net, reward_for(with_model),
                                                1000.0, 600, 17);
    cfg.proactive = false;
    const auto without_model = core::build_multiversion_dspn(cfg);
    const auto without = simulate_transient_reward(
        without_model.net, reward_for(without_model), 1000.0, 600, 17);
    EXPECT_GT(with.mean, without.mean);
}

}  // namespace
}  // namespace mvreju::dspn
