#include "mvreju/core/dspn_models.hpp"

#include <gtest/gtest.h>

#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"

namespace mvreju::core {
namespace {

using reliability::paper_params;

TEST(BuildDspn, RejectsInvalidConfigs) {
    DspnConfig cfg;
    cfg.modules = 0;
    EXPECT_THROW((void)build_multiversion_dspn(cfg), std::invalid_argument);
    cfg.modules = 4;
    EXPECT_THROW((void)build_multiversion_dspn(cfg), std::invalid_argument);
    cfg.modules = 3;
    cfg.timing.mttc = 0.0;
    EXPECT_THROW((void)build_multiversion_dspn(cfg), std::invalid_argument);
}

TEST(BuildDspn, ReactiveOnlyStateSpace) {
    DspnConfig cfg;
    cfg.modules = 3;
    cfg.proactive = false;
    auto model = build_multiversion_dspn(cfg);
    dspn::ReachabilityGraph graph(model.net);
    // All (i,j,k) with i+j+k = 3: C(3+2,2) = 10 markings.
    EXPECT_EQ(graph.state_count(), 10u);
    EXPECT_FALSE(graph.has_deterministic());
}

TEST(BuildDspn, TokenConservationAcrossAllStates) {
    for (int n : {1, 2, 3}) {
        for (bool proactive : {false, true}) {
            DspnConfig cfg;
            cfg.modules = n;
            cfg.proactive = proactive;
            auto model = build_multiversion_dspn(cfg);
            dspn::ReachabilityGraph graph(model.net);
            for (std::size_t s = 0; s < graph.state_count(); ++s) {
                const auto& m = graph.marking(s);
                const int total =
                    model.healthy(m) + model.compromised(m) + model.nonfunctional(m);
                EXPECT_EQ(total, n) << "modules leaked in state " << s;
                if (proactive) {
                    // The rejuvenation clock is armed in every tangible state.
                    EXPECT_EQ(tokens(m, model.prc), 1);
                    EXPECT_EQ(tokens(m, model.ptr), 0);
                    // At most one proactive action pending or running: the
                    // Tac latch refuses a second trigger until Trj completes.
                    EXPECT_LE(tokens(m, model.pac) + tokens(m, model.pmr), 1);
                }
            }
        }
    }
}

TEST(BuildDspn, ProactiveClockIsTheOnlyDeterministicTransition) {
    DspnConfig cfg;
    auto model = build_multiversion_dspn(cfg);
    dspn::ReachabilityGraph graph(model.net);
    EXPECT_TRUE(graph.has_deterministic());
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        ASSERT_EQ(graph.deterministic_enabled(s).size(), 1u);
        EXPECT_EQ(graph.deterministic_enabled(s)[0], model.trc);
    }
}

// Table V of the paper (single-server semantics, the TimeNET default).
// The no-rejuvenation column is matched to 1e-6 (our solver is exact; the
// published values are already exact for these small CTMCs). The paper's
// with-rejuvenation values come from TimeNET simulation; we allow 3e-3.
struct TableVRow {
    int modules;
    bool proactive;
    double published;
    double tolerance;
};

class TableV : public ::testing::TestWithParam<TableVRow> {};

TEST_P(TableV, MatchesPublishedValue) {
    const auto row = GetParam();
    DspnConfig cfg;
    cfg.modules = row.modules;
    cfg.proactive = row.proactive;
    const double r = steady_state_reliability(cfg, paper_params());
    EXPECT_NEAR(r, row.published, row.tolerance);
}

INSTANTIATE_TEST_SUITE_P(PaperValues, TableV,
                         ::testing::Values(TableVRow{1, false, 0.848211, 2e-6},
                                           TableVRow{1, true, 0.920217, 3e-3},
                                           TableVRow{2, false, 0.943875, 2e-6},
                                           TableVRow{2, true, 0.967152, 3e-3},
                                           TableVRow{3, false, 0.903190, 2e-6},
                                           TableVRow{3, true, 0.952998, 3e-3}));

TEST(TableVOrdering, TwoVersionBeatsThreeVersionAndRejuvenationHelps) {
    // The paper's headline findings (Section VI-B).
    const auto params = paper_params();
    auto rel = [&](int n, bool pro) {
        DspnConfig cfg;
        cfg.modules = n;
        cfg.proactive = pro;
        return steady_state_reliability(cfg, params);
    };
    const double r1 = rel(1, false), r1r = rel(1, true);
    const double r2 = rel(2, false), r2r = rel(2, true);
    const double r3 = rel(3, false), r3r = rel(3, true);
    // Proactive rejuvenation helps every configuration.
    EXPECT_GT(r1r, r1);
    EXPECT_GT(r2r, r2);
    EXPECT_GT(r3r, r3);
    // Two-version outperforms three-version (safe-skip advantage).
    EXPECT_GT(r2, r3);
    EXPECT_GT(r2r, r3r);
    // And everything beats the single version baseline.
    EXPECT_GT(r2, r1);
    EXPECT_GT(r3, r1);
}

TEST(MrgpVersusSimulation, ThreeVersionWithRejuvenationAgrees) {
    DspnConfig cfg;
    cfg.modules = 3;
    cfg.proactive = true;
    auto model = build_multiversion_dspn(cfg);
    dspn::ReachabilityGraph graph(model.net);
    const auto pi = dspn::dspn_steady_state(graph);
    const double exact = steady_state_reliability(model, graph, pi, paper_params());

    dspn::SimulationOptions opt;
    opt.horizon = 1.0e6;
    opt.warmup = 2.0e4;
    opt.batches = 10;
    opt.seed = 12;
    const auto params = paper_params();
    auto est = dspn::simulate_steady_state_reward(
        model.net,
        [&](const dspn::Marking& m) {
            return reliability::state_reliability(model.healthy(m), model.compromised(m),
                                                  model.nonfunctional(m), params);
        },
        opt);
    EXPECT_NEAR(est.mean, exact, 0.004);
}

TEST(SteadyStateReliability, FasterRejuvenationIsBetter) {
    // Fig. 4 (a) monotonicity: shorter intervals give higher reliability.
    const auto params = paper_params();
    double previous = 0.0;
    for (double interval : {1000.0, 600.0, 300.0, 100.0, 30.0}) {
        DspnConfig cfg;
        cfg.modules = 3;
        cfg.timing.rejuvenation_interval = interval;
        const double r = steady_state_reliability(cfg, params);
        EXPECT_GT(r, previous) << "interval " << interval;
        previous = r;
    }
}

TEST(SteadyStateReliability, LongerCompromiseTimeIsBetterForSingleVersion) {
    // Fig. 4 (c): the single-version configuration benefits from a weaker
    // adversary (larger mean time to compromise).
    const auto params = paper_params();
    double previous = 0.0;
    for (double mttc : {100.0, 500.0, 1523.0, 7000.0}) {
        DspnConfig cfg;
        cfg.modules = 1;
        cfg.proactive = false;
        cfg.timing.mttc = mttc;
        const double r = steady_state_reliability(cfg, params);
        EXPECT_GT(r, previous);
        previous = r;
    }
}

TEST(SteadyStateReliability, RewardReuseMatchesFreshSolve) {
    DspnConfig cfg;
    cfg.modules = 2;
    auto model = build_multiversion_dspn(cfg);
    dspn::ReachabilityGraph graph(model.net);
    const auto pi = dspn::dspn_steady_state(graph);
    EXPECT_NEAR(steady_state_reliability(model, graph, pi, paper_params()),
                steady_state_reliability(cfg, paper_params()), 1e-12);
}

TEST(ServerSemantics, InfiniteServerDiffersForMultiModule) {
    const auto params = paper_params();
    DspnConfig cfg;
    cfg.modules = 3;
    cfg.proactive = false;
    const double single_sem = steady_state_reliability(cfg, params);
    cfg.compromise_semantics = ServerSemantics::infinite;
    cfg.failure_semantics = ServerSemantics::infinite;
    const double infinite_sem = steady_state_reliability(cfg, params);
    EXPECT_NE(single_sem, infinite_sem);
    // With one module both semantics coincide.
    cfg.modules = 1;
    const double inf1 = steady_state_reliability(cfg, params);
    cfg.compromise_semantics = ServerSemantics::single;
    cfg.failure_semantics = ServerSemantics::single;
    const double sin1 = steady_state_reliability(cfg, params);
    EXPECT_NEAR(inf1, sin1, 1e-12);
}

}  // namespace
}  // namespace mvreju::core
