#include "mvreju/core/system.hpp"

#include <gtest/gtest.h>

namespace mvreju::core {
namespace {

/// A version whose healthy behaviour returns the input and whose
/// compromised behaviour returns a module-specific wrong answer.
VersionSpec<int, int> echo_version(int wrong_answer) {
    VersionSpec<int, int> spec;
    spec.healthy = [](const int& x) { return x; };
    spec.compromised = [wrong_answer](const int&) { return wrong_answer; };
    return spec;
}

HealthEngineConfig slow_config(std::uint64_t seed) {
    HealthEngineConfig cfg;
    cfg.modules = 3;
    cfg.seed = seed;
    cfg.timing.mttc = 1e9;  // effectively frozen health unless forced
    cfg.timing.mttf = 1e9;
    return cfg;
}

MultiVersionSystem<int, int> make_system(std::uint64_t seed) {
    std::vector<VersionSpec<int, int>> versions{echo_version(-1), echo_version(-2),
                                                echo_version(-3)};
    return {std::move(versions), Voter<int>{}, HealthEngine{slow_config(seed)}};
}

TEST(MultiVersionSystem, AllHealthyDecidesCorrectly) {
    auto system = make_system(1);
    const auto frame = system.process(1.0, 42);
    EXPECT_TRUE(frame.vote.decided());
    EXPECT_EQ(*frame.vote.value, 42);
    EXPECT_EQ(frame.functional_modules, 3);
}

TEST(MultiVersionSystem, MasksOneCompromisedModule) {
    auto system = make_system(2);
    system.health().force_compromise(0);
    const auto frame = system.process(1.0, 42);
    EXPECT_TRUE(frame.vote.decided());
    EXPECT_EQ(*frame.vote.value, 42);  // two healthy outvote the faulty one
}

TEST(MultiVersionSystem, TwoCompromisedDistinctOutputsSkip) {
    auto system = make_system(3);
    system.health().force_compromise(0);
    system.health().force_compromise(1);
    const auto frame = system.process(1.0, 42);
    // Proposals: -1, -2, 42 -> all distinct -> safe skip.
    EXPECT_EQ(frame.vote.kind, VoteKind::skipped);
}

TEST(MultiVersionSystem, DegradesToTwoVersionOnCrash) {
    auto system = make_system(4);
    system.health().force_failure(2);
    const auto frame = system.process(0.1, 7);
    EXPECT_EQ(frame.functional_modules, 2);
    EXPECT_TRUE(frame.vote.decided());
    EXPECT_EQ(*frame.vote.value, 7);
}

TEST(MultiVersionSystem, SingleSurvivorStillAnswers) {
    auto system = make_system(5);
    system.health().force_failure(0);
    system.health().force_failure(1);
    // Query immediately: reactive rejuvenation must not have completed yet.
    const auto frame = system.process(1e-9, 9);
    EXPECT_EQ(frame.functional_modules, 1);
    EXPECT_TRUE(frame.vote.decided());
    EXPECT_EQ(*frame.vote.value, 9);
}

TEST(MultiVersionSystem, NoFunctionalModulesNoOutput) {
    auto system = make_system(6);
    for (int m = 0; m < 3; ++m) system.health().force_failure(m);
    const auto frame = system.process(0.0001, 1);
    EXPECT_EQ(frame.vote.kind, VoteKind::no_output);
    EXPECT_EQ(frame.functional_modules, 0);
}

TEST(MultiVersionSystem, CompromisedAgreementProducesWrongOutput) {
    // Two compromised modules that happen to agree outvote the healthy one:
    // exactly the failure mode the reliability analysis quantifies.
    std::vector<VersionSpec<int, int>> versions{echo_version(-9), echo_version(-9),
                                                echo_version(-3)};
    MultiVersionSystem<int, int> system(std::move(versions), Voter<int>{},
                                        HealthEngine{slow_config(7)});
    system.health().force_compromise(0);
    system.health().force_compromise(1);
    const auto frame = system.process(1.0, 42);
    ASSERT_TRUE(frame.vote.decided());
    EXPECT_EQ(*frame.vote.value, -9);
}

TEST(MultiVersionSystem, ValidatesConstruction) {
    std::vector<VersionSpec<int, int>> two{echo_version(-1), echo_version(-2)};
    EXPECT_THROW((MultiVersionSystem<int, int>{std::move(two), Voter<int>{},
                                               HealthEngine{slow_config(8)}}),
                 std::invalid_argument);
    std::vector<VersionSpec<int, int>> missing(3);
    EXPECT_THROW((MultiVersionSystem<int, int>{std::move(missing), Voter<int>{},
                                               HealthEngine{slow_config(9)}}),
                 std::invalid_argument);
}

TEST(MultiVersionSystem, RejuvenationRestoresCorrectness) {
    HealthEngineConfig cfg = slow_config(10);
    cfg.timing.reactive_duration = 0.5;
    std::vector<VersionSpec<int, int>> versions{echo_version(-9), echo_version(-9),
                                                echo_version(-3)};
    MultiVersionSystem<int, int> system(std::move(versions), Voter<int>{},
                                        HealthEngine{cfg});
    system.health().force_compromise(0);
    system.health().force_compromise(1);
    EXPECT_EQ(*system.process(0.1, 42).vote.value, -9);  // wrong output
    // Crash both compromised modules: reactive rejuvenation heals them.
    system.health().force_failure(0);
    system.health().force_failure(1);
    const auto later = system.process(100.0, 42);
    ASSERT_TRUE(later.vote.decided());
    EXPECT_EQ(*later.vote.value, 42);
}

}  // namespace
}  // namespace mvreju::core
