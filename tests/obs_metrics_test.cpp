// Tests for the obs metrics registry: exact counts under parallel_for at
// several thread counts (the shard-and-merge design must lose no updates),
// histogram statistics cross-checked against num::stats, kind-mismatch
// detection, the runtime kill switch, and the exporters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mvreju/num/stats.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/obs.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

class ObsMetricsTest : public ::testing::Test {
protected:
    void SetUp() override { obs::set_enabled(true); }
    void TearDown() override { obs::set_enabled(true); }
};

TEST_F(ObsMetricsTest, CounterExactUnderParallelForAtEveryThreadCount) {
    obs::Registry reg;
    obs::Counter& hits = reg.counter("hits");
    obs::Counter& bulk = reg.counter("bulk");

    constexpr std::size_t kIterations = 20'000;
    std::uint64_t expected_hits = 0;
    std::uint64_t expected_bulk = 0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        util::parallel_for(
            kIterations,
            [&](std::size_t i) {
                hits.add();
                bulk.add(i % 7);
            },
            threads);
        expected_hits += kIterations;
        for (std::size_t i = 0; i < kIterations; ++i) expected_bulk += i % 7;

        const obs::MetricsSnapshot snap = reg.snapshot();
        ASSERT_EQ(snap.counters.size(), 2u);
        EXPECT_EQ(snap.counters[0].name, "bulk");
        EXPECT_EQ(snap.counters[0].value, expected_bulk);
        EXPECT_EQ(snap.counters[1].name, "hits");
        EXPECT_EQ(snap.counters[1].value, expected_hits);
    }
}

TEST_F(ObsMetricsTest, HistogramExactCountSumMinMaxUnderParallelFor) {
    obs::Registry reg;
    obs::Histogram& h =
        reg.histogram("h", obs::HistogramBounds::linear(0.0, 100.0, 10));

    constexpr std::size_t kIterations = 10'000;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        reg.reset();
        util::parallel_for(
            kIterations, [&](std::size_t i) { h.record(static_cast<double>(i % 1000)); },
            threads);

        const obs::MetricsSnapshot snap = reg.snapshot();
        ASSERT_EQ(snap.histograms.size(), 1u);
        const obs::HistogramValue& v = snap.histograms[0];
        EXPECT_EQ(v.count, kIterations);
        double expected_sum = 0.0;
        for (std::size_t i = 0; i < kIterations; ++i)
            expected_sum += static_cast<double>(i % 1000);
        EXPECT_NEAR(v.sum, expected_sum, 1e-6 * expected_sum);
        EXPECT_EQ(v.min, 0.0);
        EXPECT_EQ(v.max, 999.0);
        // 10 in-range buckets of width 100 + overflow; 0..999 spread evenly.
        ASSERT_EQ(v.buckets.size(), 11u);
        std::uint64_t bucketed = 0;
        for (std::uint64_t b : v.buckets) bucketed += b;
        EXPECT_EQ(bucketed, kIterations);
    }
}

TEST_F(ObsMetricsTest, HistogramMeanAndQuantilesMatchNumStats) {
    obs::Registry reg;
    // Buckets of width 0.5 over [0, 50): quantile estimates are exact to
    // within one bucket width.
    obs::Histogram& h =
        reg.histogram("latency", obs::HistogramBounds::linear(0.0, 0.5, 100));

    util::Rng rng(42);
    num::RunningStats stats;
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform(0.0, 50.0);
        h.record(x);
        stats.add(x);
        samples.push_back(x);
    }
    std::sort(samples.begin(), samples.end());

    const obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramValue& v = snap.histograms[0];
    EXPECT_EQ(v.count, stats.count());
    EXPECT_NEAR(v.mean(), stats.mean(), 1e-9);
    EXPECT_EQ(v.min, samples.front());
    EXPECT_EQ(v.max, samples.back());
    const double bucket_width = 0.5;
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        const double exact = samples[static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1))];
        EXPECT_NEAR(v.quantile(q), exact, bucket_width)
            << "quantile " << q << " off by more than one bucket";
    }
    EXPECT_EQ(v.quantile(0.0), v.min);
    EXPECT_EQ(v.quantile(1.0), v.max);
}

TEST_F(ObsMetricsTest, QuantileEdgeCases) {
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("edge", obs::HistogramBounds::linear(0.0, 1.0, 2));

    // Empty histogram: quantiles are 0, not NaN or a crash.
    obs::HistogramValue v = reg.snapshot().histograms[0];
    EXPECT_EQ(v.count, 0u);
    for (double q : {0.0, 0.5, 1.0}) EXPECT_EQ(v.quantile(q), 0.0);
    EXPECT_EQ(v.mean(), 0.0);

    // Single sample: every quantile is that sample (interpolation clamps to
    // the observed min == max, not the bucket edges).
    h.record(0.75);
    v = reg.snapshot().histograms[0];
    for (double q : {0.0, 0.25, 0.5, 1.0}) EXPECT_EQ(v.quantile(q), 0.75);

    // All samples in one bucket: estimates stay inside [min, max] of that
    // bucket, with the extremes exact.
    reg.reset();
    h.record(0.4);
    h.record(0.5);
    h.record(0.6);
    v = reg.snapshot().histograms[0];
    EXPECT_EQ(v.quantile(0.0), 0.4);
    EXPECT_EQ(v.quantile(1.0), 0.6);
    EXPECT_GE(v.quantile(0.5), 0.4);
    EXPECT_LE(v.quantile(0.5), 0.6);

    // Overflow-bucket samples (above the last bound, here 2.0): quantiles
    // interpolate between the last bound and the observed max instead of
    // running off to infinity.
    reg.reset();
    h.record(5.0);
    h.record(7.0);
    h.record(9.0);
    v = reg.snapshot().histograms[0];
    ASSERT_EQ(v.buckets.back(), 3u);
    EXPECT_EQ(v.quantile(0.0), 5.0);
    EXPECT_EQ(v.quantile(1.0), 9.0);
    EXPECT_GE(v.quantile(0.5), 5.0);
    EXPECT_LE(v.quantile(0.5), 9.0);
    // Out-of-range q values clamp instead of indexing out of bounds.
    EXPECT_EQ(v.quantile(-1.0), v.quantile(0.0));
    EXPECT_EQ(v.quantile(2.0), v.quantile(1.0));
}

TEST_F(ObsMetricsTest, SnapshotUnderKillSwitchPreservesPriorValues) {
    // MVREJU_OBS=off stops *collection*, not *reporting*: a snapshot taken
    // while disabled must still expose everything recorded before the switch
    // (the exit-time metrics blob depends on this).
    obs::Registry reg;
    reg.counter("kept").add(7);
    reg.gauge("kept.g").set(1.5);
    reg.histogram("kept.h", obs::HistogramBounds::linear(0, 1, 2)).record(0.5);

    obs::set_enabled(false);
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 7u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 1.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_NE(snap.to_json().find("\"kept\": 7"), std::string::npos);
    obs::set_enabled(true);
}

TEST_F(ObsMetricsTest, KindMismatchAndBadBoundsThrow) {
    obs::Registry reg;
    (void)reg.counter("name.a");
    EXPECT_THROW((void)reg.gauge("name.a"), std::logic_error);
    EXPECT_THROW((void)reg.histogram("name.a", obs::HistogramBounds::linear(0, 1, 4)),
                 std::logic_error);

    (void)reg.histogram("name.h", obs::HistogramBounds::linear(0, 1, 4));
    EXPECT_THROW((void)reg.counter("name.h"), std::logic_error);
    // Same name, different bounds: a silent merge would corrupt quantiles.
    EXPECT_THROW((void)reg.histogram("name.h", obs::HistogramBounds::linear(0, 2, 4)),
                 std::logic_error);
    // Idempotent with identical bounds.
    EXPECT_NO_THROW((void)reg.histogram("name.h", obs::HistogramBounds::linear(0, 1, 4)));

    EXPECT_THROW((void)obs::HistogramBounds::linear(0, -1.0, 4), std::invalid_argument);
    EXPECT_THROW((void)obs::HistogramBounds::exponential(0.0, 2.0, 4),
                 std::invalid_argument);
    EXPECT_THROW((void)reg.histogram("name.empty", obs::HistogramBounds{}),
                 std::invalid_argument);
}

TEST_F(ObsMetricsTest, GaugeLastWriteWinsAndUnsetGaugesAreOmitted) {
    obs::Registry reg;
    obs::Gauge& g = reg.gauge("residual");
    (void)reg.gauge("never.set");
    g.set(1.0);
    g.set(0.25);
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "residual");
    EXPECT_EQ(snap.gauges[0].value, 0.25);
}

TEST_F(ObsMetricsTest, DisabledUpdatesAreDropped) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("c");
    obs::Gauge& g = reg.gauge("g");
    obs::Histogram& h = reg.histogram("h", obs::HistogramBounds::linear(0, 1, 2));

    obs::set_enabled(false);
    EXPECT_FALSE(obs::enabled());
    c.add(100);
    g.set(3.0);
    h.record(0.5);
    obs::set_enabled(true);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, 0u);
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_EQ(snap.histograms[0].count, 0u);

    c.add(1);  // re-enabled updates flow again
    snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, 1u);
}

TEST_F(ObsMetricsTest, ResetClearsValuesButKeepsDefinitions) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("c");
    obs::Histogram& h = reg.histogram("h", obs::HistogramBounds::linear(0, 1, 2));
    obs::Gauge& g = reg.gauge("g");
    c.add(5);
    h.record(0.5);
    g.set(2.0);
    reg.reset();
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, 0u);
    EXPECT_EQ(snap.histograms[0].count, 0u);
    EXPECT_EQ(snap.histograms[0].min, 0.0);
    EXPECT_TRUE(snap.gauges.empty());
    c.add(3);  // handles survive reset
    EXPECT_EQ(reg.snapshot().counters[0].value, 3u);
}

TEST_F(ObsMetricsTest, SnapshotSurvivesThreadChurn) {
    // parallel_for spawns fresh threads every call; dead shards must be
    // folded, not dropped, and repeated churn must not lose counts.
    obs::Registry reg;
    obs::Counter& c = reg.counter("churn");
    for (int round = 0; round < 20; ++round)
        util::parallel_for(100, [&](std::size_t) { c.add(); }, 4);
    EXPECT_EQ(reg.snapshot().counters[0].value, 2000u);
}

TEST_F(ObsMetricsTest, TextJsonAndCsvExporters) {
    obs::Registry reg;
    reg.counter("n.solves").add(3);
    reg.gauge("n.residual").set(1e-10);
    obs::Histogram& h =
        reg.histogram("n.sweeps", obs::HistogramBounds::exponential(1.0, 2.0, 4));
    h.record(1.0);
    h.record(3.0);
    const obs::MetricsSnapshot snap = reg.snapshot();

    const std::string text = snap.to_text();
    EXPECT_NE(text.find("counter   n.solves = 3"), std::string::npos);
    EXPECT_NE(text.find("gauge     n.residual"), std::string::npos);
    EXPECT_NE(text.find("histogram n.sweeps count=2"), std::string::npos);

    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"n.solves\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [1, 0, 1, 0, 0]"), std::string::npos);

    const std::string path = ::testing::TempDir() + "obs_metrics_test.csv";
    snap.write_csv(path);
    std::ifstream in(path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "kind,name,count,value,min,max,p50,p90,p99");
    std::string line;
    int rows = 0;
    while (std::getline(in, line))
        if (!line.empty()) ++rows;
    EXPECT_EQ(rows, 3);
    std::remove(path.c_str());
}

TEST_F(ObsMetricsTest, TwoRegistriesAreIndependent) {
    obs::Registry a;
    obs::Registry b;
    a.counter("x").add(1);
    b.counter("x").add(10);
    EXPECT_EQ(a.snapshot().counters[0].value, 1u);
    EXPECT_EQ(b.snapshot().counters[0].value, 10u);
}

}  // namespace
