#include <gtest/gtest.h>

#include "mvreju/core/dspn_models.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"

namespace mvreju::dspn {
namespace {

/// Cycle a -> b -> c -> a of exponential transitions.
PetriNet three_cycle(double r_ab, double r_bc, double r_ca) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto c = net.add_place("c");
    auto t1 = net.add_exponential("t1", r_ab);
    net.add_input_arc(t1, a);
    net.add_output_arc(t1, b);
    auto t2 = net.add_exponential("t2", r_bc);
    net.add_input_arc(t2, b);
    net.add_output_arc(t2, c);
    auto t3 = net.add_exponential("t3", r_ca);
    net.add_input_arc(t3, c);
    net.add_output_arc(t3, a);
    return net;
}

TEST(SpnMeanTimeTo, ChainOfExponentials) {
    // Hitting c from a through b: E = 1/r_ab + 1/r_bc.
    PetriNet net = three_cycle(0.5, 2.0, 1.0);
    ReachabilityGraph graph(net);
    const double mttf = spn_mean_time_to(
        graph, [](const Marking& m) { return m[2] == 1; });
    EXPECT_NEAR(mttf, 1.0 / 0.5 + 1.0 / 2.0, 1e-10);
}

TEST(SpnMeanTimeTo, ZeroWhenAlreadyInside) {
    PetriNet net = three_cycle(1.0, 1.0, 1.0);
    ReachabilityGraph graph(net);
    EXPECT_DOUBLE_EQ(
        spn_mean_time_to(graph, [](const Marking& m) { return m[0] == 1; }), 0.0);
}

TEST(SpnMeanTimeTo, RejectsDeterministicNets) {
    PetriNet net;
    auto a = net.add_place("a", 1);
    auto b = net.add_place("b");
    auto d = net.add_deterministic("d", 1.0);
    net.add_input_arc(d, a);
    net.add_output_arc(d, b);
    auto e = net.add_exponential("e", 1.0);
    net.add_input_arc(e, b);
    net.add_output_arc(e, a);
    ReachabilityGraph graph(net);
    EXPECT_THROW(
        (void)spn_mean_time_to(graph, [](const Marking& m) { return m[1] == 1; }),
        std::invalid_argument);
}

TEST(SpnMeanTimeTo, MajorityLossOfFig2Model) {
    // Mean time until the three-version reactive-only system first loses its
    // healthy majority (fewer than 2 healthy modules). From fresh start,
    // two compromise events must occur; cross-check against the simulator.
    core::DspnConfig cfg;
    cfg.proactive = false;
    const auto model = core::build_multiversion_dspn(cfg);
    ReachabilityGraph graph(model.net);
    auto majority_lost = [&](const Marking& m) { return model.healthy(m) < 2; };
    const double exact = spn_mean_time_to(graph, majority_lost);
    // Single-server compromises at rate 1/1523 with rare repairs feeding
    // back: slightly above 2 * 1523 s.
    EXPECT_GT(exact, 2.0 * 1523.0);
    EXPECT_LT(exact, 4.0 * 1523.0);

    const auto sim = simulate_mean_time_to(model.net, majority_lost, 1e6, 600, 9);
    EXPECT_EQ(sim.censored, 0u);
    EXPECT_LE(sim.ci.lower, exact);
    EXPECT_GE(sim.ci.upper, exact);
}

TEST(SimulateMeanTimeTo, CensoringReported) {
    // Target unreachable within the cap: every run is censored at max_time.
    PetriNet net = three_cycle(1e-9, 1.0, 1.0);
    const auto est = simulate_mean_time_to(
        net, [](const Marking& m) { return m[2] == 1; }, 5.0, 50, 2);
    EXPECT_EQ(est.censored, 50u);
    EXPECT_DOUBLE_EQ(est.mean, 5.0);
}

TEST(SimulateMeanTimeTo, Validation) {
    PetriNet net = three_cycle(1.0, 1.0, 1.0);
    auto pred = [](const Marking& m) { return m[2] == 1; };
    EXPECT_THROW((void)simulate_mean_time_to(net, pred, 0.0, 10, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)simulate_mean_time_to(net, pred, 1.0, 1, 1),
                 std::invalid_argument);
}

TEST(SimulateMeanTimeTo, RejuvenationPostponesCompromisedMajority) {
    // The paper's central claim at the fault-process level: proactive
    // rejuvenation postpones the first time TWO modules are simultaneously
    // compromised (the state in which agreeing wrong outputs can win the
    // vote). Note that "fewer than 2 healthy" would NOT improve: proactive
    // rejuvenation itself takes a healthy module down briefly -- that cost
    // is the skipped frames of Table VI, not a safety loss.
    core::DspnConfig cfg;
    cfg.timing.mttc = 8.0;  // compressed Section VII-A scale
    cfg.timing.mttf = 16.0;
    cfg.timing.rejuvenation_interval = 3.0;
    cfg.proactive = true;
    const auto with_model = core::build_multiversion_dspn(cfg);
    auto bad_with = [&](const Marking& m) { return with_model.compromised(m) >= 2; };
    const auto with = simulate_mean_time_to(with_model.net, bad_with, 1e5, 400, 3);

    cfg.proactive = false;
    const auto without_model = core::build_multiversion_dspn(cfg);
    auto bad_without = [&](const Marking& m) {
        return without_model.compromised(m) >= 2;
    };
    const auto without =
        simulate_mean_time_to(without_model.net, bad_without, 1e5, 400, 3);

    // The first passage is dominated by the first pair of overlapping
    // compromises, so the gain is moderate (the *steady-state* gap is ~5x,
    // see the exact P(#C >= 2) computation in the ablation bench).
    EXPECT_GT(with.mean, 1.2 * without.mean);
}

}  // namespace
}  // namespace mvreju::dspn
