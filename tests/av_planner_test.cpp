#include <gtest/gtest.h>

#include "mvreju/av/planner.hpp"
#include "mvreju/av/sensor.hpp"

namespace mvreju::av {
namespace {

TEST(Planner, ClearPerceptionAllowsRouteLimit) {
    Planner planner;
    planner.update_perception(0);
    EXPECT_DOUBLE_EQ(planner.target_speed(10.0), 10.0);
}

TEST(Planner, CloserBucketsReduceTargetSpeed) {
    Planner planner;
    double previous = 1e9;
    for (int bucket = 1; bucket < kDistanceBuckets; ++bucket) {
        planner.update_perception(bucket);
        const double target = planner.target_speed(20.0);
        EXPECT_LE(target, previous) << "bucket " << bucket;
        previous = target;
    }
    // Imminent bucket forces a stop.
    planner.update_perception(7);
    EXPECT_DOUBLE_EQ(planner.target_speed(20.0), 0.0);
}

TEST(Planner, SkipHoldsPerceptionAndCommand) {
    Planner planner;
    planner.update_perception(5);
    const double before = planner.target_speed(15.0);
    planner.update_perception(std::nullopt);
    EXPECT_EQ(planner.perceived_bucket(), 5);
    EXPECT_DOUBLE_EQ(planner.target_speed(15.0), before);
    EXPECT_EQ(planner.consecutive_skips(), 1);
    planner.update_perception(2);
    EXPECT_EQ(planner.consecutive_skips(), 0);
}

TEST(Planner, HeldCommandIsPreviousAcceleration) {
    Planner planner;
    planner.update_perception(0);
    const double fresh = planner.accel_command(2.0, 15.0);  // accelerating
    EXPECT_GT(fresh, 0.0);
    planner.update_perception(std::nullopt);
    EXPECT_DOUBLE_EQ(planner.accel_command(5.0, 15.0), fresh);  // held verbatim
}

TEST(Planner, StaleHoldCannotAccelerate) {
    PlannerConfig cfg;
    cfg.skip_threshold = 3;
    Planner planner(cfg);
    planner.update_perception(0);
    EXPECT_GT(planner.accel_command(1.0, 15.0), 0.0);
    for (int i = 0; i < 3; ++i) planner.update_perception(std::nullopt);
    EXPECT_TRUE(planner.perception_stale());
    EXPECT_LE(planner.accel_command(1.0, 15.0), 0.0);
}

TEST(Planner, BrakingGainIsStrongerThanAcceleration) {
    Planner planner;
    planner.update_perception(0);
    const double accel = planner.accel_command(8.0, 10.0);   // error +2
    planner.update_perception(7);                            // must stop
    const double brake = planner.accel_command(8.0, 10.0);
    EXPECT_GT(accel, 0.0);
    EXPECT_LT(brake, 0.0);
    EXPECT_GT(-brake, accel);  // asymmetric ACC response
    EXPECT_GE(brake, -planner.config().max_brake - 1e-12);
}

TEST(Planner, Validation) {
    PlannerConfig bad;
    bad.max_accel = 0.0;
    EXPECT_THROW(Planner{bad}, std::invalid_argument);
    Planner planner;
    EXPECT_THROW(planner.update_perception(99), std::out_of_range);
}

TEST(CurvatureLimitedSpeed, SlowsForCorners) {
    // Straight then a tight r = 12 arc.
    std::vector<Vec2> pts;
    for (int i = 0; i <= 20; ++i) pts.push_back({3.0 * i, 0.0});
    for (int i = 1; i <= 12; ++i) {
        const double a = -1.5707963 + 1.5707963 * i / 12.0;
        pts.push_back({60.0 + 12.0 * std::cos(a), 12.0 + 12.0 * std::sin(a)});
    }
    Route route("corner", std::move(pts), 12.0);
    PlannerConfig cfg;
    // Far from the corner: full limit.
    EXPECT_NEAR(curvature_limited_speed(route, 0.0, cfg), 12.0, 1e-9);
    // Just before the corner: limited to sqrt(a_lat * r) ~ sqrt(2.2 * 12).
    const double at_corner = curvature_limited_speed(route, 55.0, cfg);
    EXPECT_LT(at_corner, 7.0);
    EXPECT_GT(at_corner, 3.0);
}

TEST(PurePursuit, SteersTowardOffsetRoute) {
    Route route("r", {{0.0, 5.0}, {100.0, 5.0}}, 10.0);
    EgoVehicle ego({0.0, 0.0}, 0.0);  // 5 m right of the route
    ego.set_speed(5.0);
    double s_hint = 0.0;
    const double steer = pure_pursuit_steer(ego, route, s_hint, PlannerConfig{});
    EXPECT_GT(steer, 0.05);  // steer left (positive) toward the route
}

TEST(PurePursuit, ConvergesOntoStraightRoute) {
    Route route("r", {{0.0, 3.0}, {400.0, 3.0}}, 10.0);
    EgoVehicle ego({0.0, 0.0}, 0.0);
    ego.set_speed(8.0);
    double s_hint = 0.0;
    for (int i = 0; i < 600; ++i) {
        const double steer = pure_pursuit_steer(ego, route, s_hint, PlannerConfig{});
        ego.step(0.0, steer, 0.05);
    }
    EXPECT_NEAR(ego.position().y, 3.0, 0.3);
    EXPECT_NEAR(ego.heading(), 0.0, 0.05);
}

}  // namespace
}  // namespace mvreju::av
