// Tests for the net layer the exporter and the serving layer share: the
// EventLoop's registration bookkeeping and dispatch safety on both backends
// (epoll and forced poll), cross-thread stop() waking a parked loop, and a
// full Listener + Conn echo round trip per backend.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/net/conn.hpp"
#include "mvreju/net/event_loop.hpp"
#include "mvreju/net/listener.hpp"

namespace {

using namespace mvreju;

/// Blocking loopback client socket for driving the loop under test.
int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

TEST(NetEventLoopTest, RegistrationBookkeeping) {
    net::EventLoop loop;
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);

    // The self-pipe read end is pre-registered.
    const std::size_t baseline = loop.watched();
    EXPECT_TRUE(loop.add(pipe_fds[0], net::kReadable, [](std::uint32_t) {}));
    EXPECT_TRUE(loop.watching(pipe_fds[0]));
    EXPECT_EQ(loop.watched(), baseline + 1);

    // Double registration and bad arguments are rejected.
    EXPECT_FALSE(loop.add(pipe_fds[0], net::kReadable, [](std::uint32_t) {}));
    EXPECT_FALSE(loop.add(-1, net::kReadable, [](std::uint32_t) {}));
    EXPECT_FALSE(loop.add(pipe_fds[1], net::kReadable, nullptr));

    EXPECT_TRUE(loop.modify(pipe_fds[0], net::kReadable | net::kWritable));
    EXPECT_FALSE(loop.modify(pipe_fds[1], net::kReadable));  // never added

    loop.remove(pipe_fds[0]);
    EXPECT_FALSE(loop.watching(pipe_fds[0]));
    loop.remove(pipe_fds[0]);  // idempotent

    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
}

TEST(NetEventLoopTest, DispatchesReadableAndHonoursTimeout) {
    for (const auto backend :
         {net::EventLoop::Backend::automatic, net::EventLoop::Backend::poll}) {
        net::EventLoop loop(backend);
        int pipe_fds[2];
        ASSERT_EQ(::pipe(pipe_fds), 0);
        int calls = 0;
        std::uint32_t seen = 0;
        ASSERT_TRUE(loop.add(pipe_fds[0], net::kReadable, [&](std::uint32_t ready) {
            ++calls;
            seen = ready;
            char sink[8];
            EXPECT_GT(::read(pipe_fds[0], sink, sizeof sink), 0);
        }));

        EXPECT_EQ(loop.poll_once(0), 0);  // nothing ready yet
        ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
        EXPECT_GE(loop.poll_once(1000), 1);
        EXPECT_EQ(calls, 1);
        EXPECT_TRUE(seen & net::kReadable);

        ::close(pipe_fds[1]);
        ::close(pipe_fds[0]);
        loop.remove(pipe_fds[0]);
    }
}

TEST(NetEventLoopTest, CallbackMayRemoveItselfDuringDispatch) {
    net::EventLoop loop(net::EventLoop::Backend::poll);
    int a[2];
    int b[2];
    ASSERT_EQ(::pipe(a), 0);
    ASSERT_EQ(::pipe(b), 0);
    int calls = 0;
    // Both become readable in the same poll; the first callback removes the
    // *other* registration, which dispatch must re-validate before invoking.
    ASSERT_TRUE(loop.add(a[0], net::kReadable, [&](std::uint32_t) {
        ++calls;
        loop.remove(b[0]);
        loop.remove(a[0]);
    }));
    ASSERT_TRUE(loop.add(b[0], net::kReadable, [&](std::uint32_t) {
        ++calls;
        loop.remove(a[0]);
        loop.remove(b[0]);
    }));
    ASSERT_EQ(::write(a[1], "x", 1), 1);
    ASSERT_EQ(::write(b[1], "x", 1), 1);
    EXPECT_GE(loop.poll_once(1000), 1);
    EXPECT_EQ(calls, 1);  // exactly one fired; the other was unregistered
    for (int fd : {a[0], a[1], b[0], b[1]}) ::close(fd);
}

TEST(NetEventLoopTest, StopFromAnotherThreadWakesParkedLoop) {
    net::EventLoop loop;
    const auto start = std::chrono::steady_clock::now();
    std::thread stopper([&loop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        loop.stop();
    });
    loop.run(/*tick_ms=*/10000);  // would park ~10 s without the self-pipe
    stopper.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
              5000);
    EXPECT_TRUE(loop.stop_requested());
    loop.reset_stop();
    EXPECT_FALSE(loop.stop_requested());
}

TEST(NetEventLoopTest, ListenerConnEchoOnBothBackends) {
    for (const auto backend :
         {net::EventLoop::Backend::automatic, net::EventLoop::Backend::poll}) {
        net::EventLoop loop(backend);
#if defined(__linux__)
        EXPECT_EQ(loop.using_epoll(), backend == net::EventLoop::Backend::automatic);
#endif
        std::string error;
        auto listener = net::Listener::open(
            loop, net::ListenerOptions{},
            [&loop](int fd) {
                auto conn = net::Conn::adopt(loop, fd, [](net::Conn& c) {
                    // Echo and close once a full line arrived.
                    if (c.rx().find('\n') == std::string::npos) return;
                    c.send(c.rx());
                    c.rx().clear();
                    c.close_after_send();
                });
                ASSERT_NE(conn, nullptr);
            },
            &error);
        ASSERT_NE(listener, nullptr) << error;
        ASSERT_GT(listener->port(), 0);

        std::thread service([&loop] { loop.run(10); });
        const int fd = connect_to(listener->port());
        const std::string message = "ping over the event loop\n";
        ASSERT_EQ(::send(fd, message.data(), message.size(), 0),
                  static_cast<ssize_t>(message.size()));
        std::string reply;
        char buf[256];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) break;  // server closed after echoing
            reply.append(buf, static_cast<std::size_t>(n));
        }
        EXPECT_EQ(reply, message);
        ::close(fd);
        loop.stop();
        service.join();
    }
}

TEST(NetEventLoopTest, ListenerRejectsBadOptions) {
    net::EventLoop loop;
    std::string error;
    net::ListenerOptions bad_host;
    bad_host.host = "not-an-address";
    EXPECT_EQ(net::Listener::open(loop, bad_host, [](int) {}, &error), nullptr);
    EXPECT_FALSE(error.empty());

    net::ListenerOptions bad_port;
    bad_port.port = -5;
    EXPECT_EQ(net::Listener::open(loop, bad_port, [](int) {}, &error), nullptr);
}

}  // namespace
