// Robustness tests for the serving wire protocol: clean round trips,
// fragmented delivery, and the guarantee that truncated / oversized /
// garbage frames produce a per-connection error and a closed socket —
// never a crash, never a stuck server. The seeded fuzz cases and the
// over-socket section run under the ASan/UBSan CI job like every test.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mvreju/serve/protocol.hpp"
#include "mvreju/serve/server.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/util/rng.hpp"

namespace {

using namespace mvreju;

constexpr std::size_t kSampleSize = 3 * 16 * 16;

serve::RequestFrame make_request(std::uint64_t id, float fill) {
    serve::RequestFrame request;
    request.frame_id = id;
    request.image.assign(kSampleSize, fill);
    return request;
}

TEST(ServeProtocolTest, RequestRoundTrip) {
    serve::FrameParser parser(kSampleSize);
    std::string buffer = serve::encode_request(make_request(7, 0.25f)) +
                         serve::encode_request(make_request(8, -1.5f));
    std::vector<serve::RequestFrame> out;
    ASSERT_TRUE(parser.consume(buffer, out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(out[0].frame_id, 7u);
    EXPECT_EQ(out[1].frame_id, 8u);
    EXPECT_EQ(out[0].image[0], 0.25f);
    EXPECT_EQ(out[1].image[kSampleSize - 1], -1.5f);
}

TEST(ServeProtocolTest, ResponseRoundTrip) {
    serve::ResponseFrame response;
    response.frame_id = 99;
    response.status = serve::ResponseStatus::decided;
    response.degraded = true;
    response.agreeing = 2;
    response.label = 5;
    response.functional_modules = 3;
    const std::string wire = serve::encode_response(response);

    serve::ResponseFrame decoded;
    ASSERT_TRUE(serve::decode_response(wire.data() + 4, wire.size() - 4, decoded));
    EXPECT_EQ(decoded.frame_id, 99u);
    EXPECT_EQ(decoded.status, serve::ResponseStatus::decided);
    EXPECT_TRUE(decoded.degraded);
    EXPECT_EQ(decoded.agreeing, 2);
    EXPECT_EQ(decoded.label, 5);
    EXPECT_EQ(decoded.functional_modules, 3u);

    EXPECT_FALSE(serve::decode_response(wire.data() + 4, wire.size() - 5, decoded));
}

TEST(ServeProtocolTest, ByteByByteDelivery) {
    serve::FrameParser parser(kSampleSize);
    const std::string wire = serve::encode_request(make_request(42, 1.0f));
    std::string buffer;
    std::vector<serve::RequestFrame> out;
    for (const char byte : wire) {
        buffer.push_back(byte);
        ASSERT_TRUE(parser.consume(buffer, out));
    }
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].frame_id, 42u);
    EXPECT_TRUE(buffer.empty());
}

TEST(ServeProtocolTest, TruncatedFrameWaitsWithoutError) {
    serve::FrameParser parser(kSampleSize);
    const std::string wire = serve::encode_request(make_request(1, 0.0f));
    std::string buffer = wire.substr(0, wire.size() / 2);
    std::vector<serve::RequestFrame> out;
    ASSERT_TRUE(parser.consume(buffer, out));
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(parser.failed());
    buffer += wire.substr(wire.size() / 2);
    ASSERT_TRUE(parser.consume(buffer, out));
    EXPECT_EQ(out.size(), 1u);
}

TEST(ServeProtocolTest, OversizedLengthIsAnError) {
    serve::FrameParser parser(kSampleSize);
    // A hostile 256 MiB length prefix must be refused up front, before any
    // buffering, so it cannot balloon memory.
    std::string buffer = {'\x00', '\x00', '\x00', '\x10'};  // 0x10000000 LE
    std::vector<serve::RequestFrame> out;
    EXPECT_FALSE(parser.consume(buffer, out));
    EXPECT_TRUE(parser.failed());
    EXPECT_NE(parser.error().find("exceeds cap"), std::string::npos);

    // A failed parser stays failed: subsequent valid bytes are refused too.
    std::string valid = serve::encode_request(make_request(1, 0.0f));
    EXPECT_FALSE(parser.consume(valid, out));
}

TEST(ServeProtocolTest, WrongGeometryIsAnError) {
    serve::FrameParser parser(kSampleSize);
    serve::RequestFrame request;
    request.frame_id = 3;
    request.image.assign(kSampleSize / 2, 0.0f);  // wrong sample size
    std::string buffer = serve::encode_request(request);
    std::vector<serve::RequestFrame> out;
    EXPECT_FALSE(parser.consume(buffer, out));
    EXPECT_TRUE(parser.failed());
    EXPECT_NE(parser.error().find("model geometry"), std::string::npos);
}

TEST(ServeProtocolTest, TraceFlagRoundTripsAndStaysV1Compatible) {
    serve::RequestFrame plain = make_request(11, 0.5f);
    serve::RequestFrame traced = make_request(11, 0.5f);
    traced.want_trace = true;
    const std::string v1 = serve::encode_request(plain);
    const std::string v2 = serve::encode_request(traced);
    // The flags byte is strictly additive: same body, one trailing byte.
    ASSERT_EQ(v2.size(), v1.size() + 1);
    EXPECT_EQ(v2.substr(4, v1.size() - 4), v1.substr(4));
    EXPECT_EQ(static_cast<std::uint8_t>(v2.back()), serve::kRequestFlagTrace);

    serve::FrameParser parser(kSampleSize);
    std::string buffer = v2 + v1;  // both generations on one connection
    std::vector<serve::RequestFrame> out;
    ASSERT_TRUE(parser.consume(buffer, out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].want_trace);
    EXPECT_FALSE(out[1].want_trace);
    EXPECT_EQ(out[0].image[0], 0.5f);
}

TEST(ServeProtocolTest, UnknownFlagBitsAreAnError) {
    serve::RequestFrame request = make_request(1, 0.0f);
    request.want_trace = true;
    std::string buffer = serve::encode_request(request);
    buffer.back() = static_cast<char>(0x02);  // an undefined flag bit
    serve::FrameParser parser(kSampleSize);
    std::vector<serve::RequestFrame> out;
    EXPECT_FALSE(parser.consume(buffer, out));
    EXPECT_TRUE(parser.failed());
    EXPECT_NE(parser.error().find("unknown request flags"), std::string::npos);
    EXPECT_TRUE(out.empty());
}

TEST(ServeProtocolTest, ResponseStageAnnexRoundTrip) {
    serve::ResponseFrame response;
    response.frame_id = 77;
    response.status = serve::ResponseStatus::decided;
    response.agreeing = 3;
    response.label = 2;
    response.functional_modules = 3;
    response.has_trace = true;
    for (std::size_t s = 0; s < serve::kStageCount; ++s)
        response.stage_us[s] = static_cast<std::uint32_t>(100 * (s + 1));
    const std::string wire = serve::encode_response(response);
    ASSERT_EQ(wire.size(), 4u + 20u + 4u * serve::kStageCount);

    serve::ResponseFrame decoded;
    ASSERT_TRUE(serve::decode_response(wire.data() + 4, wire.size() - 4, decoded));
    EXPECT_TRUE(decoded.has_trace);
    EXPECT_EQ(decoded.stage_us, response.stage_us);
    EXPECT_EQ(decoded.frame_id, 77u);

    // A trace-less response is the unchanged 20-byte v1 frame, and decoding
    // it zeroes the annex fields.
    serve::ResponseFrame bare;
    bare.frame_id = 78;
    const std::string v1 = serve::encode_response(bare);
    ASSERT_EQ(v1.size(), 4u + 20u);
    ASSERT_TRUE(serve::decode_response(v1.data() + 4, v1.size() - 4, decoded));
    EXPECT_FALSE(decoded.has_trace);
    EXPECT_EQ(decoded.stage_us[0], 0u);

    // A truncated annex is malformed, not partially decoded.
    EXPECT_FALSE(serve::decode_response(wire.data() + 4, wire.size() - 8, decoded));
}

TEST(ServeProtocolTest, SeededGarbageNeverCrashesTheParser) {
    util::Rng rng(1234);
    for (int round = 0; round < 200; ++round) {
        serve::FrameParser parser(kSampleSize);
        const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 512.0));
        std::string buffer;
        for (std::size_t i = 0; i < n; ++i)
            buffer.push_back(static_cast<char>(rng.uniform(0.0, 256.0)));
        std::vector<serve::RequestFrame> out;
        // Garbage either parses as a (meaningless but well-formed) frame,
        // waits for more bytes, or errors — it never crashes or loops.
        (void)parser.consume(buffer, out);
    }
}

/// Blocking loopback client for the over-socket robustness cases.
int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

/// Read until the peer closes (or a 2 s safety timeout, so a wedged server
/// fails the test instead of hanging it); returns everything received.
std::string drain(int fd) {
    timeval timeout{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    std::string received;
    char buf[1024];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        received.append(buf, static_cast<std::size_t>(n));
    }
    return received;
}

TEST(ServeProtocolTest, GarbageOverSocketGetsErrorAndClose) {
    const serve::ModelSet set = serve::make_model_set();
    serve::Server::Options options;
    options.batch_delay_us = 500;
    options.tick_ms = 5;
    serve::Server server(set, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Round 1: a hostile length prefix. The server must answer with one
    // error frame and close this connection only.
    {
        const int fd = connect_to(server.port());
        const char huge[4] = {'\x00', '\x00', '\x00', '\x10'};
        ASSERT_EQ(::send(fd, huge, sizeof huge, 0), 4);
        const std::string received = drain(fd);  // server closes -> drain ends
        ASSERT_GE(received.size(), 4u + 20u);
        serve::ResponseFrame response;
        ASSERT_TRUE(
            serve::decode_response(received.data() + 4, received.size() - 4, response));
        EXPECT_EQ(response.status, serve::ResponseStatus::error);
        ::close(fd);
    }

    // Round 2: seeded random garbage bursts, several connections.
    util::Rng rng(99);
    for (int round = 0; round < 5; ++round) {
        const int fd = connect_to(server.port());
        std::string garbage;
        for (int i = 0; i < 700; ++i)
            garbage.push_back(static_cast<char>(rng.uniform(0.0, 256.0)));
        (void)::send(fd, garbage.data(), garbage.size(), 0);
        (void)drain(fd);  // error response or close; must not hang
        ::close(fd);
    }

    // The server survived every attack: a well-formed client still gets a
    // real answer on a fresh connection.
    {
        const int fd = connect_to(server.port());
        serve::RequestFrame request;
        request.frame_id = 5;
        request.image.assign(set.sample_size(), 0.5f);
        const std::string wire = serve::encode_request(request);
        ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
        std::string received;
        char buf[256];
        while (received.size() < 24) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            ASSERT_GT(n, 0);
            received.append(buf, static_cast<std::size_t>(n));
        }
        serve::ResponseFrame response;
        ASSERT_TRUE(
            serve::decode_response(received.data() + 4, received.size() - 4, response));
        EXPECT_EQ(response.frame_id, 5u);
        EXPECT_NE(response.status, serve::ResponseStatus::error);
        ::close(fd);
    }
    const serve::Server::Stats stats = server.stats();
    EXPECT_GE(stats.protocol_errors, 1u);
    server.stop();
}

TEST(ServeProtocolTest, TraceRequestGetsStageAnnexOverSocket) {
    const serve::ModelSet set = serve::make_model_set();
    serve::Server::Options options;
    options.batch_delay_us = 500;
    options.tick_ms = 5;
    serve::Server server(set, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const int fd = connect_to(server.port());
    serve::RequestFrame request;
    request.frame_id = 9;
    request.want_trace = true;
    request.image.assign(set.sample_size(), 0.25f);
    const std::string wire = serve::encode_request(request);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));

    const std::size_t want = 4 + 20 + 4 * serve::kStageCount;
    std::string received;
    char buf[256];
    while (received.size() < want) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        ASSERT_GT(n, 0);
        received.append(buf, static_cast<std::size_t>(n));
    }
    serve::ResponseFrame response;
    ASSERT_TRUE(
        serve::decode_response(received.data() + 4, received.size() - 4, response));
    EXPECT_EQ(response.frame_id, 9u);
    EXPECT_NE(response.status, serve::ResponseStatus::error);
    EXPECT_TRUE(response.has_trace);
#ifndef MVREJU_OBS_DISABLED  // stamps compile out with observability off
    const auto total =
        response.stage_us[static_cast<std::size_t>(serve::Stage::total)];
    const auto infer =
        response.stage_us[static_cast<std::size_t>(serve::Stage::infer)];
    EXPECT_GT(total, 0u);   // real steady-clock time elapsed rx -> tx
    EXPECT_GE(total, infer);
#endif
    ::close(fd);
    server.stop();
}

}  // namespace
