#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mvreju/av/degraded.hpp"
#include "mvreju/av/scenario.hpp"
#include "mvreju/av/simulation.hpp"
#include "mvreju/av/trust.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::av {
namespace {

std::vector<float> as_vec(const ml::Tensor& t) {
    return {t.data().begin(), t.data().end()};
}

// ---------------------------------------------------------------- parser --

TEST(ScenarioParse, GoldenFreezeWindow) {
    const Scenario s = parse_scenario("scenario s\nat 6 until 16 freeze\n");
    EXPECT_EQ(s.name, "s");
    ASSERT_EQ(s.sensor_faults.size(), 1u);
    EXPECT_EQ(s.sensor_faults[0].kind, CorruptionKind::freeze);
    EXPECT_DOUBLE_EQ(s.sensor_faults[0].begin, 6.0);
    EXPECT_DOUBLE_EQ(s.sensor_faults[0].end, 16.0);
    EXPECT_TRUE(s.any_sensor_fault(10.0));
    EXPECT_FALSE(s.any_sensor_fault(16.0));  // half-open window
    EXPECT_FALSE(s.any_sensor_fault(2.0));
}

TEST(ScenarioParse, GoldenBlankDefaultAndExplicitLevel) {
    const Scenario s =
        parse_scenario("scenario s\nat 5 blank\nat 18 until 24 blank 0.05\n");
    ASSERT_EQ(s.sensor_faults.size(), 2u);
    EXPECT_EQ(s.sensor_faults[0].kind, CorruptionKind::blank);
    EXPECT_DOUBLE_EQ(s.sensor_faults[0].a, 0.0);
    EXPECT_TRUE(std::isinf(s.sensor_faults[0].end));  // open-ended window
    EXPECT_DOUBLE_EQ(s.sensor_faults[1].a, 0.05);
    EXPECT_DOUBLE_EQ(s.sensor_faults[1].end, 24.0);
}

TEST(ScenarioParse, GoldenSaltPepperLowLightOcclude) {
    const Scenario s = parse_scenario(
        "scenario s\n"
        "at 4 until 26 saltpepper 0.18\n"
        "at 5 until 25 lowlight 0.22\n"
        "at 6 until 24 occlude 0.25 0.45\n");
    ASSERT_EQ(s.sensor_faults.size(), 3u);
    EXPECT_EQ(s.sensor_faults[0].kind, CorruptionKind::salt_pepper);
    EXPECT_DOUBLE_EQ(s.sensor_faults[0].a, 0.18);
    EXPECT_EQ(s.sensor_faults[1].kind, CorruptionKind::low_light);
    EXPECT_DOUBLE_EQ(s.sensor_faults[1].a, 0.22);
    EXPECT_EQ(s.sensor_faults[2].kind, CorruptionKind::occlusion);
    EXPECT_DOUBLE_EQ(s.sensor_faults[2].a, 0.25);
    EXPECT_DOUBLE_EQ(s.sensor_faults[2].b, 0.45);
}

TEST(ScenarioParse, GoldenWeightEventsSortedByTime) {
    const Scenario s = parse_scenario(
        "scenario s\n"
        "seed 42\n"
        "at 10 inject 1 3 7\n"
        "at 3 compromise 0\n"
        "at 5 fail 2\n");
    EXPECT_EQ(s.seed, 42u);
    ASSERT_EQ(s.weight_faults.size(), 3u);
    EXPECT_EQ(s.weight_faults[0].kind, WeightFaultKind::compromise);
    EXPECT_DOUBLE_EQ(s.weight_faults[0].at, 3.0);
    EXPECT_EQ(s.weight_faults[0].module, 0);
    EXPECT_EQ(s.weight_faults[1].kind, WeightFaultKind::fail);
    EXPECT_EQ(s.weight_faults[1].module, 2);
    EXPECT_EQ(s.weight_faults[2].kind, WeightFaultKind::inject);
    EXPECT_EQ(s.weight_faults[2].module, 1);
    EXPECT_EQ(s.weight_faults[2].layer, 3u);
    EXPECT_EQ(s.weight_faults[2].seed, 7u);
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
    const Scenario s = parse_scenario(
        "# header comment\n\nscenario s  # trailing\n\n  at 1 freeze # why\n");
    EXPECT_EQ(s.name, "s");
    EXPECT_EQ(s.sensor_faults.size(), 1u);
}

TEST(ScenarioParse, BuiltinsRoundTripThroughText) {
    const auto& names = builtin_scenario_names();
    ASSERT_EQ(names.size(), 7u);
    for (const std::string& name : names) {
        SCOPED_TRACE(name);
        const Scenario s = builtin_scenario(name);
        EXPECT_EQ(s.name, name);
        const std::string canon = to_text(s);
        EXPECT_EQ(to_text(parse_scenario(canon)), canon);
        // The stored source parses to the same canonical form.
        EXPECT_EQ(to_text(parse_scenario(builtin_scenario_text(name))), canon);
    }
    EXPECT_THROW((void)builtin_scenario("nope"), std::invalid_argument);
}

TEST(ScenarioParse, FileRoundTrip) {
    const auto path =
        std::filesystem::temp_directory_path() / "mvreju_scenario_test.scn";
    {
        std::ofstream out(path);
        out << builtin_scenario_text("compound");
    }
    const Scenario s = parse_scenario_file(path);
    EXPECT_EQ(to_text(s), to_text(builtin_scenario("compound")));
    std::filesystem::remove(path);
    EXPECT_THROW((void)parse_scenario_file(path), std::runtime_error);
}

TEST(ScenarioParse, ErrorOffsetsPointAtOffendingToken) {
    // Missing the required `scenario` header.
    try {
        (void)parse_scenario("seed 3\n");
        FAIL() << "expected ScenarioParseError";
    } catch (const ScenarioParseError& e) {
        EXPECT_EQ(e.offset(), 0u);
    }
    // Unknown directive: the offset lands on the bad token itself.
    const std::string bad = "scenario s\nat 1 wobble\n";
    try {
        (void)parse_scenario(bad);
        FAIL() << "expected ScenarioParseError";
    } catch (const ScenarioParseError& e) {
        EXPECT_EQ(e.offset(), bad.find("wobble"));
        EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
    }
    // Malformed number.
    const std::string nan = "scenario s\nat abc freeze\n";
    try {
        (void)parse_scenario(nan);
        FAIL() << "expected ScenarioParseError";
    } catch (const ScenarioParseError& e) {
        EXPECT_EQ(e.offset(), nan.find("abc"));
    }
}

TEST(ScenarioParse, RejectsEmptyUntilAndBadFractions) {
    // until must be strictly after at.
    const std::string rev = "scenario s\nat 5 until 5 freeze\n";
    try {
        (void)parse_scenario(rev);
        FAIL() << "expected ScenarioParseError";
    } catch (const ScenarioParseError& e) {
        EXPECT_GE(e.offset(), rev.find("until"));
    }
    // Fractions live in [0, 1].
    EXPECT_THROW((void)parse_scenario("scenario s\nat 1 saltpepper 1.5\n"),
                 ScenarioParseError);
    // Weight events are instantaneous: no until.
    EXPECT_THROW((void)parse_scenario("scenario s\nat 3 until 5 compromise 0\n"),
                 ScenarioParseError);
    // Trailing junk after a complete directive.
    EXPECT_THROW((void)parse_scenario("scenario s\nat 1 freeze extra\n"),
                 ScenarioParseError);
}

// ---------------------------------------------------------------- player --

ml::Tensor dithered_frame(std::size_t n, util::Rng& rng) {
    ml::Tensor t({2, n, n});
    for (std::size_t h = 0; h < n; ++h)
        for (std::size_t w = 0; w < n; ++w) {
            t.at3(0, h, w) = static_cast<float>(
                std::clamp(0.5 + rng.normal(0.0, 0.06), 0.0, 1.0));
            t.at3(1, h, w) = static_cast<float>(std::clamp(
                1.0 - static_cast<double>(h) / n + rng.normal(0.0, 0.06), 0.0,
                1.0));
        }
    return t;
}

TEST(ScenarioPlayerTest, FreezeRepeatsLastDeliveredFrame) {
    ScenarioPlayer player(parse_scenario("scenario s\nat 1 freeze\n"), 9);
    util::Rng rng(5);
    const ml::Tensor a = dithered_frame(8, rng);
    const ml::Tensor b = dithered_frame(8, rng);
    EXPECT_EQ(as_vec(player.apply(a, 0.0)), as_vec(a));  // pre-window: clean
    EXPECT_EQ(as_vec(player.apply(b, 1.0)), as_vec(a));  // frozen: re-emits a
    EXPECT_EQ(as_vec(player.apply(b, 2.0)), as_vec(a));
    EXPECT_EQ(player.active(1.5), std::vector<CorruptionKind>{CorruptionKind::freeze});
    EXPECT_TRUE(player.active(0.5).empty());
}

TEST(ScenarioPlayerTest, FreezeOnFirstFrameDeliversTheInput) {
    ScenarioPlayer player(parse_scenario("scenario s\nat 0 freeze\n"), 9);
    util::Rng rng(5);
    const ml::Tensor a = dithered_frame(8, rng);
    EXPECT_EQ(as_vec(player.apply(a, 0.0)), as_vec(a));  // nothing to repeat yet
}

TEST(ScenarioPlayerTest, BlankAndLowLightAndOcclusion) {
    util::Rng rng(5);
    const ml::Tensor clean = dithered_frame(8, rng);
    {
        ScenarioPlayer p(parse_scenario("scenario s\nat 0 blank 0.05\n"), 1);
        const ml::Tensor out = p.apply(clean, 0.0);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_FLOAT_EQ(out[i], 0.05f);
    }
    {
        ScenarioPlayer p(parse_scenario("scenario s\nat 0 lowlight 0.25\n"), 1);
        const ml::Tensor out = p.apply(clean, 0.0);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_FLOAT_EQ(out[i], clean[i] * 0.25f);
    }
    {
        ScenarioPlayer p(
            parse_scenario("scenario s\nat 0 occlude 0.25 0.5\n"), 1);
        const ml::Tensor out = p.apply(clean, 0.0);
        for (std::size_t c = 0; c < 2; ++c)
            for (std::size_t h = 0; h < 8; ++h)
                for (std::size_t w = 0; w < 8; ++w) {
                    const bool occluded = h >= 2 && h < 6;  // rows [2, 6)
                    EXPECT_FLOAT_EQ(out.at3(c, h, w),
                                    occluded ? 0.0f : clean.at3(c, h, w));
                }
    }
}

TEST(ScenarioPlayerTest, SaltPepperIsSeedDeterministic) {
    const Scenario s = parse_scenario("scenario s\nat 0 saltpepper 0.3\n");
    util::Rng rng(5);
    std::vector<ml::Tensor> frames;
    for (int i = 0; i < 5; ++i) frames.push_back(dithered_frame(10, rng));

    ScenarioPlayer p1(s, 17), p2(s, 17), p3(s, 18);
    bool any_differs_across_seeds = false;
    std::size_t corrupted = 0;
    for (int i = 0; i < 5; ++i) {
        const ml::Tensor a = p1.apply(frames[i], 0.1 * i);
        const ml::Tensor b = p2.apply(frames[i], 0.1 * i);
        const ml::Tensor c = p3.apply(frames[i], 0.1 * i);
        EXPECT_EQ(as_vec(a), as_vec(b));  // same seed: bit-identical
        if (as_vec(a) != as_vec(c)) any_differs_across_seeds = true;
        for (std::size_t j = 0; j < a.size(); ++j)
            if (a[j] != frames[i][j]) {
                ++corrupted;
                EXPECT_TRUE(a[j] == 0.0f || a[j] == 1.0f);
            }
    }
    EXPECT_TRUE(any_differs_across_seeds);
    // ~30% of 5*200 pixels; loose two-sided bound.
    EXPECT_GT(corrupted, 150u);
    EXPECT_LT(corrupted, 450u);
}

TEST(ScenarioPlayerTest, WeightFaultsDeliverExactlyOnce) {
    ScenarioPlayer player(parse_scenario(
        "scenario s\nat 3 compromise 0\nat 10 inject 1 2 7\n"));
    EXPECT_TRUE(player.due_weight_faults(2.9).empty());
    const auto first = player.due_weight_faults(5.0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].kind, WeightFaultKind::compromise);
    EXPECT_TRUE(player.due_weight_faults(5.0).empty());  // already delivered
    const auto second = player.due_weight_faults(20.0);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].kind, WeightFaultKind::inject);
    EXPECT_TRUE(player.due_weight_faults(99.0).empty());
}

// ----------------------------------------------------------------- trust --

TEST(TrustMonitorTest, CleanFramesStayOkAtFullReliability) {
    TrustMonitor trust;
    util::Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(trust.update(dithered_frame(12, rng), 0.05), SensorStatus::ok);
    }
    EXPECT_DOUBLE_EQ(trust.reliability(), 1.0);
    EXPECT_GT(trust.stats().delta, 0.02);   // dither keeps frames moving
    EXPECT_LT(trust.stats().ramp_dev, 0.08);
}

TEST(TrustMonitorTest, DetectsFrozenBlankAndCorruptedFrames) {
    util::Rng rng(3);
    const ml::Tensor clean = dithered_frame(12, rng);
    {
        TrustMonitor trust;
        (void)trust.update(clean, 0.05);
        EXPECT_EQ(trust.update(clean, 0.05), SensorStatus::frozen);
        EXPECT_LT(trust.reliability(), 1.0);
    }
    {
        TrustMonitor trust;
        EXPECT_EQ(trust.update(ml::Tensor({2, 12, 12}, 0.0f), 0.05),
                  SensorStatus::blank);
    }
    {
        TrustMonitor trust;
        ml::Tensor impulsed = clean;
        util::Rng imp(9);
        for (std::size_t i = 0; i < impulsed.size(); ++i)
            if (imp.bernoulli(0.25)) impulsed[i] = 1.0f;
        EXPECT_EQ(trust.update(impulsed, 0.05), SensorStatus::corrupted);
        EXPECT_GT(trust.stats().impulse, 0.10);
    }
}

TEST(TrustMonitorTest, ComputeStatsMatchesContract) {
    util::Rng rng(3);
    const ml::Tensor clean = dithered_frame(12, rng);
    const FrameStats first = TrustMonitor::compute_stats(clean, nullptr);
    EXPECT_DOUBLE_EQ(first.delta, 1.0);  // no previous frame: never frozen
    const FrameStats second = TrustMonitor::compute_stats(clean, &clean);
    EXPECT_DOUBLE_EQ(second.delta, 0.0);
    EXPECT_GT(second.entropy, 0.2);
    const FrameStats blank =
        TrustMonitor::compute_stats(ml::Tensor({2, 12, 12}, 0.3f), &clean);
    EXPECT_NEAR(blank.luma, 0.3, 1e-6);
    EXPECT_NEAR(blank.entropy, 0.0, 1e-9);  // single-bin histogram
}

TEST(TrustMonitorTest, DecayIsFasterThanRecovery) {
    TrustMonitor trust;
    util::Rng rng(3);
    (void)trust.update(dithered_frame(12, rng), 0.05);
    const ml::Tensor blank({2, 12, 12}, 0.0f);
    (void)trust.update(blank, 0.05);
    const double after_one_fault = trust.reliability();
    ASSERT_LT(after_one_fault, 1.0);
    (void)trust.update(dithered_frame(12, rng), 0.05);
    const double after_one_recovery = trust.reliability();
    EXPECT_GT(1.0 - after_one_fault,
              after_one_recovery - after_one_fault);  // asymmetric dynamics
    // Voter skips erode trust even when frames look clean.
    TrustMonitor vote_trust;
    (void)vote_trust.update(dithered_frame(12, rng), 0.05);
    vote_trust.observe_vote(false, 0.05);
    EXPECT_LT(vote_trust.reliability(), 1.0);
    vote_trust.observe_vote(true, 0.05);  // decided votes cost nothing
    EXPECT_LE(vote_trust.reliability(), 1.0);
}

// -------------------------------------------------------------- degraded --

TEST(DegradedControllerTest, EscalatesImmediatelyAcrossRungs) {
    DegradedModeController ctl(3);
    EXPECT_EQ(ctl.update(0.95), DegradedMode::normal);
    EXPECT_EQ(ctl.update(0.1), DegradedMode::minimal_risk_stop);  // multi-rung
    EXPECT_GE(ctl.transitions(), 1);
    EXPECT_THROW(DegradedModeController(0), std::invalid_argument);
}

TEST(DegradedControllerTest, RecoveryIsHystereticAndOneRungAtATime) {
    DegradedModeController ctl(3);
    (void)ctl.update(0.1);
    ASSERT_EQ(ctl.mode(), DegradedMode::minimal_risk_stop);
    // stop entry threshold 0.25 + margin 0.1: 0.3 is not enough to recover.
    for (int i = 0; i < 30; ++i) (void)ctl.update(0.3);
    EXPECT_EQ(ctl.mode(), DegradedMode::minimal_risk_stop);
    // High reliability de-escalates one rung per 10-frame dwell.
    for (int i = 0; i < 10; ++i) (void)ctl.update(0.99);
    EXPECT_EQ(ctl.mode(), DegradedMode::reduced_resolution);
    for (int i = 0; i < 10; ++i) (void)ctl.update(0.99);
    EXPECT_EQ(ctl.mode(), DegradedMode::drop_versions);
    for (int i = 0; i < 10; ++i) (void)ctl.update(0.99);
    EXPECT_EQ(ctl.mode(), DegradedMode::normal);
}

TEST(DegradedControllerTest, DropsPersistentDissenterButKeepsTwoVersions) {
    DegradedModeController ctl(3);
    (void)ctl.update(0.7);  // rung: drop_versions
    ASSERT_EQ(ctl.mode(), DegradedMode::drop_versions);
    for (int i = 0; i < 40; ++i) ctl.observe_votes({true, false, false});
    EXPECT_GT(ctl.dissent(0), 0.9);
    EXPECT_LT(ctl.dissent(1), 0.1);
    EXPECT_TRUE(ctl.version_dropped(0));
    EXPECT_FALSE(ctl.version_dropped(1));
    // Two persistent dissenters: at most one may be dropped (floor of 2 kept).
    DegradedModeController floor(3);
    (void)floor.update(0.7);
    for (int i = 0; i < 40; ++i) floor.observe_votes({true, true, false});
    int dropped = 0;
    for (int m = 0; m < 3; ++m) dropped += floor.version_dropped(m) ? 1 : 0;
    EXPECT_LE(dropped, 1);
    // Below the drop rung nothing is excluded regardless of dissent.
    DegradedModeController calm(3);
    for (int i = 0; i < 40; ++i) calm.observe_votes({true, false, false});
    (void)calm.update(0.95);
    EXPECT_FALSE(calm.version_dropped(0));
}

TEST(DegradedControllerTest, ReducedResolutionMeanPoolsInPlace) {
    ml::Tensor frame({1, 4, 4});
    for (std::size_t i = 0; i < frame.size(); ++i)
        frame[i] = static_cast<float>(i);
    const ml::Tensor pooled = reduced_resolution(frame);
    ASSERT_EQ(pooled.shape(), frame.shape());
    // Top-left 2x2 block of a row-major 4x4 ramp: (0 + 1 + 4 + 5) / 4.
    EXPECT_FLOAT_EQ(pooled.at3(0, 0, 0), 2.5f);
    EXPECT_FLOAT_EQ(pooled.at3(0, 0, 1), 2.5f);
    EXPECT_FLOAT_EQ(pooled.at3(0, 1, 0), 2.5f);
    EXPECT_FLOAT_EQ(pooled.at3(0, 3, 3), (10.f + 11.f + 14.f + 15.f) / 4.f);
    // A lone impulse is attenuated 4x by the pooling window.
    ml::Tensor impulse({1, 4, 4}, 0.0f);
    impulse.at3(0, 0, 0) = 1.0f;
    EXPECT_FLOAT_EQ(reduced_resolution(impulse).at3(0, 0, 0), 0.25f);
}

TEST(DissentingProposals, FlagsOnlyDisagreeingVersions) {
    const std::vector<std::optional<Detection>> proposals{
        Detection{3}, Detection{6}, std::nullopt};
    core::VoteResult<Detection> decided;
    decided.kind = core::VoteKind::decided;
    decided.value = Detection{3};
    const auto flags =
        core::dissenting_proposals(proposals, decided, DetectionNear{});
    ASSERT_EQ(flags.size(), 3u);
    EXPECT_FALSE(flags[0]);
    EXPECT_TRUE(flags[1]);
    EXPECT_FALSE(flags[2]);  // absent proposal cannot dissent
    core::VoteResult<Detection> skipped;
    skipped.kind = core::VoteKind::skipped;
    const auto none =
        core::dissenting_proposals(proposals, skipped, DetectionNear{});
    EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
}

// ------------------------------------------------------------ end-to-end --

/// Small, fast detector set shared by the whole suite (trained once; same
/// cache as av_perception_simulation_test so CI reuses the artifacts).
const DetectorSet& test_detectors() {
    static const DetectorSet set = [] {
        SensorConfig sensor;
        DetectorTrainOptions opts;
        opts.train_samples = 1200;
        opts.eval_samples = 400;
        opts.epochs = 4;
        opts.cache_dir = std::filesystem::temp_directory_path() / "mvreju_test_detectors";
        return prepare_detectors(sensor, opts);
    }();
    return set;
}

std::vector<double> metrics_key(const RunMetrics& m) {
    return {static_cast<double>(m.total_frames),
            static_cast<double>(m.decided_frames),
            static_cast<double>(m.skipped_frames),
            static_cast<double>(m.unsafe_decided_frames),
            static_cast<double>(m.collision_frames),
            static_cast<double>(m.sensor_fault_frames),
            static_cast<double>(m.stop_frames),
            static_cast<double>(m.reduced_frames),
            static_cast<double>(m.dropped_proposals),
            static_cast<double>(m.degraded_transitions),
            m.min_trust,
            m.mean_trust,
            m.route_completed};
}

TEST(ScenarioReplay, BitIdenticalAcrossThreadCounts) {
    const auto towns = make_towns();
    const Route& route = towns[0].routes[0];
    const Scenario scenario = builtin_scenario("salt_pepper");
    constexpr int kCells = 6;

    const auto grid = [&](std::size_t threads) {
        std::vector<std::vector<double>> keys(kCells);
        util::parallel_for(
            kCells,
            [&](std::size_t i) {
                ScenarioConfig cfg;
                cfg.horizon = 10.0;
                cfg.scenario = &scenario;
                cfg.trust_policy = true;
                cfg.seed = 100 + i;
                keys[i] = metrics_key(run_scenario(route, test_detectors(), cfg));
            },
            threads);
        return keys;
    };
    const auto serial = grid(1);
    EXPECT_EQ(grid(4), serial);
    EXPECT_EQ(grid(8), serial);
    // Distinct seeds do explore distinct trajectories.
    EXPECT_NE(serial[0], serial[1]);
}

TEST(ScenarioReplay, PolicyEngagesOnFreezeAndStaysQuietWhenClean) {
    const auto towns = make_towns();
    const Route& route = towns[0].routes[0];
    const Scenario freeze = builtin_scenario("freeze");

    ScenarioConfig cfg;
    cfg.horizon = 12.0;
    cfg.scenario = &freeze;
    cfg.seed = 5;
    cfg.trust_policy = true;
    const RunMetrics policy = run_scenario(route, test_detectors(), cfg);
    EXPECT_GT(policy.sensor_fault_frames, 0);
    EXPECT_GT(policy.stop_frames, 0);
    EXPECT_LT(policy.min_trust, 0.5);
    EXPECT_GT(policy.degraded_transitions, 0);

    cfg.trust_policy = false;  // accounting stays zeroed without the monitor
    const RunMetrics baseline = run_scenario(route, test_detectors(), cfg);
    EXPECT_EQ(baseline.sensor_fault_frames, 0);
    EXPECT_EQ(baseline.stop_frames, 0);
    EXPECT_DOUBLE_EQ(baseline.min_trust, 1.0);

    // On a clean run the ladder must not perturb the system at all.
    const Scenario clear = builtin_scenario("clear");
    ScenarioConfig clean;
    clean.horizon = 12.0;
    clean.scenario = &clear;
    clean.seed = 5;
    clean.trust_policy = true;
    const RunMetrics with_policy = run_scenario(route, test_detectors(), clean);
    clean.trust_policy = false;
    const RunMetrics no_policy = run_scenario(route, test_detectors(), clean);
    EXPECT_EQ(with_policy.decided_frames, no_policy.decided_frames);
    EXPECT_EQ(with_policy.unsafe_decided_frames, no_policy.unsafe_decided_frames);
    EXPECT_EQ(with_policy.collision_frames, no_policy.collision_frames);
    EXPECT_EQ(with_policy.stop_frames, 0);
}

}  // namespace
}  // namespace mvreju::av
