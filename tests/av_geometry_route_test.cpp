#include <gtest/gtest.h>

#include "mvreju/av/geometry.hpp"
#include "mvreju/av/route.hpp"

namespace mvreju::av {
namespace {

TEST(Vec2, BasicAlgebra) {
    Vec2 a{1.0, 2.0};
    Vec2 b{3.0, -1.0};
    EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
    EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
    EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
    EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
    EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
    EXPECT_EQ(a.perp(), (Vec2{-2.0, 1.0}));
}

TEST(Vec2, NormalizedHandlesZero) {
    EXPECT_NEAR((Vec2{0.0, 5.0}).normalized().y, 1.0, 1e-12);
    // Zero vector falls back to unit x rather than NaN.
    EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{1.0, 0.0}));
}

TEST(WrapAngle, StaysInRange) {
    for (double a : {-10.0, -3.2, 0.0, 3.2, 10.0, 100.0}) {
        const double w = wrap_angle(a);
        EXPECT_GT(w, -3.1415927);
        EXPECT_LE(w, 3.1415927);
        // Same angle modulo 2*pi.
        EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
        EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
    }
}

TEST(Obb, OverlapObviousCases) {
    Obb a{{0.0, 0.0}, 2.0, 1.0, 0.0};
    Obb near{{1.0, 0.5}, 2.0, 1.0, 0.0};
    Obb far{{10.0, 0.0}, 2.0, 1.0, 0.0};
    EXPECT_TRUE(overlaps(a, near));
    EXPECT_TRUE(overlaps(near, a));
    EXPECT_FALSE(overlaps(a, far));
}

TEST(Obb, RotationMatters) {
    // Two long thin boxes crossing at 90 degrees overlap at the origin...
    Obb h{{0.0, 0.0}, 5.0, 0.5, 0.0};
    Obb v{{0.0, 0.0}, 5.0, 0.5, 1.5707963};
    EXPECT_TRUE(overlaps(h, v));
    // ...and a 45-degree square whose axis-aligned bounding box reaches the
    // unit square but whose actual footprint does not must NOT overlap
    // (this is the case a naive AABB test gets wrong).
    Obb square{{0.0, 0.0}, 1.0, 1.0, 0.0};
    Obb diamond{{2.3, 2.3}, 1.0, 1.0, 0.7853981634};
    EXPECT_FALSE(overlaps(square, diamond));
    Obb diamond_close{{1.5, 1.5}, 1.0, 1.0, 0.7853981634};
    EXPECT_TRUE(overlaps(square, diamond_close));
}

TEST(Obb, TouchingCountsAsOverlap) {
    Obb a{{0.0, 0.0}, 1.0, 1.0, 0.0};
    Obb b{{2.0, 0.0}, 1.0, 1.0, 0.0};  // shares the edge x = 1
    EXPECT_TRUE(overlaps(a, b));
    Obb c{{2.001, 0.0}, 1.0, 1.0, 0.0};
    EXPECT_FALSE(overlaps(a, c));
}

TEST(ToLocal, TransformsIntoBoxFrame) {
    Obb frame{{1.0, 2.0}, 2.0, 1.0, 1.5707963};  // facing +y
    const Vec2 local = to_local(frame, {1.0, 5.0});
    EXPECT_NEAR(local.x, 3.0, 1e-6);  // 3 ahead
    EXPECT_NEAR(local.y, 0.0, 1e-6);
}

TEST(Route, ValidatesConstruction) {
    EXPECT_THROW(Route("r", {{0.0, 0.0}}, 10.0), std::invalid_argument);
    EXPECT_THROW(Route("r", {{0.0, 0.0}, {1.0, 0.0}}, 0.0), std::invalid_argument);
    EXPECT_THROW(Route("r", {{0.0, 0.0}, {0.0, 0.0}}, 10.0), std::invalid_argument);
}

TEST(Route, ArcLengthParameterisation) {
    Route route("r", {{0.0, 0.0}, {10.0, 0.0}, {10.0, 5.0}}, 10.0);
    EXPECT_DOUBLE_EQ(route.length(), 15.0);
    EXPECT_EQ(route.point_at(0.0), (Vec2{0.0, 0.0}));
    EXPECT_EQ(route.point_at(10.0), (Vec2{10.0, 0.0}));
    EXPECT_NEAR(route.point_at(12.5).y, 2.5, 1e-12);
    // Clamping beyond both ends.
    EXPECT_EQ(route.point_at(-5.0), (Vec2{0.0, 0.0}));
    EXPECT_EQ(route.point_at(99.0), (Vec2{10.0, 5.0}));
}

TEST(Route, HeadingFollowsSegments) {
    Route route("r", {{0.0, 0.0}, {10.0, 0.0}, {10.0, 5.0}}, 10.0);
    EXPECT_NEAR(route.heading_at(5.0), 0.0, 1e-12);
    EXPECT_NEAR(route.heading_at(12.0), 1.5707963, 1e-6);
}

TEST(Route, CurvatureZeroOnStraightPositiveOnArc) {
    Route straight("s", {{0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}}, 10.0);
    EXPECT_NEAR(straight.curvature_at(50.0), 0.0, 1e-9);

    // Quarter circle of radius 20: curvature ~ 1/20.
    std::vector<Vec2> arc;
    for (int i = 0; i <= 20; ++i) {
        const double a = 1.5707963 * i / 20.0;
        arc.push_back({20.0 * std::cos(a), 20.0 * std::sin(a)});
    }
    Route curved("c", std::move(arc), 10.0);
    // Polyline quantisation makes the estimate coarse; +-30% is fine here.
    EXPECT_NEAR(curved.curvature_at(curved.length() / 2.0), 1.0 / 20.0, 0.015);
}

TEST(Route, ProjectFindsClosestPoint) {
    Route route("r", {{0.0, 0.0}, {100.0, 0.0}}, 10.0);
    EXPECT_NEAR(route.project({30.0, 5.0}, 25.0), 30.0, 1e-9);
    // The search window is local: a far hint cannot see the global optimum.
    EXPECT_NEAR(route.project({30.0, 5.0}, 90.0, 10.0), 80.0, 1e-9);
}

TEST(Towns, FourTownsEightRoutes) {
    const auto towns = make_towns();
    ASSERT_EQ(towns.size(), 4u);
    const auto refs = evaluation_routes(towns);
    EXPECT_EQ(refs.size(), 8u);
    for (const auto& town : towns) {
        EXPECT_EQ(town.routes.size(), 2u);
        for (const auto& route : town.routes) {
            // Long enough for a ~30 s drive behind traffic.
            EXPECT_GT(route.length(), 150.0) << route.name();
            EXPECT_GT(route.speed_limit(), 5.0);
        }
    }
}

TEST(Towns, RoutesHaveDistinctNames) {
    const auto towns = make_towns();
    std::vector<std::string> names;
    for (const auto& town : towns)
        for (const auto& route : town.routes) names.push_back(route.name());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(RenderAscii, ContainsMarkers) {
    const auto towns = make_towns();
    const std::string art = render_ascii(towns[0].routes[0]);
    EXPECT_NE(art.find('o'), std::string::npos);  // start
    EXPECT_NE(art.find('*'), std::string::npos);  // end
    EXPECT_NE(art.find('#'), std::string::npos);  // path
    EXPECT_NE(art.find("Town02#1"), std::string::npos);
    EXPECT_THROW((void)render_ascii(towns[0].routes[0], 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mvreju::av
