// Golden tests for the fleet dashboard renderer behind tools/fleet_top:
// parse() accepts exactly the /fleet v1 schema, render() is a pure
// deterministic function of the document (the property that makes
// `fleet_top --from saved.json` goldenable), and hand-built documents
// render the exact header/status/table lines we promise operators.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mvreju/serve/dashboard.hpp"
#include "mvreju/serve/fleet_stats.hpp"
#include "mvreju/serve/session.hpp"
#include "mvreju/serve/synthetic.hpp"

namespace {

using namespace mvreju;

serve::FleetStats::Options local_options() {
    serve::FleetStats::Options options;
    options.publish_metrics = false;
    return options;
}

serve::FrameTrace make_trace(std::uint64_t start_us, std::uint64_t parse_us,
                             std::uint64_t queue_us, std::uint64_t dispatch_us,
                             std::uint64_t infer_us, std::uint64_t vote_us,
                             std::uint64_t tx_us) {
    serve::FrameTrace trace;
    std::uint64_t at = start_us;
    trace.stamp(serve::TracePoint::rx, at);
    trace.stamp(serve::TracePoint::enqueue, at += parse_us);
    trace.stamp(serve::TracePoint::formed, at += queue_us);
    trace.stamp(serve::TracePoint::infer_start, at += dispatch_us);
    trace.stamp(serve::TracePoint::infer_end, at += infer_us);
    trace.stamp(serve::TracePoint::vote, at += vote_us);
    trace.stamp(serve::TracePoint::tx, at += tx_us);
    return trace;
}

/// Two streams, one breaching frame: small enough to pin exact lines.
serve::FleetStats make_small_fleet_stats() {
    serve::FleetStats stats(local_options());

    serve::FrameObservation clean;
    clean.stream = 1;
    clean.frame = 1;
    clean.trace = make_trace(1'001, 100, 200, 50, 800, 30, 20);
    clean.status = serve::ResponseStatus::decided;
    clean.latency_ms = 1.2;
    clean.slo_budget_ms = 5.0;
    stats.observe(clean, 2'000'000);

    serve::FrameObservation breaching;
    breaching.stream = 2;
    breaching.frame = 2;
    breaching.trace = make_trace(2'001, 100, 50, 50, 9'000, 30, 20);
    breaching.status = serve::ResponseStatus::decided;
    breaching.latency_ms = 9.25;
    breaching.slo_budget_ms = 5.0;
    stats.observe(breaching, 3'000'000);

    return stats;
}

/// Test-local copies of the renderer's column rules: pinning the widths
/// here makes the golden rows explicit instead of hand-counted spaces.
std::string pad_right(const std::string& s, std::size_t width) {
    std::string out = s;
    while (out.size() < width) out += ' ';
    return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
    std::string out;
    while (out.size() + s.size() < width) out += ' ';
    return out + s;
}

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t end = text.find('\n', start);
        lines.push_back(text.substr(start, end - start));
        if (end == std::string::npos) break;
        start = end + 1;
    }
    return lines;
}

// These goldens depend on FrameTrace stamping, which compiles out under
// -DMVREJU_OBS=OFF (digests then stay empty).
#ifndef MVREJU_OBS_DISABLED

TEST(ServeDashboardTest, HandBuiltDocumentRendersExactLines) {
    const serve::FleetStats stats = make_small_fleet_stats();
    const std::string json = stats.to_json(3'999'999, /*include_meta=*/false);

    const serve::dashboard::FleetDoc doc = serve::dashboard::parse(json);
    EXPECT_EQ(doc.schema, "mvreju.fleet.v1");
    EXPECT_EQ(doc.streams, 2u);
    EXPECT_EQ(doc.frames, 2u);
    EXPECT_EQ(doc.decided, 2u);
    EXPECT_EQ(doc.slo_breaches, 1u);
    ASSERT_EQ(doc.stages.size(), serve::kStageCount);
    EXPECT_EQ(doc.stages[0].name, "parse");
    EXPECT_EQ(doc.stages[0].count, 2u);
    ASSERT_EQ(doc.worst.size(), 2u);
    EXPECT_EQ(doc.worst[0].stream, 2u);  // the breaching stream ranks worst
    EXPECT_EQ(doc.worst[0].breaches, 1u);

    const std::vector<std::string> lines = lines_of(serve::dashboard::render(doc));
    ASSERT_GE(lines.size(), 8u);
    EXPECT_EQ(lines[0],
              "fleet @ 4.000s  window 4.0s  streams 2  frames 2  backend scalar");
    EXPECT_EQ(lines[1],
              "status  decided 2  skipped 0  no_output 0  shed 0  error 0");
    EXPECT_EQ(lines[2], "        degraded 0  slo_breaches 1");
    // The stage table header is fixed-width; downstream tooling and humans
    // both key off these exact columns.
    EXPECT_EQ(lines[4], pad_right("stage", 10) + pad_left("count", 8) +
                            pad_left("mean_ms", 10) + pad_left("p50_ms", 10) +
                            pad_left("p90_ms", 10) + pad_left("p99_ms", 10) +
                            pad_left("max_ms", 10) + pad_left("breaches", 10));
    EXPECT_EQ(lines[5].substr(0, 18), pad_right("parse", 10) + pad_left("2", 8));
    EXPECT_NE(lines[5].find(pad_left("0.100", 10)), std::string::npos);  // 100 us
}

TEST(ServeDashboardTest, RenderIsDeterministic) {
    // Two independently-built identical stats: same bytes out, end to end.
    const std::string a = serve::dashboard::render(serve::dashboard::parse(
        make_small_fleet_stats().to_json(3'999'999, false)));
    const std::string b = serve::dashboard::render(serve::dashboard::parse(
        make_small_fleet_stats().to_json(3'999'999, false)));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

#endif  // MVREJU_OBS_DISABLED

TEST(ServeDashboardTest, SeededFleetRoundTripsByteIdentical) {
    // The full pipeline `fleet_top --from` exercises: a seeded virtual-time
    // fleet's document parses and renders to the same bytes on every rerun.
    serve::FleetOptions options;
    options.streams = 12;
    options.frame_rate_hz = 40.0;
    options.frames_per_stream = 5;
    options.seed = 13;
    options.batch_max = 16;
    options.batch_delay_us = 3000;
    options.shedding = false;
    options.slo_budget_ms = 1e9;
    const serve::ModelSet set = serve::make_model_set();

    serve::FleetStats first;
    (void)serve::run_fleet(set, options, &first);
    serve::FleetStats second;
    (void)serve::run_fleet(set, options, &second);

    const std::string render_a = serve::dashboard::render(
        serve::dashboard::parse(first.to_json(1'000'000, false)));
    const std::string render_b = serve::dashboard::render(
        serve::dashboard::parse(second.to_json(1'000'000, false)));
    EXPECT_EQ(render_a, render_b);
    EXPECT_NE(render_a.find("fleet @ 1.000s"), std::string::npos);
    EXPECT_NE(render_a.find("worst streams"), std::string::npos);
    for (std::size_t s = 0; s < serve::kStageCount; ++s)
        EXPECT_NE(render_a.find(serve::stage_name(static_cast<serve::Stage>(s))),
                  std::string::npos);
}

#ifndef MVREJU_OBS_DISABLED

TEST(ServeDashboardTest, UnreachedStagesRenderDashes) {
    serve::FleetStats stats(local_options());
    serve::FrameObservation shed;
    shed.stream = 4;
    shed.frame = 1;
    shed.trace.stamp(serve::TracePoint::rx, 5'000);
    shed.trace.stamp(serve::TracePoint::tx, 6'000);
    shed.status = serve::ResponseStatus::shed;
    stats.observe(shed, 10'000);

    const std::string render = serve::dashboard::render(
        serve::dashboard::parse(stats.to_json(10'000, false)));
    // Interior stages were never reached: count 0, quantile cells dashed.
    std::string infer_row = pad_right("infer", 10) + pad_left("0", 8);
    for (int c = 0; c < 5; ++c) infer_row += pad_left("-", 10);
    infer_row += pad_left("0", 10);
    EXPECT_NE(render.find(infer_row + "\n"), std::string::npos);
    // total was bounded (rx -> tx, 1000 us), so it has real cells.
    EXPECT_NE(render.find(pad_right("total", 10) + pad_left("1", 8) +
                          pad_left("1.000", 10)),
              std::string::npos);
}

TEST(ServeDashboardTest, CpuAttributionAddsColumnOnlyWhenPresent) {
    serve::FleetStats stats(local_options());

    // No cpu_by_stage block: the classic layout — no cpu% header cell.
    const std::string plain = serve::dashboard::render(
        serve::dashboard::parse(stats.to_json(10'000, false)));
    EXPECT_EQ(plain.find("cpu%"), std::string::npos);

    // With attribution: a cpu% column keyed by stage name, "-" for stages
    // the profiler never tagged, and a footer for tags with no latency row.
    stats.set_cpu_by_stage(
        {{"infer", 90, 0.75}, {"parse", 18, 0.15}, {"untagged", 12, 0.1}});
    const serve::dashboard::FleetDoc doc =
        serve::dashboard::parse(stats.to_json(10'000, false));
    ASSERT_EQ(doc.cpu_by_stage.size(), 3u);
    EXPECT_EQ(doc.cpu_by_stage[0].stage, "infer");
    EXPECT_EQ(doc.cpu_by_stage[0].samples, 90u);
    EXPECT_DOUBLE_EQ(doc.cpu_by_stage[0].fraction, 0.75);

    const std::string render = serve::dashboard::render(doc);
    EXPECT_NE(render.find(pad_left("cpu%", 8) + "\n"), std::string::npos);
    EXPECT_NE(render.find(pad_left("75.0", 8)), std::string::npos);   // infer
    EXPECT_NE(render.find(pad_left("15.0", 8)), std::string::npos);   // parse
    // queue has latency cells but no CPU tag: dash in the cpu column.
    const std::size_t queue_at = render.find("\nqueue");
    ASSERT_NE(queue_at, std::string::npos);
    const std::size_t queue_end = render.find('\n', queue_at + 1);
    EXPECT_EQ(render.substr(queue_end - 8, 8), pad_left("-", 8));
    // untagged samples have no stage row: reported in the footer instead.
    EXPECT_NE(render.find("cpu other: untagged 10.0%"), std::string::npos);
}

#endif  // MVREJU_OBS_DISABLED

TEST(ServeDashboardTest, ParseRejectsForeignDocuments) {
    EXPECT_THROW(serve::dashboard::parse("{\"schema\": \"bogus.v9\"}"),
                 std::runtime_error);
    EXPECT_THROW(serve::dashboard::parse("not json at all"), std::exception);
    EXPECT_THROW(serve::dashboard::parse("{\"now_us\": 3}"), std::exception);
}

}  // namespace
