#include "mvreju/dspn/text_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mvreju/dspn/solver.hpp"

namespace mvreju::dspn {
namespace {

/// Constant-rate variant of the paper's Fig. 2 net (single-server rates are
/// constants, so the whole reactive model is expressible in text).
PetriNet reactive_net() {
    PetriNet net;
    auto pmh = net.add_place("Pmh", 3);
    auto pmc = net.add_place("Pmc");
    auto pmf = net.add_place("Pmf");
    auto tc = net.add_exponential("Tc", 1.0 / 1523.0);
    net.add_input_arc(tc, pmh);
    net.add_output_arc(tc, pmc);
    auto tf = net.add_exponential("Tf", 1.0 / 1523.0);
    net.add_input_arc(tf, pmc);
    net.add_output_arc(tf, pmf);
    auto tr = net.add_exponential("Tr", 2.0);
    net.add_input_arc(tr, pmf);
    net.add_output_arc(tr, pmh);
    return net;
}

TEST(TextFormat, RoundTripPreservesStructure) {
    const PetriNet original = reactive_net();
    const std::string text = to_text(original);
    const PetriNet reloaded = from_text(text);

    EXPECT_EQ(reloaded.place_count(), original.place_count());
    EXPECT_EQ(reloaded.transition_count(), original.transition_count());
    EXPECT_EQ(reloaded.initial_marking(), original.initial_marking());
    for (std::size_t t = 0; t < original.transition_count(); ++t) {
        EXPECT_EQ(reloaded.transition_name({t}), original.transition_name({t}));
        EXPECT_EQ(reloaded.kind({t}), original.kind({t}));
        EXPECT_EQ(reloaded.constant_value({t}), original.constant_value({t}));
    }
    // Round-trip is idempotent.
    EXPECT_EQ(to_text(reloaded), text);
}

TEST(TextFormat, RoundTripPreservesSemantics) {
    const PetriNet original = reactive_net();
    const PetriNet reloaded = from_text(to_text(original));
    ReachabilityGraph g1(original);
    ReachabilityGraph g2(reloaded);
    ASSERT_EQ(g1.state_count(), g2.state_count());
    const auto pi1 = spn_steady_state(g1);
    const auto pi2 = spn_steady_state(g2);
    for (std::size_t s = 0; s < pi1.size(); ++s) EXPECT_NEAR(pi1[s], pi2[s], 1e-12);
}

TEST(TextFormat, ParsesHandWrittenModel) {
    const std::string text = R"(# a deterministic cycle with an inhibitor
place armed 1
place fired
place blocker
deterministic d delay=2.5
exponential back rate=0.8
immediate never weight=3 priority=2
arc armed -> d
arc d -> fired
arc fired -> back
arc back -> armed
arc blocker -> never
arc never -> blocker 2
inhibitor blocker -o d 4
)";
    const PetriNet net = from_text(text);
    EXPECT_EQ(net.place_count(), 3u);
    EXPECT_EQ(net.transition_count(), 3u);
    EXPECT_EQ(net.kind({0}), TransitionKind::deterministic);
    EXPECT_DOUBLE_EQ(net.delay({0}), 2.5);
    EXPECT_EQ(net.priority({2}), 2);
    EXPECT_EQ(net.inhibitor_arcs({0}).size(), 1u);
    EXPECT_EQ(net.inhibitor_arcs({0})[0].multiplicity, 4);
    EXPECT_EQ(net.output_arcs({2})[0].multiplicity, 2);

    // The parsed deterministic cycle solves to the renewal-theory value.
    ReachabilityGraph graph(net);
    const auto pi = dspn_steady_state(graph);
    const auto armed = *graph.find({1, 0, 0});
    EXPECT_NEAR(pi[armed], 2.5 / (2.5 + 1.0 / 0.8), 1e-9);
}

TEST(TextFormat, StreamHelpers) {
    const PetriNet original = reactive_net();
    std::stringstream stream;
    save_net(original, stream);
    const PetriNet reloaded = load_net(stream);
    EXPECT_EQ(reloaded.place_count(), original.place_count());
}

TEST(TextFormat, SerializerRejectsCode) {
    PetriNet net;
    auto p = net.add_place("p", 1);
    auto t = net.add_exponential("t", [](const Marking& m) { return 1.0 * m[0]; });
    net.add_input_arc(t, p);
    net.add_output_arc(t, p);
    EXPECT_THROW((void)to_text(net), std::invalid_argument);

    PetriNet guarded;
    auto q = guarded.add_place("q", 1);
    auto g = guarded.add_exponential("g", 1.0);
    guarded.add_input_arc(g, q);
    guarded.add_output_arc(g, q);
    guarded.set_guard(g, [](const Marking&) { return true; });
    EXPECT_THROW((void)to_text(guarded), std::invalid_argument);
}

struct BadInput {
    const char* text;
    const char* why;
};

class ParserErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrors, RejectedWithLineNumber) {
    EXPECT_THROW((void)from_text(GetParam().text), std::runtime_error)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadInput{"plaze p 1\n", "unknown declaration"},
        BadInput{"place p 1\nplace p 2\n", "duplicate place"},
        BadInput{"exponential t rate=1\nexponential t rate=2\n", "duplicate transition"},
        BadInput{"exponential t speed=1\n", "wrong attribute key"},
        BadInput{"exponential t rate=abc\n", "non-numeric rate"},
        BadInput{"place p\nexponential t rate=1\narc p => t\n", "bad arrow"},
        BadInput{"place p\narc p -> ghost\n", "unknown endpoint"},
        BadInput{"place p\nexponential t rate=1\narc p -> t xy\n",
                 "bad multiplicity"},
        BadInput{"place p\nexponential t rate=1\ninhibitor ghost -o t\n",
                 "unknown inhibitor place"},
        BadInput{"immediate i weight=1 priority=2 extra=3\n", "extra attribute"},
        BadInput{"deterministic d delay=0\n", "non-positive delay"}));

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
    const PetriNet net = from_text("\n  \n# only comments\nplace p 2  # trailing\n");
    EXPECT_EQ(net.place_count(), 1u);
    EXPECT_EQ(net.initial_marking()[0], 2);
}

}  // namespace
}  // namespace mvreju::dspn
