#include "mvreju/ml/model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mvreju/data/signs.hpp"

namespace mvreju::ml {
namespace {

/// Tiny two-class dataset: mean intensity below/above 0.5.
Dataset brightness_dataset(std::size_t count, std::uint64_t seed) {
    util::Rng rng(seed);
    Dataset ds;
    ds.num_classes = 2;
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(i % 2);
        const double base = label == 0 ? 0.2 : 0.8;
        Tensor img({1, 4, 4});
        for (std::size_t k = 0; k < img.size(); ++k)
            img[k] = static_cast<float>(base + rng.uniform(-0.15, 0.15));
        ds.images.push_back(std::move(img));
        ds.labels.push_back(label);
    }
    return ds;
}

Sequential tiny_classifier(std::uint64_t seed) {
    util::Rng rng(seed);
    Sequential model("tiny");
    model.add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(16, 8, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(8, 2, rng));
    return model;
}

TEST(CrossEntropy, LossAndGradientAreConsistent) {
    Tensor logits({3}, {1.0f, 2.0f, 0.5f});
    const double loss = cross_entropy_loss(logits, 1);
    EXPECT_GT(loss, 0.0);
    // Numeric check of the gradient.
    Tensor grad = cross_entropy_grad(logits, 1);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < 3; ++i) {
        Tensor plus = logits;
        plus[i] += eps;
        Tensor minus = logits;
        minus[i] -= eps;
        const double numeric =
            (cross_entropy_loss(plus, 1) - cross_entropy_loss(minus, 1)) / (2.0 * eps);
        EXPECT_NEAR(numeric, grad[i], 1e-4);
    }
    // Gradient sums to zero (softmax minus one-hot).
    EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0, 1e-6);
    EXPECT_THROW((void)cross_entropy_loss(logits, 5), std::invalid_argument);
    EXPECT_THROW((void)cross_entropy_grad(logits, -1), std::invalid_argument);
}

TEST(Sequential, LearnsSeparableTask) {
    Sequential model = tiny_classifier(11);
    Dataset train = brightness_dataset(200, 1);
    Dataset test = brightness_dataset(100, 2);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.learning_rate = 0.05f;
    auto losses = model.train(train, cfg);
    EXPECT_LT(losses.back(), losses.front());
    EXPECT_GT(model.evaluate(test).accuracy, 0.95);
}

TEST(Sequential, EvaluateReportsSortedErrorSet) {
    Sequential model = tiny_classifier(12);  // untrained: ~50% accuracy
    Dataset test = brightness_dataset(50, 3);
    auto eval = model.evaluate(test);
    EXPECT_TRUE(std::is_sorted(eval.error_set.begin(), eval.error_set.end()));
    EXPECT_NEAR(eval.accuracy,
                1.0 - static_cast<double>(eval.error_set.size()) / 50.0, 1e-12);
}

TEST(Sequential, ProbabilitiesFormDistribution) {
    Sequential model = tiny_classifier(13);
    Dataset data = brightness_dataset(4, 4);
    auto probs = model.probabilities(data.images[0]);
    double sum = 0.0;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(model.predict(data.images[0]),
              static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                               probs.begin()));
}

TEST(Sequential, CopyIsIndependent) {
    Sequential model = tiny_classifier(14);
    Sequential copy = model;
    copy.parameter_spans()[0][0] += 10.0f;
    EXPECT_NE(copy.parameter_spans()[0][0], model.parameter_spans()[0][0]);
    EXPECT_EQ(copy.name(), model.name());
}

TEST(Sequential, SaveLoadRoundTrip) {
    namespace fs = std::filesystem;
    Sequential model = tiny_classifier(15);
    Dataset data = brightness_dataset(10, 5);
    const fs::path path = fs::temp_directory_path() / "mvreju_model_test.bin";
    model.save_parameters(path);

    Sequential reloaded = tiny_classifier(99);  // different init
    EXPECT_NE(reloaded.logits(data.images[0]), model.logits(data.images[0]));
    reloaded.load_parameters(path);
    EXPECT_EQ(reloaded.logits(data.images[0]), model.logits(data.images[0]));
    fs::remove(path);
}

TEST(Sequential, LoadRejectsArchitectureMismatch) {
    namespace fs = std::filesystem;
    Sequential model = tiny_classifier(16);
    const fs::path path = fs::temp_directory_path() / "mvreju_model_test2.bin";
    model.save_parameters(path);
    util::Rng rng(17);
    Sequential other("other");
    other.add(std::make_unique<Dense>(4, 4, rng));
    EXPECT_THROW(other.load_parameters(path), std::runtime_error);
    fs::remove(path);
}

TEST(Sequential, EmptyModelAndDatasetErrors) {
    Sequential empty;
    EXPECT_THROW((void)empty.logits(Tensor({1})), std::logic_error);
    Sequential model = tiny_classifier(18);
    EXPECT_THROW((void)model.train(Dataset{}, TrainConfig{}), std::invalid_argument);
    EXPECT_THROW((void)model.evaluate(Dataset{}), std::invalid_argument);
    TrainConfig bad;
    bad.batch_size = 0;
    Dataset data = brightness_dataset(4, 6);
    EXPECT_THROW((void)model.train(data, bad), std::invalid_argument);
}

TEST(Architectures, BuildAndClassifyWithCorrectShape) {
    for (auto maker : {make_tiny_lenet, make_mini_alexnet, make_micro_resnet}) {
        Sequential model = maker(3, 16, data::kSignClasses, 38);
        EXPECT_GT(model.parameter_count(), 1000u);
        Tensor img({3, 16, 16});
        Tensor out = model.logits(img);
        EXPECT_EQ(out.size(), static_cast<std::size_t>(data::kSignClasses));
        const int pred = model.predict(img);
        EXPECT_GE(pred, 0);
        EXPECT_LT(pred, data::kSignClasses);
    }
}

TEST(Architectures, DifferentSeedsGiveDifferentModels) {
    Sequential a = make_tiny_lenet(3, 16, 16, 1);
    Sequential b = make_tiny_lenet(3, 16, 16, 2);
    EXPECT_NE(a.parameter_spans()[0][0], b.parameter_spans()[0][0]);
}

TEST(Architectures, TrainableOnSmallSignSubset) {
    // Smoke training: a few epochs on a small split must beat chance by a
    // clear margin on in-sample data.
    data::SignDatasetConfig cfg;
    cfg.train_count = 480;
    cfg.test_count = 160;
    auto ds = data::make_traffic_signs(cfg);
    Sequential model = make_tiny_lenet(3, 16, data::kSignClasses, 38);
    TrainConfig tc;
    tc.epochs = 10;
    tc.learning_rate = 0.03f;
    tc.lr_decay = 0.9f;
    model.train(ds.train, tc);
    const double train_acc = model.evaluate(ds.train).accuracy;
    EXPECT_GT(train_acc, 0.45);  // chance is 1/16
}

}  // namespace
}  // namespace mvreju::ml
