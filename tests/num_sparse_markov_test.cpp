// Sparse-vs-dense cross-validation of the Markov solvers on randomized
// CTMCs: the iterative sparse paths must agree with the dense LU paths to
// 1e-10 across state-space sizes, including well above the dense-fallback
// cutoff. The largest case runs sparse-only (dense would be too slow for a
// unit test) and is checked through its stationary flow-balance residual.

#include "mvreju/num/sparse_markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mvreju/num/linalg.hpp"
#include "mvreju/num/markov.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::num {
namespace {

/// Random irreducible sparse CTMC generator: a Hamiltonian cycle
/// 0 -> 1 -> ... -> n-1 -> 0 guarantees irreducibility, plus ~`extra`
/// random edges per state.
SparseMatrix random_generator(std::size_t n, std::size_t extra, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Triplet> triplets;
    auto add_edge = [&](std::size_t from, std::size_t to, double rate) {
        triplets.push_back({from, to, rate});
        triplets.push_back({from, from, -rate});
    };
    for (std::size_t i = 0; i < n; ++i) add_edge(i, (i + 1) % n, rng.uniform(0.5, 2.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < extra; ++k) {
            const std::size_t to = rng.uniform_int(n);
            if (to != i) add_edge(i, to, rng.uniform(0.1, 3.0));
        }
    }
    return SparseMatrix::from_triplets(n, n, std::move(triplets));
}

TEST(SparseCheckGenerator, AcceptsValidRejectsInvalid) {
    EXPECT_NO_THROW(check_generator(random_generator(20, 2, 1)));
    const auto bad_sum = SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
    EXPECT_THROW(check_generator(bad_sum), std::invalid_argument);
    const auto bad_sign = SparseMatrix::from_triplets(
        2, 2, {{0, 0, 1.0}, {0, 1, -1.0}, {1, 0, 1.0}, {1, 1, -1.0}});
    EXPECT_THROW(check_generator(bad_sign), std::invalid_argument);
}

class RandomCtmcAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomCtmcAgreement, SteadyStateMatchesDenseLu) {
    const std::size_t n = GetParam();
    const SparseMatrix q = random_generator(n, 4, 1000 + n);
    const auto sparse_pi = ctmc_steady_state(q);
    const auto dense_pi = solve_stationary(q.to_dense());
    ASSERT_EQ(sparse_pi.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sparse_pi[i], dense_pi[i], 1e-10);
}

TEST_P(RandomCtmcAgreement, TransientMatchesDenseUniformization) {
    const std::size_t n = GetParam();
    const SparseMatrix q = random_generator(n, 3, 2000 + n);
    std::vector<double> pi0(n, 0.0);
    pi0[0] = 0.4;
    pi0[n / 2] = 0.6;
    const double t = 1.3;
    const auto sparse_pi = ctmc_transient(q, pi0, t, 1e-13);
    const auto dense_pi = ctmc_transient(q.to_dense(), pi0, t, 1e-13);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sparse_pi[i], dense_pi[i], 1e-10);
}

// Sizes straddle the dense-fallback cutoff (64) on both sides.
INSTANTIATE_TEST_SUITE_P(Sizes, RandomCtmcAgreement,
                         ::testing::Values(7, 40, 64, 65, 150, 400));

TEST(SparseSteadyState, TwoThousandStatesSatisfiesFlowBalance) {
    const std::size_t n = 2000;
    const SparseMatrix q = random_generator(n, 4, 99);
    const auto pi = ctmc_steady_state(q);
    double total = 0.0;
    for (double v : pi) {
        EXPECT_GE(v, 0.0);
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // ||pi Q||_inf below the solver tolerance times the fastest rate.
    const auto residual = vec_mat(pi, q);
    double max_residual = 0.0;
    for (double r : residual) max_residual = std::max(max_residual, std::fabs(r));
    EXPECT_LT(max_residual, 1e-10);
}

TEST(SparseSteadyState, MatchesClosedFormBirthDeath) {
    // Birth-death chain with birth b, death d: pi_i ~ (b/d)^i.
    const std::size_t n = 120;
    const double b = 0.7;
    const double d = 1.1;
    std::vector<Triplet> triplets;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        triplets.push_back({i, i + 1, b});
        triplets.push_back({i, i, -b});
        triplets.push_back({i + 1, i, d});
        triplets.push_back({i + 1, i + 1, -d});
    }
    const auto q = SparseMatrix::from_triplets(n, n, std::move(triplets));
    const auto pi = ctmc_steady_state(q);
    const double rho = b / d;
    const double norm = (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(n)));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(pi[i], norm * std::pow(rho, static_cast<double>(i)), 1e-11) << i;
}

TEST(SparseSteadyState, ReducibleChainThrows) {
    // State 1 absorbing: diagonal vanishes, not a solvable stationary system.
    const auto q = SparseMatrix::from_triplets(
        70, 70, [] {
            std::vector<Triplet> t;
            for (std::size_t i = 0; i + 1 < 70; ++i) {
                t.push_back({i, i + 1, 1.0});
                t.push_back({i, i, -1.0});
            }
            return t;
        }());
    EXPECT_THROW((void)ctmc_steady_state(q), std::runtime_error);
}

TEST(SparseDtmcStationary, MatchesDenseOnRandomWalk) {
    // Lazy random walk on a cycle of 150 nodes with asymmetric hops.
    const std::size_t n = 150;
    std::vector<Triplet> triplets;
    for (std::size_t i = 0; i < n; ++i) {
        triplets.push_back({i, i, 0.2});
        triplets.push_back({i, (i + 1) % n, 0.5});
        triplets.push_back({i, (i + n - 1) % n, 0.3});
    }
    const auto p = SparseMatrix::from_triplets(n, n, std::move(triplets));
    const auto sparse_pi = dtmc_stationary(p);
    const auto dense_pi = dtmc_stationary(p.to_dense());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sparse_pi[i], dense_pi[i], 1e-10);
}

TEST(SparseDtmcStationary, PeriodicCycleIsUniform) {
    const auto p = SparseMatrix::from_triplets(
        3, 3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
    const auto pi = dtmc_stationary(p);
    for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(TransientRow, MatchesDenseUniformize) {
    const std::size_t n = 90;
    const SparseMatrix q = random_generator(n, 3, 5);
    const double tau = 2.1;
    const auto tr = transient_row(q, 7, tau, 1e-13);
    const auto tm = uniformize(q.to_dense(), tau, 1e-13);
    double omega_sum = 0.0;
    double psi_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(tr.omega[j], tm.omega(7, j), 1e-10);
        EXPECT_NEAR(tr.psi[j], tm.psi(7, j), 1e-9);
        omega_sum += tr.omega[j];
        psi_sum += tr.psi[j];
    }
    EXPECT_NEAR(omega_sum, 1.0, 1e-10);
    EXPECT_NEAR(psi_sum, tau, 1e-8);
}

TEST(TransientRow, ZeroHorizonIsPointMass) {
    const SparseMatrix q = random_generator(12, 2, 3);
    const auto tr = transient_row(q, 4, 0.0);
    for (std::size_t j = 0; j < 12; ++j) {
        EXPECT_DOUBLE_EQ(tr.omega[j], j == 4 ? 1.0 : 0.0);
        EXPECT_DOUBLE_EQ(tr.psi[j], 0.0);
    }
}

TEST(SolveAbsorbing, MatchesDenseLuOnHittingTimes) {
    // Hitting times of state n-1 on the random chain: restrict the
    // generator to states 0..n-2 and solve A m = -1 both ways.
    const std::size_t n = 180;
    const SparseMatrix q = random_generator(n, 3, 77);
    std::vector<Triplet> triplets;
    for (std::size_t r = 0; r + 1 < n; ++r) {
        for (const SparseMatrix::Entry& e : q.row(r)) {
            if (e.col + 1 < n) triplets.push_back({r, e.col, e.value});
        }
    }
    const auto a = SparseMatrix::from_triplets(n - 1, n - 1, std::move(triplets));
    const std::vector<double> b(n - 1, -1.0);
    const auto sparse_m = solve_absorbing(a, b);
    std::vector<double> rhs = b;
    const auto dense_m = solve(a.to_dense(), std::move(rhs));
    for (std::size_t i = 0; i + 1 < n; ++i)
        EXPECT_NEAR(sparse_m[i], dense_m[i], 1e-9 * (1.0 + std::fabs(dense_m[i])));
}

TEST(SolveAbsorbing, ZeroDiagonalThrows) {
    std::vector<Triplet> triplets;
    for (std::size_t i = 0; i < 70; ++i)
        if (i != 3) triplets.push_back({i, i, -1.0});
    const auto a = SparseMatrix::from_triplets(70, 70, std::move(triplets));
    EXPECT_THROW((void)solve_absorbing(a, std::vector<double>(70, -1.0)),
                 std::runtime_error);
}

}  // namespace
}  // namespace mvreju::num
