#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>

#include <filesystem>

#include "mvreju/util/args.hpp"
#include "mvreju/util/csv.hpp"
#include "mvreju/util/rng.hpp"
#include "mvreju/util/table.hpp"

namespace mvreju::util {
namespace {

TEST(Rng, DeterministicUnderSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b());
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
    Rng parent(7);
    Rng child_before = parent.split(3);
    (void)parent();  // consuming from the parent...
    // ...does not change what an identically derived child would produce,
    // because split() derives from the (immutable) observed state. Re-derive
    // from a fresh identically seeded parent instead.
    Rng parent2(7);
    Rng child_again = parent2.split(3);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(child_before(), child_again());
}

TEST(Rng, SplitIdsGiveDistinctStreams) {
    Rng parent(7);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b());
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(5);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
    Rng rng(17);
    std::map<std::uint64_t, int> counts;
    const int n = 60'000;
    for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(3)];
    for (auto [value, count] : counts) {
        EXPECT_LT(value, 3u);
        EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 3.0, 0.01);
    }
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(21);
    const double rate = 2.5;
    double acc = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) acc += rng.exponential(rate);
    EXPECT_NEAR(acc / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
    Rng rng(31);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(41);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "2.5"});
    const std::string rendered = t.str();
    EXPECT_NE(rendered.find("name    value"), std::string::npos);
    EXPECT_NE(rendered.find("longer  2.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Fmt, FormatsNumbers) {
    EXPECT_EQ(fmt(1.23456789, 3), "1.235");
    EXPECT_EQ(fmt_pct(0.33544, 2), "33.54%");
}

TEST(Args, ParsesKeysFlagsAndDefaults) {
    const char* argv[] = {"prog", "--panel", "c", "--verbose", "--runs", "5"};
    Args args(6, argv);
    EXPECT_TRUE(args.has("panel"));
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get("panel", std::string("a")), "c");
    EXPECT_EQ(args.get("runs", 1), 5);
    EXPECT_EQ(args.get("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.get("missing", 2.5), 2.5);
}

TEST(Csv, EscapingRules) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, RendersHeaderAndRows) {
    CsvWriter csv({"x", "label"});
    csv.add_row({"1", "simple"});
    csv.add_row({"2", "with,comma"});
    EXPECT_EQ(csv.str(), "x,label\n1,simple\n2,\"with,comma\"\n");
    EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, ValidatesShape) {
    EXPECT_THROW(CsvWriter({}), std::invalid_argument);
    CsvWriter csv({"a", "b"});
    EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
    namespace fs = std::filesystem;
    const fs::path path = fs::temp_directory_path() / "mvreju_csv_test.csv";
    CsvWriter csv({"k", "v"});
    csv.add_row({"a", "1"});
    csv.write(path.string());
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    fs::remove(path);
    EXPECT_THROW(csv.write("/nonexistent_dir_zz/x.csv"), std::runtime_error);
}

TEST(Args, FlagFollowedByFlag) {
    const char* argv[] = {"prog", "--a", "--b", "x"};
    Args args(4, argv);
    EXPECT_TRUE(args.has("a"));
    EXPECT_EQ(args.get("a", std::string("def")), "");
    EXPECT_EQ(args.get("b", std::string("def")), "x");
}

TEST(Args, TypedAccessorsValidateRangeAndText) {
    const char* argv[] = {"prog", "--port", "8080", "--rate", "2.5"};
    Args args(5, argv);
    EXPECT_EQ(args.get_int("port", 0, 0, 65535), 8080);
    EXPECT_EQ(args.get_int("missing", 42, 0, 100), 42);
    EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0, 0.0, 10.0), 2.5);
    EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5, 0.0, 10.0), 1.5);
    // Out of range: present-but-invalid throws instead of silently falling
    // back (the lenient get() would have returned garbage here).
    EXPECT_THROW((void)args.get_int("port", 0, 0, 1024), ArgError);
    EXPECT_THROW((void)args.get_double("rate", 0.0, 3.0, 10.0), ArgError);
}

TEST(Args, TypedAccessorsRejectJunk) {
    const char* argv[] = {"prog", "--port", "http", "--count", "12x",
                          "--rate", "fast"};
    Args args(7, argv);
    try {
        (void)args.get_int("port", 0, 0, 65535);
        FAIL() << "expected ArgError";
    } catch (const ArgError& e) {
        // The message names the flag, the range and the offending text.
        const std::string message = e.what();
        EXPECT_NE(message.find("--port"), std::string::npos);
        EXPECT_NE(message.find("[0, 65535]"), std::string::npos);
        EXPECT_NE(message.find("'http'"), std::string::npos);
    }
    EXPECT_THROW((void)args.get_int("count", 0, 0, 100), ArgError);   // trailing junk
    EXPECT_THROW((void)args.get_double("rate", 0.0, 0.0, 9.0), ArgError);
}

TEST(Args, ServingFlagHelpers) {
    const char* argv[] = {"prog",          "--host",       "10.0.0.1",
                          "--port",        "9000",         "--max-streams",
                          "128",           "--batch-max",  "32",
                          "--batch-delay-us", "1500"};
    Args args(11, argv);
    EXPECT_EQ(args.host(), "10.0.0.1");
    EXPECT_EQ(args.port(0), 9000);
    EXPECT_EQ(args.max_streams(1), 128);
    EXPECT_EQ(args.batch_max(1), 32);
    EXPECT_EQ(args.batch_delay_us(0), 1500);

    // Defaults apply when flags are absent.
    const char* none[] = {"prog"};
    Args empty(1, none);
    EXPECT_EQ(empty.host(), "127.0.0.1");
    EXPECT_EQ(empty.host("0.0.0.0"), "0.0.0.0");
    EXPECT_EQ(empty.port(7070), 7070);
}

TEST(Args, HostValidatesDottedQuad) {
    for (const char* bad : {"localhost", "1.2.3", "1.2.3.4.5", "256.0.0.1",
                            "1.2.3.x", "", "..."}) {
        const char* argv[] = {"prog", "--host", bad};
        Args args(3, argv);
        EXPECT_THROW((void)args.host(), ArgError) << "accepted '" << bad << "'";
    }
    const char* argv[] = {"prog", "--host", "0.0.0.0"};
    Args args(3, argv);
    EXPECT_EQ(args.host(), "0.0.0.0");
}

}  // namespace
}  // namespace mvreju::util
