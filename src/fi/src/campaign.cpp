#include "mvreju/fi/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::fi {

FaultOutcome classify_outcome(double baseline_accuracy, double faulty_accuracy,
                              const CampaignConfig& config) {
    const double drop = baseline_accuracy - faulty_accuracy;
    if (drop >= config.critical_threshold) return FaultOutcome::critical;
    if (drop >= config.degraded_threshold) return FaultOutcome::degraded;
    return FaultOutcome::benign;
}

namespace {

void validate(const ml::Dataset& eval, const CampaignConfig& config) {
    if (eval.size() == 0) throw std::invalid_argument("campaign: empty evaluation set");
    if (config.injections_per_site == 0)
        throw std::invalid_argument("campaign: zero injections per site");
    if (config.degraded_threshold > config.critical_threshold)
        throw std::invalid_argument("campaign: degraded threshold above critical");
}

void account(SiteReport& report, double baseline, double faulty,
             const CampaignConfig& config) {
    switch (classify_outcome(baseline, faulty, config)) {
        case FaultOutcome::benign: ++report.benign; break;
        case FaultOutcome::degraded: ++report.degraded; break;
        case FaultOutcome::critical: ++report.critical; break;
    }
    const double drop = baseline - faulty;
    report.mean_accuracy_drop += drop;
    report.worst_accuracy_drop = std::max(report.worst_accuracy_drop, drop);
}

/// Publish campaign totals once, after all sites: the per-site tallies live
/// in the report itself, so telemetry is a pure read that cannot disturb
/// the deterministic injection sequence.
void publish_campaign_metrics(const CampaignReport& report) {
    obs::Registry& reg = obs::metrics();
    static obs::Counter& injections = reg.counter("fi.injections");
    static obs::Counter& benign = reg.counter("fi.outcome.benign");
    static obs::Counter& degraded = reg.counter("fi.outcome.degraded");
    static obs::Counter& critical = reg.counter("fi.outcome.critical");
    static obs::Histogram& worst_drop = reg.histogram(
        "fi.worst_accuracy_drop", obs::HistogramBounds::linear(0.05, 0.05, 20));
    for (const SiteReport& site : report.sites) {
        injections.add(site.injections());
        benign.add(site.benign);
        degraded.add(site.degraded);
        critical.add(site.critical);
        worst_drop.record(site.worst_accuracy_drop);
    }
}

}  // namespace

CampaignReport run_weight_campaign(ml::Sequential& model, const ml::Dataset& eval,
                                   const CampaignConfig& config) {
    validate(eval, config);
    MVREJU_OBS_SPAN(span, "fi.weight_campaign");
    CampaignReport report;
    report.baseline_accuracy = model.evaluate(eval, config.num_threads).accuracy;

    // One worker copy serves the whole campaign: every injection is reversible
    // (inject → batched evaluate → restore), so sites run sequentially against
    // it while the parallelism lives inside evaluate(), which fans the eval
    // set out over the batched inference engine. Each site still draws from
    // substream site + 1 and batched inference is bit-identical for every
    // thread count, so reports match the old per-site fan-out exactly (and
    // the caller's model stays untouched throughout, not just restored).
    const util::Rng root(config.seed);
    const std::size_t layers = injectable_layer_count(model);
    report.sites.reserve(layers);
    ml::Sequential worker = model;
    for (std::size_t layer = 0; layer < layers; ++layer) {
        util::Rng rng = root.split(layer + 1);
        SiteReport site;
        site.site = layer;
        site.parameters = worker.parameter_spans()[layer].size();
        for (std::size_t k = 0; k < config.injections_per_site; ++k) {
            const Injection injection = random_weight_inj(
                worker, layer, config.value_min, config.value_max, rng());
            const double faulty = worker.evaluate(eval, config.num_threads).accuracy;
            restore(worker, injection);
            MVREJU_OBS_EVENT(obs::EventKind::injection, k,
                             static_cast<std::uint32_t>(layer),
                             report.baseline_accuracy - faulty, faulty);
            account(site, report.baseline_accuracy, faulty, config);
        }
        site.mean_accuracy_drop /= static_cast<double>(site.injections());
        report.sites.push_back(site);
    }
    publish_campaign_metrics(report);
    span.arg("sites", static_cast<double>(layers));
    span.arg("injections_per_site", static_cast<double>(config.injections_per_site));
    return report;
}

CampaignReport run_bitflip_campaign(ml::Sequential& model, const ml::Dataset& eval,
                                    std::size_t layer, const CampaignConfig& config) {
    validate(eval, config);
    if (layer >= injectable_layer_count(model))
        throw std::out_of_range("run_bitflip_campaign: bad layer");
    MVREJU_OBS_SPAN(span, "fi.bitflip_campaign");
    span.arg("layer", static_cast<double>(layer));
    CampaignReport report;
    report.baseline_accuracy = model.evaluate(eval, config.num_threads).accuracy;

    // Same structure as the weight campaign: one worker copy, serial bit
    // loop, parallel batched evaluation per injection.
    const util::Rng root(config.seed);
    report.sites.reserve(32);
    ml::Sequential worker = model;
    for (std::size_t bit = 0; bit < 32; ++bit) {
        util::Rng rng = root.split(bit + 1);
        SiteReport site;
        site.site = bit;
        for (std::size_t k = 0; k < config.injections_per_site; ++k) {
            const Injection injection =
                bit_flip_weight(worker, layer, static_cast<int>(bit), rng());
            const double faulty = worker.evaluate(eval, config.num_threads).accuracy;
            restore(worker, injection);
            MVREJU_OBS_EVENT(obs::EventKind::injection, k,
                             static_cast<std::uint32_t>(bit),
                             report.baseline_accuracy - faulty, faulty);
            account(site, report.baseline_accuracy, faulty, config);
        }
        site.mean_accuracy_drop /= static_cast<double>(site.injections());
        report.sites.push_back(site);
    }
    publish_campaign_metrics(report);
    span.arg("injections_per_site", static_cast<double>(config.injections_per_site));
    return report;
}

std::vector<std::size_t> most_critical_sites(const CampaignReport& report) {
    std::vector<std::size_t> order(report.sites.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const SiteReport& sa = report.sites[a];
        const SiteReport& sb = report.sites[b];
        if (sa.critical != sb.critical) return sa.critical > sb.critical;
        if (sa.mean_accuracy_drop != sb.mean_accuracy_drop)
            return sa.mean_accuracy_drop > sb.mean_accuracy_drop;
        return sa.site < sb.site;
    });
    std::vector<std::size_t> sites;
    sites.reserve(order.size());
    for (const std::size_t i : order) sites.push_back(report.sites[i].site);
    return sites;
}

}  // namespace mvreju::fi
