#include "mvreju/fi/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "mvreju/util/rng.hpp"

namespace mvreju::fi {

FaultOutcome classify_outcome(double baseline_accuracy, double faulty_accuracy,
                              const CampaignConfig& config) {
    const double drop = baseline_accuracy - faulty_accuracy;
    if (drop >= config.critical_threshold) return FaultOutcome::critical;
    if (drop >= config.degraded_threshold) return FaultOutcome::degraded;
    return FaultOutcome::benign;
}

namespace {

void validate(const ml::Dataset& eval, const CampaignConfig& config) {
    if (eval.size() == 0) throw std::invalid_argument("campaign: empty evaluation set");
    if (config.injections_per_site == 0)
        throw std::invalid_argument("campaign: zero injections per site");
    if (config.degraded_threshold > config.critical_threshold)
        throw std::invalid_argument("campaign: degraded threshold above critical");
}

void account(SiteReport& report, double baseline, double faulty,
             const CampaignConfig& config) {
    switch (classify_outcome(baseline, faulty, config)) {
        case FaultOutcome::benign: ++report.benign; break;
        case FaultOutcome::degraded: ++report.degraded; break;
        case FaultOutcome::critical: ++report.critical; break;
    }
    const double drop = baseline - faulty;
    report.mean_accuracy_drop += drop;
    report.worst_accuracy_drop = std::max(report.worst_accuracy_drop, drop);
}

}  // namespace

CampaignReport run_weight_campaign(ml::Sequential& model, const ml::Dataset& eval,
                                   const CampaignConfig& config) {
    validate(eval, config);
    CampaignReport report;
    report.baseline_accuracy = model.evaluate(eval).accuracy;

    util::Rng rng(config.seed);
    const std::size_t layers = injectable_layer_count(model);
    for (std::size_t layer = 0; layer < layers; ++layer) {
        SiteReport site;
        site.site = layer;
        site.parameters = model.parameter_spans()[layer].size();
        for (std::size_t k = 0; k < config.injections_per_site; ++k) {
            const Injection injection = random_weight_inj(
                model, layer, config.value_min, config.value_max, rng());
            const double faulty = model.evaluate(eval).accuracy;
            restore(model, injection);
            account(site, report.baseline_accuracy, faulty, config);
        }
        site.mean_accuracy_drop /= static_cast<double>(site.injections());
        report.sites.push_back(site);
    }
    return report;
}

CampaignReport run_bitflip_campaign(ml::Sequential& model, const ml::Dataset& eval,
                                    std::size_t layer, const CampaignConfig& config) {
    validate(eval, config);
    if (layer >= injectable_layer_count(model))
        throw std::out_of_range("run_bitflip_campaign: bad layer");
    CampaignReport report;
    report.baseline_accuracy = model.evaluate(eval).accuracy;

    util::Rng rng(config.seed);
    for (int bit = 0; bit < 32; ++bit) {
        SiteReport site;
        site.site = static_cast<std::size_t>(bit);
        for (std::size_t k = 0; k < config.injections_per_site; ++k) {
            const Injection injection = bit_flip_weight(model, layer, bit, rng());
            const double faulty = model.evaluate(eval).accuracy;
            restore(model, injection);
            account(site, report.baseline_accuracy, faulty, config);
        }
        site.mean_accuracy_drop /= static_cast<double>(site.injections());
        report.sites.push_back(site);
    }
    return report;
}

}  // namespace mvreju::fi
