#include "mvreju/fi/inject.hpp"

#include <bit>
#include <stdexcept>

#include "mvreju/util/rng.hpp"

namespace mvreju::fi {

namespace {

std::span<float> span_of(ml::Sequential& model, std::size_t layer) {
    auto spans = model.parameter_spans();
    if (layer >= spans.size())
        throw std::out_of_range("fault injection: layer index out of range");
    return spans[layer];
}

}  // namespace

std::size_t injectable_layer_count(ml::Sequential& model) {
    return model.parameter_spans().size();
}

Injection random_weight_inj(ml::Sequential& model, std::size_t layer, float min_value,
                            float max_value, std::uint64_t seed) {
    if (!(min_value < max_value))
        throw std::invalid_argument("random_weight_inj: empty value range");
    auto span = span_of(model, layer);
    util::Rng rng(seed);
    Injection inj;
    inj.span_index = layer;
    inj.offset = rng.uniform_int(span.size());
    inj.old_value = span[inj.offset];
    inj.new_value = static_cast<float>(rng.uniform(min_value, max_value));
    span[inj.offset] = inj.new_value;
    return inj;
}

Injection bit_flip_weight(ml::Sequential& model, std::size_t layer, int bit,
                          std::uint64_t seed) {
    if (bit < 0 || bit > 31) throw std::invalid_argument("bit_flip_weight: bit 0..31");
    auto span = span_of(model, layer);
    util::Rng rng(seed);
    Injection inj;
    inj.span_index = layer;
    inj.offset = rng.uniform_int(span.size());
    inj.old_value = span[inj.offset];
    const auto bits = std::bit_cast<std::uint32_t>(inj.old_value);
    inj.new_value = std::bit_cast<float>(bits ^ (std::uint32_t{1} << bit));
    span[inj.offset] = inj.new_value;
    return inj;
}

Injection stuck_at(ml::Sequential& model, std::size_t layer, std::size_t offset,
                   float value) {
    auto span = span_of(model, layer);
    if (offset >= span.size()) throw std::out_of_range("stuck_at: offset out of range");
    Injection inj{layer, offset, span[offset], value};
    span[offset] = value;
    return inj;
}

std::vector<Injection> burst_weight_inj(ml::Sequential& model, std::size_t layer,
                                        std::size_t count, float min_value,
                                        float max_value, std::uint64_t seed) {
    std::vector<Injection> out;
    out.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(
            random_weight_inj(model, layer, min_value, max_value, rng()));
    return out;
}

void restore(ml::Sequential& model, const Injection& injection) {
    auto span = span_of(model, injection.span_index);
    if (injection.offset >= span.size())
        throw std::out_of_range("restore: offset out of range");
    span[injection.offset] = injection.old_value;
}

void restore_all(ml::Sequential& model, const std::vector<Injection>& injections) {
    for (auto it = injections.rbegin(); it != injections.rend(); ++it)
        restore(model, *it);
}

}  // namespace mvreju::fi
