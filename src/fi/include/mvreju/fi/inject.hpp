#pragma once

// Fault injection for mvreju::ml models — the PyTorchFI stand-in the paper
// uses to produce "compromised" model versions (Sections VI-A and VII-A).
//
// Supported fault models (Section III of the paper):
//  - random_weight_inj(layer, min, max): overwrite one random weight of a
//    layer with a uniform value from [min, max] — the exact API shape of
//    PyTorchFI's random_weight_inj used in the paper with (1, -10, 30) for
//    the classifiers and (-100, 300) for the detectors;
//  - bit_flip_weight: flip a single bit of the IEEE-754 representation of a
//    random weight (transient fault model);
//  - stuck_at: force a chosen weight to a fixed value (permanent fault);
//  - burst_weight_inj: several random value corruptions at once.
//
// Every injection is recorded and reversible via restore(), which is what
// the rejuvenation mechanism models: reloading pristine weights from a safe
// memory location.

#include <cstdint>
#include <vector>

#include "mvreju/ml/model.hpp"

namespace mvreju::fi {

/// Record of a single corrupted parameter, sufficient to undo it.
struct Injection {
    std::size_t span_index = 0;  ///< which parameter span (per layer, in order)
    std::size_t offset = 0;      ///< element within the span
    float old_value = 0.0f;
    float new_value = 0.0f;
};

/// Number of parameter spans (injectable "layers") of a model.
[[nodiscard]] std::size_t injectable_layer_count(ml::Sequential& model);

/// Overwrite one random weight of span `layer` with uniform([min_value,
/// max_value)). Deterministic under `seed`. Throws std::out_of_range for a
/// bad layer index.
Injection random_weight_inj(ml::Sequential& model, std::size_t layer, float min_value,
                            float max_value, std::uint64_t seed);

/// Flip bit `bit` (0 = LSB of the mantissa, 31 = sign) of one random weight
/// of span `layer`.
Injection bit_flip_weight(ml::Sequential& model, std::size_t layer, int bit,
                          std::uint64_t seed);

/// Force a specific weight to `value` (stuck-at / permanent fault).
Injection stuck_at(ml::Sequential& model, std::size_t layer, std::size_t offset,
                   float value);

/// `count` independent random value corruptions within span `layer`.
std::vector<Injection> burst_weight_inj(ml::Sequential& model, std::size_t layer,
                                        std::size_t count, float min_value,
                                        float max_value, std::uint64_t seed);

/// Undo one injection (order matters when offsets collide: restore in
/// reverse order of injection).
void restore(ml::Sequential& model, const Injection& injection);

/// Undo a batch of injections (applied in reverse).
void restore_all(ml::Sequential& model, const std::vector<Injection>& injections);

}  // namespace mvreju::fi
