#pragma once

// Systematic fault-injection campaigns, in the style of the dependability
// studies the paper builds on (PyTorchFI et al.): sweep injection sites and
// fault models over a trained network, measure the accuracy impact of each
// single fault, and classify outcomes. Used to answer questions the paper's
// single-fault experiments leave open — which layers are most sensitive,
// and which bit positions of an IEEE-754 weight actually matter.

#include <cstdint>
#include <vector>

#include "mvreju/fi/inject.hpp"
#include "mvreju/ml/model.hpp"

namespace mvreju::fi {

/// Classification of one fault's end-to-end effect on accuracy.
enum class FaultOutcome {
    benign,    ///< accuracy drop below the degraded threshold
    degraded,  ///< noticeable drop, model still mostly works
    critical,  ///< drop at or beyond the critical threshold
};

struct CampaignConfig {
    std::size_t injections_per_site = 40;  ///< faults sampled per layer / bit
    float value_min = -10.0f;              ///< random_weight_inj value range
    float value_max = 30.0f;
    double degraded_threshold = 0.05;  ///< accuracy drop classifying `degraded`
    double critical_threshold = 0.30;  ///< accuracy drop classifying `critical`
    std::uint64_t seed = 1;
    /// Worker threads for the batched evaluation after each injection
    /// (0 = auto, 1 = serial). Sites run sequentially against one shared
    /// model copy (inject → evaluate → restore); each site draws from its
    /// own RNG substream and batched inference is bit-identical at any
    /// thread count, so reports are identical for every setting.
    std::size_t num_threads = 0;
};

/// Outcome of a single fault classified against the thresholds.
[[nodiscard]] FaultOutcome classify_outcome(double baseline_accuracy,
                                            double faulty_accuracy,
                                            const CampaignConfig& config);

/// Aggregate over all injections into one site (a layer or a bit position).
struct SiteReport {
    std::size_t site = 0;        ///< layer index or bit position
    std::size_t parameters = 0;  ///< layer size (0 for bit campaigns)
    std::size_t benign = 0;
    std::size_t degraded = 0;
    std::size_t critical = 0;
    double mean_accuracy_drop = 0.0;
    double worst_accuracy_drop = 0.0;

    [[nodiscard]] std::size_t injections() const noexcept {
        return benign + degraded + critical;
    }
};

struct CampaignReport {
    double baseline_accuracy = 0.0;
    std::vector<SiteReport> sites;
};

/// Per-layer campaign with the PyTorchFI value-corruption fault model
/// (random_weight_inj): every parameterized layer receives
/// `injections_per_site` single-weight faults; the model is restored after
/// each. The model is returned unchanged.
[[nodiscard]] CampaignReport run_weight_campaign(ml::Sequential& model,
                                                 const ml::Dataset& eval,
                                                 const CampaignConfig& config);

/// Site indices of a campaign ordered by decreasing severity: most critical
/// outcomes first, ties broken by mean accuracy drop (descending) then site
/// index (ascending) so the ranking is deterministic. The scenario suite
/// uses this to aim its composed `inject` directives at the weakest layer
/// a campaign found.
[[nodiscard]] std::vector<std::size_t> most_critical_sites(
    const CampaignReport& report);

/// Per-bit campaign with the transient bit-flip fault model on one layer:
/// for every bit position 0..31, `injections_per_site` random weights get
/// that bit flipped (one at a time). Shows the classic pattern: exponent
/// bits are dangerous, mantissa bits are mostly benign.
[[nodiscard]] CampaignReport run_bitflip_campaign(ml::Sequential& model,
                                                  const ml::Dataset& eval,
                                                  std::size_t layer,
                                                  const CampaignConfig& config);

}  // namespace mvreju::fi
