#pragma once

// Single-precision GEMM + im2col kernel pair backing the batched ML
// inference engine (src/ml). Design rules every caller relies on:
//
//  - Reproducibility: each output element C[i][j] is produced by exactly one
//    task with a single accumulator and a strictly ascending k order, so
//    results are bitwise identical for every thread count — and bitwise
//    identical to a naive `for k: acc += a*b` loop over the same operands.
//    Parallelism only partitions *rows* of C; it never splits a reduction.
//  - Layout: all matrices are dense row-major float. The kernels accumulate
//    into C (`C += A·B`), so the caller seeds C with zeros or a broadcast
//    bias via fill_rows()/fill_cols() first.
//  - Threads follow util::parallel_for conventions: 0 = auto
//    (hardware_threads() / MVREJU_THREADS), 1 = serial inline.

#include <cstddef>

namespace mvreju::num {

/// C (m x n) += A (m x k) · B (k x n), row-major.
/// The inner loops run m → k → n: B rows stream through cache and the
/// compiler vectorises over n while each C element keeps one accumulator in
/// ascending-k order (see header comment).
void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
           const float* b, float* c, std::size_t num_threads = 1);

/// C (m x n) += A (m x k) · Bᵀ where B is (n x k) row-major — dot products
/// of A rows against B rows. Same determinism contract as sgemm; preferred
/// when B is a weight matrix stored (outputs x inputs) and m is too small
/// for a transposed copy to pay off.
void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c, std::size_t num_threads = 1);

/// Every row of C (m x n) := the n-vector `values` (bias broadcast along
/// rows; pass nullptr to zero-fill).
void fill_rows(std::size_t m, std::size_t n, const float* values, float* c);

/// Every column j of C (m x n) := values[i] per row i — i.e. C[i][j] =
/// values[i] (bias broadcast along columns; pass nullptr to zero-fill).
void fill_cols(std::size_t m, std::size_t n, const float* values, float* c);

/// B (k x n) row-major := Aᵀ for A (n x k) row-major.
void transpose(std::size_t n, std::size_t k, const float* a, float* b);

/// Unfold one (channels, height, width) image for a stride-1 square
/// convolution with zero padding `pad` into the column matrix
///   col ((channels * kernel * kernel) x (oh * ow)), row-major,
/// where oh = height + 2*pad - kernel + 1 (likewise ow). Row index is
/// (ic * kernel + ky) * kernel + kx — the exact accumulation order of the
/// naive six-deep convolution loops, so sgemm over this matrix reproduces
/// them bitwise. Out-of-image taps are zero.
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad, float* col);

}  // namespace mvreju::num
