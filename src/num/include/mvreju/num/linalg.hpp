#pragma once

// Direct linear solvers on top of mvreju::num::Matrix.

#include <vector>

#include "mvreju/num/matrix.hpp"

namespace mvreju::num {

/// Solve A x = b by LU decomposition with partial pivoting.
/// Throws std::runtime_error when A is (numerically) singular.
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

/// Solve the singular stationary system pi Q = 0, sum(pi) = 1 for an
/// irreducible generator/probability-difference matrix Q by replacing one
/// column with the normalisation constraint. Q is n x n.
[[nodiscard]] std::vector<double> solve_stationary(const Matrix& q);

}  // namespace mvreju::num
