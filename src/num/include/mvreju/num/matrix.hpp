#pragma once

// Small dense linear-algebra layer used by the DSPN/CTMC solvers. State
// spaces of the paper's models are tiny (tens of markings), so a dense
// row-major matrix with direct solvers is both sufficient and exact.

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace mvreju::num {

/// Dense row-major matrix of doubles.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Build from nested initializer lists; all rows must have equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    [[nodiscard]] static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double scalar);

    [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
    [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
    [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
    [[nodiscard]] Matrix operator*(double scalar) const;

    /// Matrix-vector product A x.
    [[nodiscard]] std::vector<double> operator*(const std::vector<double>& x) const;

    [[nodiscard]] Matrix transposed() const;

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    [[nodiscard]] double max_abs() const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Row-vector times matrix: (x^T A)^T. Used for DTMC stationary iterations.
[[nodiscard]] std::vector<double> vec_mat(const std::vector<double>& x, const Matrix& a);

}  // namespace mvreju::num
