#pragma once

// Compressed-sparse-row (CSR) matrix for the CTMC/DSPN solvers. Tangible
// reachability graphs have O(transitions) edges per state, so their
// generators are sparse; storing them in CSR turns the O(n^2) storage and
// O(n^3) dense solves into O(nnz) products and iterative solves, which is
// what lets the solvers scale past a few hundred tangible states.

#include <cstddef>
#include <span>
#include <vector>

#include "mvreju/num/matrix.hpp"

namespace mvreju::num {

/// One (row, col, value) coordinate entry used to assemble a SparseMatrix.
struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/// Immutable CSR matrix of doubles. Assemble via from_triplets (duplicates
/// are summed) or from_dense; structure is fixed after construction, only
/// uniform scaling mutates values.
class SparseMatrix {
public:
    /// One stored entry of a row: column index and value.
    struct Entry {
        std::size_t col = 0;
        double value = 0.0;
    };

    SparseMatrix() = default;

    /// Assemble from coordinate triplets; duplicate (row, col) pairs are
    /// summed. Entries that sum to exactly zero are kept (structural zeros
    /// are harmless and keeping them preserves determinism of assembly).
    [[nodiscard]] static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                                    std::vector<Triplet> triplets);

    /// Convert a dense matrix, dropping entries with |value| <= drop_tol.
    [[nodiscard]] static SparseMatrix from_dense(const Matrix& dense,
                                                 double drop_tol = 0.0);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }

    /// Stored entries of row r (column-sorted).
    [[nodiscard]] std::span<const Entry> row(std::size_t r) const;

    /// Value at (r, c): stored entry or 0. O(log row_nnz) binary search.
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// Matrix-vector product A x.
    [[nodiscard]] std::vector<double> operator*(const std::vector<double>& x) const;

    SparseMatrix& operator*=(double scalar);

    [[nodiscard]] SparseMatrix transposed() const;

    [[nodiscard]] Matrix to_dense() const;

    /// Maximum absolute stored entry (0 for an empty matrix).
    [[nodiscard]] double max_abs() const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> row_start_;  // size rows_ + 1
    std::vector<Entry> entries_;
};

/// Row-vector times matrix: (x^T A)^T. The workhorse of the iterative
/// stationary and uniformization solvers.
[[nodiscard]] std::vector<double> vec_mat(const std::vector<double>& x,
                                          const SparseMatrix& a);

/// In-place variant writing into `out` (resized to a.cols()); avoids one
/// allocation per iteration in the solver inner loops.
void vec_mat(const std::vector<double>& x, const SparseMatrix& a,
             std::vector<double>& out);

}  // namespace mvreju::num
