#pragma once

// Runtime-selectable kernel backends for the inference stack (ROADMAP
// item 2, in the spirit of mlpack's design-for-multiple-backends).
//
// A KernelBackend bundles the three compute kernels the ML layers dispatch
// through — sgemm / sgemm_nt / im2col — behind one interface so a model can
// be *bound* to a backend once at load time and the hot loop stays free of
// per-call branching. Three implementations register here:
//
//  - "scalar": the existing gemm.cpp kernels, unchanged semantics. This is
//    the bit-exact oracle every other backend is gated against.
//  - "avx2": FMA-tiled GEMM with panel-packed B, compiled only when the
//    compiler supports -mavx2/-mfma and selected only after a runtime CPUID
//    check. Deterministic (fixed summation order, one task per output
//    element) but NOT bit-identical to scalar — it is gated on argmax
//    equivalence over the full eval set instead.
//  - "int8": symmetric quantize → int32 accumulate → dequantize. The int32
//    accumulation is exact, so results are bit-identical across thread
//    counts AND batch compositions (per-row activation scales keep each
//    sample's quantization independent of its batch-mates). Numerically it
//    is a deliberately *diverse* replica for the voting path.
//
// Determinism contract (all backends): every output element is produced by
// exactly one task in a fixed reduction order, so a backend's results are
// bitwise identical for every thread count. Only "scalar" additionally
// promises bit-identity with the naive reference loops.

#include <cstddef>
#include <string_view>
#include <vector>

namespace mvreju::num {

class KernelBackend {
public:
    virtual ~KernelBackend() = default;

    /// Stable registry name ("scalar", "avx2", "int8").
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// True when this backend reproduces the scalar kernels bit-for-bit.
    [[nodiscard]] virtual bool bit_exact() const noexcept = 0;

    /// True when the current CPU can execute this backend. Compiled-in
    /// backends whose ISA the host lacks report false and must never be
    /// dispatched to (select_backend() falls back to scalar instead).
    [[nodiscard]] virtual bool supported() const noexcept { return true; }

    /// C (m x n) += A (m x k) · B (k x n), row-major. Same calling
    /// convention as num::sgemm.
    virtual void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, std::size_t num_threads) const = 0;

    /// C (m x n) += A (m x k) · Bᵀ with B (n x k) row-major. Same calling
    /// convention as num::sgemm_nt.
    virtual void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
                          const float* b, float* c, std::size_t num_threads) const = 0;

    /// Unfold one image into a column matrix; defaults to the scalar
    /// num::im2col (quantized/tiled backends only change the GEMM).
    virtual void im2col(const float* image, std::size_t channels, std::size_t height,
                        std::size_t width, std::size_t kernel, std::size_t pad,
                        float* col) const;
};

/// The bit-exact oracle backend (always present, index 0 in backends()).
[[nodiscard]] const KernelBackend& scalar_backend() noexcept;

/// Every compiled-in backend in stable registry order: scalar, then avx2
/// (when the toolchain could compile it), then int8. Entries may still be
/// unsupported() on this host — filter before dispatching.
[[nodiscard]] const std::vector<const KernelBackend*>& backends() noexcept;

/// Registry lookup by name; nullptr when unknown or not compiled in.
[[nodiscard]] const KernelBackend* find_backend(std::string_view name) noexcept;

/// Runtime CPUID check: does this host execute AVX2+FMA?
[[nodiscard]] bool avx2_supported() noexcept;

/// Resolve a backend request to a dispatchable backend:
///  - empty `requested` falls through to the MVREJU_BACKEND environment
///    variable, then to "scalar";
///  - an unknown name throws std::invalid_argument;
///  - a known backend the host cannot execute (avx2 without CPU support)
///    falls back to scalar with a logged warning — never a crash.
[[nodiscard]] const KernelBackend& select_backend(std::string_view requested = {});

/// Position of `backend` within backends() — exported as the
/// ml.backend.name gauge so /metrics can identify the active backend.
[[nodiscard]] std::size_t backend_index(const KernelBackend& backend) noexcept;

}  // namespace mvreju::num
