#pragma once

// Sparse-aware Markov-chain analysis: iterative stationary solves and
// row-targeted uniformization over num::SparseMatrix generators. These are
// the scalable counterparts of the dense routines in markov.hpp — the DSPN
// solvers assemble the tangible generator in CSR form and call these, so a
// reachability graph with tens of thousands of states solves in O(nnz) per
// iteration instead of O(n^3) once.

#include <cstddef>
#include <vector>

#include "mvreju/num/sparse.hpp"

namespace mvreju::num {

/// Validate a CTMC generator in CSR form: off-diagonals >= 0, rows sum to 0.
/// Throws std::invalid_argument on violation beyond `tol`.
void check_generator(const SparseMatrix& q, double tol = 1e-9);

/// Controls for the iterative stationary solvers.
struct StationaryOptions {
    /// Convergence threshold on the normalised residual ||pi Q||_inf /
    /// max_rate. 1e-13 gives agreement with the dense LU path to ~1e-12.
    double tolerance = 1e-13;
    /// Hard cap on Gauss-Seidel sweeps before the solve is declared failed.
    std::size_t max_sweeps = 100'000;
    /// Problems at or below this order are forwarded to the dense LU
    /// stationary solver: exact, and faster than iterating at small n.
    std::size_t dense_cutoff = 64;
    /// Optional warm start for the Gauss-Seidel iteration (non-owning; must
    /// outlive the call). Used when its size matches the problem order: the
    /// vector is copied, clamped to >= 0 and renormalised before iterating.
    /// Ignored by the dense LU path, which is direct — so warm-started solves
    /// below dense_cutoff stay bit-identical to cold ones. Parameter sweeps
    /// pass the nearest already-solved grid point's solution here.
    const std::vector<double>* initial = nullptr;
    /// When set, receives the number of Gauss-Seidel sweeps the solve used
    /// (0 for the dense path). Lets sweep drivers report warm-start savings
    /// without reading the global metrics registry.
    std::size_t* sweeps_out = nullptr;
};

/// Steady-state distribution of an irreducible CTMC with sparse generator q.
/// Gauss-Seidel on pi Q = 0 with per-sweep normalisation; falls back to the
/// dense LU solver below options.dense_cutoff. Throws std::runtime_error if
/// the iteration fails to reach the tolerance within max_sweeps.
[[nodiscard]] std::vector<double> ctmc_steady_state(const SparseMatrix& q,
                                                    const StationaryOptions& options = {});

/// Stationary distribution of an irreducible DTMC with sparse transition
/// matrix p (solves pi (P - I) = 0 with the same iteration).
[[nodiscard]] std::vector<double> dtmc_stationary(const SparseMatrix& p,
                                                  const StationaryOptions& options = {});

/// One row of the uniformization result: starting from `start`,
///   omega[j] = P(state at tau = j)   and
///   psi[j]   = E[time spent in j during [0, tau]].
/// Computed by iterating a single row vector through the uniformized DTMC —
/// O(nnz) per Poisson term instead of the dense solver's O(n^3) total. This
/// is exactly what the MRGP subordinated-CTMC step needs (it only ever reads
/// the row of the regeneration-period start state).
struct TransientRow {
    std::vector<double> omega;
    std::vector<double> psi;
};
[[nodiscard]] TransientRow transient_row(const SparseMatrix& q, std::size_t start,
                                         double tau, double epsilon = 1e-12);

/// transient_row for several horizons at once, sharing one pass through the
/// uniformized power sequence v P^k (the cost driver — the sequence does not
/// depend on tau, only the Poisson weights do). Result `i` is bit-identical
/// to `transient_row(q, start, taus[i], epsilon)`: each horizon's
/// accumulations run in the same term order with the same weights, and below
/// its Poisson window the survival weight is exactly 1.0, so those prefix
/// sums are shared verbatim. Cost ~ one transient_row at max(taus) plus an
/// O(sqrt(lambda tau) n) window per extra horizon. This is what makes
/// sweeping a deterministic delay cheap: grid points that differ only in the
/// delay reuse the whole power pass.
[[nodiscard]] std::vector<TransientRow> transient_rows(const SparseMatrix& q,
                                                       std::size_t start,
                                                       const std::vector<double>& taus,
                                                       double epsilon = 1e-12);

/// Transient distribution pi0 e^{Q t} for a sparse generator.
[[nodiscard]] std::vector<double> ctmc_transient(const SparseMatrix& q,
                                                 const std::vector<double>& pi0, double t,
                                                 double epsilon = 1e-12);

/// Solve A m = b by Gauss-Seidel for the absorbing-chain hitting-time
/// systems: A is the generator restricted to transient states (strictly
/// negative diagonal, non-negative off-diagonals, weak row-sum dominance
/// with strictness on rows that leak to the absorbing set). Falls back to
/// dense LU below options.dense_cutoff; throws std::runtime_error when the
/// diagonal vanishes or the iteration fails to converge.
[[nodiscard]] std::vector<double> solve_absorbing(const SparseMatrix& a,
                                                  const std::vector<double>& b,
                                                  const StationaryOptions& options = {});

}  // namespace mvreju::num
