#pragma once

// Streaming statistics and confidence intervals for the simulation harnesses
// (batch-means CIs for the DSPN discrete-event simulator, run-level CIs for
// the AV case-study tables).

#include <cstddef>
#include <vector>

namespace mvreju::num {

/// Welford streaming mean/variance accumulator.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double sem() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Two-sided Student-t critical value for 95% confidence with `dof` degrees
/// of freedom (exact table for dof <= 30, normal approximation beyond).
[[nodiscard]] double t_critical_95(std::size_t dof) noexcept;

/// Symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
    double mean = 0.0;
    double lower = 0.0;
    double upper = 0.0;
    [[nodiscard]] double half_width() const noexcept { return (upper - lower) / 2.0; }
    /// True when the two intervals share any point (used when the paper says
    /// "the CIs overlap, so there is no statistical difference").
    [[nodiscard]] bool overlaps(const ConfidenceInterval& other) const noexcept {
        return lower <= other.upper && other.lower <= upper;
    }
};

/// 95% t-based CI from raw samples. With fewer than two samples the interval
/// collapses onto the mean.
[[nodiscard]] ConfidenceInterval mean_ci95(const std::vector<double>& samples);

}  // namespace mvreju::num
