#pragma once

// Continuous-time Markov chain (CTMC) and discrete-time Markov chain (DTMC)
// analysis primitives. These back the DSPN solvers:
//   - exact steady state of an SPN's underlying CTMC;
//   - uniformization-based transient matrices e^{Q tau} and
//     int_0^tau e^{Q t} dt, which the Markov-regenerative (MRGP) steady-state
//     solver needs for deterministic transitions.

#include <vector>

#include "mvreju/num/matrix.hpp"

namespace mvreju::num {

/// Poisson probabilities pois(k; lambda) for k in [left, right], computed via
/// the mode-anchored recurrence and renormalised (lightweight Fox-Glynn).
struct PoissonWeights {
    std::size_t left = 0;
    std::vector<double> weights;  // weights[k - left] = P(N = k)
};

/// Compute Poisson weights covering all but `epsilon` of the mass.
/// Requires lambda >= 0.
[[nodiscard]] PoissonWeights poisson_weights(double lambda, double epsilon = 1e-12);

/// Validate and normalise a CTMC generator: off-diagonals >= 0, rows sum to 0.
/// Throws std::invalid_argument on violation beyond `tol`.
void check_generator(const Matrix& q, double tol = 1e-9);

/// Exact steady-state distribution of an irreducible CTMC with generator q.
[[nodiscard]] std::vector<double> ctmc_steady_state(const Matrix& q);

/// Stationary distribution of an irreducible DTMC with transition matrix p.
[[nodiscard]] std::vector<double> dtmc_stationary(const Matrix& p);

/// Result of uniformization over a fixed horizon tau.
struct TransientMatrices {
    Matrix omega;  ///< omega(i, j) = P(state at tau = j | state at 0 = i)
    Matrix psi;    ///< psi(i, j)   = E[time spent in j during [0, tau] | start i]
};

/// Compute e^{Q tau} and int_0^tau e^{Q t} dt by uniformization.
/// Rows of omega sum to 1; rows of psi sum to tau.
[[nodiscard]] TransientMatrices uniformize(const Matrix& q, double tau,
                                           double epsilon = 1e-12);

/// Transient distribution pi0 * e^{Q t} for a single initial distribution.
[[nodiscard]] std::vector<double> ctmc_transient(const Matrix& q,
                                                 const std::vector<double>& pi0, double t,
                                                 double epsilon = 1e-12);

}  // namespace mvreju::num
