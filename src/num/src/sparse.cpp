#include "mvreju/num/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvreju::num {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
    for (const Triplet& t : triplets) {
        if (t.row >= rows || t.col >= cols)
            throw std::out_of_range("SparseMatrix::from_triplets: index out of range");
    }
    std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });

    SparseMatrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.row_start_.assign(rows + 1, 0);
    out.entries_.reserve(triplets.size());
    for (std::size_t k = 0; k < triplets.size(); ++k) {
        const Triplet& t = triplets[k];
        if (!out.entries_.empty() && k > 0 && triplets[k - 1].row == t.row &&
            triplets[k - 1].col == t.col) {
            out.entries_.back().value += t.value;  // merge duplicate coordinate
        } else {
            out.entries_.push_back({t.col, t.value});
            ++out.row_start_[t.row + 1];
        }
    }
    for (std::size_t r = 0; r < rows; ++r) out.row_start_[r + 1] += out.row_start_[r];
    return out;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double drop_tol) {
    SparseMatrix out;
    out.rows_ = dense.rows();
    out.cols_ = dense.cols();
    out.row_start_.assign(out.rows_ + 1, 0);
    for (std::size_t r = 0; r < out.rows_; ++r) {
        for (std::size_t c = 0; c < out.cols_; ++c) {
            const double v = dense(r, c);
            if (std::fabs(v) > drop_tol) out.entries_.push_back({c, v});
        }
        out.row_start_[r + 1] = out.entries_.size();
    }
    return out;
}

std::span<const SparseMatrix::Entry> SparseMatrix::row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("SparseMatrix::row: index out of range");
    return {entries_.data() + row_start_[r], row_start_[r + 1] - row_start_[r]};
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_)
        throw std::out_of_range("SparseMatrix::at: index out of range");
    const auto entries = row(r);
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), c,
        [](const Entry& e, std::size_t col) { return e.col < col; });
    return (it != entries.end() && it->col == c) ? it->value : 0.0;
}

std::vector<double> SparseMatrix::operator*(const std::vector<double>& x) const {
    if (x.size() != cols_) throw std::invalid_argument("SparseMatrix: shape mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (const Entry& e : row(r)) acc += e.value * x[e.col];
        y[r] = acc;
    }
    return y;
}

SparseMatrix& SparseMatrix::operator*=(double scalar) {
    for (Entry& e : entries_) e.value *= scalar;
    return *this;
}

SparseMatrix SparseMatrix::transposed() const {
    // Counting sort by column: O(nnz), keeps rows of the result sorted.
    SparseMatrix out;
    out.rows_ = cols_;
    out.cols_ = rows_;
    out.row_start_.assign(cols_ + 1, 0);
    for (const Entry& e : entries_) ++out.row_start_[e.col + 1];
    for (std::size_t c = 0; c < cols_; ++c) out.row_start_[c + 1] += out.row_start_[c];
    out.entries_.resize(entries_.size());
    std::vector<std::size_t> cursor(out.row_start_.begin(), out.row_start_.end() - 1);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (const Entry& e : row(r)) out.entries_[cursor[e.col]++] = {r, e.value};
    }
    return out;
}

Matrix SparseMatrix::to_dense() const {
    Matrix out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (const Entry& e : row(r)) out(r, e.col) += e.value;
    return out;
}

double SparseMatrix::max_abs() const noexcept {
    double best = 0.0;
    for (const Entry& e : entries_) best = std::max(best, std::fabs(e.value));
    return best;
}

std::vector<double> vec_mat(const std::vector<double>& x, const SparseMatrix& a) {
    std::vector<double> y;
    vec_mat(x, a, y);
    return y;
}

void vec_mat(const std::vector<double>& x, const SparseMatrix& a,
             std::vector<double>& out) {
    if (x.size() != a.rows()) throw std::invalid_argument("vec_mat: shape mismatch");
    out.assign(a.cols(), 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (const SparseMatrix::Entry& e : a.row(r)) out[e.col] += xr * e.value;
    }
}

}  // namespace mvreju::num
