#include "mvreju/num/sparse_markov.hpp"

#include <cmath>
#include <stdexcept>

#include "mvreju/num/linalg.hpp"
#include "mvreju/num/markov.hpp"
#include "mvreju/obs/log.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"

namespace mvreju::num {

void check_generator(const SparseMatrix& q, double tol) {
    const std::size_t n = q.rows();
    if (q.cols() != n) throw std::invalid_argument("check_generator: non-square");
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (const SparseMatrix::Entry& e : q.row(i)) {
            if (e.col != i && e.value < -tol)
                throw std::invalid_argument("check_generator: negative off-diagonal rate");
            row_sum += e.value;
        }
        if (std::fabs(row_sum) > tol)
            throw std::invalid_argument("check_generator: row does not sum to zero");
    }
}

namespace {

/// Diagonal of a square CSR matrix as a vector.
std::vector<double> diagonal(const SparseMatrix& a) {
    std::vector<double> d(a.rows(), 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (const SparseMatrix::Entry& e : a.row(r)) {
            if (e.col == r) d[r] += e.value;
        }
    }
    return d;
}

/// Gauss-Seidel for pi Q = 0, sum(pi) = 1, given qt = Q^T in CSR (row j of
/// qt lists the incoming rates q(i, j)). The iteration
///   pi_j <- sum_{i != j} pi_i q(i, j) / (-q(j, j))
/// is a regular splitting of the singular M-matrix system; with per-sweep
/// normalisation it converges for the irreducible chains the solvers feed us.
/// Convergence telemetry shared by the two Gauss-Seidel kernels. Sweeps are
/// counted locally and published once per solve, so the iteration itself
/// pays nothing; the per-sweep residual trace is emitted only while the
/// tracer is collecting.
struct GsTelemetry {
    obs::Counter& solves;
    obs::Counter& sweeps;
    obs::Histogram& sweeps_per_solve;
    obs::Gauge& last_residual;
};

GsTelemetry& stationary_telemetry() {
    obs::Registry& reg = obs::metrics();
    static GsTelemetry t{
        reg.counter("num.gs.solves"), reg.counter("num.gs.sweeps"),
        reg.histogram("num.gs.sweeps_per_solve",
                      obs::HistogramBounds::exponential(1.0, 2.0, 20)),
        reg.gauge("num.gs.last_residual")};
    return t;
}

GsTelemetry& absorbing_telemetry() {
    obs::Registry& reg = obs::metrics();
    static GsTelemetry t{
        reg.counter("num.gs.absorbing_solves"), reg.counter("num.gs.absorbing_sweeps"),
        reg.histogram("num.gs.absorbing_sweeps_per_solve",
                      obs::HistogramBounds::exponential(1.0, 2.0, 20)),
        reg.gauge("num.gs.absorbing_last_residual")};
    return t;
}

/// Truncation telemetry of the uniformization routines: how many Poisson
/// terms each call actually iterates (the cost driver of transient solves).
obs::Histogram& uniformization_terms_histogram() {
    static obs::Histogram& h = obs::metrics().histogram(
        "num.unif.terms_per_call", obs::HistogramBounds::exponential(1.0, 2.0, 24));
    return h;
}

std::vector<double> gauss_seidel_stationary(const SparseMatrix& qt,
                                            const StationaryOptions& options) {
    const std::size_t n = qt.rows();
    MVREJU_OBS_SPAN(span, "num.gauss_seidel_stationary");
    span.arg("states", static_cast<double>(n));
    span.arg("nnz", static_cast<double>(qt.nnz()));
    const std::vector<double> diag = diagonal(qt);
    double max_rate = 0.0;
    for (double d : diag) {
        if (d >= 0.0)
            throw std::runtime_error(
                "stationary solve: non-negative diagonal (absorbing or dead state)");
        max_rate = std::max(max_rate, -d);
    }

    GsTelemetry& telemetry = stationary_telemetry();
    obs::Tracer& tracer = obs::Tracer::global();

    // Initial iterate: uniform, or the caller's warm start (a nearby grid
    // point's solution) cleaned up into a proper distribution. A degenerate
    // warm start (non-positive mass) falls back to uniform rather than
    // poisoning the iteration.
    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    if (options.initial != nullptr && options.initial->size() == n) {
        double total = 0.0;
        for (double v : *options.initial) total += std::max(v, 0.0);
        if (total > 0.0) {
            for (std::size_t j = 0; j < n; ++j)
                pi[j] = std::max((*options.initial)[j], 0.0) / total;
            static obs::Counter& warm_starts =
                obs::metrics().counter("num.gs.warm_starts");
            warm_starts.add();
            span.arg("warm_start", 1.0);
        }
    }
    for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (const SparseMatrix::Entry& e : qt.row(j)) {
                if (e.col != j) acc += e.value * pi[e.col];
            }
            pi[j] = acc / -diag[j];
        }
        double total = 0.0;
        for (double v : pi) total += v;
        if (total <= 0.0)
            throw std::runtime_error("stationary solve: iteration collapsed to zero");
        for (double& v : pi) v /= total;

        // Residual ||pi Q||_inf via the transposed rows, scaled by the
        // fastest rate so the criterion is invariant to time rescaling.
        double residual = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            double r = 0.0;
            for (const SparseMatrix::Entry& e : qt.row(j)) r += e.value * pi[e.col];
            residual = std::max(residual, std::fabs(r));
        }
        if (tracer.enabled())
            tracer.counter("num.gs.residual", tracer.now_us(), residual);
        if (residual <= options.tolerance * max_rate) {
            for (double& v : pi) {
                if (v < 0.0 && v > -1e-12) v = 0.0;
            }
            telemetry.solves.add();
            telemetry.sweeps.add(sweep + 1);
            telemetry.sweeps_per_solve.record(static_cast<double>(sweep + 1));
            telemetry.last_residual.set(residual);
            if (options.sweeps_out != nullptr) *options.sweeps_out = sweep + 1;
            span.arg("sweeps", static_cast<double>(sweep + 1));
            span.arg("residual", residual);
            return pi;
        }
    }
    obs::log_warn("stationary solve: Gauss-Seidel hit the sweep cap (" +
                  std::to_string(options.max_sweeps) + ") without converging");
    throw std::runtime_error("stationary solve: Gauss-Seidel did not converge");
}

/// Uniformized DTMC P = I + Q / lambda in CSR form, plus the rate lambda.
struct Uniformized {
    SparseMatrix p;
    double lambda = 1.0;
};

Uniformized uniformized_dtmc(const SparseMatrix& q) {
    const std::size_t n = q.rows();
    double max_exit = 0.0;
    for (double d : diagonal(q)) max_exit = std::max(max_exit, -d);
    const double lambda = max_exit > 0.0 ? max_exit * 1.02 : 1.0;

    std::vector<Triplet> triplets;
    triplets.reserve(q.nnz() + n);
    for (std::size_t r = 0; r < n; ++r)
        for (const SparseMatrix::Entry& e : q.row(r))
            triplets.push_back({r, e.col, e.value / lambda});
    for (std::size_t r = 0; r < n; ++r) triplets.push_back({r, r, 1.0});
    return {SparseMatrix::from_triplets(n, n, std::move(triplets)), lambda};
}

}  // namespace

std::vector<double> ctmc_steady_state(const SparseMatrix& q,
                                      const StationaryOptions& options) {
    check_generator(q);
    const std::size_t n = q.rows();
    if (options.sweeps_out != nullptr) *options.sweeps_out = 0;
    if (n == 0) return {};
    if (n == 1) return {1.0};
    if (n <= options.dense_cutoff) return solve_stationary(q.to_dense());
    return gauss_seidel_stationary(q.transposed(), options);
}

std::vector<double> dtmc_stationary(const SparseMatrix& p,
                                    const StationaryOptions& options) {
    const std::size_t n = p.rows();
    if (p.cols() != n) throw std::invalid_argument("dtmc_stationary: non-square");
    if (options.sweeps_out != nullptr) *options.sweeps_out = 0;
    if (n == 0) return {};
    if (n == 1) return {1.0};

    // Stationary of P == steady state of the generator Q = P - I.
    std::vector<Triplet> triplets;
    triplets.reserve(p.nnz() + n);
    for (std::size_t r = 0; r < n; ++r)
        for (const SparseMatrix::Entry& e : p.row(r))
            triplets.push_back({r, e.col, e.value});
    for (std::size_t r = 0; r < n; ++r) triplets.push_back({r, r, -1.0});
    const SparseMatrix q = SparseMatrix::from_triplets(n, n, std::move(triplets));
    if (n <= options.dense_cutoff) return solve_stationary(q.to_dense());
    return gauss_seidel_stationary(q.transposed(), options);
}

TransientRow transient_row(const SparseMatrix& q, std::size_t start, double tau,
                           double epsilon) {
    check_generator(q);
    if (tau < 0.0) throw std::invalid_argument("transient_row: negative horizon");
    const std::size_t n = q.rows();
    if (start >= n) throw std::out_of_range("transient_row: start out of range");

    TransientRow out;
    out.omega.assign(n, 0.0);
    out.psi.assign(n, 0.0);
    if (tau == 0.0) {
        out.omega[start] = 1.0;
        return out;
    }

    MVREJU_OBS_SPAN(span, "num.transient_row");
    const Uniformized u = uniformized_dtmc(q);
    const PoissonWeights pw = poisson_weights(u.lambda * tau, epsilon);
    uniformization_terms_histogram().record(
        static_cast<double>(pw.left + pw.weights.size()));
    span.arg("states", static_cast<double>(n));
    span.arg("terms", static_cast<double>(pw.left + pw.weights.size()));
    span.arg("lambda_tau", u.lambda * tau);

    // omega = sum_k pois(k) e_start P^k ; psi = (1/lambda) sum_k e_start P^k
    // P(N > k). Only row vectors are ever materialised.
    std::vector<double> v(n, 0.0);
    v[start] = 1.0;
    std::vector<double> next;
    double cdf = 0.0;
    const std::size_t k_max = pw.left + pw.weights.size() - 1;
    for (std::size_t k = 0; k <= k_max; ++k) {
        const double pois_k =
            (k >= pw.left && k - pw.left < pw.weights.size()) ? pw.weights[k - pw.left] : 0.0;
        cdf += pois_k;
        const double survival = std::max(0.0, 1.0 - cdf);

        if (pois_k > 0.0)
            for (std::size_t j = 0; j < n; ++j) out.omega[j] += pois_k * v[j];
        if (survival > epsilon / 10.0)
            for (std::size_t j = 0; j < n; ++j) out.psi[j] += survival * v[j];

        if (k < k_max) {
            vec_mat(v, u.p, next);
            v.swap(next);
        }
    }
    for (double& t : out.psi) t /= u.lambda;
    return out;
}

std::vector<TransientRow> transient_rows(const SparseMatrix& q, std::size_t start,
                                         const std::vector<double>& taus,
                                         double epsilon) {
    check_generator(q);
    const std::size_t n = q.rows();
    if (start >= n) throw std::out_of_range("transient_rows: start out of range");
    for (double tau : taus) {
        if (tau < 0.0) throw std::invalid_argument("transient_rows: negative horizon");
    }
    std::vector<TransientRow> out(taus.size());
    if (taus.empty()) return out;

    MVREJU_OBS_SPAN(span, "num.transient_rows");
    span.arg("states", static_cast<double>(n));
    span.arg("horizons", static_cast<double>(taus.size()));
    const Uniformized u = uniformized_dtmc(q);

    // One accumulation slot per positive horizon; tau == 0 is the identity.
    struct Slot {
        std::size_t index = 0;  // position in taus/out
        PoissonWeights pw;
        std::size_t k_max = 0;
        double cdf = 0.0;
    };
    std::vector<Slot> slots;
    std::size_t k_global = 0;
    std::size_t max_left = 0;
    for (std::size_t i = 0; i < taus.size(); ++i) {
        out[i].omega.assign(n, 0.0);
        out[i].psi.assign(n, 0.0);
        if (taus[i] == 0.0) {
            out[i].omega[start] = 1.0;
            continue;
        }
        Slot slot;
        slot.index = i;
        slot.pw = poisson_weights(u.lambda * taus[i], epsilon);
        slot.k_max = slot.pw.left + slot.pw.weights.size() - 1;
        uniformization_terms_histogram().record(static_cast<double>(slot.k_max + 1));
        k_global = std::max(k_global, slot.k_max);
        max_left = std::max(max_left, slot.pw.left);
        slots.push_back(std::move(slot));
    }
    if (slots.empty()) return out;
    span.arg("terms", static_cast<double>(k_global + 1));

    // Below its Poisson window a horizon's cdf is exactly 0, so its psi
    // accumulation adds survival * v = 1.0 * v = v — the same running prefix
    // for every horizon. Snapshot it when a window opens, then replay the
    // windowed terms with the exact per-term weights and guards of
    // transient_row: bit-identical results, one shared power pass.
    std::vector<double> v(n, 0.0);
    v[start] = 1.0;
    std::vector<double> next;
    std::vector<double> prefix(n, 0.0);
    for (std::size_t k = 0; k <= k_global; ++k) {
        if (k < max_left)
            for (std::size_t j = 0; j < n; ++j) prefix[j] += v[j];
        for (Slot& slot : slots) {
            if (slot.pw.left > 0 && k + 1 == slot.pw.left) out[slot.index].psi = prefix;
            if (k < slot.pw.left || k > slot.k_max) continue;
            const double pois_k = slot.pw.weights[k - slot.pw.left];
            slot.cdf += pois_k;
            const double survival = std::max(0.0, 1.0 - slot.cdf);
            if (pois_k > 0.0)
                for (std::size_t j = 0; j < n; ++j) out[slot.index].omega[j] += pois_k * v[j];
            if (survival > epsilon / 10.0)
                for (std::size_t j = 0; j < n; ++j) out[slot.index].psi[j] += survival * v[j];
        }
        if (k < k_global) {
            vec_mat(v, u.p, next);
            v.swap(next);
        }
    }
    for (Slot& slot : slots) {
        for (double& t : out[slot.index].psi) t /= u.lambda;
    }
    return out;
}

std::vector<double> ctmc_transient(const SparseMatrix& q, const std::vector<double>& pi0,
                                   double t, double epsilon) {
    check_generator(q);
    if (pi0.size() != q.rows())
        throw std::invalid_argument("ctmc_transient: shape mismatch");
    if (t == 0.0) return pi0;

    MVREJU_OBS_SPAN(span, "num.ctmc_transient");
    const Uniformized u = uniformized_dtmc(q);
    const PoissonWeights pw = poisson_weights(u.lambda * t, epsilon);
    uniformization_terms_histogram().record(
        static_cast<double>(pw.left + pw.weights.size()));
    span.arg("states", static_cast<double>(q.rows()));
    span.arg("terms", static_cast<double>(pw.left + pw.weights.size()));

    std::vector<double> acc(pi0.size(), 0.0);
    std::vector<double> v = pi0;
    std::vector<double> next;
    const std::size_t k_max = pw.left + pw.weights.size() - 1;
    for (std::size_t k = 0; k <= k_max; ++k) {
        if (k >= pw.left) {
            const double w = pw.weights[k - pw.left];
            for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += w * v[j];
        }
        if (k < k_max) {
            vec_mat(v, u.p, next);
            v.swap(next);
        }
    }
    return acc;
}

std::vector<double> solve_absorbing(const SparseMatrix& a, const std::vector<double>& b,
                                    const StationaryOptions& options) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solve_absorbing: shape mismatch");
    if (n == 0) return {};
    if (n <= options.dense_cutoff) {
        std::vector<double> rhs = b;
        return solve(a.to_dense(), std::move(rhs));
    }

    const std::vector<double> diag = diagonal(a);
    for (double d : diag) {
        if (d == 0.0)
            throw std::runtime_error("solve_absorbing: zero diagonal entry");
    }
    const double a_scale = a.max_abs();
    double b_scale = 0.0;
    for (double v : b) b_scale = std::max(b_scale, std::fabs(v));

    MVREJU_OBS_SPAN(span, "num.solve_absorbing");
    span.arg("states", static_cast<double>(n));
    span.arg("nnz", static_cast<double>(a.nnz()));
    GsTelemetry& telemetry = absorbing_telemetry();

    std::vector<double> m(n, 0.0);
    for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
        for (std::size_t i = 0; i < n; ++i) {
            double acc = b[i];
            for (const SparseMatrix::Entry& e : a.row(i)) {
                if (e.col != i) acc -= e.value * m[e.col];
            }
            m[i] = acc / diag[i];
        }
        // Backward-error residual ||A m - b||_inf against the problem scale.
        double residual = 0.0;
        double m_scale = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double r = -b[i];
            for (const SparseMatrix::Entry& e : a.row(i)) r += e.value * m[e.col];
            residual = std::max(residual, std::fabs(r));
            m_scale = std::max(m_scale, std::fabs(m[i]));
        }
        if (residual <= options.tolerance * std::max(a_scale * m_scale + b_scale, 1e-300)) {
            telemetry.solves.add();
            telemetry.sweeps.add(sweep + 1);
            telemetry.sweeps_per_solve.record(static_cast<double>(sweep + 1));
            telemetry.last_residual.set(residual);
            span.arg("sweeps", static_cast<double>(sweep + 1));
            return m;
        }
    }
    obs::log_warn("solve_absorbing: Gauss-Seidel hit the sweep cap (" +
                  std::to_string(options.max_sweeps) + ") without converging");
    throw std::runtime_error("solve_absorbing: Gauss-Seidel did not converge");
}

}  // namespace mvreju::num
