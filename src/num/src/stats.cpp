#include "mvreju/num/stats.hpp"

#include <array>
#include <cmath>

namespace mvreju::num {

void RunningStats::add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
    return n_ < 1 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double t_critical_95(std::size_t dof) noexcept {
    // Two-sided 95% (upper 0.975 quantile) critical values.
    static constexpr std::array<double, 31> table = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
        2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) return table[1];  // degenerate; caller guards anyway
    if (dof < table.size()) return table[dof];
    return 1.960;
}

ConfidenceInterval mean_ci95(const std::vector<double>& samples) {
    RunningStats stats;
    for (double s : samples) stats.add(s);
    ConfidenceInterval ci;
    ci.mean = stats.mean();
    if (stats.count() < 2) {
        ci.lower = ci.upper = ci.mean;
        return ci;
    }
    const double hw = t_critical_95(stats.count() - 1) * stats.sem();
    ci.lower = ci.mean - hw;
    ci.upper = ci.mean + hw;
    return ci;
}

}  // namespace mvreju::num
