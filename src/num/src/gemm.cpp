#include "mvreju/num/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "mvreju/util/parallel.hpp"

namespace mvreju::num {

namespace {

/// One C row of the NN product: crow += arow · B, k ascending, one
/// accumulator per element (the j loop carries no reduction, so the
/// compiler vectorises it without reassociating anything).
inline void gemm_row(std::size_t n, std::size_t k, const float* arow, const float* b,
                     float* crow) {
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
}

/// One C row of the NT product: plain dot products, k ascending.
inline void gemm_nt_row(std::size_t n, std::size_t k, const float* arow, const float* b,
                        float* crow) {
    for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = crow[j];
        for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
    }
}

}  // namespace

void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
           float* c, std::size_t num_threads) {
    if (m == 0 || n == 0) return;
    if (num_threads == 1 || m == 1) {
        for (std::size_t i = 0; i < m; ++i) gemm_row(n, k, a + i * k, b, c + i * n);
        return;
    }
    util::parallel_for(
        m, [&](std::size_t i) { gemm_row(n, k, a + i * k, b, c + i * n); },
        num_threads);
}

void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c, std::size_t num_threads) {
    if (m == 0 || n == 0) return;
    if (num_threads == 1 || m == 1) {
        for (std::size_t i = 0; i < m; ++i) gemm_nt_row(n, k, a + i * k, b, c + i * n);
        return;
    }
    util::parallel_for(
        m, [&](std::size_t i) { gemm_nt_row(n, k, a + i * k, b, c + i * n); },
        num_threads);
}

void fill_rows(std::size_t m, std::size_t n, const float* values, float* c) {
    if (values == nullptr) {
        std::memset(c, 0, m * n * sizeof(float));
        return;
    }
    for (std::size_t i = 0; i < m; ++i)
        std::memcpy(c + i * n, values, n * sizeof(float));
}

void fill_cols(std::size_t m, std::size_t n, const float* values, float* c) {
    if (values == nullptr) {
        std::memset(c, 0, m * n * sizeof(float));
        return;
    }
    for (std::size_t i = 0; i < m; ++i) {
        float* crow = c + i * n;
        const float v = values[i];
        for (std::size_t j = 0; j < n; ++j) crow[j] = v;
    }
}

void transpose(std::size_t n, std::size_t k, const float* a, float* b) {
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t kk = 0; kk < k; ++kk) b[kk * n + i] = a[i * k + kk];
}

void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad, float* col) {
    const std::size_t oh = height + 2 * pad - kernel + 1;
    const std::size_t ow = width + 2 * pad - kernel + 1;
    for (std::size_t ic = 0; ic < channels; ++ic) {
        for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
                float* dst = col + ((ic * kernel + ky) * kernel + kx) * oh * ow;
                const std::ptrdiff_t shift =
                    static_cast<std::ptrdiff_t>(kx) - static_cast<std::ptrdiff_t>(pad);
                // Valid output-x range where ix = x + shift stays in-image;
                // everything outside is a zero tap (stride 1 keeps the valid
                // middle contiguous, so it is one memcpy per row).
                const std::size_t x_lo =
                    shift < 0 ? static_cast<std::size_t>(-shift) : 0;
                const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(width) - shift;
                const std::size_t x_hi =
                    hi <= 0 ? x_lo
                            : std::max(x_lo, std::min(ow, static_cast<std::size_t>(hi)));
                for (std::size_t y = 0; y < oh; ++y) {
                    float* drow = dst + y * ow;
                    const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y + ky) -
                                              static_cast<std::ptrdiff_t>(pad);
                    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) {
                        std::memset(drow, 0, ow * sizeof(float));
                        continue;
                    }
                    const float* srow =
                        image + (ic * height + static_cast<std::size_t>(iy)) * width;
                    if (x_lo > 0) std::memset(drow, 0, x_lo * sizeof(float));
                    if (x_hi > x_lo)
                        std::memcpy(drow + x_lo, srow + x_lo + shift,
                                    (x_hi - x_lo) * sizeof(float));
                    if (x_hi < ow)
                        std::memset(drow + x_hi, 0, (ow - x_hi) * sizeof(float));
                }
            }
        }
    }
}

}  // namespace mvreju::num
