#include "mvreju/num/matrix.hpp"

#include <cmath>

namespace mvreju::num {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix +=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix -=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double scalar) {
    for (double& v : data_) v *= scalar;
    return *this;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
    Matrix out = *this;
    out += rhs;
    return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
    Matrix out = *this;
    out -= rhs;
    return out;
}

Matrix Matrix::operator*(double scalar) const {
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix *: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += aik * rhs(k, j);
        }
    }
    return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& x) const {
    if (cols_ != x.size()) throw std::invalid_argument("Matrix * vec: shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * x[j];
    return out;
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
}

double Matrix::max_abs() const noexcept {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::fabs(v));
    return m;
}

std::vector<double> vec_mat(const std::vector<double>& x, const Matrix& a) {
    if (x.size() != a.rows()) throw std::invalid_argument("vec_mat: shape mismatch");
    std::vector<double> out(a.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t j = 0; j < a.cols(); ++j) out[j] += xi * a(i, j);
    }
    return out;
}

}  // namespace mvreju::num
