#include "mvreju/num/markov.hpp"

#include <cmath>
#include <stdexcept>

#include "mvreju/num/linalg.hpp"

namespace mvreju::num {

PoissonWeights poisson_weights(double lambda, double epsilon) {
    if (lambda < 0.0) throw std::invalid_argument("poisson_weights: negative lambda");
    PoissonWeights out;
    if (lambda == 0.0) {
        out.left = 0;
        out.weights = {1.0};
        return out;
    }

    // Anchor at the mode with weight 1, extend left/right by the recurrence
    // w(k+1) = w(k) * lambda / (k+1) until the unnormalised tail is
    // negligible, then renormalise. This avoids under/overflow for large
    // lambda without needing the full Fox-Glynn machinery.
    const auto mode = static_cast<std::size_t>(lambda);
    std::vector<double> right_side{1.0};  // weights for k = mode, mode+1, ...
    double tail_cut = epsilon / 4.0;
    for (std::size_t k = mode;; ++k) {
        const double next = right_side.back() * lambda / static_cast<double>(k + 1);
        if (next < tail_cut && k > mode + static_cast<std::size_t>(std::sqrt(lambda)))
            break;
        right_side.push_back(next);
        if (right_side.size() > 40'000'000)
            throw std::runtime_error("poisson_weights: truncation failure");
    }
    std::vector<double> left_side;  // weights for k = mode-1, mode-2, ...
    double w = 1.0;
    for (std::size_t k = mode; k > 0; --k) {
        w *= static_cast<double>(k) / lambda;
        if (w < tail_cut) break;
        left_side.push_back(w);
    }

    out.left = mode - left_side.size();
    out.weights.assign(left_side.rbegin(), left_side.rend());
    out.weights.insert(out.weights.end(), right_side.begin(), right_side.end());

    double total = 0.0;
    for (double v : out.weights) total += v;
    for (double& v : out.weights) v /= total;
    return out;
}

void check_generator(const Matrix& q, double tol) {
    const std::size_t n = q.rows();
    if (q.cols() != n) throw std::invalid_argument("check_generator: non-square");
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j && q(i, j) < -tol)
                throw std::invalid_argument("check_generator: negative off-diagonal rate");
            row_sum += q(i, j);
        }
        if (std::fabs(row_sum) > tol)
            throw std::invalid_argument("check_generator: row does not sum to zero");
    }
}

std::vector<double> ctmc_steady_state(const Matrix& q) {
    check_generator(q);
    return solve_stationary(q);
}

std::vector<double> dtmc_stationary(const Matrix& p) {
    const std::size_t n = p.rows();
    if (p.cols() != n) throw std::invalid_argument("dtmc_stationary: non-square");
    Matrix q = p;
    for (std::size_t i = 0; i < n; ++i) q(i, i) -= 1.0;
    return solve_stationary(q);
}

namespace {

/// Uniformization rate: strictly larger than every exit rate so that the
/// uniformized DTMC has positive self-loop probability (aperiodicity).
double uniformization_rate(const Matrix& q) {
    double max_exit = 0.0;
    for (std::size_t i = 0; i < q.rows(); ++i) max_exit = std::max(max_exit, -q(i, i));
    return max_exit > 0.0 ? max_exit * 1.02 : 1.0;
}

Matrix uniformized_dtmc(const Matrix& q, double lambda) {
    Matrix p = q;
    p *= 1.0 / lambda;
    for (std::size_t i = 0; i < p.rows(); ++i) p(i, i) += 1.0;
    return p;
}

}  // namespace

TransientMatrices uniformize(const Matrix& q, double tau, double epsilon) {
    check_generator(q);
    if (tau < 0.0) throw std::invalid_argument("uniformize: negative horizon");
    const std::size_t n = q.rows();

    if (tau == 0.0) return {Matrix::identity(n), Matrix(n, n)};

    const double lambda = uniformization_rate(q);
    const Matrix p = uniformized_dtmc(q, lambda);
    const PoissonWeights pw = poisson_weights(lambda * tau, epsilon);

    // omega = sum_k pois(k) P^k
    // psi   = (1/lambda) sum_k P^k * P(N > k)
    Matrix omega(n, n);
    Matrix psi(n, n);
    Matrix pk = Matrix::identity(n);  // P^k, iterated

    // Cumulative survival P(N > k) = 1 - sum_{j<=k} pois(j).
    double cdf = 0.0;
    const std::size_t k_max = pw.left + pw.weights.size() - 1;
    for (std::size_t k = 0; k <= k_max; ++k) {
        const double pois_k =
            (k >= pw.left && k - pw.left < pw.weights.size()) ? pw.weights[k - pw.left] : 0.0;
        cdf += pois_k;
        const double survival = std::max(0.0, 1.0 - cdf);

        if (pois_k > 0.0) omega += pk * pois_k;
        if (survival > epsilon / 10.0) psi += pk * survival;

        if (k < k_max) pk = pk * p;
    }
    psi *= 1.0 / lambda;
    return {std::move(omega), std::move(psi)};
}

std::vector<double> ctmc_transient(const Matrix& q, const std::vector<double>& pi0,
                                   double t, double epsilon) {
    check_generator(q);
    if (pi0.size() != q.rows()) throw std::invalid_argument("ctmc_transient: shape mismatch");
    if (t == 0.0) return pi0;

    const double lambda = uniformization_rate(q);
    const Matrix p = uniformized_dtmc(q, lambda);
    const PoissonWeights pw = poisson_weights(lambda * t, epsilon);

    std::vector<double> acc(pi0.size(), 0.0);
    std::vector<double> v = pi0;  // pi0 * P^k, iterated
    const std::size_t k_max = pw.left + pw.weights.size() - 1;
    for (std::size_t k = 0; k <= k_max; ++k) {
        if (k >= pw.left) {
            const double w = pw.weights[k - pw.left];
            for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += w * v[j];
        }
        if (k < k_max) v = vec_mat(v, p);
    }
    return acc;
}

}  // namespace mvreju::num
