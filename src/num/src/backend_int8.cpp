// int8 quantized kernel backend: symmetric group-wise quantization (blocks
// of 32 along the reduction dimension, the Q8_0 idiom), int32 accumulation
// within each block, float dequantize-accumulate into C.
//
// Calibration is dynamic, from the live activation ranges of each call:
// every (row of A, k-block) gets its own scale max|.|/127, and every
// (logical column of B, k-block) likewise — for sgemm a column of B is one
// im2col receptive field in the conv path; for sgemm_nt it is a row of the
// (n x k) weight matrix, i.e. one output neuron. Group-wise scales adapt to
// the local dynamic range, which roughly quarters the logit drift versus
// per-tensor scales — the margin that keeps argmax agreement above the
// gate's floor even on weakly-separated logits.
//
// Per-row activation scales are what keep the backend batch-composition
// independent — a sample's quantized logits never depend on which
// batch-mates it was coalesced with, which the serving layer's
// bit-identical-to-predict invariant requires. The int32 dot product is
// exact within each block (no rounding during accumulation) and the block
// sum runs in a fixed order, so results are bitwise identical for every
// thread count. Accuracy is gated on bounded logit drift + an argmax
// agreement floor against the scalar oracle
// (see tests/ml_backend_equivalence_test.cpp).

#include <cmath>
#include <cstdint>
#include <vector>

#include "mvreju/num/backend.hpp"
#include "mvreju/util/parallel.hpp"

namespace mvreju::num {

namespace {

constexpr float kQmax = 127.0f;
constexpr std::size_t kGroup = 32;  ///< k-block size sharing one scale

/// Number of k-blocks for a reduction of length k.
inline std::size_t blocks_of(std::size_t k) { return (k + kGroup - 1) / kGroup; }

/// Round-half-away-from-zero to the symmetric int8 grid. lroundf is
/// rounding-mode independent, so quantization is deterministic.
inline std::int8_t quantize_one(float value, float inv_scale) {
    const long q = std::lroundf(value * inv_scale);
    return static_cast<std::int8_t>(q > 127 ? 127 : (q < -127 ? -127 : q));
}

/// Quantize one contiguous k-span group-wise: per-block scales into
/// `scales` (0 marks an all-zero block the dot loop skips), int8 values
/// into `out`.
void quantize_groups(const float* values, std::size_t k, std::int8_t* out,
                     float* scales) {
    for (std::size_t g = 0, kk = 0; kk < k; ++g, kk += kGroup) {
        const std::size_t len = kk + kGroup < k ? kGroup : k - kk;
        float peak = 0.0f;
        for (std::size_t i = 0; i < len; ++i) {
            const float mag = std::fabs(values[kk + i]);
            if (mag > peak) peak = mag;
        }
        const float scale = peak / kQmax;
        scales[g] = scale;
        if (scale == 0.0f) continue;
        const float inv = 1.0f / scale;
        for (std::size_t i = 0; i < len; ++i)
            out[kk + i] = quantize_one(values[kk + i], inv);
    }
}

class Int8Backend final : public KernelBackend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "int8"; }
    [[nodiscard]] bool bit_exact() const noexcept override { return false; }

    void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
               const float* b, float* c, std::size_t num_threads) const override {
        if (m == 0 || n == 0 || k == 0) return;
        // Gather-transpose then quantize B once on the calling thread so
        // the inner loop reads contiguous columns; workers read through
        // the pointers.
        const std::size_t nb = blocks_of(k);
        thread_local std::vector<std::int8_t> tl_qbt;
        thread_local std::vector<float> tl_sb;
        thread_local std::vector<float> tl_col;
        tl_qbt.resize(n * k);
        tl_sb.resize(n * nb);
        tl_col.resize(k);
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t kk = 0; kk < k; ++kk) tl_col[kk] = b[kk * n + j];
            quantize_groups(tl_col.data(), k, tl_qbt.data() + j * k,
                            tl_sb.data() + j * nb);
        }
        run_rows(m, n, k, a, tl_qbt.data(), tl_sb.data(), c, num_threads);
    }

    void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  const float* b, float* c, std::size_t num_threads) const override {
        if (m == 0 || n == 0 || k == 0) return;
        // B is already (n x k) row-major — row j is logical column j.
        const std::size_t nb = blocks_of(k);
        thread_local std::vector<std::int8_t> tl_qb;
        thread_local std::vector<float> tl_sb;
        tl_qb.resize(n * k);
        tl_sb.resize(n * nb);
        for (std::size_t j = 0; j < n; ++j)
            quantize_groups(b + j * k, k, tl_qb.data() + j * k, tl_sb.data() + j * nb);
        run_rows(m, n, k, a, tl_qb.data(), tl_sb.data(), c, num_threads);
    }

private:
    /// Shared row loop: group-quantize each activation row, block int32 dot
    /// products against the pre-quantized (n x k) operand, dequantized
    /// accumulate with per-block row × column scales in fixed block order.
    static void run_rows(std::size_t m, std::size_t n, std::size_t k, const float* a,
                         const std::int8_t* qb, const float* sb, float* c,
                         std::size_t num_threads) {
        const std::size_t nb = blocks_of(k);
        auto run_row = [&](std::size_t i) {
            // Per-worker scratch: each task quantizes its own row.
            thread_local std::vector<std::int8_t> qa;
            thread_local std::vector<float> sa;
            qa.resize(k);
            sa.resize(nb);
            quantize_groups(a + i * k, k, qa.data(), sa.data());
            float* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                const std::int8_t* qcol = qb + j * k;
                const float* scol = sb + j * nb;
                float sum = 0.0f;
                for (std::size_t g = 0, kk = 0; kk < k; ++g, kk += kGroup) {
                    const float scale = sa[g] * scol[g];
                    if (scale == 0.0f) continue;  // an all-zero block adds 0
                    const std::size_t len = kk + kGroup < k ? kGroup : k - kk;
                    std::int32_t acc = 0;
                    for (std::size_t x = 0; x < len; ++x)
                        acc += static_cast<std::int32_t>(qa[kk + x]) *
                               static_cast<std::int32_t>(qcol[kk + x]);
                    sum += scale * static_cast<float>(acc);
                }
                crow[j] += sum;
            }
        };
        if (num_threads == 1 || m == 1) {
            for (std::size_t i = 0; i < m; ++i) run_row(i);
            return;
        }
        util::parallel_for(m, run_row, num_threads);
    }
};

const Int8Backend g_int8;

}  // namespace

const KernelBackend& int8_backend() noexcept { return g_int8; }

}  // namespace mvreju::num
