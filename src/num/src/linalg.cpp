#include "mvreju/num/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace mvreju::num {

std::vector<double> solve(Matrix a, std::vector<double> b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve: shape mismatch");

    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: pick the largest remaining entry in this column.
        std::size_t pivot = col;
        double best = std::fabs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300) throw std::runtime_error("solve: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) / a(col, col);
            if (factor == 0.0) continue;
            a(r, col) = 0.0;
            for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
        x[i] = acc / a(i, i);
    }
    return x;
}

std::vector<double> solve_stationary(const Matrix& q) {
    const std::size_t n = q.rows();
    if (q.cols() != n) throw std::invalid_argument("solve_stationary: non-square");
    if (n == 0) return {};
    if (n == 1) return {1.0};

    // pi Q = 0 is equivalent to Q^T pi^T = 0. Replace the last equation by
    // the normalisation sum(pi) = 1 to remove the rank deficiency.
    Matrix a = q.transposed();
    std::vector<double> b(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
    b[n - 1] = 1.0;

    auto pi = solve(std::move(a), std::move(b));
    // Clamp tiny negative round-off and renormalise.
    double total = 0.0;
    for (double& v : pi) {
        if (v < 0.0 && v > -1e-12) v = 0.0;
        total += v;
    }
    if (total <= 0.0) throw std::runtime_error("solve_stationary: degenerate solution");
    for (double& v : pi) v /= total;
    return pi;
}

}  // namespace mvreju::num
