#include "mvreju/num/backend.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "mvreju/num/gemm.hpp"
#include "mvreju/obs/log.hpp"

namespace mvreju::num {

// Defined in backend_avx2.cpp / backend_int8.cpp. The avx2 hook returns
// nullptr when the toolchain could not compile the intrinsics.
const KernelBackend* avx2_backend_or_null() noexcept;
const KernelBackend& int8_backend() noexcept;

void KernelBackend::im2col(const float* image, std::size_t channels,
                           std::size_t height, std::size_t width, std::size_t kernel,
                           std::size_t pad, float* col) const {
    num::im2col(image, channels, height, width, kernel, pad, col);
}

namespace {

/// The existing gemm.cpp kernels, verbatim — the bit-exact oracle.
class ScalarBackend final : public KernelBackend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "scalar"; }
    [[nodiscard]] bool bit_exact() const noexcept override { return true; }
    void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
               const float* b, float* c, std::size_t num_threads) const override {
        num::sgemm(m, n, k, a, b, c, num_threads);
    }
    void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  const float* b, float* c, std::size_t num_threads) const override {
        num::sgemm_nt(m, n, k, a, b, c, num_threads);
    }
};

const ScalarBackend g_scalar;

std::vector<const KernelBackend*> build_registry() {
    std::vector<const KernelBackend*> list;
    list.push_back(&g_scalar);
    if (const KernelBackend* avx2 = avx2_backend_or_null()) list.push_back(avx2);
    list.push_back(&int8_backend());
    return list;
}

}  // namespace

const KernelBackend& scalar_backend() noexcept { return g_scalar; }

const std::vector<const KernelBackend*>& backends() noexcept {
    static const std::vector<const KernelBackend*> g_registry = build_registry();
    return g_registry;
}

const KernelBackend* find_backend(std::string_view name) noexcept {
    for (const KernelBackend* backend : backends())
        if (backend->name() == name) return backend;
    return nullptr;
}

const KernelBackend& select_backend(std::string_view requested) {
    std::string_view name = requested;
    if (name.empty()) {
        if (const char* env = std::getenv("MVREJU_BACKEND")) name = env;
    }
    if (name.empty()) return g_scalar;
    const KernelBackend* backend = find_backend(name);
    if (backend == nullptr) {
        if (name == "avx2") {
            // Known backend that this toolchain could not compile: fall back
            // like an unsupported host rather than rejecting the flag.
            obs::log_warn("backend 'avx2' not compiled in; falling back to scalar");
            return g_scalar;
        }
        throw std::invalid_argument("unknown kernel backend: '" + std::string(name) +
                                    "' (known: scalar, avx2, int8)");
    }
    if (!backend->supported()) {
        obs::log_warn("backend '" + std::string(backend->name()) +
                      "' unsupported on this CPU; falling back to scalar");
        return g_scalar;
    }
    return *backend;
}

std::size_t backend_index(const KernelBackend& backend) noexcept {
    const auto& list = backends();
    for (std::size_t i = 0; i < list.size(); ++i)
        if (list[i] == &backend) return i;
    return 0;
}

}  // namespace mvreju::num
