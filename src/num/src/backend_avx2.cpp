// AVX2+FMA kernel backend. This translation unit is the only one compiled
// with -mavx2 -mfma (see src/num/CMakeLists.txt), so every intrinsic lives
// behind the __AVX2__/__FMA__ guards below; on toolchains without those
// flags the file degrades to the nullptr hook and a pure CPUID probe.
//
// Determinism: the microkernel gives every C element exactly one set of
// accumulators filled in ascending-k order, parallelism partitions row
// blocks only, and the horizontal reductions in sgemm_nt use one fixed
// shuffle tree — so results are bitwise identical for every thread count.
// They are NOT bit-identical to the scalar oracle (FMA contracts the
// multiply-add), which is why this backend is gated on full-eval-set argmax
// equivalence instead of bit equality.

#include <cstddef>

#include "mvreju/num/backend.hpp"

namespace mvreju::num {

bool avx2_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

}  // namespace mvreju::num

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <vector>

#include "mvreju/util/parallel.hpp"

namespace mvreju::num {

namespace {

constexpr std::size_t kPanel = 16;  ///< microkernel width: two ymm registers
constexpr std::size_t kRowBlock = 4;

/// Pack B (k x n, row-major) into column panels of width kPanel:
/// packed[(jp * k + kk) * kPanel + lane] = B[kk][jp * kPanel + lane],
/// zero-filled past n. The microkernel then streams one contiguous panel
/// per k step — the cache-blocked packing the tiled loop relies on.
void pack_b_panels(std::size_t n, std::size_t k, const float* b, float* packed) {
    const std::size_t panels = (n + kPanel - 1) / kPanel;
    for (std::size_t jp = 0; jp < panels; ++jp) {
        const std::size_t j0 = jp * kPanel;
        const std::size_t width = n - j0 < kPanel ? n - j0 : kPanel;
        float* dst = packed + jp * k * kPanel;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float* src = b + kk * n + j0;
            float* out = dst + kk * kPanel;
            std::size_t lane = 0;
            for (; lane < width; ++lane) out[lane] = src[lane];
            for (; lane < kPanel; ++lane) out[lane] = 0.0f;
        }
    }
}

/// rows (≤ kRowBlock) x kPanel FMA microkernel over one packed panel;
/// adds into C through `tail` valid lanes (tail == kPanel for full panels).
void microkernel(std::size_t rows, std::size_t k, const float* a, std::size_t lda,
                 const float* panel, float* c, std::size_t ldc, std::size_t tail) {
    __m256 acc[kRowBlock][2];
    for (std::size_t r = 0; r < rows; ++r) {
        acc[r][0] = _mm256_setzero_ps();
        acc[r][1] = _mm256_setzero_ps();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(panel + kk * kPanel);
        const __m256 b1 = _mm256_loadu_ps(panel + kk * kPanel + 8);
        for (std::size_t r = 0; r < rows; ++r) {
            const __m256 av = _mm256_broadcast_ss(a + r * lda + kk);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    if (tail == kPanel) {
        for (std::size_t r = 0; r < rows; ++r) {
            float* crow = c + r * ldc;
            _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
            _mm256_storeu_ps(crow + 8,
                             _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
        }
        return;
    }
    alignas(32) float spill[kPanel];
    for (std::size_t r = 0; r < rows; ++r) {
        _mm256_store_ps(spill, acc[r][0]);
        _mm256_store_ps(spill + 8, acc[r][1]);
        float* crow = c + r * ldc;
        for (std::size_t lane = 0; lane < tail; ++lane) crow[lane] += spill[lane];
    }
}

/// One A row · one B row dot product, 8-wide FMA with a fixed-order
/// horizontal reduction plus a scalar k tail.
float dot_fma(std::size_t k, const float* a, const float* b) {
    __m256 acc = _mm256_setzero_ps();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + kk), _mm256_loadu_ps(b + kk), acc);
    const __m128 low = _mm256_castps256_ps128(acc);
    const __m128 high = _mm256_extractf128_ps(acc, 1);
    __m128 sum = _mm_add_ps(low, high);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 1));
    float result = _mm_cvtss_f32(sum);
    for (; kk < k; ++kk) result += a[kk] * b[kk];
    return result;
}

class Avx2Backend final : public KernelBackend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "avx2"; }
    [[nodiscard]] bool bit_exact() const noexcept override { return false; }
    [[nodiscard]] bool supported() const noexcept override { return avx2_supported(); }

    void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
               const float* b, float* c, std::size_t num_threads) const override {
        if (m == 0 || n == 0) return;
        if (k == 0) return;
        const std::size_t panels = (n + kPanel - 1) / kPanel;
        // Packed once on the calling thread; workers read through the
        // pointer. thread_local keeps the buffer amortised without racing
        // concurrent sgemm calls from other threads.
        thread_local std::vector<float> tl_packed;
        tl_packed.resize(panels * k * kPanel);
        pack_b_panels(n, k, b, tl_packed.data());
        const float* packed = tl_packed.data();

        const std::size_t row_blocks = (m + kRowBlock - 1) / kRowBlock;
        auto run_block = [&](std::size_t blk) {
            const std::size_t i0 = blk * kRowBlock;
            const std::size_t rows = m - i0 < kRowBlock ? m - i0 : kRowBlock;
            for (std::size_t jp = 0; jp < panels; ++jp) {
                const std::size_t j0 = jp * kPanel;
                const std::size_t tail = n - j0 < kPanel ? n - j0 : kPanel;
                microkernel(rows, k, a + i0 * k, k, packed + jp * k * kPanel,
                            c + i0 * n + j0, n, tail);
            }
        };
        if (num_threads == 1 || row_blocks == 1) {
            for (std::size_t blk = 0; blk < row_blocks; ++blk) run_block(blk);
            return;
        }
        util::parallel_for(row_blocks, run_block, num_threads);
    }

    void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  const float* b, float* c, std::size_t num_threads) const override {
        if (m == 0 || n == 0) return;
        auto run_row = [&](std::size_t i) {
            const float* arow = a + i * k;
            float* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += dot_fma(k, arow, b + j * k);
        };
        if (num_threads == 1 || m == 1) {
            for (std::size_t i = 0; i < m; ++i) run_row(i);
            return;
        }
        util::parallel_for(m, run_row, num_threads);
    }
};

const Avx2Backend g_avx2;

}  // namespace

const KernelBackend* avx2_backend_or_null() noexcept { return &g_avx2; }

}  // namespace mvreju::num

#else  // !(__AVX2__ && __FMA__)

namespace mvreju::num {

const KernelBackend* avx2_backend_or_null() noexcept { return nullptr; }

}  // namespace mvreju::num

#endif
