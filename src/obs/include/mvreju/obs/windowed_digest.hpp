#pragma once

// Windowed latency digest: a ring of fixed-bucket histograms keyed by a
// coarse time slot, giving "the last W seconds" percentiles with O(1)
// record cost and exact time decay (whole slots age out, nothing is
// approximated with floating-point decay factors).
//
// Built for the serving layer's fleet telemetry, so two properties are
// load-bearing:
//
//  - Deterministic merges. Every accumulator is integral — bucket counts,
//    sample count, and a fixed-point sum/min/max (value * 2^20, rounded
//    once at record time) — so merging shards is associative and
//    commutative: any merge order, any shard count, bit-identical result.
//    tests/obs_windowed_digest_test.cpp pins 1/2/4/8-way shard splits to
//    the single-digest bytes.
//  - Clock-agnostic. Like the DynamicBatcher, a digest never reads a
//    clock: callers stamp record() and window() with their own microsecond
//    time (virtual in the synthetic fleet, steady in the socket server),
//    which is what keeps /fleet renders byte-deterministic under a seed.
//
// A digest is single-owner (no internal locking). The lock-cheap pattern
// of the metrics registry applies one level up: give each writer thread
// its own digest and merge() them at read time.

#include <cstdint>
#include <vector>

#include "mvreju/obs/metrics.hpp"

namespace mvreju::obs {

class WindowedDigest {
public:
    /// Fixed-point scale for sum/min/max accumulators: values are rounded
    /// to 1/2^20 once at record time, then handled exactly.
    static constexpr double kScale = 1048576.0;

    struct Options {
        /// Width of one ring slot; the window spans slots * slot_width_us.
        std::uint64_t slot_width_us = 1'000'000;
        std::size_t slots = 8;
        /// Bucket upper bounds; empty selects the serving default
        /// (exponential 0.25 ms .. 512 ms, 12 buckets).
        HistogramBounds bounds;
    };

    WindowedDigest() : WindowedDigest(Options{}) {}
    explicit WindowedDigest(const Options& options);

    /// Record one sample at caller time `t_us`. Samples older than the
    /// slot currently resident at their ring position are dropped (the
    /// window has moved on); newer samples evict the stale slot.
    void record(std::uint64_t t_us, double value);

    /// Fold another digest (same geometry, same time base) into this one.
    /// Per slot: the larger epoch wins outright, equal epochs add —
    /// associative and commutative, so shard merge order cannot matter.
    /// Throws std::logic_error on mismatched geometry.
    void merge(const WindowedDigest& other);

    /// Merged view over every slot still inside the window at `now_us`,
    /// as a HistogramValue (count/sum/min/max/buckets + quantile()).
    [[nodiscard]] HistogramValue window(std::uint64_t now_us) const;

    /// Samples inside the window at `now_us` (cheaper than window()).
    [[nodiscard]] std::uint64_t count(std::uint64_t now_us) const;

    /// Drop every recorded sample; geometry is retained.
    void clear();

    [[nodiscard]] const Options& options() const noexcept { return options_; }
    /// Window span covered: slots * slot_width_us.
    [[nodiscard]] std::uint64_t window_us() const noexcept {
        return options_.slot_width_us * static_cast<std::uint64_t>(slots_.size());
    }

private:
    struct Slot {
        std::uint64_t epoch = 0;  ///< t_us / slot_width of resident samples
        std::uint64_t count = 0;
        std::int64_t sum_scaled = 0;
        std::int64_t min_scaled = 0;
        std::int64_t max_scaled = 0;
        std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, overflow last
    };

    void reset_slot(Slot& slot, std::uint64_t epoch);
    [[nodiscard]] bool in_window(const Slot& slot, std::uint64_t now_epoch) const;

    Options options_;
    std::vector<Slot> slots_;
};

}  // namespace mvreju::obs
