#pragma once

// Leveled diagnostic logging for library code. Rules:
//
//  - Library code NEVER writes to stdout — stdout belongs to the caller
//    (benches print tables there, examples print reports). Diagnostics go
//    to stderr, prefixed and levelled, and are off below `warn` by default.
//  - The threshold comes from the MVREJU_LOG environment variable
//    ("off", "error", "warn", "info", "debug"; default "warn") and can be
//    overridden programmatically with set_log_level().
//  - Call sites guard expensive message construction with log_enabled().

#include <string>
#include <string_view>

namespace mvreju::obs {

enum class LogLevel : int {
    off = 0,
    error = 1,
    warn = 2,
    info = 3,
    debug = 4,
};

/// Parse a MVREJU_LOG-style level name; returns `fallback` on anything
/// unrecognised.
[[nodiscard]] LogLevel parse_log_level(std::string_view text, LogLevel fallback);

/// Current threshold (cached from MVREJU_LOG at first use).
[[nodiscard]] LogLevel log_level();

/// Programmatic override of the threshold (tests, embedding apps).
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Emit "[mvreju][<level>] <message>\n" to stderr when the level passes the
/// threshold.
void log(LogLevel level, std::string_view message);

inline void log_error(std::string_view message) { log(LogLevel::error, message); }
inline void log_warn(std::string_view message) { log(LogLevel::warn, message); }
inline void log_info(std::string_view message) { log(LogLevel::info, message); }
inline void log_debug(std::string_view message) { log(LogLevel::debug, message); }

}  // namespace mvreju::obs
