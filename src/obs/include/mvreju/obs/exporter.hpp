#pragma once

// Embedded live-telemetry endpoint: a tiny HTTP/1.0 server riding the
// shared net::EventLoop (no dependencies, one service thread, loopback
// only) that turns a long-running binary into a scrapeable service:
//
//   GET /metrics   the merged obs::metrics() snapshot in Prometheus text
//                  exposition format (plus an mvreju_build_info series and,
//                  when a health report has been published, per-state module
//                  gauges)
//   GET /healthz   JSON health document: overall status, run metadata
//                  (git SHA / build type / compiler), uptime, and per-version
//                  module states pushed by the serving loop
//   GET /fleet     the latest fleet-telemetry JSON document pushed by the
//                  serving layer (serve::FleetStats::to_json); 503 until one
//                  has been published
//   GET /profile   folded call stacks ("stage;frame;...;frame count" lines,
//                  the collapsed-flamegraph format) from the continuous
//                  obs::Profiler; ?seconds=N bounds the window. 503 until
//                  the profiler is started (--profile / MVREJU_PROFILE)
//   GET /record    force a FlightRecorder postmortem dump; responds with the
//                  dump path
//
// Default-off: nothing listens until start() — wired to the --serve <port>
// flag by obs::Session. Health is *pushed* (set_health() once per frame from
// the serving loop) rather than pulled through a callback, so the HTTP
// thread never re-enters engine code and a scrape observes state at most one
// frame old — the freshness contract the CI smoke test checks.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mvreju/obs/metrics.hpp"

namespace mvreju::obs {

/// Per-version module-state summary served by /healthz. Producers map their
/// engine's states (core::ModuleState or ad-hoc service state) into it.
struct HealthReport {
    int healthy = 0;
    int compromised = 0;
    int nonfunctional = 0;
    int rejuvenating = 0;
    /// Seconds since the last completed rejuvenation; < 0 when none yet.
    double last_rejuvenation_age_s = -1.0;
    /// Per-version state names, index = version ("healthy", ...).
    std::vector<std::string> module_states;

    [[nodiscard]] int functional() const noexcept { return healthy + compromised; }
};

/// Render a metrics snapshot in Prometheus text exposition format (version
/// 0.0.4): names are prefixed "mvreju_" and sanitised ('.' -> '_'),
/// histograms emit cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// The embedded HTTP server. The process-global instance is
/// Exporter::global(); separate instances exist for tests.
class Exporter {
public:
    /// Serving knobs, now that the exporter rides the shared net layer.
    /// Defaults reproduce the historical hardcoded behaviour exactly.
    struct Options {
        /// Event-loop tick: the upper bound on how long stop() waits for a
        /// parked service thread (the net::EventLoop self-pipe usually wakes
        /// it immediately).
        int poll_timeout_ms = 200;
        /// listen(2) backlog for the accept queue.
        int listen_backlog = 16;
    };

    Exporter();
    explicit Exporter(const Options& options);
    ~Exporter();
    Exporter(const Exporter&) = delete;
    Exporter& operator=(const Exporter&) = delete;

    [[nodiscard]] static Exporter& global();

    /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start the
    /// service thread. Returns false when already running, the obs layer is
    /// compiled out or disabled, or the socket cannot be bound.
    bool start(int port);
    /// Stop the service thread and close the socket. Idempotent.
    void stop();

    [[nodiscard]] bool running() const noexcept;
    /// The actually bound port (useful with start(0)); 0 when not running.
    [[nodiscard]] int port() const noexcept;

    /// Publish the current health report (typically once per frame). The
    /// HTTP thread serves the latest published value.
    void set_health(const HealthReport& report);
    /// Most recently published report, if any.
    [[nodiscard]] std::optional<HealthReport> health() const;

    /// Publish the latest fleet-telemetry document (the /fleet body).
    /// Push-model like set_health: the HTTP thread serves the stored bytes
    /// and never calls back into the serving layer.
    void set_fleet_json(std::string json);
    /// Most recently published fleet document; "" when none yet.
    [[nodiscard]] std::string fleet_json() const;

    /// The /healthz response body for the current state (also used by tests
    /// and by callers that want the document without a socket).
    [[nodiscard]] std::string healthz_json() const;

    /// Route one raw HTTP request ("GET /path ...") to a full HTTP/1.0
    /// response, exactly as the service thread would. Exposed for tests.
    [[nodiscard]] std::string handle(const std::string& request);

private:
    void serve_loop();
    void accept_client(int fd);

    struct Impl;
    Impl* impl_;
};

}  // namespace mvreju::obs
