#pragma once

// Lock-cheap metrics registry: counters, gauges and fixed-bucket histograms
// with quantile estimates. Built for the repo's execution model — metric
// updates happen inside util::parallel_for workers, Monte-Carlo loops and
// the RuntimeSystem's module threads — so the hot path must not serialise
// writers:
//
//  - Counters and histograms are sharded per thread. Each thread owns a
//    shard; updates are relaxed atomic ops on cells no other thread writes,
//    so there is no contention and no lock on the update path (a shard
//    mutex is taken only when a thread touches a metric for the first time,
//    and by snapshot() while it reads).
//  - Shards are reference-counted. When a worker thread exits (parallel_for
//    spawns fresh threads per call) its shard stays registered with its
//    final values; snapshot() folds shards of dead threads into a retired
//    accumulator so the shard list stays bounded.
//  - Gauges are last-write-wins process-wide values (a single atomic in the
//    registry) — sharding a "current value" has no meaningful merge.
//  - Handles (Counter&, Gauge&, Histogram&) are stable for the registry's
//    lifetime; look them up once (function-local static) and reuse.
//
// All of it is inert when obs::enabled() is false (MVREJU_OBS=off): updates
// return after one relaxed atomic load.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mvreju/obs/obs.hpp"

namespace mvreju::obs {

class Registry;

/// Upper bucket bounds for a histogram; strictly increasing. Samples above
/// the last bound land in an implicit overflow bucket.
struct HistogramBounds {
    std::vector<double> upper;

    /// count buckets: (start, start+step], (start+step, start+2*step], ...
    [[nodiscard]] static HistogramBounds linear(double start, double step,
                                                std::size_t count);
    /// count buckets with geometrically growing bounds: start, start*factor, ...
    [[nodiscard]] static HistogramBounds exponential(double start, double factor,
                                                     std::size_t count);
};

/// Monotonic counter handle. add() is one relaxed atomic add on a cell owned
/// by the calling thread.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept;

private:
    friend class Registry;
    Counter(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
    Registry* registry_;
    std::size_t id_;
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
    void set(double value) noexcept;

private:
    friend class Registry;
    Gauge(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
    Registry* registry_;
    std::size_t id_;
};

/// Fixed-bucket histogram handle; record() updates the calling thread's
/// bucket cell plus count/sum/min/max, all relaxed atomics.
class Histogram {
public:
    void record(double value) noexcept;

private:
    friend class Registry;
    Histogram(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
    Registry* registry_;
    std::size_t id_;
};

struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeValue {
    std::string name;
    double value = 0.0;
};

struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< smallest recorded sample (0 when count == 0)
    double max = 0.0;
    std::vector<double> upper;          ///< bucket upper bounds
    std::vector<std::uint64_t> buckets; ///< upper.size() + 1 (overflow last)

    [[nodiscard]] double mean() const;
    /// Quantile estimate by linear interpolation inside the bucket that
    /// contains the q-th sample; exact to within one bucket's width.
    [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time merged view over all shards, sorted by metric name.
struct MetricsSnapshot {
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /// Human-readable dump (one metric per line).
    [[nodiscard]] std::string to_text() const;
    /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
    [[nodiscard]] std::string to_json() const;
    /// Flat name/kind/value table via util::CsvWriter.
    void write_csv(const std::string& path) const;
};

/// Metric registry. The process-global instance is obs::metrics(); separate
/// instances can be created for tests. Handle getters are idempotent by
/// name and throw std::logic_error when a name is reused with a different
/// metric kind (or different histogram bounds).
class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    [[nodiscard]] Histogram& histogram(const std::string& name,
                                       const HistogramBounds& bounds);

    /// Merge all shards (live and retired) into a consistent snapshot.
    [[nodiscard]] MetricsSnapshot snapshot();

    /// Drop every recorded value (definitions and handles stay valid).
    void reset();

private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;
    struct Impl;
    Impl* impl_;
};

/// The process-global registry used by the library instrumentation points.
[[nodiscard]] Registry& metrics();

}  // namespace mvreju::obs
