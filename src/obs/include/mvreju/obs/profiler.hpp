#pragma once

// In-process continuous sampling profiler: answers "where does the CPU go"
// on a live fleet with zero dependencies and zero cost when off, on the same
// default-off / -DMVREJU_OBS=OFF-erasable terms as the rest of src/obs.
//
// Mechanism (see DESIGN.md "Sampling profiler" for the full contract):
//  - A SIGPROF handler driven by setitimer(ITIMER_PROF) fires every
//    Options::interval_us of *process CPU time*, landing on whichever thread
//    is burning cycles — the gprof/gperftools sampling model, so idle
//    threads cost nothing and hot threads are sampled in proportion.
//  - The handler walks the interrupted thread's frame-pointer chain
//    (ucontext PC + rbp) into a per-thread seqlock ring — the flight
//    recorder idiom: no allocation, no locks, only relaxed/release atomic
//    stores, drop-counting on overflow. Every frame dereference goes through
//    process_vm_readv(2), which returns EFAULT on garbage pointers instead
//    of faulting, so a torn rbp (leaf frames, libc trampolines) ends the
//    walk instead of the process.
//  - A collector thread drains the rings every ~100 ms into one-second
//    aggregation buckets (stack hash -> count) and publishes obs.profiler.*
//    self-metrics; symbolization (dladdr + demangle, /proc maps fallback)
//    happens only when someone asks for a report, never on the hot path.
//
// Stage attribution: serving code brackets its pipeline stages with
// MVREJU_PROFILE_STAGE("infer") scopes; the handler snapshots the calling
// thread's current tag into each sample, so reports can split CPU by stage
// (queue vs infer vs vote) next to the FrameTrace latency percentiles.
//
// Consumers: `GET /profile?seconds=N` on obs::Exporter (folded stacks, the
// collapsed-flamegraph text format), serve::FleetStats cpu_by_stage, and
// tools/profile_render (hotspot table).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mvreju/obs/obs.hpp"

namespace mvreju::obs {

/// CPU share of one stage tag over a report window.
struct StageCpu {
    std::string stage;        ///< tag string ("infer", ...); "untagged" bucket last
    std::uint64_t samples = 0;
    double fraction = 0.0;    ///< samples / total samples in the window
};

/// Profiler self-accounting (also published as obs.profiler.* metrics).
struct ProfilerStats {
    std::uint64_t samples = 0;      ///< stacks committed to rings
    std::uint64_t drops = 0;        ///< samples lost: ring overwrite before drain or ring exhaustion
    std::uint64_t truncated = 0;    ///< stacks cut at Options::max_depth
    std::uint64_t handler_ns = 0;   ///< total wall ns spent inside the signal handler
    std::uint32_t rings_claimed = 0;///< distinct ring slots ever claimed by threads
};

#ifndef MVREJU_OBS_DISABLED

/// Signal-based sampling profiler. The process-global instance is
/// Profiler::global(); separate instances exist for tests, but only one can
/// be running at a time (there is one ITIMER_PROF per process).
class Profiler {
public:
    struct Options {
        /// Sampling interval in microseconds of process CPU time. The
        /// default is a prime-ish ~100 Hz so sampling cannot phase-lock
        /// with frame-periodic work.
        int interval_us = 9973;
        /// Seconds of one-second aggregation buckets retained for reports.
        int window_seconds = 60;
        /// Per-thread sample rings available (claimed on first sample or
        /// prepare_thread(); recycled when a prepared thread exits).
        int max_threads = 64;
        /// Samples per ring between collector drains (power of two).
        int ring_slots = 128;
        /// Frames kept per stack; deeper stacks are truncation-counted.
        int max_depth = 20;
    };

    Profiler();
    explicit Profiler(const Options& options);
    ~Profiler();
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    [[nodiscard]] static Profiler& global();

    /// The profiler currently running (at most one per process — there is
    /// one ITIMER_PROF), or nullptr. The exporter's /profile route and the
    /// serving layer's CPU-by-stage publisher report through this, so a
    /// session-owned profiler (custom interval) is just as visible as
    /// global().
    [[nodiscard]] static Profiler* active() noexcept;

    /// Install the SIGPROF handler, arm the CPU-time interval timer and
    /// start the collector thread. Returns false when the obs layer is
    /// disabled, this (or another) profiler is already running, or the
    /// platform lacks what the stack walker needs.
    bool start();
    /// Disarm the timer, restore the previous SIGPROF disposition, drain
    /// outstanding samples and stop the collector. Idempotent.
    void stop();
    [[nodiscard]] bool running() const noexcept;

    /// Folded-stacks report over the last `seconds` of samples (clamped to
    /// the retention window; <= 0 means everything retained). One line per
    /// unique stack: "stage;root;caller;...;leaf <count>\n", sorted by
    /// count descending — the collapsed format flamegraph.pl and speedscope
    /// ingest directly. Symbolization happens here, off the sampling path.
    [[nodiscard]] std::string folded(int seconds = 0);

    /// Per-stage CPU attribution over the same window, sorted by samples
    /// descending with the "untagged" bucket always last.
    [[nodiscard]] std::vector<StageCpu> stage_cpu(int seconds = 0);

    [[nodiscard]] ProfilerStats stats() const noexcept;

    /// Drop all retained samples and zero the stats (rings and thread
    /// claims persist). For back-to-back bench sections.
    void clear();

    /// Claim a sample ring for the calling thread from normal (non-signal)
    /// context and register an exit hook that recycles it. Called by
    /// StageTagScope, so any stage-tagged thread — including the fresh
    /// threads util::parallel_for spawns per call — reuses ring slots
    /// instead of exhausting them. Threads never prepared still get a ring
    /// lazily on their first sample, but that claim is permanent.
    static void prepare_thread();

    /// The active profiler's options (start()-time copy), for reports.
    [[nodiscard]] const Options& options() const noexcept;

    /// Implementation detail, public so file-scope helpers in profiler.cpp
    /// (the signal handler, the thread-exit ring recycler) can name it.
    struct Impl;

private:
    Impl* impl_;
};

/// RAII stage tag: samples taken on this thread while the scope is alive
/// are attributed to `tag`. Scopes nest (inner tag wins, outer restored).
/// `tag` must outlive the profiler — use string literals.
class StageTagScope {
public:
    explicit StageTagScope(const char* tag) noexcept;
    ~StageTagScope() noexcept;
    StageTagScope(const StageTagScope&) = delete;
    StageTagScope& operator=(const StageTagScope&) = delete;

private:
    const char* prev_;
};

#else  // MVREJU_OBS_DISABLED

/// With the obs layer compiled out the profiler is an inert stub: start()
/// refuses, reports are empty, and stage scopes are empty objects the
/// optimizer deletes.
class Profiler {
public:
    struct Options {
        int interval_us = 9973;
        int window_seconds = 60;
        int max_threads = 64;
        int ring_slots = 128;
        int max_depth = 20;
    };

    Profiler() = default;
    explicit Profiler(const Options& options) : options_(options) {}
    [[nodiscard]] static Profiler& global() {
        static Profiler instance;
        return instance;
    }
    [[nodiscard]] static Profiler* active() noexcept { return nullptr; }
    bool start() { return false; }
    void stop() {}
    [[nodiscard]] bool running() const noexcept { return false; }
    [[nodiscard]] std::string folded(int = 0) { return {}; }
    [[nodiscard]] std::vector<StageCpu> stage_cpu(int = 0) { return {}; }
    [[nodiscard]] ProfilerStats stats() const noexcept { return {}; }
    void clear() {}
    static void prepare_thread() {}
    [[nodiscard]] const Options& options() const noexcept { return options_; }

private:
    Options options_;
};

class StageTagScope {
public:
    explicit StageTagScope(const char* tag) noexcept { (void)tag; }
};

#endif  // MVREJU_OBS_DISABLED

}  // namespace mvreju::obs

// Stage-attribution macro for serving code: a scoped tag object `var`
// marking CPU burned in this scope as belonging to pipeline stage `tag`
// (a string literal). Compiles to an empty object under -DMVREJU_OBS=OFF;
// two thread-local pointer writes otherwise.
#define MVREJU_PROFILE_STAGE(var, tag) ::mvreju::obs::StageTagScope var(tag)
