#pragma once

// Span-based structured tracing with a Chrome trace-event JSON exporter.
// The produced file loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing, giving a timeline of solver phases, runtime frames and
// per-module work.
//
// Design: recording is per-thread (each thread owns an event buffer; a
// buffer mutex is taken per event, but it is uncontended because only the
// owner writes and only flush reads), timestamps come from one steady-clock
// epoch shared by all threads, and everything is inert unless the tracer
// has been explicitly enabled (by --trace via obs::Session, or enable()).
// A disabled span costs one relaxed atomic load; with MVREJU_OBS_DISABLED
// the MVREJU_OBS_SPAN macro compiles to an empty object.
//
// Span names and arg keys must be string literals (or otherwise outlive the
// tracer flush): events store the pointer, not a copy, so the hot path never
// allocates.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mvreju/obs/obs.hpp"

namespace mvreju::obs {

/// One numeric key/value attached to a span (e.g. {"states", 1024}).
struct TraceArg {
    const char* key = nullptr;
    double value = 0.0;
};

/// Collects trace events and renders Chrome trace-event JSON. The global
/// instance is Tracer::global(); separate instances exist for tests.
class Tracer {
public:
    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    [[nodiscard]] static Tracer& global();

    /// Start/stop collection. enable() is a no-op while obs::enabled() is
    /// false (MVREJU_OBS=off wins over --trace).
    void enable();
    void disable();
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Microseconds since this tracer's epoch (steady clock).
    [[nodiscard]] double now_us() const;

    /// Record a completed span ('X' event) on the calling thread's track.
    /// Low-level entry point — normal code uses obs::Span.
    void complete(const char* name, double ts_us, double dur_us,
                  const TraceArg* args = nullptr, std::size_t nargs = 0);

    /// Record a counter sample ('C' event), e.g. a per-sweep residual.
    void counter(const char* name, double ts_us, double value);

    /// Drop all recorded events (thread tracks persist).
    void clear();

    /// Render {"traceEvents": [...]} with events sorted by timestamp.
    [[nodiscard]] std::string chrome_json();

    /// Write chrome_json() to a file; throws std::runtime_error on failure.
    void write(const std::string& path);

private:
    struct Impl;
    Impl* impl_;
    std::atomic<bool> enabled_{false};
};

/// Scoped RAII span against the global tracer. Captures the start timestamp
/// on construction and records a complete event on destruction; numeric args
/// can be attached along the way (silently dropped beyond capacity).
class Span {
public:
    explicit Span(const char* name)
        : name_(name), active_(Tracer::global().enabled()) {
        if (active_) start_us_ = Tracer::global().now_us();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void arg(const char* key, double value) noexcept {
        if (active_ && nargs_ < args_.size()) args_[nargs_++] = {key, value};
    }

    /// True when this span is actually recording (tracer enabled).
    [[nodiscard]] bool active() const noexcept { return active_; }

    /// Close the span before scope exit (e.g. a phase inside a longer
    /// function). Idempotent; the destructor becomes a no-op afterwards.
    void end() noexcept {
        if (!active_) return;
        active_ = false;
        Tracer& tracer = Tracer::global();
        tracer.complete(name_, start_us_, tracer.now_us() - start_us_, args_.data(),
                        nargs_);
    }

    ~Span() { end(); }

private:
    const char* name_;
    bool active_;
    double start_us_ = 0.0;
    std::array<TraceArg, 6> args_{};
    std::size_t nargs_ = 0;
};

/// Compile-time stand-in for Span when MVREJU_OBS_DISABLED is defined: the
/// same surface, every member a constexpr no-op.
class NullSpan {
public:
    constexpr NullSpan() = default;
    constexpr void arg(const char*, double) const noexcept {}
    [[nodiscard]] constexpr bool active() const noexcept { return false; }
    constexpr void end() const noexcept {}
};

}  // namespace mvreju::obs
