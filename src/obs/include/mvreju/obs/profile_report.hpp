#pragma once

// Pure-text analysis of folded-stacks profiles ("stage;root;...;leaf N"
// lines, the collapsed-flamegraph format obs::Profiler::folded() emits and
// GET /profile serves). No profiler dependency — this compiles and runs
// even under -DMVREJU_OBS=OFF, so tools/profile_render can digest a profile
// captured elsewhere regardless of how the local binary was built.

#include <cstdint>
#include <string>
#include <vector>

namespace mvreju::obs {

/// One parsed folded line. frames are root-first, as written.
struct FoldedStack {
    std::string stage;                 ///< leading stage tag ("untagged", "infer", ...)
    std::vector<std::string> frames;   ///< root ... leaf
    std::uint64_t count = 0;
};

/// Parse folded text, skipping blank and malformed lines. A line is
/// "stage;frame;frame;... count"; a line with no ';' is treated as a
/// stage-only sample (stack walk produced nothing).
[[nodiscard]] std::vector<FoldedStack> parse_folded(const std::string& text);

/// Per-frame CPU attribution over a parsed profile: `self` counts samples
/// where the frame is the leaf, `total` counts samples where it appears
/// anywhere (each frame counted once per stack, so recursion does not
/// inflate totals).
struct Hotspot {
    std::string frame;
    std::uint64_t self = 0;
    std::uint64_t total = 0;
};

/// All frames ranked by self count (then total, then name).
[[nodiscard]] std::vector<Hotspot> hotspots(const std::vector<FoldedStack>& stacks);

/// Per-stage totals (stage tag -> samples), "untagged" last, else by count.
struct StageTotal {
    std::string stage;
    std::uint64_t samples = 0;
    double fraction = 0.0;
};
[[nodiscard]] std::vector<StageTotal> stage_totals(
    const std::vector<FoldedStack>& stacks);

/// Human-readable hotspot table (top `top_n` frames by self samples) plus a
/// stage-summary footer — what tools/profile_render prints by default.
[[nodiscard]] std::string render_hotspots(const std::vector<FoldedStack>& stacks,
                                          std::size_t top_n = 20);

}  // namespace mvreju::obs
