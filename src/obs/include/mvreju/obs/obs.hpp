#pragma once

// Global observability switch. The whole obs layer (metrics + tracing) obeys
// one runtime kill switch — the MVREJU_OBS environment variable ("off", "0",
// "false" or "no" disables collection entirely) — and one compile-time kill
// switch, the MVREJU_OBS_DISABLED preprocessor define (CMake option
// MVREJU_OBS=OFF), which turns the instrumentation macros below into empty
// inline objects the optimizer deletes.
//
// Library code instruments through the MVREJU_OBS_SPAN macro and through
// metric handles (obs::metrics().counter(...) etc.); both are no-ops when
// collection is off, so the solvers and the runtime never pay for telemetry
// nobody asked for.

#include <atomic>

namespace mvreju::obs {

namespace detail {
/// Backing flag for enabled(); initialised from MVREJU_OBS at first use.
[[nodiscard]] std::atomic<int>& enabled_state();
}  // namespace detail

/// True when the obs layer collects data (default). Controlled by the
/// MVREJU_OBS environment variable and set_enabled().
[[nodiscard]] inline bool enabled() {
    return detail::enabled_state().load(std::memory_order_relaxed) != 0;
}

/// Programmatic override of the MVREJU_OBS switch (tests, embedding apps).
void set_enabled(bool on);

}  // namespace mvreju::obs

// Span instrumentation macro: declares a scoped RAII span object `var`
// recording into the global tracer. Compiled down to an empty object (zero
// code, zero data) when MVREJU_OBS_DISABLED is defined; a single relaxed
// atomic load when tracing is not enabled at runtime.
#ifdef MVREJU_OBS_DISABLED
#define MVREJU_OBS_SPAN(var, name) ::mvreju::obs::NullSpan var{}
#else
#define MVREJU_OBS_SPAN(var, name) ::mvreju::obs::Span var(name)
#endif
