#pragma once

// Black-box flight recorder for the multi-version runtime: a fixed-size,
// per-thread ring buffer of structured binary event records capturing the
// moments *before* a failure — the paper's whole premise is that modules age
// silently from healthy to compromised, so the frames leading up to a
// deadline miss, vote disagreement or collision are exactly the ones a
// postmortem needs and exactly the ones exit-time aggregation loses.
//
// Hot-path contract (enforced by tests/obs_flight_recorder_test.cpp and the
// microbench `obs_flight_record` sections):
//  - record() performs no allocation and takes no lock: the calling thread
//    owns its ring (registered once, on first use), a slot write is a
//    handful of relaxed atomic stores plus a relaxed index bump, and a
//    disabled recorder returns after one relaxed load.
//  - Readers (snapshot/dump, possibly concurrent with writers) validate each
//    slot with a per-slot sequence number written last (release) and read
//    first (acquire); a slot being overwritten mid-read is skipped, never
//    torn and never a data race. A recorder under concurrent writes is a
//    best-effort black box: the merge may miss the 1-2 newest events of a
//    racing thread, but always yields the last kRingCapacity committed
//    events of every quiescent thread.
//  - Triggers move all cost off the steady state: record() checks one
//    relaxed bitmask; only a *matching* event (optionally above a per-kind
//    payload threshold) pays for the snapshot-merge + metrics snapshot +
//    JSON dump, guarded by a dump counter so a storm of deadline misses
//    cannot fill the disk.
//
// Timestamps are monotonic nanoseconds since the recorder's epoch by
// default; call sites that live in simulated time (MultiVersionSystem, the
// av frame loop) pass their own clock via record_at(), which makes dumps
// from seeded runs byte-deterministic — the property the postmortem golden
// test builds on.
//
// Everything is default-off: nothing is recorded until set_enabled(true)
// (wired to the --flight flag by obs::Session), MVREJU_OBS=off wins over
// that, and with -DMVREJU_OBS=OFF the MVREJU_OBS_EVENT macros below compile
// call sites out entirely.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mvreju/obs/obs.hpp"

namespace mvreju::obs {

/// What happened. Payload doubles `a`/`b` are kind-specific; the table in
/// DESIGN.md section 8 is the authoritative contract.
enum class EventKind : std::uint16_t {
    frame = 0,           ///< a frame completed; a = frame duration ms
    vote_decided,        ///< a = proposals posted, b = proposals agreeing/responded
    vote_skipped,        ///< voter disagreement; a = posted, b = responded
    vote_no_output,      ///< no functional module; a = posted
    deadline_miss,       ///< module missed its deadline; a = deadline ms
    module_state,        ///< health transition; a = new state, b = old state
    rejuvenation_start,  ///< a = cause (0 manual, 1 reactive, 2 proactive), b = wedged
    rejuvenation_end,    ///< a = cause, b = wedged
    collision,           ///< av: ego overlaps an NPC; a = ego speed, b = first (0/1)
    hazard,              ///< av: decided hazard bucket; a = voted, b = ground truth
    planner_override,    ///< av: command held; a = vote kind
    injection,           ///< fi: fault injected; a = accuracy drop, b = faulty accuracy
    slo_breach,          ///< latency above budget; a = observed ms, b = budget ms
    custom,              ///< application-defined
    load_shed,           ///< serve: frame degraded/dropped; a = 1 shed, 2 dropped
    breach_stage,        ///< serve: SLO breach attributed to a pipeline stage;
                         ///< a = serve::Stage index, b = that stage's ms
    sensor_fault,        ///< av: input monitor flagged a frame; a =
                         ///< SensorStatus, b = trust reliability score
    degraded_mode,       ///< av: policy ladder transition; a = new mode,
                         ///< b = old mode
    kCount,
};

/// Stable lower-case name ("vote_decided", ...) used in dumps and triggers.
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// One black-box record: 48 bytes, plain data, no pointers.
struct EventRecord {
    std::uint64_t t_ns = 0;    ///< monotonic ns since the recorder epoch (or simulated)
    std::uint64_t frame = 0;   ///< frame / iteration id at the call site
    std::uint32_t module = 0;  ///< module / version / site index (0 when n/a)
    EventKind kind = EventKind::custom;
    double a = 0.0;
    double b = 0.0;
};

/// Fixed-size per-thread ring-buffer recorder with trigger-driven postmortem
/// dumps. The process-global instance is FlightRecorder::global(); separate
/// instances exist for tests.
class FlightRecorder {
public:
    /// Events retained per thread (power of two; the postmortem contract
    /// guarantees at least the last 256 events per thread, this keeps 4x).
    static constexpr std::size_t kRingCapacity = 1024;

    FlightRecorder();
    ~FlightRecorder();
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    [[nodiscard]] static FlightRecorder& global();

    /// Arm / disarm the recorder. Off by default; obs::enabled() == false
    /// (MVREJU_OBS=off) wins over set_enabled(true).
    void set_enabled(bool on) noexcept;
    [[nodiscard]] bool enabled() const noexcept;

    /// Where postmortem-*.json files go (default: current directory).
    void set_dump_dir(std::string dir);
    /// Cap on trigger-produced dumps for the recorder's lifetime (default 8);
    /// forced dumps via dump() do not count against it.
    void set_dump_limit(std::size_t limit) noexcept;

    /// Arm a trigger: an event of `kind` with payload a >= min_a produces a
    /// postmortem dump (subject to the dump limit). Pass on=false to disarm.
    void set_trigger(EventKind kind, bool on, double min_a = 0.0) noexcept;

    /// Record one event on the calling thread's ring; timestamps against the
    /// recorder's steady-clock epoch. Allocation- and lock-free after the
    /// thread's first event.
    void record(EventKind kind, std::uint64_t frame, std::uint32_t module,
                double a = 0.0, double b = 0.0) noexcept;

    /// Same, with an explicit timestamp — for call sites living in simulated
    /// time, whose dumps must be deterministic under a seed.
    void record_at(std::uint64_t t_ns, EventKind kind, std::uint64_t frame,
                   std::uint32_t module, double a = 0.0, double b = 0.0) noexcept;

    /// Monotonic ns since the recorder epoch (what record() stamps).
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    /// Snapshot-merge of one thread's ring, oldest first.
    struct ThreadEvents {
        std::uint64_t track = 0;  ///< stable per-thread id (registration order)
        std::vector<EventRecord> events;
    };
    /// Consistent-slot merge of all rings (live and exited threads).
    [[nodiscard]] std::vector<ThreadEvents> snapshot();

    /// The postmortem document: run metadata, reason, optional triggering
    /// event, all rings, and a full metrics snapshot of obs::metrics().
    [[nodiscard]] std::string dump_json(const std::string& reason,
                                        const EventRecord* trigger = nullptr);

    /// Write dump_json() to `<dump_dir>/postmortem-<utc>-<seq>.json`;
    /// returns the path, or "" when the write failed. Forced dumps ignore
    /// the trigger dump limit.
    std::string dump(const std::string& reason);

    /// Trigger-produced dumps so far (forced dumps excluded).
    [[nodiscard]] std::uint64_t trigger_dumps() const noexcept;
    /// Path of the most recent dump ("" when none yet).
    [[nodiscard]] std::string last_dump_path() const;

    /// Drop all recorded events and reset the trigger-dump counter (rings
    /// and trigger arms persist). Not safe against concurrent writers.
    void clear();

private:
    void maybe_trigger(EventKind kind, const EventRecord& record) noexcept;
    std::string write_dump(const std::string& reason, const EventRecord* trigger);

    struct Impl;
    Impl* impl_;
};

}  // namespace mvreju::obs

// Event instrumentation macros: compile to nothing under -DMVREJU_OBS=OFF,
// and to a single relaxed load when the recorder is disarmed. Library call
// sites use these, never FlightRecorder::global() directly.
#ifdef MVREJU_OBS_DISABLED
// sizeof keeps the arguments unevaluated (zero code, zero data) while still
// "using" them, so -Wunused warnings don't fire in OBS=OFF builds.
#define MVREJU_OBS_EVENT(kind, frame, module, a, b)                               \
    ((void)sizeof(((void)(kind), (void)(frame), (void)(module), (void)(a),        \
                   (void)(b), 0)))
#define MVREJU_OBS_EVENT_AT(t_ns, kind, frame, module, a, b)                      \
    ((void)sizeof(((void)(t_ns), (void)(kind), (void)(frame), (void)(module),     \
                   (void)(a), (void)(b), 0)))
#else
#define MVREJU_OBS_EVENT(kind, frame, module, a, b) \
    ::mvreju::obs::FlightRecorder::global().record((kind), (frame), (module), (a), (b))
#define MVREJU_OBS_EVENT_AT(t_ns, kind, frame, module, a, b)                  \
    ::mvreju::obs::FlightRecorder::global().record_at((t_ns), (kind), (frame), \
                                                      (module), (a), (b))
#endif
