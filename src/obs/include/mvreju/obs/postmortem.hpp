#pragma once

// Postmortem tooling: load a flight-recorder dump (postmortem-*.json) back
// into structured form and render a human-readable, per-module event
// timeline — the analysis half of the black box. The rendering contract is
// golden-tested (tests/obs_postmortem_test.cpp) against a dump produced by a
// deterministic seeded run, and the tools/postmortem CLI is a thin main()
// over these functions.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mvreju::obs::postmortem {

/// One event as read back from a dump (kind as its stable name).
struct Event {
    std::uint64_t t_ns = 0;
    std::uint64_t frame = 0;
    std::uint32_t module = 0;
    std::uint64_t track = 0;  ///< recorder thread track the event came from
    std::string kind;
    double a = 0.0;
    double b = 0.0;
};

/// A parsed postmortem dump.
struct Dump {
    std::string reason;
    std::string git_sha;
    std::string build_type;
    std::string compiler;
    std::optional<Event> trigger;
    std::size_t thread_count = 0;
    /// All events, merged across threads and sorted by (t_ns, track).
    std::vector<Event> events;
    /// Counter values from the embedded metrics snapshot, sorted by name.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Parse a dump document; throws std::runtime_error on malformed input.
[[nodiscard]] Dump parse(const std::string& json_text);

/// Read and parse a dump file; throws std::runtime_error on I/O or parse
/// failure.
[[nodiscard]] Dump load(const std::string& path);

struct RenderOptions {
    bool show_meta = true;     ///< build header (git SHA / build type / compiler)
    bool show_metrics = true;  ///< counter table from the embedded snapshot
    std::size_t max_events_per_module = 0;  ///< 0 = unlimited
};

/// Render the per-module timeline: events grouped by module with timestamps
/// relative to the oldest retained event, the triggering event marked, and a
/// per-kind before/after-trigger event-count table (the "metric deltas
/// around the trigger").
[[nodiscard]] std::string render(const Dump& dump, const RenderOptions& options = {});

}  // namespace mvreju::obs::postmortem
