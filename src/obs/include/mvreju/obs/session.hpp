#pragma once

// CLI wiring for the obs layer: every bench/example binary constructs one
// obs::Session from its parsed util::Args and the standard flags
//
//   --metrics <file>   write the merged metrics snapshot (+ run metadata)
//                      as JSON on exit
//   --trace <file>     enable the global tracer and write a Perfetto /
//                      chrome://tracing loadable trace on exit
//   --serve <port>     start the embedded obs::Exporter on 127.0.0.1:<port>
//                      (/metrics, /healthz, /record; 0 = ephemeral port),
//                      stopped when the session is destroyed
//   --flight <dir>     arm the obs::FlightRecorder with postmortem dumps
//                      into <dir> and the default trigger set (deadline
//                      miss, vote disagreement/silence, collision, SLO
//                      breach)
//   --profile [us]     start the continuous sampling profiler (obs::Profiler,
//                      reports via GET /profile and obs.profiler.* metrics);
//                      the optional value overrides the ~100 Hz sampling
//                      interval in microseconds. The MVREJU_PROFILE
//                      environment variable (on|<interval_us>) does the same
//                      without a flag, stopped when the session flushes
//
// does the rest. Reference usages: examples/resilient_service.cpp (live
// service with all four flags) and bench/bench_solvers.cpp.

#include <memory>
#include <string>

#include "mvreju/util/args.hpp"

namespace mvreju::obs {

class Profiler;

class Session {
public:
    /// Reads --metrics / --trace from `args`; `default_metrics_path` (may be
    /// empty) is used when --metrics is absent, so bench binaries can drop a
    /// metrics blob next to their BENCH_*.json by default.
    explicit Session(const util::Args& args, std::string default_metrics_path = "");

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Flushes on destruction (idempotent with flush()).
    ~Session();

    /// Write the requested outputs now. Safe to call once before heavy
    /// teardown; subsequent destruction won't re-write.
    void flush();

    [[nodiscard]] const std::string& metrics_path() const noexcept {
        return metrics_path_;
    }
    [[nodiscard]] const std::string& trace_path() const noexcept { return trace_path_; }
    /// True when --serve started the embedded exporter (see its port via
    /// Exporter::global().port()).
    [[nodiscard]] bool serving() const noexcept { return serving_; }
    /// True when --profile / MVREJU_PROFILE started the sampling profiler.
    [[nodiscard]] bool profiling() const noexcept { return profiling_; }

private:
    std::string metrics_path_;
    std::string trace_path_;
    bool serving_ = false;
    bool profiling_ = false;
    bool flushed_ = false;
    /// Owned only when a custom sampling interval was requested; the default
    /// interval uses Profiler::global().
    std::unique_ptr<Profiler> profiler_;
};

/// The metrics snapshot wrapped with run metadata:
/// {"meta": {...}, "metrics": {"counters": ..., "gauges": ..., "histograms": ...}}.
[[nodiscard]] std::string metrics_blob_json();

}  // namespace mvreju::obs
