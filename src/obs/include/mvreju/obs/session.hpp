#pragma once

// CLI wiring for the obs layer: every bench/example binary constructs one
// obs::Session from its parsed util::Args and the standard flag pair
//
//   --metrics <file>   write the merged metrics snapshot (+ run metadata)
//                      as JSON on exit
//   --trace <file>     enable the global tracer and write a Perfetto /
//                      chrome://tracing loadable trace on exit
//
// does the rest. Reference usages: examples/av_drive.cpp and
// bench/bench_solvers.cpp.

#include <string>

#include "mvreju/util/args.hpp"

namespace mvreju::obs {

class Session {
public:
    /// Reads --metrics / --trace from `args`; `default_metrics_path` (may be
    /// empty) is used when --metrics is absent, so bench binaries can drop a
    /// metrics blob next to their BENCH_*.json by default.
    explicit Session(const util::Args& args, std::string default_metrics_path = "");

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Flushes on destruction (idempotent with flush()).
    ~Session();

    /// Write the requested outputs now. Safe to call once before heavy
    /// teardown; subsequent destruction won't re-write.
    void flush();

    [[nodiscard]] const std::string& metrics_path() const noexcept {
        return metrics_path_;
    }
    [[nodiscard]] const std::string& trace_path() const noexcept { return trace_path_; }

private:
    std::string metrics_path_;
    std::string trace_path_;
    bool flushed_ = false;
};

/// The metrics snapshot wrapped with run metadata:
/// {"meta": {...}, "metrics": {"counters": ..., "gauges": ..., "histograms": ...}}.
[[nodiscard]] std::string metrics_blob_json();

}  // namespace mvreju::obs
