#pragma once

// Run metadata so every metrics blob / bench JSON is attributable to a
// configuration: a wall-clock number without the git SHA, build type and
// compiler behind it cannot be compared across runs. The values are baked
// in at configure time by src/obs/CMakeLists.txt (git SHA is therefore the
// SHA of the last *configured* commit; CI always configures fresh).

#include <cstddef>
#include <string>

namespace mvreju::obs {

struct RunMetadata {
    std::string git_sha;     ///< short SHA at configure time ("unknown" outside git)
    std::string build_type;  ///< CMAKE_BUILD_TYPE
    std::string compiler;    ///< compiler id + version
    std::size_t hardware_threads = 0;  ///< util::hardware_threads() at runtime
    bool obs_enabled = true;           ///< obs::enabled() at snapshot time
};

[[nodiscard]] RunMetadata run_metadata();

/// The metadata as a JSON object, e.g.
/// {"git_sha": "abc123", "build_type": "Release", ...}.
[[nodiscard]] std::string run_metadata_json();

}  // namespace mvreju::obs
