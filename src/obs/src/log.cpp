#include "mvreju/obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mvreju::obs {

namespace {

LogLevel env_level() {
    const char* env = std::getenv("MVREJU_LOG");
    return env != nullptr ? parse_log_level(env, LogLevel::warn) : LogLevel::warn;
}

std::atomic<int>& level_state() {
    static std::atomic<int> state{static_cast<int>(env_level())};
    return state;
}

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::error: return "error";
        case LogLevel::warn: return "warn";
        case LogLevel::info: return "info";
        case LogLevel::debug: return "debug";
        default: return "off";
    }
}

}  // namespace

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
    if (text == "off" || text == "none" || text == "0") return LogLevel::off;
    if (text == "error") return LogLevel::error;
    if (text == "warn" || text == "warning") return LogLevel::warn;
    if (text == "info") return LogLevel::info;
    if (text == "debug") return LogLevel::debug;
    return fallback;
}

LogLevel log_level() {
    return static_cast<LogLevel>(level_state().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
    level_state().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
    return level != LogLevel::off && static_cast<int>(level) <= static_cast<int>(log_level());
}

void log(LogLevel level, std::string_view message) {
    if (!log_enabled(level)) return;
    std::fprintf(stderr, "[mvreju][%s] %.*s\n", level_name(level),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace mvreju::obs
