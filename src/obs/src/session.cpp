#include "mvreju/obs/session.hpp"

#include <cstdlib>
#include <fstream>
#include <string>

#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/log.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/obs/trace.hpp"

namespace mvreju::obs {

std::string metrics_blob_json() {
    std::string out = "{\n\"meta\": " + run_metadata_json() + ",\n\"metrics\": ";
    out += metrics().snapshot().to_json();
    out += "\n}\n";
    return out;
}

Session::Session(const util::Args& args, std::string default_metrics_path)
    : metrics_path_(args.get("metrics", default_metrics_path)),
      trace_path_(args.get("trace", std::string())) {
    if (!trace_path_.empty()) Tracer::global().enable();
    if (args.has("flight")) {
        FlightRecorder& recorder = FlightRecorder::global();
        const std::string arg_dir = args.get("flight", std::string());
        // Bare --flight: dumps into the working directory.
        const std::string dir = arg_dir.empty() ? std::string(".") : arg_dir;
        recorder.set_dump_dir(dir);
        // Default trigger set: the postmortem moments of the paper's fault
        // model. Rejuvenations are recorded but deliberately not triggers —
        // they are routine in a healthy system and would eat the dump limit.
        recorder.set_trigger(EventKind::deadline_miss, true);
        recorder.set_trigger(EventKind::vote_skipped, true);
        recorder.set_trigger(EventKind::vote_no_output, true);
        recorder.set_trigger(EventKind::collision, true);
        recorder.set_trigger(EventKind::slo_breach, true);
        recorder.set_enabled(true);
        log_info("flight recorder armed, dumps into " + dir);
    }
    if (args.has("serve"))
        serving_ = Exporter::global().start(args.get("serve", 0));

    // --profile [interval_us] or MVREJU_PROFILE=on|<interval_us>: arm the
    // continuous sampling profiler (reports via GET /profile and the
    // obs.profiler.* metrics). A numeric value overrides the default
    // ~100 Hz sampling interval — CI smokes use a fast interval so a
    // 1-second scrape has enough samples to assert on.
    std::string profile_value;
    bool profile_requested = args.has("profile");
    if (profile_requested) {
        profile_value = args.get("profile", std::string());
    } else if (const char* env = std::getenv("MVREJU_PROFILE")) {
        const std::string v(env);
        if (!v.empty() && v != "off" && v != "0" && v != "false" && v != "no") {
            profile_requested = true;
            profile_value = (v == "on" || v == "1" || v == "true") ? "" : v;
        }
    }
    if (profile_requested) {
        if (!profile_value.empty()) {
            const int interval_us = std::atoi(profile_value.c_str());
            if (interval_us > 0) {
                // Profiler options are fixed at construction, so a custom
                // interval gets a session-owned instance; /profile and the
                // serving layer find it through Profiler::active().
                Profiler::Options options;
                options.interval_us = interval_us;
                profiler_ = std::make_unique<Profiler>(options);
            }
        }
        Profiler& profiler = profiler_ ? *profiler_ : Profiler::global();
        profiling_ = profiler.start();
    }
}

void Session::flush() {
    if (flushed_) return;
    flushed_ = true;
    if (profiling_) {
        (profiler_ ? *profiler_ : Profiler::global()).stop();
        profiling_ = false;
    }
    if (serving_) {
        Exporter::global().stop();
        serving_ = false;
    }
    if (!metrics_path_.empty()) {
        std::ofstream out(metrics_path_);
        out << metrics_blob_json();
        if (out.good())
            log_info("wrote metrics blob to " + metrics_path_);
        else
            log_error("cannot write metrics blob to " + metrics_path_);
    }
    if (!trace_path_.empty()) {
        try {
            Tracer::global().write(trace_path_);
            log_info("wrote trace to " + trace_path_ +
                     " (load it in https://ui.perfetto.dev)");
        } catch (const std::exception& e) {
            log_error(e.what());
        }
    }
}

Session::~Session() { flush(); }

}  // namespace mvreju::obs
