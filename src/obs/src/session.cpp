#include "mvreju/obs/session.hpp"

#include <fstream>

#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/log.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"

namespace mvreju::obs {

std::string metrics_blob_json() {
    std::string out = "{\n\"meta\": " + run_metadata_json() + ",\n\"metrics\": ";
    out += metrics().snapshot().to_json();
    out += "\n}\n";
    return out;
}

Session::Session(const util::Args& args, std::string default_metrics_path)
    : metrics_path_(args.get("metrics", default_metrics_path)),
      trace_path_(args.get("trace", std::string())) {
    if (!trace_path_.empty()) Tracer::global().enable();
    if (args.has("flight")) {
        FlightRecorder& recorder = FlightRecorder::global();
        const std::string arg_dir = args.get("flight", std::string());
        // Bare --flight: dumps into the working directory.
        const std::string dir = arg_dir.empty() ? std::string(".") : arg_dir;
        recorder.set_dump_dir(dir);
        // Default trigger set: the postmortem moments of the paper's fault
        // model. Rejuvenations are recorded but deliberately not triggers —
        // they are routine in a healthy system and would eat the dump limit.
        recorder.set_trigger(EventKind::deadline_miss, true);
        recorder.set_trigger(EventKind::vote_skipped, true);
        recorder.set_trigger(EventKind::vote_no_output, true);
        recorder.set_trigger(EventKind::collision, true);
        recorder.set_trigger(EventKind::slo_breach, true);
        recorder.set_enabled(true);
        log_info("flight recorder armed, dumps into " + dir);
    }
    if (args.has("serve"))
        serving_ = Exporter::global().start(args.get("serve", 0));
}

void Session::flush() {
    if (flushed_) return;
    flushed_ = true;
    if (serving_) {
        Exporter::global().stop();
        serving_ = false;
    }
    if (!metrics_path_.empty()) {
        std::ofstream out(metrics_path_);
        out << metrics_blob_json();
        if (out.good())
            log_info("wrote metrics blob to " + metrics_path_);
        else
            log_error("cannot write metrics blob to " + metrics_path_);
    }
    if (!trace_path_.empty()) {
        try {
            Tracer::global().write(trace_path_);
            log_info("wrote trace to " + trace_path_ +
                     " (load it in https://ui.perfetto.dev)");
        } catch (const std::exception& e) {
            log_error(e.what());
        }
    }
}

Session::~Session() { flush(); }

}  // namespace mvreju::obs
