#include "mvreju/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace mvreju::obs {

namespace {

struct Event {
    const char* name;
    char ph;      // 'X' complete span, 'C' counter sample
    double ts;    // microseconds since tracer epoch
    double dur;   // 'X' only
    double value; // 'C' only
    std::uint32_t tid;
    std::array<TraceArg, 6> args;
    std::size_t nargs;
};

/// Per-thread event track. Only the owner thread appends; flush reads under
/// the same (uncontended) mutex.
struct Track {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<Event> events;
};

std::atomic<std::uint64_t> g_next_tracer_id{1};

void append_number(std::string& out, double v, const char* fmt) {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    out += buf;
}

}  // namespace

struct Tracer::Impl {
    std::uint64_t tracer_id = g_next_tracer_id.fetch_add(1);
    std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();

    std::mutex mu;  // guards tracks, retired and next_tid
    std::vector<std::shared_ptr<Track>> tracks;
    std::vector<Event> retired;
    std::uint32_t next_tid = 0;

    Track& track_for_this_thread();
};

namespace {
struct TlsTrack {
    std::uint64_t tracer_id;
    std::shared_ptr<Track> track;
};
thread_local std::vector<TlsTrack> t_tracks;
}  // namespace

Track& Tracer::Impl::track_for_this_thread() {
    for (const TlsTrack& e : t_tracks)
        if (e.tracer_id == tracer_id) return *e.track;
    auto track = std::make_shared<Track>();
    {
        const std::lock_guard<std::mutex> lock(mu);
        track->tid = next_tid++;
        tracks.push_back(track);
    }
    t_tracks.push_back({tracer_id, track});
    return *t_tracks.back().track;
}

Tracer::Tracer() : impl_(new Impl) {}

Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
    // Leaked on purpose: spans may run from detached worker threads during
    // process teardown.
    static Tracer* tracer = new Tracer();
    return *tracer;
}

void Tracer::enable() {
    if (!obs::enabled()) return;
    enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     impl_->epoch)
        .count();
}

void Tracer::complete(const char* name, double ts_us, double dur_us,
                      const TraceArg* args, std::size_t nargs) {
    if (!enabled()) return;
    Track& track = impl_->track_for_this_thread();
    Event e{};
    e.name = name;
    e.ph = 'X';
    e.ts = ts_us;
    e.dur = dur_us;
    e.tid = track.tid;
    e.nargs = std::min(nargs, e.args.size());
    for (std::size_t i = 0; i < e.nargs; ++i) e.args[i] = args[i];
    const std::lock_guard<std::mutex> lock(track.mu);
    track.events.push_back(e);
}

void Tracer::counter(const char* name, double ts_us, double value) {
    if (!enabled()) return;
    Track& track = impl_->track_for_this_thread();
    Event e{};
    e.name = name;
    e.ph = 'C';
    e.ts = ts_us;
    e.value = value;
    e.tid = track.tid;
    const std::lock_guard<std::mutex> lock(track.mu);
    track.events.push_back(e);
}

void Tracer::clear() {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->retired.clear();
    for (const std::shared_ptr<Track>& track : impl_->tracks) {
        const std::lock_guard<std::mutex> track_lock(track->mu);
        track->events.clear();
    }
}

std::string Tracer::chrome_json() {
    std::vector<Event> events;
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        events = impl_->retired;
        // Fold tracks of exited threads into the retired list so the track
        // vector stays bounded across many parallel_for invocations.
        std::erase_if(impl_->tracks, [&](const std::shared_ptr<Track>& track) {
            if (track.use_count() > 1) return false;
            impl_->retired.insert(impl_->retired.end(), track->events.begin(),
                                  track->events.end());
            events.insert(events.end(), track->events.begin(), track->events.end());
            return true;
        });
        for (const std::shared_ptr<Track>& track : impl_->tracks) {
            const std::lock_guard<std::mutex> track_lock(track->mu);
            events.insert(events.end(), track->events.begin(), track->events.end());
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.ts < b.ts; });

    std::string out = "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event& e = events[i];
        out += i ? ",\n" : "\n";
        out += "{\"name\": \"";
        out += e.name;
        out += "\", \"ph\": \"";
        out += e.ph;
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
        append_number(out, e.ts, "%.3f");
        if (e.ph == 'X') {
            out += ", \"dur\": ";
            append_number(out, e.dur, "%.3f");
            out += ", \"args\": {";
            for (std::size_t a = 0; a < e.nargs; ++a) {
                out += a ? ", " : "";
                out += "\"";
                out += e.args[a].key;
                out += "\": ";
                append_number(out, e.args[a].value, "%g");
            }
            out += "}";
        } else {
            out += ", \"args\": {\"value\": ";
            append_number(out, e.value, "%g");
            out += "}";
        }
        out += "}";
    }
    out += events.empty() ? "]" : "\n]";
    out += ", \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

void Tracer::write(const std::string& path) {
    std::ofstream out(path);
    out << chrome_json();
    if (!out.good()) throw std::runtime_error("Tracer::write: cannot write " + path);
}

}  // namespace mvreju::obs
