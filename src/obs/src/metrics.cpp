#include "mvreju/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "mvreju/util/csv.hpp"

namespace mvreju::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One thread's private storage for one counter.
struct CounterCell {
    std::atomic<std::uint64_t> value{0};
};

/// One thread's private storage for one histogram. `bounds` points into the
/// registry's stable deque of definitions.
struct HistogramCell {
    explicit HistogramCell(const HistogramBounds* b)
        : bounds(b), buckets(b->upper.size() + 1) {}
    const HistogramBounds* bounds;
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{kInf};
    std::atomic<double> max{-kInf};
};

/// Per-thread shard. Cells are created lazily; the shard mutex guards the
/// *structure* (vector growth) and snapshot reads — never the owner thread's
/// atomic updates to existing cells.
struct Shard {
    std::mutex mu;
    std::vector<std::unique_ptr<CounterCell>> counters;
    std::vector<std::unique_ptr<HistogramCell>> histograms;
};

/// Merged (non-atomic) histogram state, used for retired shards and for
/// snapshot accumulation.
struct HistogramAccum {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = kInf;
    double max = -kInf;
    std::vector<std::uint64_t> buckets;

    void add_cell(const HistogramCell& cell) {
        if (buckets.size() < cell.buckets.size()) buckets.resize(cell.buckets.size(), 0);
        for (std::size_t b = 0; b < cell.buckets.size(); ++b)
            buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
        count += cell.count.load(std::memory_order_relaxed);
        sum += cell.sum.load(std::memory_order_relaxed);
        min = std::min(min, cell.min.load(std::memory_order_relaxed));
        max = std::max(max, cell.max.load(std::memory_order_relaxed));
    }
};

struct GaugeSlot {
    std::atomic<double> value{0.0};
    std::atomic<bool> set{false};
};

enum class Kind { counter, gauge, histogram };

std::atomic<std::uint64_t> g_next_registry_id{1};

void json_escape_into(std::string& out, const std::string& s) {
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

std::string fmt_double(double v) {
    if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramBounds

HistogramBounds HistogramBounds::linear(double start, double step, std::size_t count) {
    if (step <= 0.0 || count == 0)
        throw std::invalid_argument("HistogramBounds::linear: bad parameters");
    HistogramBounds b;
    b.upper.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        b.upper.push_back(start + step * static_cast<double>(i + 1));
    return b;
}

HistogramBounds HistogramBounds::exponential(double start, double factor,
                                             std::size_t count) {
    if (start <= 0.0 || factor <= 1.0 || count == 0)
        throw std::invalid_argument("HistogramBounds::exponential: bad parameters");
    HistogramBounds b;
    b.upper.reserve(count);
    double bound = start;
    for (std::size_t i = 0; i < count; ++i) {
        b.upper.push_back(bound);
        bound *= factor;
    }
    return b;
}

// ---------------------------------------------------------------------------
// Registry internals

struct Registry::Impl {
    std::uint64_t registry_id = g_next_registry_id.fetch_add(1);

    std::mutex mu;  // guards everything below
    std::map<std::string, std::pair<Kind, std::size_t>> by_name;
    std::deque<Counter> counter_handles;
    std::deque<Gauge> gauge_handles;
    std::deque<Histogram> histogram_handles;
    std::vector<std::string> counter_names;
    std::vector<std::string> gauge_names;
    std::vector<std::string> histogram_names;
    std::deque<HistogramBounds> histogram_bounds;  // stable addresses
    std::deque<GaugeSlot> gauge_slots;             // stable addresses
    std::vector<std::shared_ptr<Shard>> shards;
    std::vector<std::uint64_t> retired_counters;
    std::vector<HistogramAccum> retired_histograms;

    Shard& shard_for_this_thread();
    CounterCell& counter_cell(std::size_t id);
    HistogramCell& histogram_cell(std::size_t id);
};

namespace {
/// Thread-local shard directory: one entry per registry this thread has
/// touched. Keyed by registry id (never reused), so a registry destroyed
/// while a thread still holds its shard cannot be confused with a new one.
struct TlsEntry {
    std::uint64_t registry_id;
    std::shared_ptr<Shard> shard;
};
thread_local std::vector<TlsEntry> t_shards;
}  // namespace

Shard& Registry::Impl::shard_for_this_thread() {
    for (const TlsEntry& e : t_shards)
        if (e.registry_id == registry_id) return *e.shard;
    auto shard = std::make_shared<Shard>();
    {
        const std::lock_guard<std::mutex> lock(mu);
        shards.push_back(shard);
    }
    t_shards.push_back({registry_id, shard});
    return *t_shards.back().shard;
}

CounterCell& Registry::Impl::counter_cell(std::size_t id) {
    Shard& shard = shard_for_this_thread();
    // Owner-only fast path: nobody else mutates this shard's structure.
    if (id < shard.counters.size() && shard.counters[id]) return *shard.counters[id];
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.counters.size() <= id) shard.counters.resize(id + 1);
    shard.counters[id] = std::make_unique<CounterCell>();
    return *shard.counters[id];
}

HistogramCell& Registry::Impl::histogram_cell(std::size_t id) {
    Shard& shard = shard_for_this_thread();
    if (id < shard.histograms.size() && shard.histograms[id]) return *shard.histograms[id];
    const HistogramBounds* bounds;
    {
        const std::lock_guard<std::mutex> lock(mu);
        bounds = &histogram_bounds[id];
    }
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.histograms.size() <= id) shard.histograms.resize(id + 1);
    shard.histograms[id] = std::make_unique<HistogramCell>(bounds);
    return *shard.histograms[id];
}

// ---------------------------------------------------------------------------
// Handles

void Counter::add(std::uint64_t delta) noexcept {
    if (!enabled()) return;
    registry_->impl_->counter_cell(id_).value.fetch_add(delta,
                                                        std::memory_order_relaxed);
}

void Gauge::set(double value) noexcept {
    if (!enabled()) return;
    // Gauges are set on cold paths (once per solve/run); a brief registry
    // lock keeps the slot deque access safe against concurrent registration.
    const std::lock_guard<std::mutex> lock(registry_->impl_->mu);
    GaugeSlot& slot = registry_->impl_->gauge_slots[id_];
    slot.value.store(value, std::memory_order_relaxed);
    slot.set.store(true, std::memory_order_relaxed);
}

void Histogram::record(double value) noexcept {
    if (!enabled()) return;
    HistogramCell& cell = registry_->impl_->histogram_cell(id_);
    const std::vector<double>& upper = cell.bounds->upper;
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(upper.begin(), upper.end(), value) - upper.begin());
    cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    double seen = cell.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !cell.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = cell.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !cell.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->by_name.find(name);
    if (it != impl_->by_name.end()) {
        if (it->second.first != Kind::counter)
            throw std::logic_error("Registry: '" + name + "' is not a counter");
        return impl_->counter_handles[it->second.second];
    }
    const std::size_t id = impl_->counter_handles.size();
    impl_->by_name[name] = {Kind::counter, id};
    impl_->counter_names.push_back(name);
    impl_->counter_handles.push_back(Counter(this, id));
    return impl_->counter_handles.back();
}

Gauge& Registry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->by_name.find(name);
    if (it != impl_->by_name.end()) {
        if (it->second.first != Kind::gauge)
            throw std::logic_error("Registry: '" + name + "' is not a gauge");
        return impl_->gauge_handles[it->second.second];
    }
    const std::size_t id = impl_->gauge_handles.size();
    impl_->by_name[name] = {Kind::gauge, id};
    impl_->gauge_names.push_back(name);
    impl_->gauge_slots.emplace_back();
    impl_->gauge_handles.push_back(Gauge(this, id));
    return impl_->gauge_handles.back();
}

Histogram& Registry::histogram(const std::string& name, const HistogramBounds& bounds) {
    if (bounds.upper.empty())
        throw std::invalid_argument("Registry::histogram: no buckets");
    for (std::size_t i = 1; i < bounds.upper.size(); ++i)
        if (bounds.upper[i] <= bounds.upper[i - 1])
            throw std::invalid_argument("Registry::histogram: bounds not increasing");
    const std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->by_name.find(name);
    if (it != impl_->by_name.end()) {
        if (it->second.first != Kind::histogram)
            throw std::logic_error("Registry: '" + name + "' is not a histogram");
        if (impl_->histogram_bounds[it->second.second].upper != bounds.upper)
            throw std::logic_error("Registry: '" + name + "' re-registered with "
                                   "different bounds");
        return impl_->histogram_handles[it->second.second];
    }
    const std::size_t id = impl_->histogram_handles.size();
    impl_->by_name[name] = {Kind::histogram, id};
    impl_->histogram_names.push_back(name);
    impl_->histogram_bounds.push_back(bounds);
    impl_->histogram_handles.push_back(Histogram(this, id));
    return impl_->histogram_handles.back();
}

MetricsSnapshot Registry::snapshot() {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    const std::size_t n_counters = impl_->counter_names.size();
    const std::size_t n_hists = impl_->histogram_names.size();

    // Fold shards of exited threads (only the registry still references
    // them) into the retired accumulator so the shard list stays bounded.
    impl_->retired_counters.resize(n_counters, 0);
    impl_->retired_histograms.resize(n_hists);
    auto fold = [&](Shard& shard) {
        const std::lock_guard<std::mutex> shard_lock(shard.mu);
        for (std::size_t c = 0; c < shard.counters.size(); ++c)
            if (shard.counters[c])
                impl_->retired_counters[c] +=
                    shard.counters[c]->value.load(std::memory_order_relaxed);
        for (std::size_t h = 0; h < shard.histograms.size(); ++h)
            if (shard.histograms[h])
                impl_->retired_histograms[h].add_cell(*shard.histograms[h]);
    };
    std::erase_if(impl_->shards, [&](const std::shared_ptr<Shard>& shard) {
        if (shard.use_count() > 1) return false;
        fold(*shard);
        return true;
    });

    std::vector<std::uint64_t> counters = impl_->retired_counters;
    std::vector<HistogramAccum> hists = impl_->retired_histograms;
    for (const std::shared_ptr<Shard>& shard : impl_->shards) {
        const std::lock_guard<std::mutex> shard_lock(shard->mu);
        for (std::size_t c = 0; c < shard->counters.size(); ++c)
            if (shard->counters[c])
                counters[c] += shard->counters[c]->value.load(std::memory_order_relaxed);
        for (std::size_t h = 0; h < shard->histograms.size(); ++h)
            if (shard->histograms[h]) hists[h].add_cell(*shard->histograms[h]);
    }

    MetricsSnapshot snap;
    for (std::size_t c = 0; c < n_counters; ++c)
        snap.counters.push_back({impl_->counter_names[c], counters[c]});
    for (std::size_t g = 0; g < impl_->gauge_names.size(); ++g) {
        const GaugeSlot& slot = impl_->gauge_slots[g];
        if (slot.set.load(std::memory_order_relaxed))
            snap.gauges.push_back(
                {impl_->gauge_names[g], slot.value.load(std::memory_order_relaxed)});
    }
    for (std::size_t h = 0; h < n_hists; ++h) {
        HistogramValue v;
        v.name = impl_->histogram_names[h];
        v.upper = impl_->histogram_bounds[h].upper;
        v.buckets.assign(v.upper.size() + 1, 0);
        const HistogramAccum& acc = hists[h];
        for (std::size_t b = 0; b < acc.buckets.size() && b < v.buckets.size(); ++b)
            v.buckets[b] = acc.buckets[b];
        v.count = acc.count;
        v.sum = acc.sum;
        v.min = acc.count > 0 ? acc.min : 0.0;
        v.max = acc.count > 0 ? acc.max : 0.0;
        snap.histograms.push_back(std::move(v));
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->retired_counters.assign(impl_->retired_counters.size(), 0);
    for (HistogramAccum& acc : impl_->retired_histograms) acc = HistogramAccum{};
    for (GaugeSlot& slot : impl_->gauge_slots) {
        slot.set.store(false, std::memory_order_relaxed);
        slot.value.store(0.0, std::memory_order_relaxed);
    }
    for (const std::shared_ptr<Shard>& shard : impl_->shards) {
        const std::lock_guard<std::mutex> shard_lock(shard->mu);
        for (auto& cell : shard->counters)
            if (cell) cell->value.store(0, std::memory_order_relaxed);
        for (auto& cell : shard->histograms) {
            if (!cell) continue;
            for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
            cell->count.store(0, std::memory_order_relaxed);
            cell->sum.store(0.0, std::memory_order_relaxed);
            cell->min.store(kInf, std::memory_order_relaxed);
            cell->max.store(-kInf, std::memory_order_relaxed);
        }
    }
}

Registry& metrics() {
    // Intentionally leaked: worker threads and thread_local destructors may
    // outlive main()'s statics, so the global registry is never destroyed.
    static Registry* global = new Registry();
    return *global;
}

// ---------------------------------------------------------------------------
// Snapshot rendering

double HistogramValue::mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double HistogramValue::quantile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0) continue;
        const double before = static_cast<double>(cum);
        cum += buckets[b];
        if (static_cast<double>(cum) >= target) {
            // Interpolate inside this bucket, clamped to observed extremes.
            const double lo = std::max(min, b == 0 ? min : upper[b - 1]);
            const double hi = std::min(max, b < upper.size() ? upper[b] : max);
            const double frac =
                std::clamp((target - before) / static_cast<double>(buckets[b]), 0.0, 1.0);
            return lo + frac * (hi - lo);
        }
    }
    return max;
}

std::string MetricsSnapshot::to_text() const {
    std::ostringstream out;
    for (const CounterValue& c : counters)
        out << "counter   " << c.name << " = " << c.value << "\n";
    for (const GaugeValue& g : gauges)
        out << "gauge     " << g.name << " = " << fmt_double(g.value) << "\n";
    for (const HistogramValue& h : histograms) {
        out << "histogram " << h.name << " count=" << h.count
            << " mean=" << fmt_double(h.mean()) << " min=" << fmt_double(h.min)
            << " max=" << fmt_double(h.max) << " p50=" << fmt_double(h.quantile(0.5))
            << " p90=" << fmt_double(h.quantile(0.9))
            << " p99=" << fmt_double(h.quantile(0.99)) << "\n";
    }
    return out.str();
}

std::string MetricsSnapshot::to_json() const {
    std::string out = "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out += i ? ", " : "";
        out += "\n    \"";
        json_escape_into(out, counters[i].name);
        out += "\": " + std::to_string(counters[i].value);
    }
    out += counters.empty() ? "}" : "\n  }";
    out += ",\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        out += i ? ", " : "";
        out += "\n    \"";
        json_escape_into(out, gauges[i].name);
        out += "\": " + fmt_double(gauges[i].value);
    }
    out += gauges.empty() ? "}" : "\n  }";
    out += ",\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramValue& h = histograms[i];
        out += i ? ", " : "";
        out += "\n    \"";
        json_escape_into(out, h.name);
        out += "\": {\"count\": " + std::to_string(h.count);
        out += ", \"sum\": " + fmt_double(h.sum);
        out += ", \"min\": " + fmt_double(h.min);
        out += ", \"max\": " + fmt_double(h.max);
        out += ", \"mean\": " + fmt_double(h.mean());
        out += ", \"p50\": " + fmt_double(h.quantile(0.5));
        out += ", \"p90\": " + fmt_double(h.quantile(0.9));
        out += ", \"p99\": " + fmt_double(h.quantile(0.99));
        out += ", \"upper\": [";
        for (std::size_t b = 0; b < h.upper.size(); ++b)
            out += (b ? ", " : "") + fmt_double(h.upper[b]);
        out += "], \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            out += (b ? ", " : "") + std::to_string(h.buckets[b]);
        out += "]}";
    }
    out += histograms.empty() ? "}" : "\n  }";
    out += "\n}";
    return out;
}

void MetricsSnapshot::write_csv(const std::string& path) const {
    util::CsvWriter csv({"kind", "name", "count", "value", "min", "max", "p50", "p90",
                         "p99"});
    for (const CounterValue& c : counters)
        csv.add_row({"counter", c.name, "1", std::to_string(c.value), "", "", "", "", ""});
    for (const GaugeValue& g : gauges)
        csv.add_row({"gauge", g.name, "1", fmt_double(g.value), "", "", "", "", ""});
    for (const HistogramValue& h : histograms)
        csv.add_row({"histogram", h.name, std::to_string(h.count), fmt_double(h.mean()),
                     fmt_double(h.min), fmt_double(h.max), fmt_double(h.quantile(0.5)),
                     fmt_double(h.quantile(0.9)), fmt_double(h.quantile(0.99))});
    csv.write(path);
}

}  // namespace mvreju::obs
