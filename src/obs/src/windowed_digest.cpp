#include "mvreju/obs/windowed_digest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mvreju::obs {

WindowedDigest::WindowedDigest(const Options& options) : options_(options) {
    if (options_.slot_width_us == 0)
        throw std::invalid_argument("WindowedDigest: slot_width_us must be > 0");
    if (options_.slots == 0)
        throw std::invalid_argument("WindowedDigest: slots must be > 0");
    if (options_.bounds.upper.empty())
        options_.bounds = HistogramBounds::exponential(0.25, 2.0, 12);
    for (std::size_t b = 1; b < options_.bounds.upper.size(); ++b)
        if (options_.bounds.upper[b] <= options_.bounds.upper[b - 1])
            throw std::invalid_argument(
                "WindowedDigest: bucket bounds must be strictly increasing");
    slots_.resize(options_.slots);
    for (Slot& slot : slots_) slot.buckets.resize(options_.bounds.upper.size() + 1);
}

void WindowedDigest::reset_slot(Slot& slot, std::uint64_t epoch) {
    slot.epoch = epoch;
    slot.count = 0;
    slot.sum_scaled = 0;
    slot.min_scaled = std::numeric_limits<std::int64_t>::max();
    slot.max_scaled = std::numeric_limits<std::int64_t>::min();
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
}

void WindowedDigest::record(std::uint64_t t_us, double value) {
    const std::uint64_t epoch = t_us / options_.slot_width_us;
    Slot& slot = slots_[epoch % slots_.size()];
    if (slot.epoch != epoch) {
        // Same ring position, different slot: either the window moved past
        // this sample (drop it) or the slot is stale (evict and reuse).
        if (slot.count != 0 && slot.epoch > epoch) return;
        reset_slot(slot, epoch);
    } else if (slot.count == 0) {
        reset_slot(slot, epoch);  // normalise min/max sentinels
    }
    const std::int64_t scaled = static_cast<std::int64_t>(std::llround(
        std::clamp(value * kScale, -9.0e18, 9.0e18)));
    ++slot.count;
    slot.sum_scaled += scaled;
    slot.min_scaled = std::min(slot.min_scaled, scaled);
    slot.max_scaled = std::max(slot.max_scaled, scaled);
    const auto& upper = options_.bounds.upper;
    std::size_t b = 0;
    while (b < upper.size() && value > upper[b]) ++b;
    ++slot.buckets[b];
}

void WindowedDigest::merge(const WindowedDigest& other) {
    if (other.slots_.size() != slots_.size() ||
        other.options_.slot_width_us != options_.slot_width_us ||
        other.options_.bounds.upper != options_.bounds.upper)
        throw std::logic_error("WindowedDigest::merge: mismatched geometry");
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot& theirs = other.slots_[i];
        if (theirs.count == 0) continue;
        Slot& ours = slots_[i];
        if (ours.count == 0 || theirs.epoch > ours.epoch) {
            ours = theirs;
            continue;
        }
        if (theirs.epoch < ours.epoch) continue;
        ours.count += theirs.count;
        ours.sum_scaled += theirs.sum_scaled;
        ours.min_scaled = std::min(ours.min_scaled, theirs.min_scaled);
        ours.max_scaled = std::max(ours.max_scaled, theirs.max_scaled);
        for (std::size_t b = 0; b < ours.buckets.size(); ++b)
            ours.buckets[b] += theirs.buckets[b];
    }
}

bool WindowedDigest::in_window(const Slot& slot, std::uint64_t now_epoch) const {
    if (slot.count == 0) return false;
    if (slot.epoch > now_epoch) return false;  // caller clock ran backwards
    return slot.epoch + slots_.size() > now_epoch;
}

HistogramValue WindowedDigest::window(std::uint64_t now_us) const {
    const std::uint64_t now_epoch = now_us / options_.slot_width_us;
    HistogramValue out;
    out.upper = options_.bounds.upper;
    out.buckets.assign(out.upper.size() + 1, 0);
    std::int64_t sum_scaled = 0;
    std::int64_t min_scaled = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_scaled = std::numeric_limits<std::int64_t>::min();
    for (const Slot& slot : slots_) {
        if (!in_window(slot, now_epoch)) continue;
        out.count += slot.count;
        sum_scaled += slot.sum_scaled;
        min_scaled = std::min(min_scaled, slot.min_scaled);
        max_scaled = std::max(max_scaled, slot.max_scaled);
        for (std::size_t b = 0; b < out.buckets.size(); ++b)
            out.buckets[b] += slot.buckets[b];
    }
    if (out.count > 0) {
        out.sum = static_cast<double>(sum_scaled) / kScale;
        out.min = static_cast<double>(min_scaled) / kScale;
        out.max = static_cast<double>(max_scaled) / kScale;
    }
    return out;
}

std::uint64_t WindowedDigest::count(std::uint64_t now_us) const {
    const std::uint64_t now_epoch = now_us / options_.slot_width_us;
    std::uint64_t total = 0;
    for (const Slot& slot : slots_)
        if (in_window(slot, now_epoch)) total += slot.count;
    return total;
}

void WindowedDigest::clear() {
    for (Slot& slot : slots_) reset_slot(slot, 0);
}

}  // namespace mvreju::obs
