#include "mvreju/obs/buildinfo.hpp"

#include "mvreju/obs/obs.hpp"
#include "mvreju/util/parallel.hpp"

#ifndef MVREJU_GIT_SHA
#define MVREJU_GIT_SHA "unknown"
#endif
#ifndef MVREJU_BUILD_TYPE
#define MVREJU_BUILD_TYPE "unknown"
#endif
#ifndef MVREJU_COMPILER
#define MVREJU_COMPILER "unknown"
#endif

namespace mvreju::obs {

RunMetadata run_metadata() {
    RunMetadata meta;
    meta.git_sha = MVREJU_GIT_SHA;
    meta.build_type = MVREJU_BUILD_TYPE;
    meta.compiler = MVREJU_COMPILER;
    meta.hardware_threads = util::hardware_threads();
    meta.obs_enabled = enabled();
    return meta;
}

std::string run_metadata_json() {
    const RunMetadata meta = run_metadata();
    std::string out = "{";
    out += "\"git_sha\": \"" + meta.git_sha + "\"";
    out += ", \"build_type\": \"" + meta.build_type + "\"";
    out += ", \"compiler\": \"" + meta.compiler + "\"";
    out += ", \"hardware_threads\": " + std::to_string(meta.hardware_threads);
    out += ", \"obs_enabled\": ";
    out += meta.obs_enabled ? "true" : "false";
    out += "}";
    return out;
}

}  // namespace mvreju::obs
