#include "mvreju/obs/exporter.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mvreju/net/conn.hpp"
#include "mvreju/net/event_loop.hpp"
#include "mvreju/net/listener.hpp"
#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/log.hpp"
#include "mvreju/obs/obs.hpp"
#include "mvreju/obs/profiler.hpp"

namespace mvreju::obs {

namespace {

std::string sanitize_metric_name(const std::string& name) {
    std::string out = "mvreju_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
    std::string out;
    const RunMetadata meta = run_metadata();
    out += "# TYPE mvreju_build_info gauge\n";
    out += "mvreju_build_info{git_sha=\"" + meta.git_sha + "\",build_type=\"" +
           meta.build_type + "\",compiler=\"" + meta.compiler + "\"} 1\n";
    for (const CounterValue& c : snapshot.counters) {
        const std::string name = sanitize_metric_name(c.name);
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(c.value) + "\n";
    }
    for (const GaugeValue& g : snapshot.gauges) {
        const std::string name = sanitize_metric_name(g.name);
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + fmt_double(g.value) + "\n";
    }
    for (const HistogramValue& h : snapshot.histograms) {
        const std::string name = sanitize_metric_name(h.name);
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.upper.size(); ++b) {
            cumulative += h.buckets[b];
            out += name + "_bucket{le=\"" + fmt_double(h.upper[b]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
        out += name + "_sum " + fmt_double(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

struct Exporter::Impl {
    const std::chrono::steady_clock::time_point started =
        std::chrono::steady_clock::now();

    Options options;
    std::atomic<bool> running{false};
    std::atomic<int> port{0};
    std::thread thread;

    // Networking state lives on the shared net layer: the loop is created by
    // start() on the caller's thread (so bind failures are synchronous) and
    // driven by the service thread. Accepted connections are tracked so
    // stop() can close stragglers before tearing the loop down.
    std::unique_ptr<net::EventLoop> loop;
    std::unique_ptr<net::Listener> listener;
    std::vector<std::weak_ptr<net::Conn>> conns;

    mutable std::mutex health_mu;
    std::optional<HealthReport> health;
    std::string fleet_json;  ///< latest /fleet document; empty = none yet
};

Exporter::Exporter() : Exporter(Options{}) {}

Exporter::Exporter(const Options& options) : impl_(new Impl) {
    impl_->options = options;
}

Exporter::~Exporter() {
    stop();
    delete impl_;
}

Exporter& Exporter::global() {
    // Leaked for the same reason as the metrics registry: the service thread
    // and late flushes may outlive main()'s statics.
    static Exporter* exporter = new Exporter();
    return *exporter;
}

bool Exporter::running() const noexcept {
    return impl_->running.load(std::memory_order_relaxed);
}

int Exporter::port() const noexcept {
    return impl_->port.load(std::memory_order_relaxed);
}

void Exporter::set_health(const HealthReport& report) {
    const std::lock_guard<std::mutex> lock(impl_->health_mu);
    impl_->health = report;
}

std::optional<HealthReport> Exporter::health() const {
    const std::lock_guard<std::mutex> lock(impl_->health_mu);
    return impl_->health;
}

void Exporter::set_fleet_json(std::string json) {
    const std::lock_guard<std::mutex> lock(impl_->health_mu);
    impl_->fleet_json = std::move(json);
}

std::string Exporter::fleet_json() const {
    const std::lock_guard<std::mutex> lock(impl_->health_mu);
    return impl_->fleet_json;
}

std::string Exporter::healthz_json() const {
    const std::optional<HealthReport> report = health();
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - impl_->started)
            .count();

    const char* status = "ok";
    if (report.has_value()) {
        if (report->functional() == 0 && !report->module_states.empty())
            status = "critical";
        else if (report->compromised + report->nonfunctional + report->rejuvenating > 0)
            status = "degraded";
    }

    std::string out = "{\n\"status\": \"";
    out += status;
    out += "\",\n\"meta\": " + run_metadata_json() + ",\n";
    out += "\"uptime_seconds\": " + fmt_double(uptime);
    if (report.has_value()) {
        out += ",\n\"modules\": {\"healthy\": " + std::to_string(report->healthy);
        out += ", \"compromised\": " + std::to_string(report->compromised);
        out += ", \"nonfunctional\": " + std::to_string(report->nonfunctional);
        out += ", \"rejuvenating\": " + std::to_string(report->rejuvenating);
        out += ", \"states\": [";
        for (std::size_t m = 0; m < report->module_states.size(); ++m) {
            out += m ? ", " : "";
            out += "\"" + report->module_states[m] + "\"";
        }
        out += "]}";
        out += ",\n\"last_rejuvenation_age_seconds\": " +
               fmt_double(report->last_rejuvenation_age_s);
    }
    out += "\n}\n";
    return out;
}

std::string Exporter::handle(const std::string& request) {
    // "GET /path HTTP/1.x" — anything else is a client error.
    const std::size_t method_end = request.find(' ');
    if (method_end == std::string::npos)
        return http_response("400 Bad Request", "text/plain", "bad request\n");
    const std::string method = request.substr(0, method_end);
    if (method != "GET")
        return http_response("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n");
    std::size_t path_end = request.find(' ', method_end + 1);
    if (path_end == std::string::npos) path_end = request.find('\r', method_end + 1);
    if (path_end == std::string::npos) path_end = request.size();
    std::string path = request.substr(method_end + 1, path_end - method_end - 1);
    std::string query_string;
    const std::size_t query = path.find('?');
    if (query != std::string::npos) {
        query_string = path.substr(query + 1);
        path.resize(query);
    }

    if (path == "/metrics") {
        std::string body = to_prometheus(metrics().snapshot());
        const std::optional<HealthReport> report = health();
        if (report.has_value()) {
            body += "# TYPE mvreju_module_state_count gauge\n";
            body += "mvreju_module_state_count{state=\"healthy\"} " +
                    std::to_string(report->healthy) + "\n";
            body += "mvreju_module_state_count{state=\"compromised\"} " +
                    std::to_string(report->compromised) + "\n";
            body += "mvreju_module_state_count{state=\"nonfunctional\"} " +
                    std::to_string(report->nonfunctional) + "\n";
            body += "mvreju_module_state_count{state=\"rejuvenating\"} " +
                    std::to_string(report->rejuvenating) + "\n";
        }
        return http_response("200 OK", "text/plain; version=0.0.4", body);
    }
    if (path == "/healthz")
        return http_response("200 OK", "application/json", healthz_json());
    if (path == "/fleet") {
        const std::string body = fleet_json();
        if (body.empty())
            return http_response("503 Service Unavailable", "application/json",
                                 "{\"error\": \"no fleet telemetry published\"}\n");
        return http_response("200 OK", "application/json", body);
    }
    if (path == "/profile") {
        Profiler* profiler_ptr = Profiler::active();
        if (!profiler_ptr)
            return http_response(
                "503 Service Unavailable", "application/json",
                "{\"error\": \"profiler not running; start with --profile or "
                "MVREJU_PROFILE=on\"}\n");
        Profiler& profiler = *profiler_ptr;
        // ?seconds=N bounds the report window (0 / absent = whole retained
        // window). The profiler samples *continuously* — the endpoint only
        // renders already-aggregated buckets, so a scrape costs
        // symbolization of new PCs and never blocks the sampled threads.
        int seconds = 0;
        const std::size_t key = query_string.find("seconds=");
        if (key != std::string::npos) {
            seconds = std::atoi(query_string.c_str() + key + 8);
            if (seconds < 0) seconds = 0;
            seconds = std::min(seconds, profiler.options().window_seconds);
        }
        return http_response("200 OK", "text/plain", profiler.folded(seconds));
    }
    if (path == "/record") {
        FlightRecorder& recorder = FlightRecorder::global();
        if (!recorder.enabled())
            return http_response("503 Service Unavailable", "application/json",
                                 "{\"error\": \"flight recorder disabled\"}\n");
        const std::string dumped = recorder.dump("forced");
        if (dumped.empty())
            return http_response("500 Internal Server Error", "application/json",
                                 "{\"error\": \"dump failed\"}\n");
        return http_response("200 OK", "application/json",
                             "{\"dumped\": \"" + dumped + "\"}\n");
    }
    return http_response("404 Not Found", "text/plain",
                         "unknown path; try /metrics, /healthz, /fleet, /profile "
                         "or /record\n");
}

bool Exporter::start(int port) {
#ifdef MVREJU_OBS_DISABLED
    (void)port;
    log_warn("exporter: observability compiled out (MVREJU_OBS=OFF), not serving");
    return false;
#else
    if (!obs::enabled()) {
        log_warn("exporter: MVREJU_OBS=off, not serving");
        return false;
    }
    if (impl_->running.load()) return false;
    if (port < 0 || port > 65535) {
        log_error("exporter: bad port " + std::to_string(port));
        return false;
    }

    impl_->loop = std::make_unique<net::EventLoop>();
    net::ListenerOptions listen_opts;
    listen_opts.host = "127.0.0.1";
    listen_opts.port = port;
    listen_opts.backlog = impl_->options.listen_backlog;
    std::string error;
    impl_->listener = net::Listener::open(
        *impl_->loop, listen_opts, [this](int fd) { accept_client(fd); }, &error);
    if (!impl_->listener) {
        log_error("exporter: " + error);
        impl_->loop.reset();
        return false;
    }
    impl_->port.store(impl_->listener->port(), std::memory_order_relaxed);

    impl_->running.store(true);
    impl_->thread = std::thread(&Exporter::serve_loop, this);
    log_info("exporter: serving /metrics /healthz /fleet /profile /record on 127.0.0.1:" +
             std::to_string(this->port()));
    return true;
#endif
}

void Exporter::accept_client(int fd) {
    // HTTP/1.0, one request per connection: accumulate until the header
    // terminator (or the historical 2 KiB request cap), answer, close.
    auto conn = net::Conn::adopt(*impl_->loop, fd, [this](net::Conn& c) {
        // handle() only parses the request line, so a complete first line is
        // enough to answer; the 2 KiB cap matches the historical single-recv
        // buffer and bounds what a hostile client can make us hold.
        if (c.rx().find("\r\n") == std::string::npos && c.rx().size() < 2048)
            return;  // request line still incomplete
        c.send(handle(c.rx()));
        c.close_after_send();
    });
    if (!conn) return;
    // Track for shutdown; recycle slots left by finished connections.
    for (auto& slot : impl_->conns) {
        if (slot.expired()) {
            slot = conn;
            return;
        }
    }
    impl_->conns.push_back(conn);
}

void Exporter::serve_loop() { impl_->loop->run(impl_->options.poll_timeout_ms); }

void Exporter::stop() {
    if (!impl_->running.exchange(false)) return;
    impl_->loop->stop();
    if (impl_->thread.joinable()) impl_->thread.join();
    // Close any connection that outlived the loop thread *before* the loop
    // is destroyed: Conn::close unregisters from the loop.
    for (auto& weak : impl_->conns)
        if (auto conn = weak.lock()) conn->close();
    impl_->conns.clear();
    impl_->listener.reset();
    impl_->loop.reset();
    impl_->port.store(0, std::memory_order_relaxed);
}

}  // namespace mvreju::obs
