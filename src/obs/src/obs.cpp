#include "mvreju/obs/obs.hpp"

#include <cstdlib>
#include <string_view>

namespace mvreju::obs {

namespace detail {

namespace {
int initial_enabled() {
    const char* env = std::getenv("MVREJU_OBS");
    if (env == nullptr) return 1;
    const std::string_view v(env);
    return (v == "off" || v == "0" || v == "false" || v == "no") ? 0 : 1;
}
}  // namespace

std::atomic<int>& enabled_state() {
    static std::atomic<int> state{initial_enabled()};
    return state;
}

}  // namespace detail

void set_enabled(bool on) {
    detail::enabled_state().store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace mvreju::obs
