// obs::Profiler — signal-based continuous sampling profiler.
//
// Safety model, in one paragraph: the SIGPROF handler is the only code that
// runs in signal context, and it touches nothing but (a) POD thread_locals,
// (b) preallocated per-thread seqlock rings owned by Impl, (c) relaxed
// atomic counters and (d) async-signal-safe syscalls (clock_gettime,
// process_vm_readv). No allocation, no locks, no C++ thread_local with a
// destructor, no metrics registry (its first-touch path takes a mutex).
// Everything else — ring claims with recycling, aggregation, symbolization,
// metric publication — happens in normal context on the collector thread or
// the reporting caller. The handler stays installed (as an inert no-op)
// after stop(): restoring SIG_DFL would turn one straggler SIGPROF, pended
// between the final timer tick and sigaction(), into process death.

#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // REG_RIP et al. in <ucontext.h>, process_vm_readv
#endif

#include "mvreju/obs/profiler.hpp"

#ifndef MVREJU_OBS_DISABLED

#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mvreju/obs/log.hpp"
#include "mvreju/obs/metrics.hpp"

namespace mvreju::obs {

namespace {

/// Compile-time ceiling on Options::max_depth (slot payload is fixed-size).
constexpr int kDepthCap = 32;

/// One committed stack sample. seq is the per-slot seqlock: for the ring's
/// i-th sample (0-based) the writer stores 2i+1 (writing) then 2i+2
/// (committed, release); a reader accepts the payload only when it observes
/// 2i+2 both before and after copying.
struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> tag{nullptr};
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::uintptr_t> pcs[kDepthCap];
};

/// One thread's ring: the owner (in signal context) bumps head, the
/// collector advances drained. Samples between them live in the slots.
struct alignas(64) Ring {
    std::atomic<std::uint64_t> head{0};
    std::uint64_t drained = 0;  ///< collector-only cursor
};

/// A unique stack within one aggregation bucket.
struct StackEntry {
    const char* tag = nullptr;  ///< stage tag string literal (may be null)
    std::vector<std::uintptr_t> pcs;  ///< leaf first
    std::uint64_t count = 0;
};

struct Bucket {
    std::chrono::steady_clock::time_point end{};
    std::unordered_map<std::uint64_t, StackEntry> entries;
    std::uint64_t total = 0;
};

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

/// Thread-local ring claim. Plain constant-initialized atomics (no dynamic
/// TLS init, no destructor) so they are touchable from the signal handler;
/// t_owner is the claiming profiler's id, so a stale claim from a stopped
/// test instance can never alias a new profiler's rings.
thread_local std::atomic<std::uint64_t> t_owner{0};
thread_local std::atomic<int> t_ring{-1};
thread_local std::atomic<const char*> t_stage{nullptr};

std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

struct Profiler::Impl {
    const std::uint64_t id = g_next_id.fetch_add(1);
    Profiler* owner = nullptr;
    Options opts;

    // Preallocated sampling state (ctor), touched from signal context.
    std::vector<Ring> rings;
    std::vector<Slot> slots;  ///< max_threads * ring_slots, ring-major
    std::atomic<std::uint32_t> ring_tail{0};  ///< next never-claimed ring
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> truncated{0};
    std::atomic<std::uint64_t> handler_ns{0};
    std::atomic<std::uint64_t> samples_base{0};  ///< clear() offset for stats()

    std::atomic<bool> active{false};

    // Recycled ring indices from exited prepared threads (under g_reg_mu).
    std::vector<int> free_rings;

    // Collector thread + aggregation (normal context only).
    std::thread collector;
    std::mutex cv_mu;
    std::condition_variable cv;
    bool stop_requested = false;

    std::mutex mu;  ///< guards drain (sole ring reader), buckets, symbols
    Bucket current;
    std::deque<Bucket> history;
    std::chrono::steady_clock::time_point bucket_start{};
    std::unordered_map<std::uintptr_t, std::string> symbols;

    // Metric-publication baselines (collector thread / stop() only).
    std::uint64_t pub_samples = 0, pub_drops = 0, pub_truncated = 0, pub_ns = 0;

    Slot& slot(int ring, std::uint64_t index) {
        return slots[static_cast<std::size_t>(ring) * opts.ring_slots +
                     index % opts.ring_slots];
    }

    void sample(void* uc_void) noexcept;          // signal context
    void drain_locked();                           // mu held
    void publish_metrics_locked();                 // mu held
    void collector_loop();
    [[nodiscard]] std::uint64_t committed() const noexcept;
    [[nodiscard]] std::vector<Bucket*> window_locked(int seconds);
    [[nodiscard]] const std::string& symbolize_locked(std::uintptr_t pc);
};

namespace {

/// Live Impl registry: lets a thread-exit hook return a recycled ring to a
/// profiler that may or may not still exist. Normal context only.
std::mutex g_reg_mu;
std::vector<Profiler::Impl*>& registry() {
    static std::vector<Profiler::Impl*>* reg = new std::vector<Profiler::Impl*>();
    return *reg;
}

/// The profiler the signal handler samples for (at most one per process —
/// there is exactly one ITIMER_PROF).
std::atomic<Profiler::Impl*> g_active{nullptr};
/// Handlers currently executing; stop() waits for zero before returning so
/// the caller may destroy the profiler.
std::atomic<int> g_inflight{0};

void sigprof_handler(int, siginfo_t*, void* uc_void) {
    const int saved_errno = errno;
    g_inflight.fetch_add(1, std::memory_order_acquire);
    Profiler::Impl* impl = g_active.load(std::memory_order_acquire);
    if (impl) impl->sample(uc_void);
    g_inflight.fetch_sub(1, std::memory_order_release);
    errno = saved_errno;
}

/// Read `size` bytes at `addr` in our own address space without faulting:
/// process_vm_readv reports EFAULT for garbage addresses where a plain
/// dereference would SIGSEGV. Async-signal-safe (it is a raw syscall).
bool safe_read(std::uintptr_t addr, void* out, std::size_t size) noexcept {
    struct iovec local { out, size };
    struct iovec remote { reinterpret_cast<void*>(addr), size };
    return process_vm_readv(getpid(), &local, 1, &remote, 1, 0) ==
           static_cast<ssize_t>(size);
}

/// Per-thread exit hook releasing prepared ring claims back to their
/// profiler. Non-POD thread_local: only ever touched from normal context
/// (prepare_thread), never from the signal handler.
struct RingReleaser {
    std::vector<std::pair<std::uint64_t, int>> claims;
    ~RingReleaser() {
        const std::lock_guard<std::mutex> lock(g_reg_mu);
        for (const auto& [id, ring] : claims)
            for (Profiler::Impl* impl : registry())
                if (impl->id == id) impl->free_rings.push_back(ring);
    }
};
thread_local RingReleaser t_releaser;

}  // namespace

// ---------------------------------------------------------------- sampling

void Profiler::Impl::sample(void* uc_void) noexcept {
    timespec t0;
    clock_gettime(CLOCK_MONOTONIC, &t0);

    // Resolve this thread's ring; claim one from the tail on first sample.
    // (prepare_thread() claims earlier, with recycling — this path is the
    // fallback for threads that were never stage-tagged.)
    if (t_owner.load(std::memory_order_relaxed) != id) {
        const std::uint32_t idx = ring_tail.fetch_add(1, std::memory_order_relaxed);
        const int claimed =
            idx < static_cast<std::uint32_t>(opts.max_threads) ? static_cast<int>(idx) : -2;
        t_ring.store(claimed, std::memory_order_relaxed);
        std::atomic_signal_fence(std::memory_order_release);
        t_owner.store(id, std::memory_order_relaxed);
    }
    std::atomic_signal_fence(std::memory_order_acquire);
    const int ring_idx = t_ring.load(std::memory_order_relaxed);
    if (ring_idx < 0) {  // ring table exhausted for this thread
        drops.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    // Interrupted PC + frame pointer from the signal ucontext.
    const ucontext_t* uc = static_cast<const ucontext_t*>(uc_void);
#if defined(__x86_64__)
    std::uintptr_t pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    std::uintptr_t fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    std::uintptr_t pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
    std::uintptr_t fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
    (void)uc;
    drops.fetch_add(1, std::memory_order_relaxed);
    return;
#endif

    Ring& ring = rings[ring_idx];
    const std::uint64_t index = ring.head.load(std::memory_order_relaxed);
    Slot& s = slot(ring_idx, index);

    s.seq.store(2 * index + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);  // odd visible first

    s.tag.store(t_stage.load(std::memory_order_relaxed), std::memory_order_relaxed);
    int depth = 0;
    s.pcs[depth++].store(pc, std::memory_order_relaxed);
    // Frame-pointer walk: [fp] = caller's fp, [fp+8] = return address. Every
    // read goes through process_vm_readv, so a scrambled chain (leaf frames
    // mid-prologue, libc without frame pointers) ends the walk, never the
    // process. Monotonic growth with a <1 MiB stride bounds the loop.
    bool chain_continues = false;
    while (fp != 0) {
        if (depth >= opts.max_depth) {
            chain_continues = true;
            break;
        }
        std::uintptr_t frame[2];
        if ((fp & (sizeof(void*) - 1)) != 0 || !safe_read(fp, frame, sizeof frame))
            break;
        const std::uintptr_t next_fp = frame[0];
        const std::uintptr_t ret = frame[1];
        if (ret < 4096) break;
        // Return addresses point after the call; step back one byte so the
        // frame symbolizes to the caller even when the call is its last
        // instruction.
        s.pcs[depth++].store(ret - 1, std::memory_order_relaxed);
        if (next_fp <= fp || next_fp - fp > (1u << 20)) break;
        fp = next_fp;
    }
    if (chain_continues) truncated.fetch_add(1, std::memory_order_relaxed);
    s.depth.store(static_cast<std::uint32_t>(depth), std::memory_order_relaxed);

    s.seq.store(2 * index + 2, std::memory_order_release);  // commit
    ring.head.store(index + 1, std::memory_order_release);

    timespec t1;
    clock_gettime(CLOCK_MONOTONIC, &t1);
    const std::uint64_t ns =
        static_cast<std::uint64_t>(t1.tv_sec - t0.tv_sec) * 1000000000ULL +
        static_cast<std::uint64_t>(t1.tv_nsec - t0.tv_nsec);
    handler_ns.fetch_add(ns, std::memory_order_relaxed);
}

// -------------------------------------------------------------- collection

std::uint64_t Profiler::Impl::committed() const noexcept {
    const std::uint32_t claimed =
        std::min(ring_tail.load(std::memory_order_relaxed),
                 static_cast<std::uint32_t>(opts.max_threads));
    std::uint64_t total = 0;
    for (std::uint32_t r = 0; r < claimed; ++r)
        total += rings[r].head.load(std::memory_order_relaxed);
    return total;
}

void Profiler::Impl::drain_locked() {
    const auto now = std::chrono::steady_clock::now();
    if (bucket_start == std::chrono::steady_clock::time_point{}) bucket_start = now;

    const std::uint32_t claimed =
        std::min(ring_tail.load(std::memory_order_relaxed),
                 static_cast<std::uint32_t>(opts.max_threads));
    std::uint64_t lost = 0;
    for (std::uint32_t r = 0; r < claimed; ++r) {
        Ring& ring = rings[r];
        const std::uint64_t head = ring.head.load(std::memory_order_acquire);
        std::uint64_t from = ring.drained;
        const std::uint64_t slots_n = opts.ring_slots;
        if (head - from > slots_n) {  // writer lapped the collector
            lost += head - from - slots_n;
            from = head - slots_n;
        }
        for (std::uint64_t i = from; i < head; ++i) {
            Slot& s = slot(static_cast<int>(r), i);
            const std::uint64_t want = 2 * i + 2;
            if (s.seq.load(std::memory_order_acquire) != want) {
                ++lost;  // overwritten (or mid-write) before we got here
                continue;
            }
            const char* tag = s.tag.load(std::memory_order_relaxed);
            int depth = static_cast<int>(s.depth.load(std::memory_order_relaxed));
            depth = std::min(depth, kDepthCap);
            std::uintptr_t pcs[kDepthCap];
            for (int d = 0; d < depth; ++d)
                pcs[d] = s.pcs[d].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.seq.load(std::memory_order_relaxed) != want) {
                ++lost;
                continue;
            }
            std::uint64_t hash = fnv1a(14695981039346656037ULL, &tag, sizeof tag);
            hash = fnv1a(hash, pcs, sizeof(pcs[0]) * static_cast<std::size_t>(depth));
            StackEntry& entry = current.entries[hash];
            if (entry.count == 0) {
                entry.tag = tag;
                entry.pcs.assign(pcs, pcs + depth);
            }
            ++entry.count;
            ++current.total;
        }
        ring.drained = head;
    }
    if (lost) drops.fetch_add(lost, std::memory_order_relaxed);

    if (now - bucket_start >= std::chrono::seconds(1) && current.total > 0) {
        current.end = now;
        history.push_back(std::move(current));
        current = Bucket{};
        while (history.size() > static_cast<std::size_t>(opts.window_seconds))
            history.pop_front();
    }
    if (now - bucket_start >= std::chrono::seconds(1)) bucket_start = now;
}

void Profiler::Impl::publish_metrics_locked() {
    static Counter& samples_c = metrics().counter("obs.profiler.samples");
    static Counter& drops_c = metrics().counter("obs.profiler.drops");
    static Counter& truncated_c = metrics().counter("obs.profiler.truncated");
    static Counter& handler_ns_c = metrics().counter("obs.profiler.handler_ns");
    static Gauge& rings_g = metrics().gauge("obs.profiler.rings_claimed");

    const std::uint64_t samples_now = committed();
    const std::uint64_t drops_now = drops.load(std::memory_order_relaxed);
    const std::uint64_t trunc_now = truncated.load(std::memory_order_relaxed);
    const std::uint64_t ns_now = handler_ns.load(std::memory_order_relaxed);
    if (samples_now > pub_samples) samples_c.add(samples_now - pub_samples);
    if (drops_now > pub_drops) drops_c.add(drops_now - pub_drops);
    if (trunc_now > pub_truncated) truncated_c.add(trunc_now - pub_truncated);
    if (ns_now > pub_ns) handler_ns_c.add(ns_now - pub_ns);
    pub_samples = samples_now;
    pub_drops = drops_now;
    pub_truncated = trunc_now;
    pub_ns = ns_now;
    rings_g.set(static_cast<double>(
        std::min(ring_tail.load(std::memory_order_relaxed),
                 static_cast<std::uint32_t>(opts.max_threads))));
}

void Profiler::Impl::collector_loop() {
    // The collector burns (a little) CPU too; keep SIGPROF out of this
    // thread so drains and symbolization never show up as samples.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGPROF);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);

    std::unique_lock<std::mutex> lk(cv_mu);
    while (!stop_requested) {
        cv.wait_for(lk, std::chrono::milliseconds(100));
        if (stop_requested) break;
        lk.unlock();
        {
            const std::lock_guard<std::mutex> lock(mu);
            drain_locked();
            publish_metrics_locked();
        }
        lk.lock();
    }
}

// ----------------------------------------------------------- symbolization

namespace {

/// /proc/self/maps fallback for PCs dladdr cannot place (e.g. a JIT-free
/// static region without symbols): resolves to "object+0xoffset".
struct MapsRegion {
    std::uintptr_t begin = 0, end = 0;
    std::string name;
};

std::vector<MapsRegion> read_self_maps() {
    std::vector<MapsRegion> regions;
    std::ifstream maps("/proc/self/maps");
    std::string line;
    while (std::getline(maps, line)) {
        std::uintptr_t begin = 0, end = 0;
        char perms[8] = {0};
        int consumed = 0;
        if (std::sscanf(line.c_str(), "%zx-%zx %7s %*s %*s %*s %n", &begin, &end,
                        perms, &consumed) < 3)
            continue;
        if (perms[2] != 'x') continue;  // only executable mappings matter
        std::string name = consumed < static_cast<int>(line.size())
                               ? line.substr(static_cast<std::size_t>(consumed))
                               : std::string();
        const std::size_t slash = name.rfind('/');
        if (slash != std::string::npos) name.erase(0, slash + 1);
        regions.push_back({begin, end, std::move(name)});
    }
    return regions;
}

/// Folded-format hygiene: the stack separator is ';' and the count
/// separator is ' ', so neither may appear inside a frame name. Parameter
/// lists are dropped — "ns::func(int, float)" folds as "ns::func".
std::string clean_symbol(std::string name) {
    const std::size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0) name.resize(paren);
    for (char& c : name)
        if (c == ';' || c == ' ') c = '_';
    return name.empty() ? std::string("??") : name;
}

std::string hex_frame(const char* prefix, std::uintptr_t offset) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s+0x%zx", prefix, offset);
    return buf;
}

}  // namespace

const std::string& Profiler::Impl::symbolize_locked(std::uintptr_t pc) {
    auto it = symbols.find(pc);
    if (it != symbols.end()) return it->second;

    std::string name;
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname) {
        int status = 0;
        char* demangled =
            abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
        name = clean_symbol(status == 0 && demangled ? demangled : info.dli_sname);
        std::free(demangled);
    } else if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_fname) {
        std::string base = info.dli_fname;
        const std::size_t slash = base.rfind('/');
        if (slash != std::string::npos) base.erase(0, slash + 1);
        name = hex_frame(clean_symbol(std::move(base)).c_str(),
                         pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    } else {
        static std::vector<MapsRegion> regions = read_self_maps();
        for (const MapsRegion& region : regions)
            if (pc >= region.begin && pc < region.end) {
                name = hex_frame(clean_symbol(region.name).c_str(), pc - region.begin);
                break;
            }
        if (name.empty()) name = hex_frame("", pc);
    }
    return symbols.emplace(pc, std::move(name)).first->second;
}

// ------------------------------------------------------------------ public

Profiler::Profiler() : Profiler(Options{}) {}

Profiler::Profiler(const Options& options) : impl_(new Impl) {
    impl_->owner = this;
    impl_->opts = options;
    impl_->opts.interval_us = std::clamp(impl_->opts.interval_us, 100, 1000000);
    impl_->opts.window_seconds = std::clamp(impl_->opts.window_seconds, 1, 3600);
    impl_->opts.max_threads = std::clamp(impl_->opts.max_threads, 1, 4096);
    impl_->opts.ring_slots = std::clamp(impl_->opts.ring_slots, 8, 65536);
    impl_->opts.max_depth = std::clamp(impl_->opts.max_depth, 2, kDepthCap);
    impl_->rings = std::vector<Ring>(impl_->opts.max_threads);
    impl_->slots = std::vector<Slot>(static_cast<std::size_t>(impl_->opts.max_threads) *
                                     impl_->opts.ring_slots);
    const std::lock_guard<std::mutex> lock(g_reg_mu);
    registry().push_back(impl_);
}

Profiler::~Profiler() {
    stop();
    {
        const std::lock_guard<std::mutex> lock(g_reg_mu);
        auto& reg = registry();
        reg.erase(std::remove(reg.begin(), reg.end(), impl_), reg.end());
    }
    delete impl_;
}

Profiler& Profiler::global() {
    // Leaked like the metrics registry: the collector and late reporters
    // may outlive main()'s statics.
    static Profiler* profiler = new Profiler();
    return *profiler;
}

const Profiler::Options& Profiler::options() const noexcept { return impl_->opts; }

Profiler* Profiler::active() noexcept {
    Impl* impl = g_active.load(std::memory_order_acquire);
    return impl ? impl->owner : nullptr;
}

bool Profiler::running() const noexcept {
    return impl_->active.load(std::memory_order_relaxed);
}

ProfilerStats Profiler::stats() const noexcept {
    ProfilerStats out;
    const std::uint64_t base = impl_->samples_base.load(std::memory_order_relaxed);
    const std::uint64_t committed = impl_->committed();
    out.samples = committed > base ? committed - base : 0;
    out.drops = impl_->drops.load(std::memory_order_relaxed);
    out.truncated = impl_->truncated.load(std::memory_order_relaxed);
    out.handler_ns = impl_->handler_ns.load(std::memory_order_relaxed);
    out.rings_claimed =
        std::min(impl_->ring_tail.load(std::memory_order_relaxed),
                 static_cast<std::uint32_t>(impl_->opts.max_threads));
    return out;
}

bool Profiler::start() {
    if (!obs::enabled()) {
        log_warn("profiler: MVREJU_OBS=off, not sampling");
        return false;
    }
#if !defined(__x86_64__) && !defined(__aarch64__)
    log_warn("profiler: no frame-pointer walker for this architecture");
    return false;
#endif
    Impl* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, impl_,
                                          std::memory_order_acq_rel)) {
        log_warn("profiler: another profiler is already running (one ITIMER_PROF "
                 "per process)");
        return false;
    }

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
        g_active.store(nullptr, std::memory_order_release);
        log_error("profiler: sigaction(SIGPROF) failed");
        return false;
    }

    {
        const std::lock_guard<std::mutex> lock(impl_->cv_mu);
        impl_->stop_requested = false;
    }
    impl_->bucket_start = {};
    impl_->collector = std::thread([this] { impl_->collector_loop(); });

    itimerval timer;
    timer.it_interval.tv_sec = impl_->opts.interval_us / 1000000;
    timer.it_interval.tv_usec = impl_->opts.interval_us % 1000000;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        g_active.store(nullptr, std::memory_order_release);
        {
            const std::lock_guard<std::mutex> lock(impl_->cv_mu);
            impl_->stop_requested = true;
        }
        impl_->cv.notify_all();
        impl_->collector.join();
        log_error("profiler: setitimer(ITIMER_PROF) failed");
        return false;
    }

    impl_->active.store(true, std::memory_order_relaxed);
    static Gauge& interval_g = metrics().gauge("obs.profiler.interval_us");
    interval_g.set(impl_->opts.interval_us);
    log_info("profiler: sampling every " + std::to_string(impl_->opts.interval_us) +
             "us of CPU time (~" +
             std::to_string(1000000 / impl_->opts.interval_us) + " Hz)");
    return true;
}

void Profiler::stop() {
    if (!impl_->active.exchange(false, std::memory_order_acq_rel)) return;

    itimerval off;
    std::memset(&off, 0, sizeof off);
    setitimer(ITIMER_PROF, &off, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    // Let in-flight handlers retire before anyone may destroy us. The
    // handler itself stays installed as an inert no-op (see file comment).
    while (g_inflight.load(std::memory_order_acquire) != 0) sched_yield();

    {
        const std::lock_guard<std::mutex> lock(impl_->cv_mu);
        impl_->stop_requested = true;
    }
    impl_->cv.notify_all();
    if (impl_->collector.joinable()) impl_->collector.join();

    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->drain_locked();
    impl_->publish_metrics_locked();
}

void Profiler::clear() {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->drain_locked();  // consume outstanding samples into (discarded) buckets
    impl_->current = Bucket{};
    impl_->history.clear();
    impl_->samples_base.store(impl_->committed(), std::memory_order_relaxed);
    impl_->drops.store(0, std::memory_order_relaxed);
    impl_->truncated.store(0, std::memory_order_relaxed);
    impl_->handler_ns.store(0, std::memory_order_relaxed);
    impl_->pub_drops = impl_->pub_truncated = impl_->pub_ns = 0;
}

std::vector<Bucket*> Profiler::Impl::window_locked(int seconds) {
    drain_locked();
    std::vector<Bucket*> out;
    const auto now = std::chrono::steady_clock::now();
    for (Bucket& bucket : history) {
        if (seconds > 0 && now - bucket.end > std::chrono::seconds(seconds)) continue;
        out.push_back(&bucket);
    }
    out.push_back(&current);
    return out;
}

std::string Profiler::folded(int seconds) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    // Merge the window's buckets into folded lines; distinct stacks can
    // symbolize to the same line (inlining, nearby PCs), so merge by text.
    std::unordered_map<std::string, std::uint64_t> lines;
    for (Bucket* bucket : impl_->window_locked(seconds)) {
        for (const auto& [hash, entry] : bucket->entries) {
            (void)hash;
            std::string line = entry.tag ? entry.tag : "untagged";
            for (std::size_t d = entry.pcs.size(); d-- > 0;) {  // root first
                line += ';';
                line += impl_->symbolize_locked(entry.pcs[d]);
            }
            lines[line] += entry.count;
        }
    }
    std::vector<std::pair<std::string, std::uint64_t>> sorted(lines.begin(),
                                                              lines.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    std::string out;
    for (const auto& [line, count] : sorted)
        out += line + " " + std::to_string(count) + "\n";
    return out;
}

std::vector<StageCpu> Profiler::stage_cpu(int seconds) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    std::unordered_map<const char*, std::uint64_t> by_tag;
    std::uint64_t total = 0;
    for (Bucket* bucket : impl_->window_locked(seconds)) {
        for (const auto& [hash, entry] : bucket->entries) {
            (void)hash;
            by_tag[entry.tag] += entry.count;
            total += entry.count;
        }
    }
    std::vector<StageCpu> out;
    for (const auto& [tag, count] : by_tag) {
        StageCpu stage;
        stage.stage = tag ? tag : "untagged";
        stage.samples = count;
        stage.fraction = total ? static_cast<double>(count) / total : 0.0;
        out.push_back(std::move(stage));
    }
    std::sort(out.begin(), out.end(), [](const StageCpu& a, const StageCpu& b) {
        const bool a_untagged = a.stage == "untagged";
        const bool b_untagged = b.stage == "untagged";
        if (a_untagged != b_untagged) return b_untagged;  // untagged last
        return a.samples != b.samples ? a.samples > b.samples : a.stage < b.stage;
    });
    return out;
}

void Profiler::prepare_thread() {
    Impl* impl = g_active.load(std::memory_order_acquire);
    if (!impl) return;
    if (t_owner.load(std::memory_order_relaxed) == impl->id) return;

    const std::lock_guard<std::mutex> lock(g_reg_mu);
    int claimed;
    if (!impl->free_rings.empty()) {
        claimed = impl->free_rings.back();
        impl->free_rings.pop_back();
    } else {
        const std::uint32_t idx =
            impl->ring_tail.fetch_add(1, std::memory_order_relaxed);
        claimed = idx < static_cast<std::uint32_t>(impl->opts.max_threads)
                      ? static_cast<int>(idx)
                      : -2;
    }
    if (claimed >= 0) t_releaser.claims.emplace_back(impl->id, claimed);
    t_ring.store(claimed, std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_release);
    t_owner.store(impl->id, std::memory_order_relaxed);
}

// ------------------------------------------------------------- stage scope

StageTagScope::StageTagScope(const char* tag) noexcept
    : prev_(t_stage.load(std::memory_order_relaxed)) {
    t_stage.store(tag, std::memory_order_relaxed);
    Profiler::prepare_thread();
}

StageTagScope::~StageTagScope() noexcept {
    t_stage.store(prev_, std::memory_order_relaxed);
}

}  // namespace mvreju::obs

#endif  // MVREJU_OBS_DISABLED
