#include "mvreju/obs/profile_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace mvreju::obs {

std::vector<FoldedStack> parse_folded(const std::string& text) {
    std::vector<FoldedStack> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) continue;

        // Count = the digits after the last space; everything before is the
        // ';'-separated stack.
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos || space + 1 >= line.size()) continue;
        std::uint64_t count = 0;
        bool numeric = true;
        for (std::size_t i = space + 1; i < line.size(); ++i) {
            if (line[i] < '0' || line[i] > '9') {
                numeric = false;
                break;
            }
            count = count * 10 + static_cast<std::uint64_t>(line[i] - '0');
        }
        if (!numeric || count == 0) continue;

        FoldedStack stack;
        stack.count = count;
        std::size_t from = 0;
        const std::string path = line.substr(0, space);
        while (from <= path.size()) {
            std::size_t semi = path.find(';', from);
            if (semi == std::string::npos) semi = path.size();
            std::string part = path.substr(from, semi - from);
            if (stack.stage.empty() && from == 0)
                stack.stage = part.empty() ? "untagged" : std::move(part);
            else if (!part.empty())
                stack.frames.push_back(std::move(part));
            from = semi + 1;
        }
        out.push_back(std::move(stack));
    }
    return out;
}

std::vector<Hotspot> hotspots(const std::vector<FoldedStack>& stacks) {
    std::unordered_map<std::string, Hotspot> by_frame;
    for (const FoldedStack& stack : stacks) {
        if (stack.frames.empty()) continue;
        std::unordered_set<std::string> seen;  // count each frame once per stack
        for (const std::string& frame : stack.frames) {
            if (!seen.insert(frame).second) continue;
            Hotspot& spot = by_frame[frame];
            spot.frame = frame;
            spot.total += stack.count;
        }
        by_frame[stack.frames.back()].self += stack.count;
    }
    std::vector<Hotspot> out;
    out.reserve(by_frame.size());
    for (auto& [frame, spot] : by_frame) {
        (void)frame;
        out.push_back(std::move(spot));
    }
    std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
        if (a.self != b.self) return a.self > b.self;
        if (a.total != b.total) return a.total > b.total;
        return a.frame < b.frame;
    });
    return out;
}

std::vector<StageTotal> stage_totals(const std::vector<FoldedStack>& stacks) {
    std::unordered_map<std::string, std::uint64_t> by_stage;
    std::uint64_t total = 0;
    for (const FoldedStack& stack : stacks) {
        by_stage[stack.stage] += stack.count;
        total += stack.count;
    }
    std::vector<StageTotal> out;
    for (const auto& [stage, samples] : by_stage)
        out.push_back({stage, samples,
                       total ? static_cast<double>(samples) / total : 0.0});
    std::sort(out.begin(), out.end(), [](const StageTotal& a, const StageTotal& b) {
        const bool a_untagged = a.stage == "untagged";
        const bool b_untagged = b.stage == "untagged";
        if (a_untagged != b_untagged) return b_untagged;
        if (a.samples != b.samples) return a.samples > b.samples;
        return a.stage < b.stage;
    });
    return out;
}

std::string render_hotspots(const std::vector<FoldedStack>& stacks,
                            std::size_t top_n) {
    std::uint64_t total = 0;
    for (const FoldedStack& stack : stacks) total += stack.count;

    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf, "%" PRIu64 " samples, %zu unique stacks\n\n",
                  total, stacks.size());
    out += buf;

    out += "  self%  total%   self  frame\n";
    const std::vector<Hotspot> spots = hotspots(stacks);
    const double denom = total ? static_cast<double>(total) : 1.0;
    for (std::size_t i = 0; i < spots.size() && i < top_n; ++i) {
        const Hotspot& spot = spots[i];
        std::snprintf(buf, sizeof buf, "%6.1f%% %6.1f%% %6" PRIu64 "  %s\n",
                      100.0 * static_cast<double>(spot.self) / denom,
                      100.0 * static_cast<double>(spot.total) / denom, spot.self,
                      spot.frame.c_str());
        out += buf;
    }

    out += "\nby stage:\n";
    for (const StageTotal& stage : stage_totals(stacks)) {
        std::snprintf(buf, sizeof buf, "%6.1f%% %6" PRIu64 "  %s\n",
                      100.0 * stage.fraction, stage.samples, stage.stage.c_str());
        out += buf;
    }
    return out;
}

}  // namespace mvreju::obs
