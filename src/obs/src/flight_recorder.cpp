#include "mvreju/obs/flight_recorder.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/log.hpp"
#include "mvreju/obs/metrics.hpp"

namespace mvreju::obs {

namespace {

constexpr std::size_t kMask = FlightRecorder::kRingCapacity - 1;
static_assert((FlightRecorder::kRingCapacity & kMask) == 0,
              "ring capacity must be a power of two");

/// One ring slot. All fields are relaxed atomics so a concurrent reader is
/// race-free; `seq` (the 1-based absolute event index, written last with
/// release) validates a slot read: a reader that sees seq change across its
/// field reads discards the slot.
struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> frame{0};
    std::atomic<std::uint32_t> module{0};
    std::atomic<std::uint16_t> kind{0};
    std::atomic<double> a{0.0};
    std::atomic<double> b{0.0};
};

/// One thread's ring. Only the owning thread writes; head counts events ever
/// written (the next write lands at head & kMask).
struct Ring {
    explicit Ring(std::uint64_t track_id) : track(track_id) {}
    const std::uint64_t track;
    std::atomic<std::uint64_t> head{0};
    std::vector<Slot> slots{FlightRecorder::kRingCapacity};
};

std::atomic<std::uint64_t> g_next_recorder_id{1};

std::string fmt_payload(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::frame: return "frame";
        case EventKind::vote_decided: return "vote_decided";
        case EventKind::vote_skipped: return "vote_skipped";
        case EventKind::vote_no_output: return "vote_no_output";
        case EventKind::deadline_miss: return "deadline_miss";
        case EventKind::module_state: return "module_state";
        case EventKind::rejuvenation_start: return "rejuvenation_start";
        case EventKind::rejuvenation_end: return "rejuvenation_end";
        case EventKind::collision: return "collision";
        case EventKind::hazard: return "hazard";
        case EventKind::planner_override: return "planner_override";
        case EventKind::injection: return "injection";
        case EventKind::slo_breach: return "slo_breach";
        case EventKind::custom: return "custom";
        case EventKind::load_shed: return "load_shed";
        case EventKind::breach_stage: return "breach_stage";
        case EventKind::sensor_fault: return "sensor_fault";
        case EventKind::degraded_mode: return "degraded_mode";
        case EventKind::kCount: break;
    }
    return "unknown";
}

struct FlightRecorder::Impl {
    const std::uint64_t recorder_id = g_next_recorder_id.fetch_add(1);
    const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();

    std::atomic<bool> armed{false};
    std::atomic<std::uint32_t> trigger_mask{0};
    std::array<std::atomic<double>, static_cast<std::size_t>(EventKind::kCount)>
        trigger_min_a{};
    std::atomic<std::uint64_t> trigger_dump_count{0};
    std::atomic<std::uint64_t> dump_limit{8};
    std::atomic<bool> dumping{false};  ///< one dump at a time; extras are dropped

    std::mutex mu;  ///< guards rings list, dump_dir, last_dump, dump_seq
    std::vector<std::shared_ptr<Ring>> rings;
    std::string dump_dir = ".";
    std::string last_dump;
    std::uint64_t dump_seq = 0;

    Ring& ring_for_this_thread();
};

namespace {
/// Thread-local ring directory, keyed by recorder id (ids are never reused,
/// so a recorder destroyed while a thread still holds a ring cannot be
/// confused with a new one).
struct TlsRing {
    std::uint64_t recorder_id;
    std::shared_ptr<Ring> ring;
};
thread_local std::vector<TlsRing> t_rings;
}  // namespace

Ring& FlightRecorder::Impl::ring_for_this_thread() {
    for (const TlsRing& e : t_rings)
        if (e.recorder_id == recorder_id) return *e.ring;
    std::shared_ptr<Ring> ring;
    {
        const std::lock_guard<std::mutex> lock(mu);
        ring = std::make_shared<Ring>(rings.size() + 1);
        rings.push_back(ring);
    }
    t_rings.push_back({recorder_id, ring});
    return *t_rings.back().ring;
}

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder::~FlightRecorder() { delete impl_; }

FlightRecorder& FlightRecorder::global() {
    // Leaked like the metrics registry: worker threads may outlive main().
    static FlightRecorder* recorder = new FlightRecorder();
    return *recorder;
}

void FlightRecorder::set_enabled(bool on) noexcept {
    impl_->armed.store(on, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const noexcept {
    return impl_->armed.load(std::memory_order_relaxed) && obs::enabled();
}

void FlightRecorder::set_dump_dir(std::string dir) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->dump_dir = dir.empty() ? "." : std::move(dir);
}

void FlightRecorder::set_dump_limit(std::size_t limit) noexcept {
    impl_->dump_limit.store(limit, std::memory_order_relaxed);
}

void FlightRecorder::set_trigger(EventKind kind, bool on, double min_a) noexcept {
    const auto bit = 1u << static_cast<unsigned>(kind);
    impl_->trigger_min_a[static_cast<std::size_t>(kind)].store(
        min_a, std::memory_order_relaxed);
    if (on)
        impl_->trigger_mask.fetch_or(bit, std::memory_order_relaxed);
    else
        impl_->trigger_mask.fetch_and(~bit, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::now_ns() const noexcept {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - impl_->epoch)
                                          .count());
}

void FlightRecorder::record(EventKind kind, std::uint64_t frame, std::uint32_t module,
                            double a, double b) noexcept {
    if (!enabled()) return;
    record_at(now_ns(), kind, frame, module, a, b);
}

void FlightRecorder::record_at(std::uint64_t t_ns, EventKind kind, std::uint64_t frame,
                               std::uint32_t module, double a, double b) noexcept {
    if (!enabled()) return;
    Ring& ring = impl_->ring_for_this_thread();
    const std::uint64_t i = ring.head.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[i & kMask];
    // Invalidate, write fields, publish: a reader whose two seq loads
    // disagree (or see 0) skips the slot instead of reading a torn record.
    slot.seq.store(0, std::memory_order_release);
    slot.t_ns.store(t_ns, std::memory_order_relaxed);
    slot.frame.store(frame, std::memory_order_relaxed);
    slot.module.store(module, std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint16_t>(kind), std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.seq.store(i + 1, std::memory_order_release);
    ring.head.store(i + 1, std::memory_order_relaxed);

    const auto bit = 1u << static_cast<unsigned>(kind);
    if (impl_->trigger_mask.load(std::memory_order_relaxed) & bit) {
        EventRecord record{t_ns, frame, module, kind, a, b};
        maybe_trigger(kind, record);
    }
}

void FlightRecorder::maybe_trigger(EventKind kind, const EventRecord& record) noexcept {
    if (record.a < impl_->trigger_min_a[static_cast<std::size_t>(kind)].load(
                       std::memory_order_relaxed))
        return;
    if (impl_->trigger_dump_count.load(std::memory_order_relaxed) >=
        impl_->dump_limit.load(std::memory_order_relaxed))
        return;
    // One dump at a time; a concurrent trigger is dropped, not queued — the
    // black box it would have dumped is (almost) the same one.
    if (impl_->dumping.exchange(true, std::memory_order_acquire)) return;
    if (impl_->trigger_dump_count.load(std::memory_order_relaxed) <
        impl_->dump_limit.load(std::memory_order_relaxed)) {
        try {
            const std::string path = write_dump(event_kind_name(kind), &record);
            if (!path.empty())
                impl_->trigger_dump_count.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            // A failing dump must never take the service down with it.
        }
    }
    impl_->dumping.store(false, std::memory_order_release);
}

std::vector<FlightRecorder::ThreadEvents> FlightRecorder::snapshot() {
    std::vector<std::shared_ptr<Ring>> rings;
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        rings = impl_->rings;
    }
    std::vector<ThreadEvents> out;
    out.reserve(rings.size());
    for (const std::shared_ptr<Ring>& ring : rings) {
        ThreadEvents events;
        events.track = ring->track;
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
        events.events.reserve(count);
        for (std::uint64_t k = head - count; k < head; ++k) {
            const Slot& slot = ring->slots[k & kMask];
            const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
            if (s1 != k + 1) continue;  // overwritten (or being written) — skip
            EventRecord record;
            record.t_ns = slot.t_ns.load(std::memory_order_relaxed);
            record.frame = slot.frame.load(std::memory_order_relaxed);
            record.module = slot.module.load(std::memory_order_relaxed);
            record.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
            record.a = slot.a.load(std::memory_order_relaxed);
            record.b = slot.b.load(std::memory_order_relaxed);
            const std::uint64_t s2 = slot.seq.load(std::memory_order_acquire);
            if (s1 != s2) continue;
            events.events.push_back(record);
        }
        if (!events.events.empty()) out.push_back(std::move(events));
    }
    return out;
}

std::string FlightRecorder::dump_json(const std::string& reason,
                                      const EventRecord* trigger) {
    auto append_event = [](std::string& out, const EventRecord& e) {
        out += "{\"t_ns\": " + std::to_string(e.t_ns);
        out += ", \"frame\": " + std::to_string(e.frame);
        out += ", \"module\": " + std::to_string(e.module);
        out += ", \"kind\": \"";
        out += event_kind_name(e.kind);
        out += "\", \"a\": " + fmt_payload(e.a);
        out += ", \"b\": " + fmt_payload(e.b);
        out += "}";
    };

    std::string out = "{\n\"meta\": " + run_metadata_json() + ",\n";
    out += "\"reason\": \"" + reason + "\",\n";
    out += "\"dumped_at_ns\": " + std::to_string(now_ns()) + ",\n";
    if (trigger != nullptr) {
        out += "\"trigger\": ";
        append_event(out, *trigger);
        out += ",\n";
    }
    out += "\"threads\": [";
    const std::vector<ThreadEvents> threads = snapshot();
    for (std::size_t t = 0; t < threads.size(); ++t) {
        out += t ? ",\n" : "\n";
        out += "{\"track\": " + std::to_string(threads[t].track) + ", \"events\": [";
        const std::vector<EventRecord>& events = threads[t].events;
        for (std::size_t e = 0; e < events.size(); ++e) {
            out += e ? ",\n  " : "\n  ";
            append_event(out, events[e]);
        }
        out += events.empty() ? "]}" : "\n]}";
    }
    out += threads.empty() ? "],\n" : "\n],\n";
    out += "\"metrics\": " + metrics().snapshot().to_json();
    out += "\n}\n";
    return out;
}

std::string FlightRecorder::write_dump(const std::string& reason,
                                       const EventRecord* trigger) {
    const std::string body = dump_json(reason, trigger);

    char stamp[32] = "00000000T000000";
    const std::time_t wall = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&wall, &utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y%m%dT%H%M%S", &utc);

    std::string path;
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        path = impl_->dump_dir + "/postmortem-" + stamp + "-" +
               std::to_string(impl_->dump_seq++) + ".json";
    }
    std::ofstream file(path);
    file << body;
    if (!file.good()) {
        log_error("flight recorder: cannot write " + path);
        return "";
    }
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->last_dump = path;
    }
    log_info("flight recorder: wrote " + path + " (reason: " + reason + ")");
    return path;
}

std::string FlightRecorder::dump(const std::string& reason) {
    return write_dump(reason, nullptr);
}

std::uint64_t FlightRecorder::trigger_dumps() const noexcept {
    return impl_->trigger_dump_count.load(std::memory_order_relaxed);
}

std::string FlightRecorder::last_dump_path() const {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->last_dump;
}

void FlightRecorder::clear() {
    std::vector<std::shared_ptr<Ring>> rings;
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        rings = impl_->rings;
    }
    for (const std::shared_ptr<Ring>& ring : rings) {
        for (Slot& slot : ring->slots) slot.seq.store(0, std::memory_order_relaxed);
        ring->head.store(0, std::memory_order_relaxed);
    }
    impl_->trigger_dump_count.store(0, std::memory_order_relaxed);
}

}  // namespace mvreju::obs
