#include "mvreju/obs/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "mvreju/util/json.hpp"

namespace mvreju::obs::postmortem {

namespace {

Event parse_event(const util::Json& node, std::uint64_t track) {
    Event event;
    event.t_ns = static_cast<std::uint64_t>(node.at("t_ns").number());
    event.frame = static_cast<std::uint64_t>(node.at("frame").number());
    event.module = static_cast<std::uint32_t>(node.at("module").number());
    event.kind = node.at("kind").str();
    event.a = node.at("a").number();
    event.b = node.at("b").number();
    event.track = track;
    return event;
}

std::string fmt_ms(double ms) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%+.3fms", ms);
    return buf;
}

std::string fmt_payload(double v) {
    char buf[32];
    // %g keeps integral payloads (state codes, frame counts) short while
    // preserving fractional ones (latencies, accuracies).
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

}  // namespace

Dump parse(const std::string& json_text) {
    const util::Json doc = util::Json::parse(json_text);
    Dump dump;
    dump.reason = doc.at("reason").str();
    const util::Json& meta = doc.at("meta");
    dump.git_sha = meta.at("git_sha").str();
    dump.build_type = meta.at("build_type").str();
    dump.compiler = meta.at("compiler").str();
    if (const util::Json* trigger = doc.find("trigger"))
        dump.trigger = parse_event(*trigger, 0);

    const util::Json& threads = doc.at("threads");
    dump.thread_count = threads.size();
    for (const util::Json& thread : threads.items()) {
        const auto track = static_cast<std::uint64_t>(thread.at("track").number());
        for (const util::Json& event : thread.at("events").items())
            dump.events.push_back(parse_event(event, track));
    }
    std::stable_sort(dump.events.begin(), dump.events.end(),
                     [](const Event& x, const Event& y) {
                         return x.t_ns != y.t_ns ? x.t_ns < y.t_ns : x.track < y.track;
                     });

    if (const util::Json* metrics = doc.find("metrics"))
        if (const util::Json* counters = metrics->find("counters"))
            for (const auto& [name, value] : counters->members())
                dump.counters.emplace_back(name,
                                           static_cast<std::uint64_t>(value.number()));
    return dump;
}

Dump load(const std::string& path) {
    std::ifstream in(path);
    if (!in.good()) throw std::runtime_error("postmortem: cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

std::string render(const Dump& dump, const RenderOptions& options) {
    std::ostringstream out;
    out << "postmortem: reason=" << dump.reason << "  events=" << dump.events.size()
        << "  threads=" << dump.thread_count << "\n";
    if (options.show_meta)
        out << "build: " << dump.git_sha << " (" << dump.build_type << ", "
            << dump.compiler << ")\n";

    const std::uint64_t epoch = dump.events.empty() ? 0 : dump.events.front().t_ns;
    auto rel_ms = [&](std::uint64_t t_ns) {
        return (static_cast<double>(t_ns) - static_cast<double>(epoch)) / 1e6;
    };
    auto is_trigger = [&](const Event& e) {
        return dump.trigger.has_value() && e.t_ns == dump.trigger->t_ns &&
               e.kind == dump.trigger->kind && e.frame == dump.trigger->frame &&
               e.module == dump.trigger->module;
    };

    if (dump.trigger.has_value()) {
        const Event& t = *dump.trigger;
        out << "trigger: " << t.kind << " at " << fmt_ms(rel_ms(t.t_ns)) << " frame "
            << t.frame << " module " << t.module << " (a=" << fmt_payload(t.a)
            << ", b=" << fmt_payload(t.b) << ")\n";
    }

    // --- Per-module timeline ---
    std::set<std::uint32_t> modules;
    for (const Event& e : dump.events) modules.insert(e.module);
    for (const std::uint32_t module : modules) {
        std::vector<const Event*> events;
        for (const Event& e : dump.events)
            if (e.module == module) events.push_back(&e);
        out << "\nmodule " << module << " (" << events.size() << " events):\n";
        std::size_t start = 0;
        if (options.max_events_per_module > 0 &&
            events.size() > options.max_events_per_module) {
            start = events.size() - options.max_events_per_module;
            out << "  ... " << start << " older events elided ...\n";
        }
        for (std::size_t i = start; i < events.size(); ++i) {
            const Event& e = *events[i];
            char line[160];
            std::snprintf(line, sizeof line, "  %-14s frame %-6llu %-19s a=%s b=%s",
                          fmt_ms(rel_ms(e.t_ns)).c_str(),
                          static_cast<unsigned long long>(e.frame), e.kind.c_str(),
                          fmt_payload(e.a).c_str(), fmt_payload(e.b).c_str());
            out << line;
            if (is_trigger(e)) out << "   <<< TRIGGER";
            out << "\n";
        }
    }

    // --- Event counts around the trigger (the deltas a postmortem reads
    // first: what changed in the black box when the trigger fired) ---
    if (dump.trigger.has_value()) {
        std::map<std::string, std::pair<std::size_t, std::size_t>> by_kind;
        for (const Event& e : dump.events) {
            auto& [before, after] = by_kind[e.kind];
            (e.t_ns < dump.trigger->t_ns ? before : after) += 1;
        }
        out << "\nevent counts around trigger (before / at-or-after):\n";
        for (const auto& [kind, counts] : by_kind) {
            char line[96];
            std::snprintf(line, sizeof line, "  %-19s %6zu %6zu\n", kind.c_str(),
                          counts.first, counts.second);
            out << line;
        }
    }

    if (options.show_metrics && !dump.counters.empty()) {
        out << "\nmetrics counters at dump time:\n";
        for (const auto& [name, value] : dump.counters)
            out << "  " << name << " = " << value << "\n";
    }
    return out.str();
}

}  // namespace mvreju::obs::postmortem
