#pragma once

// Fault-tolerant midpoint voting for continuous outputs — the approximate-
// agreement primitive of Dolev et al. that the paper cites as an
// alternative voting scheme (Section IV). For scalar proposals (steering
// angles, speed setpoints, distances) exact equality is meaningless;
// instead, the f largest and f smallest proposals are discarded and the
// midpoint of the surviving range is output. With n >= 2f + 1 functional
// proposals, the result is guaranteed to lie within the range spanned by
// the correct modules' values, no matter what up to f faulty modules
// propose.

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "mvreju/core/voter.hpp"

namespace mvreju::core {

/// Fault-tolerant midpoint voter over scalar proposals.
class MidpointVoter {
public:
    /// `max_faulty` is f: how many arbitrarily faulty proposals to tolerate.
    explicit MidpointVoter(std::size_t max_faulty = 1) : max_faulty_(max_faulty) {}

    [[nodiscard]] std::size_t max_faulty() const noexcept { return max_faulty_; }

    /// Vote over optional scalar proposals (std::nullopt = non-functional
    /// module). Requires at least 2f+1 functional proposals to mask f
    /// faults; with fewer (but at least one) the vote degrades gracefully:
    /// it discards as many extremes per side as the pool affords and is
    /// flagged `degraded`.
    struct Result {
        VoteKind kind = VoteKind::no_output;
        double value = 0.0;
        bool degraded = false;  ///< fewer than 2f+1 proposals were available
    };

    [[nodiscard]] Result vote(const std::vector<std::optional<double>>& proposals) const {
        std::vector<double> active;
        active.reserve(proposals.size());
        for (const auto& p : proposals)
            if (p.has_value()) active.push_back(*p);

        Result result;
        if (active.empty()) return result;

        std::sort(active.begin(), active.end());
        // Discard up to f per side, but always keep at least one value.
        const std::size_t affordable =
            std::min(max_faulty_, (active.size() - 1) / 2);
        result.degraded = active.size() < 2 * max_faulty_ + 1;
        const double low = active[affordable];
        const double high = active[active.size() - 1 - affordable];
        result.value = low + (high - low) / 2.0;
        result.kind = VoteKind::decided;
        return result;
    }

private:
    std::size_t max_faulty_;
};

}  // namespace mvreju::core
