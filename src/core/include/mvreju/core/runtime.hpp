#pragma once

// Threaded active-replication runtime for the multi-version architecture.
//
// The DSPN/HealthEngine models *when* modules degrade; this runtime is the
// execution-level counterpart of the paper's detection assumption: "failure
// to respond [by its deadline] triggers detection and reactive recovery"
// (Section IV). Each version runs on its own worker thread (standing in for
// the isolated OS partitions of the paper's fault model); the voter
// broadcasts each input, collects proposals until a deadline, treats
// non-responding modules as non-functional for that frame, and supports
// rejuvenating a module by swapping in a fresh (possibly diversified)
// behaviour — even while the old one is wedged.
//
// Concurrency notes: every request carries a shared ownership token
// (PendingVote), so a straggler that finishes after its deadline writes into
// a closed, still-alive vote object and is discarded — never into a dangling
// frame. A wedged worker thread cannot be killed portably; rejuvenation
// therefore detaches it (it parks on its own Shared block, which it owns via
// shared_ptr) and starts a fresh worker.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mvreju/core/voter.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"

namespace mvreju::core {

/// Why a module was rejuvenated; recorded with the flight-recorder event so
/// a postmortem can tell routine maintenance from recovery under attack.
enum class RejuvenationCause : int {
    manual = 0,     ///< operator / application decision
    reactive = 1,   ///< response to a detected failure
    proactive = 2,  ///< time-triggered
};

template <typename Input, typename Output>
class RuntimeSystem {
public:
    /// Per-frame behaviour of one module, invoked on that module's worker
    /// thread. ML-backed modules can capture a `const ml::Sequential*` into a
    /// shared pristine model — inference is stateless and thread-safe on a
    /// shared const model (see the contract in ml/model.hpp), so replicas
    /// need no private weight copies and rejuvenation can repoint a module
    /// at safe storage without cloning.
    using ModuleFn = std::function<Output(const Input&)>;

    struct Options {
        std::chrono::milliseconds deadline{50};  ///< per-frame response deadline
    };

    RuntimeSystem(std::vector<ModuleFn> modules, Voter<Output> voter,
                  Options options = {})
        : voter_(std::move(voter)), options_(options) {
        if (modules.empty())
            throw std::invalid_argument("RuntimeSystem: no modules");
        obs::Registry& reg = obs::metrics();
        deadline_misses_ = &reg.counter("core.runtime.deadline_misses");
        rejuvenation_events_ = &reg.counter("core.runtime.rejuvenations");
        votes_decided_ = &reg.counter("core.runtime.votes.decided");
        votes_skipped_ = &reg.counter("core.runtime.votes.skipped");
        votes_no_output_ = &reg.counter("core.runtime.votes.no_output");
        workers_.reserve(modules.size());
        latency_ms_.reserve(modules.size());
        timeouts_.assign(modules.size(), 0);
        for (auto& fn : modules) {
            if (!fn) throw std::invalid_argument("RuntimeSystem: null module");
            // 0.05ms .. ~1.6s in geometric steps; module bodies range from
            // microseconds (unit tests) to deliberately wedged stalls.
            latency_ms_.push_back(&reg.histogram(
                "core.runtime.m" + std::to_string(latency_ms_.size()) + ".latency_ms",
                obs::HistogramBounds::exponential(0.05, 2.0, 15)));
            workers_.push_back(Worker::start(std::move(fn), latency_ms_.back()));
        }
    }

    RuntimeSystem(const RuntimeSystem&) = delete;
    RuntimeSystem& operator=(const RuntimeSystem&) = delete;

    ~RuntimeSystem() {
        for (auto& worker : workers_) worker->stop();
    }

    [[nodiscard]] std::size_t module_count() const noexcept { return workers_.size(); }

    /// Broadcast `input` to all responsive workers, wait until the deadline,
    /// and vote over the proposals that arrived in time. Modules that are
    /// still busy with an earlier frame, or that miss the deadline, submit
    /// no proposal and have their timeout counter bumped.
    [[nodiscard]] VoteResult<Output> process(const Input& input) {
        MVREJU_OBS_SPAN(span, "core.runtime.process");
        const std::uint64_t frame = frame_seq_++;
        const double deadline_ms =
            std::chrono::duration<double, std::milli>(options_.deadline).count();
        auto pending = std::make_shared<PendingVote>();
        pending->proposals.assign(workers_.size(), std::nullopt);

        std::size_t posted = 0;
        std::vector<bool> was_posted(workers_.size(), false);
        for (std::size_t m = 0; m < workers_.size(); ++m) {
            if (workers_[m]->post(input, pending, m)) {
                was_posted[m] = true;
                ++posted;
            } else {
                ++timeouts_[m];  // wedged since an earlier frame
                deadline_misses_->add();
                MVREJU_OBS_EVENT(obs::EventKind::deadline_miss, frame,
                                 static_cast<std::uint32_t>(m), deadline_ms, 1.0);
            }
        }

        std::unique_lock lock(pending->mu);
        pending->cv.wait_for(lock, options_.deadline,
                             [&] { return pending->responded == posted; });
        pending->closed = true;
        const std::size_t responded = pending->responded;
        for (std::size_t m = 0; m < workers_.size(); ++m) {
            if (was_posted[m] && !pending->proposals[m].has_value()) {
                ++timeouts_[m];
                deadline_misses_->add();
                MVREJU_OBS_EVENT(obs::EventKind::deadline_miss, frame,
                                 static_cast<std::uint32_t>(m), deadline_ms, 0.0);
            }
        }
        VoteResult<Output> result = voter_.vote(pending->proposals);
        switch (result.kind) {
            case VoteKind::decided:
                votes_decided_->add();
                MVREJU_OBS_EVENT(obs::EventKind::vote_decided, frame, 0,
                                 static_cast<double>(posted),
                                 static_cast<double>(responded));
                break;
            case VoteKind::skipped:
                votes_skipped_->add();
                MVREJU_OBS_EVENT(obs::EventKind::vote_skipped, frame, 0,
                                 static_cast<double>(posted),
                                 static_cast<double>(responded));
                break;
            case VoteKind::no_output:
                votes_no_output_->add();
                MVREJU_OBS_EVENT(obs::EventKind::vote_no_output, frame, 0,
                                 static_cast<double>(posted),
                                 static_cast<double>(responded));
                break;
        }
        span.arg("posted", static_cast<double>(posted));
        span.arg("responded", static_cast<double>(responded));
        span.arg("decided", result.decided() ? 1.0 : 0.0);
        return result;
    }

    /// Replace module `m`'s behaviour with a fresh (possibly diversified)
    /// version. If the old worker is wedged mid-request it is detached and a
    /// new worker thread takes over — exactly what the paper's rejuvenation
    /// mechanism does by reloading a module from safe storage. `cause` only
    /// labels the flight-recorder events.
    void rejuvenate(std::size_t module, ModuleFn fresh,
                    RejuvenationCause cause = RejuvenationCause::manual) {
        if (module >= workers_.size())
            throw std::out_of_range("RuntimeSystem::rejuvenate: bad module index");
        if (!fresh) throw std::invalid_argument("RuntimeSystem::rejuvenate: null module");
        const double cause_code = static_cast<double>(static_cast<int>(cause));
        MVREJU_OBS_EVENT(obs::EventKind::rejuvenation_start, frame_seq_,
                         static_cast<std::uint32_t>(module), cause_code, 0.0);
        bool wedged = false;
        if (!workers_[module]->replace_fn_if_idle(fresh)) {
            wedged = true;
            workers_[module]->abandon();
            workers_[module] = Worker::start(std::move(fresh), latency_ms_[module]);
        }
        ++rejuvenations_;
        rejuvenation_events_->add();
        MVREJU_OBS_EVENT(obs::EventKind::rejuvenation_end, frame_seq_,
                         static_cast<std::uint32_t>(module), cause_code,
                         wedged ? 1.0 : 0.0);
    }

    /// Frames in which module m failed to respond by its deadline.
    [[nodiscard]] std::size_t timeouts(std::size_t module) const {
        return timeouts_.at(module);
    }
    [[nodiscard]] std::size_t rejuvenations() const noexcept { return rejuvenations_; }

private:
    /// Shared per-frame collection point; stragglers write into it (guarded
    /// by `closed`) even after process() returned.
    struct PendingVote {
        std::mutex mu;
        std::condition_variable cv;
        std::vector<std::optional<Output>> proposals;
        std::size_t responded = 0;
        bool closed = false;
    };

    class Worker {
    public:
        static std::unique_ptr<Worker> start(ModuleFn fn, obs::Histogram* latency_ms) {
            auto worker = std::unique_ptr<Worker>(new Worker());
            worker->shared_->fn = std::move(fn);
            worker->shared_->latency_ms = latency_ms;
            worker->thread_ = std::thread(&Worker::run, worker->shared_);
            return worker;
        }

        ~Worker() { stop(); }

        /// Returns false when the worker is still busy with an earlier frame.
        bool post(const Input& input, std::shared_ptr<PendingVote> pending,
                  std::size_t slot) {
            std::lock_guard lock(shared_->mu);
            if (shared_->busy || shared_->shutdown) return false;
            shared_->input = input;  // copy: the worker must not alias the frame
            shared_->pending = std::move(pending);
            shared_->slot = slot;
            shared_->busy = true;
            shared_->has_request = true;
            shared_->cv.notify_one();
            return true;
        }

        /// Fast-path rejuvenation: swap the behaviour in place when idle.
        bool replace_fn_if_idle(const ModuleFn& fn) {
            std::lock_guard lock(shared_->mu);
            if (shared_->busy) return false;
            shared_->fn = fn;
            return true;
        }

        /// Give up on a wedged worker: it keeps ownership of its state via
        /// shared_ptr and exits when its current call finally returns.
        void abandon() {
            {
                std::lock_guard lock(shared_->mu);
                shared_->shutdown = true;
                shared_->cv.notify_one();
            }
            if (thread_.joinable()) thread_.detach();
        }

        void stop() {
            if (!thread_.joinable()) return;
            bool busy;
            {
                std::lock_guard lock(shared_->mu);
                shared_->shutdown = true;
                busy = shared_->busy;
                shared_->cv.notify_one();
            }
            // A wedged worker would block join() forever; detach it instead
            // (it only touches its own shared block, which it co-owns).
            if (busy) thread_.detach();
            else thread_.join();
        }

    private:
        Worker() : shared_(std::make_shared<Shared>()) {}

        struct Shared {
            std::mutex mu;
            std::condition_variable cv;
            ModuleFn fn;
            obs::Histogram* latency_ms = nullptr;  ///< set once before the thread starts
            std::optional<Input> input;
            std::shared_ptr<PendingVote> pending;
            std::size_t slot = 0;
            bool has_request = false;
            bool busy = false;
            bool shutdown = false;
        };

        static void run(std::shared_ptr<Shared> shared) {
            for (;;) {
                Input input{};
                std::shared_ptr<PendingVote> pending;
                std::size_t slot = 0;
                ModuleFn fn;
                {
                    std::unique_lock lock(shared->mu);
                    shared->cv.wait(
                        lock, [&] { return shared->has_request || shared->shutdown; });
                    if (shared->shutdown && !shared->has_request) return;
                    shared->has_request = false;
                    input = std::move(*shared->input);
                    shared->input.reset();
                    pending = std::move(shared->pending);
                    slot = shared->slot;
                    fn = shared->fn;
                }

                std::optional<Output> output;
                const bool timing = obs::enabled();
                const auto started = timing ? std::chrono::steady_clock::now()
                                            : std::chrono::steady_clock::time_point{};
                try {
                    output = fn(input);
                } catch (...) {
                    // A crashing module simply submits nothing this frame.
                }
                if (timing && shared->latency_ms != nullptr) {
                    const std::chrono::duration<double, std::milli> elapsed =
                        std::chrono::steady_clock::now() - started;
                    shared->latency_ms->record(elapsed.count());
                }

                // Become idle *before* signalling the vote: the caller wakes
                // on the last proposal and may immediately post the next
                // frame, which must not see this worker as busy.
                bool shutting_down;
                {
                    std::lock_guard lock(shared->mu);
                    shared->busy = false;
                    shutting_down = shared->shutdown;
                }
                {
                    std::lock_guard lock(pending->mu);
                    if (!pending->closed && output.has_value()) {
                        pending->proposals[slot] = std::move(*output);
                        ++pending->responded;
                        pending->cv.notify_all();
                    }
                }
                if (shutting_down) return;
            }
        }

        std::shared_ptr<Shared> shared_;
        std::thread thread_;
    };

    Voter<Output> voter_;
    Options options_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<obs::Histogram*> latency_ms_;  ///< per-module, survives rejuvenation
    std::uint64_t frame_seq_ = 0;  ///< frame id stamped on flight-recorder events
    std::vector<std::size_t> timeouts_;
    std::size_t rejuvenations_ = 0;
    obs::Counter* deadline_misses_ = nullptr;
    obs::Counter* rejuvenation_events_ = nullptr;
    obs::Counter* votes_decided_ = nullptr;
    obs::Counter* votes_skipped_ = nullptr;
    obs::Counter* votes_no_output_ = nullptr;
};

}  // namespace mvreju::core
