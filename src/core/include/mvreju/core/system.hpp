#pragma once

// MultiVersionSystem: the paper's architecture (Fig. 1) as a reusable
// component. N diverse ML modules process each input; a module's behaviour
// depends on its health state (pristine inference when healthy, the
// fault-injected variant when compromised, silence when non-functional or
// under rejuvenation); the trusted voter merges proposals under rules
// R.1-R.3; reactive and time-triggered proactive rejuvenation keep the
// module pool healthy.
//
// Fleet-scale shape: the *behaviours* (VersionPool) are immutable and shared
// by every stream — module functions capture const model pointers, so a
// thousand concurrent streams share one set of weights — while the
// *per-stream* state (health process, vote bookkeeping, frame counter) lives
// in each MultiVersionSystem instance. The split-phase API
// (begin_frame / complete_frame) lets a serving layer separate "which
// versions run this frame" from "vote over what came back", with the actual
// inference routed through a cross-stream batcher in between; process() is
// the inline composition of the two and is bit-identical to the split path.

#include <cstdint>
#include <functional>
#include <memory>

#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/obs/flight_recorder.hpp"

namespace mvreju::core {

/// One diverse version: its healthy behaviour and its behaviour after being
/// compromised (e.g. the same network with injected weight faults).
template <typename Input, typename Output>
struct VersionSpec {
    std::function<Output(const Input&)> healthy;
    std::function<Output(const Input&)> compromised;
};

/// The immutable, shareable set of version behaviours. One pool instance
/// backs any number of streams (shared_ptr<const VersionPool>); no
/// per-stream clones of the underlying models are ever made.
template <typename Input, typename Output>
class VersionPool {
public:
    explicit VersionPool(std::vector<VersionSpec<Input, Output>> versions)
        : versions_(std::move(versions)) {
        for (const auto& v : versions_)
            if (!v.healthy || !v.compromised)
                throw std::invalid_argument("VersionPool: missing version behaviour");
    }

    [[nodiscard]] std::size_t size() const noexcept { return versions_.size(); }

    /// The behaviour of version `m` in health state `s`; s must be
    /// functional.
    [[nodiscard]] const std::function<Output(const Input&)>& behaviour(
        std::size_t m, ModuleState s) const {
        const VersionSpec<Input, Output>& v = versions_.at(m);
        return s == ModuleState::healthy ? v.healthy : v.compromised;
    }

private:
    std::vector<VersionSpec<Input, Output>> versions_;
};

/// Outcome of one processed frame, including which modules contributed.
template <typename Output>
struct FrameResult {
    VoteResult<Output> vote;
    int functional_modules = 0;
};

/// Everything decided at the *start* of a frame: the health snapshot that
/// determines which versions run and in which behaviour. A serving layer
/// fans the functional modules out to a batcher and calls complete_frame()
/// with the proposals once they return.
struct FramePlan {
    std::uint64_t frame_id = 0;
    std::uint64_t t_ns = 0;  ///< simulated-clock stamp for deterministic events
    std::vector<ModuleState> states;  ///< per-version health at frame time
    int functional_modules = 0;
};

/// The multi-version ML system with rejuvenation. One instance = one stream.
template <typename Input, typename Output, typename Agree = std::equal_to<Output>>
class MultiVersionSystem {
public:
    using Pool = VersionPool<Input, Output>;

    MultiVersionSystem(std::shared_ptr<const Pool> pool, Voter<Output, Agree> voter,
                       HealthEngine health)
        : pool_(std::move(pool)),
          voter_(std::move(voter)),
          health_(std::move(health)) {
        if (!pool_) throw std::invalid_argument("MultiVersionSystem: null pool");
        if (pool_->size() != static_cast<std::size_t>(health_.module_count()))
            throw std::invalid_argument(
                "MultiVersionSystem: version count does not match health engine");
    }

    MultiVersionSystem(std::vector<VersionSpec<Input, Output>> versions,
                       Voter<Output, Agree> voter, HealthEngine health)
        : MultiVersionSystem(std::make_shared<const Pool>(std::move(versions)),
                             std::move(voter), std::move(health)) {}

    /// Phase 1: advance the health process to `time`, snapshot per-version
    /// states (emitting module_state transition events) and decide which
    /// versions participate.
    [[nodiscard]] FramePlan begin_frame(double time) {
        health_.advance_to(time);
        FramePlan plan;
        // Flight-recorder timestamps use the simulated clock (ns), so dumps
        // from seeded runs are byte-deterministic.
        plan.t_ns = static_cast<std::uint64_t>(time * 1e9);
        plan.frame_id = frame_seq_++;
        if (previous_states_.size() != pool_->size())
            previous_states_.assign(pool_->size(), ModuleState::healthy);
        plan.states.reserve(pool_->size());
        for (std::size_t m = 0; m < pool_->size(); ++m) {
            const ModuleState s = health_.state(static_cast<int>(m));
            if (s != previous_states_[m]) {
                MVREJU_OBS_EVENT_AT(plan.t_ns, obs::EventKind::module_state,
                                    plan.frame_id, static_cast<std::uint32_t>(m),
                                    static_cast<double>(s),
                                    static_cast<double>(previous_states_[m]));
                previous_states_[m] = s;
            }
            plan.states.push_back(s);
            plan.functional_modules += is_functional(s) ? 1 : 0;
        }
        return plan;
    }

    /// Phase 2: vote over one optional proposal per version (non-functional
    /// versions must hold std::nullopt) and emit the vote event.
    [[nodiscard]] FrameResult<Output> complete_frame(
        const FramePlan& plan, std::vector<std::optional<Output>> proposals) {
        FrameResult<Output> frame;
        frame.functional_modules = plan.functional_modules;
        frame.vote = voter_.vote(proposals);
        const auto posted = static_cast<double>(frame.functional_modules);
        switch (frame.vote.kind) {
            case VoteKind::decided:
                MVREJU_OBS_EVENT_AT(plan.t_ns, obs::EventKind::vote_decided,
                                    plan.frame_id, 0, posted,
                                    static_cast<double>(frame.vote.agreeing));
                break;
            case VoteKind::skipped:
                MVREJU_OBS_EVENT_AT(plan.t_ns, obs::EventKind::vote_skipped,
                                    plan.frame_id, 0, posted,
                                    static_cast<double>(frame.vote.agreeing));
                break;
            case VoteKind::no_output:
                MVREJU_OBS_EVENT_AT(plan.t_ns, obs::EventKind::vote_no_output,
                                    plan.frame_id, 0, posted, 0.0);
                break;
        }
        return frame;
    }

    /// Advance the health process to `time` and run one perception frame
    /// inline (begin_frame -> run each functional behaviour -> vote).
    [[nodiscard]] FrameResult<Output> process(double time, const Input& input) {
        const FramePlan plan = begin_frame(time);
        std::vector<std::optional<Output>> proposals;
        proposals.reserve(plan.states.size());
        for (std::size_t m = 0; m < plan.states.size(); ++m) {
            const ModuleState s = plan.states[m];
            if (!is_functional(s)) {
                proposals.emplace_back(std::nullopt);
                continue;
            }
            proposals.emplace_back(pool_->behaviour(m, s)(input));
        }
        return complete_frame(plan, std::move(proposals));
    }

    [[nodiscard]] const HealthEngine& health() const noexcept { return health_; }
    [[nodiscard]] HealthEngine& health() noexcept { return health_; }
    [[nodiscard]] std::size_t version_count() const noexcept { return pool_->size(); }
    [[nodiscard]] const std::shared_ptr<const Pool>& pool() const noexcept {
        return pool_;
    }

private:
    std::shared_ptr<const Pool> pool_;  ///< shared across streams, never cloned
    Voter<Output, Agree> voter_;
    HealthEngine health_;
    // Flight-recorder bookkeeping: module_state events fire on transitions
    // only, observed at frame granularity.
    std::vector<ModuleState> previous_states_;
    std::uint64_t frame_seq_ = 0;
};

}  // namespace mvreju::core
