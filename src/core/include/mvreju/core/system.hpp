#pragma once

// MultiVersionSystem: the paper's architecture (Fig. 1) as a reusable
// component. N diverse ML modules process each input; a module's behaviour
// depends on its health state (pristine inference when healthy, the
// fault-injected variant when compromised, silence when non-functional or
// under rejuvenation); the trusted voter merges proposals under rules
// R.1-R.3; reactive and time-triggered proactive rejuvenation keep the
// module pool healthy.

#include <functional>

#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"

namespace mvreju::core {

/// One diverse version: its healthy behaviour and its behaviour after being
/// compromised (e.g. the same network with injected weight faults).
template <typename Input, typename Output>
struct VersionSpec {
    std::function<Output(const Input&)> healthy;
    std::function<Output(const Input&)> compromised;
};

/// Outcome of one processed frame, including which modules contributed.
template <typename Output>
struct FrameResult {
    VoteResult<Output> vote;
    int functional_modules = 0;
};

/// The multi-version ML system with rejuvenation.
template <typename Input, typename Output, typename Agree = std::equal_to<Output>>
class MultiVersionSystem {
public:
    MultiVersionSystem(std::vector<VersionSpec<Input, Output>> versions,
                       Voter<Output, Agree> voter, HealthEngine health)
        : versions_(std::move(versions)),
          voter_(std::move(voter)),
          health_(std::move(health)) {
        if (versions_.size() != static_cast<std::size_t>(health_.module_count()))
            throw std::invalid_argument(
                "MultiVersionSystem: version count does not match health engine");
        for (const auto& v : versions_)
            if (!v.healthy || !v.compromised)
                throw std::invalid_argument("MultiVersionSystem: missing version behaviour");
    }

    /// Advance the health process to `time` and run one perception frame.
    [[nodiscard]] FrameResult<Output> process(double time, const Input& input) {
        health_.advance_to(time);
        std::vector<std::optional<Output>> proposals;
        proposals.reserve(versions_.size());
        FrameResult<Output> frame;
        for (std::size_t m = 0; m < versions_.size(); ++m) {
            const ModuleState s = health_.state(static_cast<int>(m));
            if (!is_functional(s)) {
                proposals.emplace_back(std::nullopt);
                continue;
            }
            ++frame.functional_modules;
            const auto& fn = (s == ModuleState::healthy) ? versions_[m].healthy
                                                         : versions_[m].compromised;
            proposals.emplace_back(fn(input));
        }
        frame.vote = voter_.vote(proposals);
        return frame;
    }

    [[nodiscard]] const HealthEngine& health() const noexcept { return health_; }
    [[nodiscard]] HealthEngine& health() noexcept { return health_; }
    [[nodiscard]] std::size_t version_count() const noexcept { return versions_.size(); }

private:
    std::vector<VersionSpec<Input, Output>> versions_;
    Voter<Output, Agree> voter_;
    HealthEngine health_;
};

}  // namespace mvreju::core
