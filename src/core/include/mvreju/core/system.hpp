#pragma once

// MultiVersionSystem: the paper's architecture (Fig. 1) as a reusable
// component. N diverse ML modules process each input; a module's behaviour
// depends on its health state (pristine inference when healthy, the
// fault-injected variant when compromised, silence when non-functional or
// under rejuvenation); the trusted voter merges proposals under rules
// R.1-R.3; reactive and time-triggered proactive rejuvenation keep the
// module pool healthy.

#include <cstdint>
#include <functional>

#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/obs/flight_recorder.hpp"

namespace mvreju::core {

/// One diverse version: its healthy behaviour and its behaviour after being
/// compromised (e.g. the same network with injected weight faults).
template <typename Input, typename Output>
struct VersionSpec {
    std::function<Output(const Input&)> healthy;
    std::function<Output(const Input&)> compromised;
};

/// Outcome of one processed frame, including which modules contributed.
template <typename Output>
struct FrameResult {
    VoteResult<Output> vote;
    int functional_modules = 0;
};

/// The multi-version ML system with rejuvenation.
template <typename Input, typename Output, typename Agree = std::equal_to<Output>>
class MultiVersionSystem {
public:
    MultiVersionSystem(std::vector<VersionSpec<Input, Output>> versions,
                       Voter<Output, Agree> voter, HealthEngine health)
        : versions_(std::move(versions)),
          voter_(std::move(voter)),
          health_(std::move(health)) {
        if (versions_.size() != static_cast<std::size_t>(health_.module_count()))
            throw std::invalid_argument(
                "MultiVersionSystem: version count does not match health engine");
        for (const auto& v : versions_)
            if (!v.healthy || !v.compromised)
                throw std::invalid_argument("MultiVersionSystem: missing version behaviour");
    }

    /// Advance the health process to `time` and run one perception frame.
    [[nodiscard]] FrameResult<Output> process(double time, const Input& input) {
        health_.advance_to(time);
        // Flight-recorder timestamps use the simulated clock (ns), so dumps
        // from seeded runs are byte-deterministic.
        const auto t_ns = static_cast<std::uint64_t>(time * 1e9);
        const std::uint64_t frame_id = frame_seq_++;
        if (previous_states_.size() != versions_.size())
            previous_states_.assign(versions_.size(), ModuleState::healthy);
        std::vector<std::optional<Output>> proposals;
        proposals.reserve(versions_.size());
        FrameResult<Output> frame;
        for (std::size_t m = 0; m < versions_.size(); ++m) {
            const ModuleState s = health_.state(static_cast<int>(m));
            if (s != previous_states_[m]) {
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::module_state, frame_id,
                                    static_cast<std::uint32_t>(m),
                                    static_cast<double>(s),
                                    static_cast<double>(previous_states_[m]));
                previous_states_[m] = s;
            }
            if (!is_functional(s)) {
                proposals.emplace_back(std::nullopt);
                continue;
            }
            ++frame.functional_modules;
            const auto& fn = (s == ModuleState::healthy) ? versions_[m].healthy
                                                         : versions_[m].compromised;
            proposals.emplace_back(fn(input));
        }
        frame.vote = voter_.vote(proposals);
        const auto posted = static_cast<double>(frame.functional_modules);
        switch (frame.vote.kind) {
            case VoteKind::decided:
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::vote_decided, frame_id, 0,
                                    posted,
                                    static_cast<double>(frame.vote.agreeing));
                break;
            case VoteKind::skipped:
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::vote_skipped, frame_id, 0,
                                    posted,
                                    static_cast<double>(frame.vote.agreeing));
                break;
            case VoteKind::no_output:
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::vote_no_output, frame_id, 0,
                                    posted, 0.0);
                break;
        }
        return frame;
    }

    [[nodiscard]] const HealthEngine& health() const noexcept { return health_; }
    [[nodiscard]] HealthEngine& health() noexcept { return health_; }
    [[nodiscard]] std::size_t version_count() const noexcept { return versions_.size(); }

private:
    std::vector<VersionSpec<Input, Output>> versions_;
    Voter<Output, Agree> voter_;
    HealthEngine health_;
    // Flight-recorder bookkeeping: module_state events fire on transitions
    // only, observed at frame granularity.
    std::vector<ModuleState> previous_states_;
    std::uint64_t frame_seq_ = 0;
};

}  // namespace mvreju::core
